"""Microbenchmarks of the simulator's hot paths.

Unlike the figure benches (which run once and assert shapes), these are
true repeated-timing benchmarks guarding the harness's own performance:
the event loop, the twin/diff pipeline, and the end-to-end cost of one
simulated DSM operation.  Regressions here make the --full sweeps slow.
"""

import numpy as np

from repro.cluster.hockney import FAST_ETHERNET
from repro.core.policies import AdaptiveThreshold
from repro.gos.space import GlobalObjectSpace
from repro.gos.thread import ThreadContext
from repro.memory.diff import apply_diff, compute_diff
from repro.sim.engine import Simulator
from repro.sim.process import Delay


def test_event_loop_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(float(i % 97), lambda: None)
        return sim.run()

    benchmark(run_10k_events)


def test_process_switch_throughput(benchmark):
    def run_process_chain():
        sim = Simulator()

        def body():
            for _ in range(2_000):
                yield Delay(1.0)

        for _ in range(4):
            sim.spawn(body(), name="p")
        return sim.run()

    benchmark(run_process_chain)


def test_diff_pipeline(benchmark):
    twin = np.zeros(2048)
    current = twin.copy()
    current[100:130] = 1.0
    current[1000] = 2.0
    target = twin.copy()

    def diff_roundtrip():
        diff = compute_diff(1, twin, current)
        apply_diff(target, diff)
        return diff.size_bytes

    benchmark(diff_roundtrip)


def test_dsm_lock_increment_op_cost(benchmark):
    """End-to-end harness cost of one synchronized remote counter update
    (fault-in + twin + diff + ack + lock round trip)."""

    def thousand_updates():
        gos = GlobalObjectSpace(
            2, FAST_ETHERNET, policy=AdaptiveThreshold()
        )
        obj = gos.alloc_fields(("v",), home=0)
        lock = gos.alloc_lock(home=0)

        def body():
            ctx = ThreadContext(gos, tid=0, node=1)
            for _ in range(1_000):
                yield from ctx.acquire(lock)
                payload = yield from ctx.write(obj)
                payload[0] += 1.0
                yield from ctx.release(lock)

        gos.sim.spawn(body(), name="w")
        gos.sim.run()
        return gos.read_global(obj)[0]

    result = benchmark(thousand_updates)
    assert result == 1000.0


def test_dsm_barrier_round_cost(benchmark):
    def hundred_barriers():
        gos = GlobalObjectSpace(4, FAST_ETHERNET)
        barrier = gos.alloc_barrier(parties=4, home=0)

        def body(tid):
            ctx = ThreadContext(gos, tid=tid, node=tid)
            for _ in range(100):
                yield from ctx.barrier(barrier)

        for tid in range(4):
            gos.sim.spawn(body(tid), name=f"t{tid}")
        return gos.sim.run()

    benchmark(hundred_barriers)
