"""Microbenchmark: parallel sweep execution vs sequential.

Times a small Figure-2-shaped sweep at ``jobs=1`` and ``jobs=auto`` and
records the wall-clock ratio.  Correctness (bit-identical results) is
asserted; the speedup itself is *reported, not asserted* — CI machines
may expose a single core, where the ratio is ~1x and pool overhead can
even make it slightly negative.  The checked-in ``BENCH_PR1.json``
records the measured trajectory per PR.
"""

from repro.bench.executor import RunSpec, default_jobs, execute


def _sweep():
    return [
        RunSpec(
            app=app,
            app_kwargs=kwargs,
            policy=policy,
            nodes=nodes,
            tag=(app, policy, nodes),
        )
        for app, kwargs in (
            ("asp", {"size": 64}),
            ("sor", {"size": 64, "iterations": 6}),
        )
        for policy in ("NM", "AT")
        for nodes in (2, 8)
    ]


def test_parallel_matches_sequential_and_reports_speedup(benchmark):
    import time

    specs = _sweep()
    start = time.perf_counter()
    seq = execute(specs, jobs=1)
    seq_wall = time.perf_counter() - start

    def parallel():
        return execute(specs, jobs=default_jobs())

    par = benchmark.pedantic(parallel, rounds=1, iterations=1)
    par_wall = benchmark.stats.stats.total

    assert [o.deterministic() for o in seq] == [
        o.deterministic() for o in par
    ], "parallel execution changed the results"

    ratio = seq_wall / par_wall if par_wall else float("nan")
    benchmark.extra_info["jobs_auto"] = default_jobs()
    benchmark.extra_info["wall_s_jobs1"] = round(seq_wall, 4)
    benchmark.extra_info["parallel_speedup"] = round(ratio, 3)
    print(
        f"\nexecutor sweep: jobs=1 {seq_wall:.2f}s, "
        f"jobs={default_jobs()} {par_wall:.2f}s, speedup {ratio:.2f}x"
    )
