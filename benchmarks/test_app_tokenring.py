"""Beyond-paper application bench: migratory data (TokenRing).

The sequential-writers pathology of §2, swept by the tenure burst: at
burst=1 the pattern is purely migratory (migration must NOT fire); at
burst=8 each tenure is a short single-writer run (migration should fire
and pay).  The adaptive threshold handles both ends of the sweep.
"""

from repro.apps import TokenRing
from repro.bench.runner import run_once

NODES = 5
ROUNDS = 16


def test_migratory_end_of_sweep(run_benched):
    results = run_benched(
        lambda: {
            policy: run_once(
                TokenRing(rounds=ROUNDS, burst=1), policy=policy, nodes=NODES
            )
            for policy in ("NM", "AT", "JUMP")
        }
    )
    # AT tracks NM (no profitable migrations exist)
    assert (
        results["AT"].execution_time_us
        <= 1.02 * results["NM"].execution_time_us
    )
    # JUMP pays the §2 pathology
    assert (
        results["JUMP"].execution_time_us
        > 1.5 * results["AT"].execution_time_us
    )
    assert results["JUMP"].migrations > 50


def test_single_writer_end_of_sweep(run_benched):
    results = run_benched(
        lambda: {
            policy: run_once(
                TokenRing(rounds=ROUNDS, burst=8), policy=policy, nodes=NODES
            )
            for policy in ("NM", "AT", "FT1")
        }
    )
    assert (
        results["AT"].execution_time_us
        < results["NM"].execution_time_us
    )
    assert results["AT"].migrations < results["FT1"].migrations
    assert (
        results["AT"].execution_time_us
        <= 1.05 * results["FT1"].execution_time_us
    )
