"""Ablation — FIFO vs retry lock grants (the paper's runtime randomness).

With retry grants, a releasing thread sometimes re-wins the lock, so the
consecutive writing run becomes a random multiple of r (the behaviour the
paper describes).  FT2 then migrates occasionally even at r=2 ("except in
some individual cases"), while AT's feedback keeps treating the pattern
as transient.
"""

from repro.bench.ablation import run_lock_discipline_ablation


def test_retry_randomness_awakens_ft2_at_r2(run_benched):
    rows = run_benched(lambda: run_lock_discipline_ablation(repetition=2))
    # under FIFO, FT2 is deterministic round-robin: essentially no
    # migrations at r=2 ("FT2 prohibits home migration when the
    # repetition is two")
    assert rows["FT2/fifo"]["migrations"] <= 2
    # retry randomness creates repeat tenures — the paper's "multiple of
    # r" — and FT2 starts firing on them ("individual cases")
    assert rows["FT2/retry"]["migrations"] >= 10 * max(
        rows["FT2/fifo"]["migrations"], 1
    )
    # AT remains the robust protocol under both disciplines: it migrates
    # no more than FT2 does once the randomness is on, with comparable
    # redirection cost
    assert (
        rows["AT/retry"]["migrations"]
        <= 1.5 * rows["FT2/retry"]["migrations"]
    )
    assert rows["AT/retry"]["redir"] <= 1.5 * rows["FT2/retry"]["redir"]
