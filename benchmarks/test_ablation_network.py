"""Ablation — AT's benefit across interconnect generations.

The home access coefficient alpha = 3/2 + (o+d)/(2*m_half) ties the
migration trade-off to each network's half-peak length; migration stays
a clear win on every interconnect even as all communication costs fall.
"""

from repro.bench.ablation import run_network_ablation


def test_migration_helps_on_every_interconnect(run_benched):
    rows = run_benched(run_network_ablation)
    for name, row in rows.items():
        assert row["at_speedup"] > 1.3, (
            f"{name}: AT speedup only {row['at_speedup']:.2f}"
        )
        assert row["migrations"] > 0
    # absolute times shrink with faster networks under both protocols
    assert (
        rows["fast-ethernet"]["at_time_s"]
        > rows["gigabit"]["at_time_s"]
        > rows["myrinet"]["at_time_s"]
    )
