"""Perf-regression gate: throughput within a band of a checked-in baseline.

Two figures of merit, both normalised to rates so they are comparable
across repeats:

* **event-loop throughput** — events/second draining a heap of no-op
  events; the cost floor under every simulation;
* **protocol throughput** — engine events/second of a small pinned
  DSM run (SOR/AT/4), which exercises dispatch, fault-in, diffs and
  barriers together.

Each is compared against ``benchmarks/perf_baseline.json`` with a
±``BAND`` relative band.  Dropping below the band means the hot path
regressed; rising above it means the baseline is stale (e.g. after a
deliberate optimisation PR) and must be re-pinned *in that PR* so the
trajectory stays recorded.

Wall-clock on shared CI runners is noisy — the CI job runs this as a
soft gate (``continue-on-error``), while same-host comparisons (the
BENCH_PR<n>.json reports) are the authoritative perf record.  Re-pin by
running ``PYTHONPATH=src python benchmarks/test_perf_gate.py``.
"""

import json
import time
from pathlib import Path

import pytest

BASELINE_PATH = Path(__file__).with_name("perf_baseline.json")

#: Relative regression band around the pinned baseline.
BAND = 0.35

LOOP_EVENTS = 30_000
REPEATS = 3


def measure_event_loop() -> float:
    """Best-of-``REPEATS`` no-op event throughput (events/second)."""
    from repro.sim.engine import Simulator

    def noop():
        pass

    best = None
    for _ in range(REPEATS):
        sim = Simulator()
        schedule = sim.schedule
        start = time.perf_counter()
        for i in range(LOOP_EVENTS):
            schedule(float(i % 97), noop)
        sim.run()
        wall = time.perf_counter() - start
        best = wall if best is None else min(best, wall)
    return LOOP_EVENTS / best


def measure_protocol() -> float:
    """Best-of-``REPEATS`` engine events/second of a small pinned run."""
    from repro.bench.executor import RunSpec, run_spec

    spec = RunSpec(
        app="sor",
        app_kwargs={"size": 32, "iterations": 10},
        policy="AT",
        nodes=4,
        tag="perf-gate",
        verify=False,
    )
    run_spec(spec)  # warm
    best_rate = 0.0
    for _ in range(REPEATS):
        start = time.perf_counter()
        outcome = run_spec(spec)
        wall = time.perf_counter() - start
        best_rate = max(best_rate, outcome.events_processed / wall)
    return best_rate


def _check(name: str, rate: float, baseline: float) -> None:
    low = baseline * (1.0 - BAND)
    high = baseline * (1.0 + BAND)
    assert rate >= low, (
        f"{name} regressed: {rate:,.0f}/s is below the baseline band "
        f"[{low:,.0f}, {high:,.0f}] (pinned {baseline:,.0f}/s); the hot "
        f"path got slower — profile before merging"
    )
    assert rate <= high, (
        f"{name} at {rate:,.0f}/s exceeds the baseline band "
        f"[{low:,.0f}, {high:,.0f}] (pinned {baseline:,.0f}/s); nice, but "
        f"re-pin benchmarks/perf_baseline.json in this PR so the gate "
        f"keeps teeth (run: PYTHONPATH=src python benchmarks/test_perf_gate.py)"
    )


def _load_baseline(*keys: str) -> dict:
    """The pinned baseline, or a skip when it was never pinned here.

    A missing file or key means the baseline does not exist for this
    checkout (fresh clone pre-pin, partial artifact) — that is "nothing
    to compare against", not a regression, so the gate skips with the
    re-pin instruction instead of erroring.
    """
    if not BASELINE_PATH.exists():
        pytest.skip(
            f"no pinned baseline at {BASELINE_PATH.name}; pin one with "
            f"PYTHONPATH=src python benchmarks/test_perf_gate.py"
        )
    baseline = json.loads(BASELINE_PATH.read_text())
    missing = [key for key in keys if key not in baseline]
    if missing:
        pytest.skip(
            f"{BASELINE_PATH.name} has no {', '.join(missing)} baseline; "
            f"pin it with PYTHONPATH=src python benchmarks/test_perf_gate.py"
        )
    return baseline


def test_event_loop_throughput_within_band():
    baseline = _load_baseline("event_loop_events_per_sec")
    _check(
        "event-loop throughput",
        measure_event_loop(),
        baseline["event_loop_events_per_sec"],
    )


def test_protocol_throughput_within_band():
    baseline = _load_baseline("protocol_events_per_sec")
    _check(
        "protocol throughput",
        measure_protocol(),
        baseline["protocol_events_per_sec"],
    )


def _repin() -> None:
    """Re-measure and rewrite the pinned baseline (run as a script)."""
    import platform

    payload = {
        "event_loop_events_per_sec": measure_event_loop(),
        "protocol_events_per_sec": measure_protocol(),
        "band": BAND,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"pinned: {json.dumps(payload, indent=2)}")


if __name__ == "__main__":
    _repin()
