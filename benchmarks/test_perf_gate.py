"""Perf-regression gate: compiled speedup hard, absolute band soft.

Three figures of merit:

* **compiled-vs-python speedup** — the HARD gate.  Both backends are
  timed in the same process over the same no-op event workload, rounds
  interleaved, so host speed divides out: the ratio is stable even on
  noisy shared runners.  Falling below ``MIN_COMPILED_SPEEDUP`` means
  the compiled kernel stopped pulling its weight (skips with a reason
  when the extension is unavailable, e.g. no C toolchain or
  ``REPRO_BACKEND=python``);
* **event-loop throughput** — events/second draining a heap of no-op
  events; the cost floor under every simulation;
* **protocol throughput** — engine events/second of a small pinned
  DSM run (SOR/AT/4), which exercises dispatch, fault-in, diffs and
  barriers together.

The two absolute rates are compared against
``benchmarks/perf_baseline.json`` with a ±``BAND`` relative band — as a
**soft** check: absolute wall-clock on shared CI runners varies by more
than any sane band, so drift outside it emits a warning rather than
failing the build.  Same-host comparisons (the BENCH_PR<n>.json
reports) are the authoritative perf record.  Re-pin by running
``PYTHONPATH=src python benchmarks/test_perf_gate.py`` (preserves the
``memory_*`` keys pinned by the memory gate).
"""

import json
import time
import warnings
from pathlib import Path

import pytest

BASELINE_PATH = Path(__file__).with_name("perf_baseline.json")

#: Relative drift band around the pinned baseline (soft check).
BAND = 0.35

#: Hard floor on compiled/python event-loop speedup.  The compiled
#: kernel measures ~4-5x on the raw loop; 2x leaves room for allocator
#: and scheduler noise while still catching "the extension degenerated
#: into a Python-speed shim".
MIN_COMPILED_SPEEDUP = 2.0

LOOP_EVENTS = 30_000
REPEATS = 3

#: Interleaved python/compiled rounds for the ratio gate.
RATIO_ROUNDS = 3


def _loop_wall(sim_cls) -> float:
    """Wall seconds to schedule and drain ``LOOP_EVENTS`` no-op events."""

    def noop():
        pass

    sim = sim_cls()
    schedule = sim.schedule
    start = time.perf_counter()
    for i in range(LOOP_EVENTS):
        schedule(float(i % 97), noop)
    sim.run()
    return time.perf_counter() - start


def _backend_classes():
    """(PySimulator, CompiledSimulator), or skip when there is no kernel."""
    from repro import _kernel
    from repro.sim import engine

    kernel_module = _kernel.kernel()
    if kernel_module is None:
        pytest.skip(
            "compiled backend unavailable: "
            f"{_kernel.backend_info()['reason']}"
        )
    compiled_cls = engine.CompiledSimulator or engine._build_compiled_class(
        kernel_module
    )
    return engine.PySimulator, compiled_cls


def measure_backend_ratio() -> float:
    """Best-python-wall / best-compiled-wall, rounds interleaved.

    Interleaving matters: load spikes on a shared host come in
    multi-second epochs, so timing all of one backend then all of the
    other would let a single spike masquerade as a backend difference.
    """
    py_cls, compiled_cls = _backend_classes()
    _loop_wall(py_cls)  # warm both paths (imports, allocator)
    _loop_wall(compiled_cls)
    best_py = best_compiled = None
    for _ in range(RATIO_ROUNDS):
        wall = _loop_wall(py_cls)
        best_py = wall if best_py is None else min(best_py, wall)
        wall = _loop_wall(compiled_cls)
        best_compiled = (
            wall if best_compiled is None else min(best_compiled, wall)
        )
    return best_py / best_compiled


def measure_event_loop() -> float:
    """Best-of-``REPEATS`` no-op event throughput (events/second)."""
    from repro.sim.engine import Simulator

    def noop():
        pass

    best = None
    for _ in range(REPEATS):
        sim = Simulator()
        schedule = sim.schedule
        start = time.perf_counter()
        for i in range(LOOP_EVENTS):
            schedule(float(i % 97), noop)
        sim.run()
        wall = time.perf_counter() - start
        best = wall if best is None else min(best, wall)
    return LOOP_EVENTS / best


def measure_protocol() -> float:
    """Best-of-``REPEATS`` engine events/second of a small pinned run."""
    from repro.bench.executor import RunSpec, run_spec

    spec = RunSpec(
        app="sor",
        app_kwargs={"size": 32, "iterations": 10},
        policy="AT",
        nodes=4,
        tag="perf-gate",
        verify=False,
    )
    run_spec(spec)  # warm
    best_rate = 0.0
    for _ in range(REPEATS):
        start = time.perf_counter()
        outcome = run_spec(spec)
        wall = time.perf_counter() - start
        best_rate = max(best_rate, outcome.events_processed / wall)
    return best_rate


def _check(name: str, rate: float, baseline: float) -> None:
    """Warn (don't fail) when ``rate`` drifts outside the pinned band."""
    from repro import _kernel

    low = baseline * (1.0 - BAND)
    high = baseline * (1.0 + BAND)
    if rate < low:
        warnings.warn(
            f"{name} regressed: {rate:,.0f}/s (backend "
            f"{_kernel.backend_name()}) is below the baseline band "
            f"[{low:,.0f}, {high:,.0f}] (pinned {baseline:,.0f}/s); "
            f"profile on a quiet host before trusting this number",
            stacklevel=2,
        )
    elif rate > high:
        warnings.warn(
            f"{name} at {rate:,.0f}/s (backend {_kernel.backend_name()}) "
            f"exceeds the baseline band [{low:,.0f}, {high:,.0f}] (pinned "
            f"{baseline:,.0f}/s); if this host matches the pin, re-pin "
            f"benchmarks/perf_baseline.json "
            f"(run: PYTHONPATH=src python benchmarks/test_perf_gate.py)",
            stacklevel=2,
        )


def _load_baseline(*keys: str) -> dict:
    """The pinned baseline, or a skip when it was never pinned here.

    A missing file or key means the baseline does not exist for this
    checkout (fresh clone pre-pin, partial artifact) — that is "nothing
    to compare against", not a regression, so the gate skips with the
    re-pin instruction instead of erroring.
    """
    if not BASELINE_PATH.exists():
        pytest.skip(
            f"no pinned baseline at {BASELINE_PATH.name}; pin one with "
            f"PYTHONPATH=src python benchmarks/test_perf_gate.py"
        )
    baseline = json.loads(BASELINE_PATH.read_text())
    missing = [key for key in keys if key not in baseline]
    if missing:
        pytest.skip(
            f"{BASELINE_PATH.name} has no {', '.join(missing)} baseline; "
            f"pin it with PYTHONPATH=src python benchmarks/test_perf_gate.py"
        )
    return baseline


def test_compiled_backend_speedup():
    """HARD gate: compiled kernel must beat pure Python by a clear margin.

    A same-process ratio is immune to host speed, so unlike the absolute
    bands this one is a real assert on every runner that can build the
    extension.
    """
    ratio = measure_backend_ratio()
    assert ratio >= MIN_COMPILED_SPEEDUP, (
        f"compiled event loop is only {ratio:.2f}x the pure-Python one "
        f"(hard floor {MIN_COMPILED_SPEEDUP}x, interleaved best-of-"
        f"{RATIO_ROUNDS}); the kernel hot path regressed"
    )


def test_event_loop_throughput_within_band():
    baseline = _load_baseline("event_loop_events_per_sec")
    _check(
        "event-loop throughput",
        measure_event_loop(),
        baseline["event_loop_events_per_sec"],
    )


def test_protocol_throughput_within_band():
    baseline = _load_baseline("protocol_events_per_sec")
    _check(
        "protocol throughput",
        measure_protocol(),
        baseline["protocol_events_per_sec"],
    )


def _repin() -> None:
    """Re-measure and rewrite the pinned rates (run as a script).

    Merge-preserving: only the perf keys owned by this gate are
    replaced, so the ``memory_*`` keys pinned by the memory gate
    survive a perf re-pin (and vice versa).
    """
    import platform

    from repro import _kernel

    existing = (
        json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else {}
    )
    existing.update(
        {
            "event_loop_events_per_sec": measure_event_loop(),
            "protocol_events_per_sec": measure_protocol(),
            "band": BAND,
            "backend": _kernel.backend_name(),
            "host": {
                "platform": platform.platform(),
                "python": platform.python_version(),
            },
        }
    )
    BASELINE_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"pinned: {json.dumps(existing, indent=2)}")


if __name__ == "__main__":
    _repin()
