"""Ablation — does the home access coefficient alpha matter?

The paper weights the positive feedback E by alpha (the Hockney-model
cost ratio of one eliminated fault-in/diff pair to one redirection).
Replacing it with a constant shows alpha carries real sensitivity: on
the lasting pattern (r=8) the true coefficient keeps migration alive and
wins, while underweighting E progressively degrades AT toward NM.
"""

from repro.apps import SingleWriterBenchmark
from repro.bench.runner import run_once
from repro.core.policies import AdaptiveThreshold

NODES = 9


def _run(fixed_alpha, repetition=8):
    return run_once(
        SingleWriterBenchmark(total_updates=512, repetition=repetition),
        policy=AdaptiveThreshold(fixed_alpha=fixed_alpha),
        nodes=NODES,
    )


def test_true_alpha_beats_underweighted_feedback(run_benched):
    results = run_benched(
        lambda: {
            "hockney": _run(None),
            "alpha=1": _run(1.0),
            "alpha=0.25": _run(0.25),
        }
    )
    true_alpha = results["hockney"]
    assert (
        true_alpha.execution_time_us
        < results["alpha=1"].execution_time_us
    )
    assert (
        results["alpha=1"].execution_time_us
        < results["alpha=0.25"].execution_time_us
    )
    # the degradation mechanism: E undervalued => threshold drifts up =>
    # migration fades
    assert (
        true_alpha.migrations
        > results["alpha=1"].migrations
        > results["alpha=0.25"].migrations
    )