"""Microbenchmarks of telemetry overhead: disabled vs enabled paths.

The observability layer's contract is that *disabled* instrumentation is
free (one ``is not None`` check per site, a separate simulator loop only
entered when a heartbeat is installed).  These benches time the event
loop and one end-to-end DSM operation with telemetry off and on, so a
regression in the guard structure shows up as a disabled-path slowdown.
"""

import io

from repro.cluster.hockney import FAST_ETHERNET
from repro.core.policies import AdaptiveThreshold
from repro.gos.space import GlobalObjectSpace
from repro.gos.thread import ThreadContext
from repro.obs.logging import RunLogger
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator


def _run_10k_events(heartbeat):
    sim = Simulator()
    if heartbeat:
        counter = []
        sim.set_heartbeat(1_000, lambda s: counter.append(s.now))
    for i in range(10_000):
        sim.schedule(float(i % 97), lambda: None)
    return sim.run()


def test_event_loop_no_heartbeat(benchmark):
    """Baseline drain — must match test_microbench's event-loop figure."""
    benchmark(_run_10k_events, False)


def test_event_loop_with_heartbeat(benchmark):
    """Instrumented drain: the price of live progress reporting."""
    benchmark(_run_10k_events, True)


def _dsm_increment_ops(metrics, logger):
    gos = GlobalObjectSpace(
        nnodes=2,
        comm_model=FAST_ETHERNET,
        policy=AdaptiveThreshold(),
        metrics=metrics,
        logger=logger,
    )
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)

    def body():
        ctx = ThreadContext(gos, tid=0, node=1)
        for _ in range(100):
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[0] += 1
            yield from ctx.release(lock)

    gos.sim.spawn(body(), name="bench")
    return gos.sim.run()


def test_dsm_ops_telemetry_off(benchmark):
    """The hot protocol path with every instrument handle None."""
    benchmark(_dsm_increment_ops, None, None)


def test_dsm_ops_telemetry_on(benchmark):
    """The same ops with metrics + debug logging to an in-memory sink."""

    def run():
        return _dsm_increment_ops(
            MetricsRegistry(),
            RunLogger(level="debug", stream=io.StringIO()),
        )

    benchmark(run)
