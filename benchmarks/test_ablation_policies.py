"""Ablation — the paper's protocol vs related-work migration policies.

JUMP's migrating-home follows every writer (§2: "the worst case happens
when the shared page is written by processes sequentially"), Jackal's
lazy flushing caps transitions at five, JiaJia migrates only at barriers.
"""

from repro.bench.ablation import (
    run_barrier_policy_ablation,
    run_policy_ablation,
)


def test_policy_ablation_transient_pattern(run_benched):
    """r=2: the sequential-writer pathology. JUMP keeps chasing writers
    while AT's feedback shuts migration down."""
    rows = run_benched(lambda: run_policy_ablation(repetition=2))
    assert rows["JUMP"]["migrations"] > 5 * max(rows["AT"]["migrations"], 1)
    assert rows["JUMP"]["redir"] > 5 * max(rows["AT"]["redir"], 1)
    # Jackal's cap limits it to five transitions of this object
    assert rows["LF"]["migrations"] <= 5
    # AT is the fastest or tied-fastest protocol on the transient pattern
    best = min(r["time_s"] for r in rows.values())
    assert rows["AT"]["time_s"] <= 1.05 * best


def test_policy_ablation_lasting_pattern(run_benched):
    """r=8: everything that migrates beats NM; AT ties the best."""
    rows = run_benched(lambda: run_policy_ablation(repetition=8))
    for name in ("FT1", "AT", "JUMP"):
        assert rows[name]["time_s"] < rows["NM"]["time_s"]
    best = min(r["time_s"] for r in rows.values())
    assert rows["AT"]["time_s"] <= 1.05 * best


def test_policy_ablation_barrier_apps(run_benched):
    rows = run_benched(lambda: run_barrier_policy_ablation(size=48))
    # all migration policies beat NoMigration on SOR
    for name in ("AT", "JIAJIA"):
        assert rows[name]["time_s"] < rows["NM"]["time_s"]
    # JiaJia piggybacks locations on barriers: zero redirections
    assert rows["JIAJIA"]["redir"] == 0
    # AT and JiaJia land within 25% of each other on this barrier workload
    ratio = rows["AT"]["time_s"] / rows["JIAJIA"]["time_s"]
    assert 0.75 < ratio < 1.25
