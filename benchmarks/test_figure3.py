"""Figure 3 — AT improvement over FT2 vs problem size on 8 nodes (§5.1).

Shape targets: AT never loses on time/messages/traffic for either app;
SOR's improvement grows with the matrix size.
"""

from repro.bench.figure3 import run_figure3

SIZES = (32, 64, 128)


def test_figure3_at_never_loses(run_benched):
    data = run_benched(lambda: run_figure3(sizes=SIZES))
    for app_name in ("ASP", "SOR"):
        for size, vals in data["improvements"][app_name].items():
            assert vals["time"] >= -1.0, (
                f"{app_name}@{size}: AT lost on time ({vals['time']:.1f}%)"
            )
            assert vals["messages"] >= 0.0
            assert vals["traffic"] >= 0.0


def test_figure3_sor_improvement_grows_with_size(run_benched):
    data = run_benched(lambda: run_figure3(sizes=SIZES))
    sor = data["improvements"]["SOR"]
    series = [sor[size]["time"] for size in SIZES]
    assert series[-1] > series[0]


def test_figure3_asp_improvement_positive_everywhere(run_benched):
    data = run_benched(lambda: run_figure3(sizes=SIZES))
    asp = data["improvements"]["ASP"]
    assert all(asp[size]["time"] > 0 for size in SIZES)
