"""Ablation — new-home notification mechanisms (§3.2).

The paper discusses the forwarding-pointer / broadcast / home-manager
trade-off qualitatively; this bench measures it under migration churn on
the synthetic workload, where *every* other node visits the new home each
turn — precisely the case the paper calls out as broadcast's sweet spot
("if after a home migration, all the other nodes need to visit the new
home, then the broadcast mechanism is superior").
"""

from repro.bench.ablation import run_notification_ablation


def test_notification_mechanisms_tradeoff(run_benched):
    rows = run_benched(lambda: run_notification_ablation(repetition=8))
    fp = rows["forwarding-pointer"]
    bc = rows["broadcast"]
    hm = rows["home-manager"]
    # forwarding pointer: no notification traffic, pays redirections
    assert fp["notify_msgs"] == 0
    assert fp["redir"] > 0
    # broadcast: pays notification messages, eliminates redirections
    assert bc["notify_msgs"] > 0
    assert bc["redir"] == 0
    # home manager: posts updates and answers queries; redirection
    # accumulation bounded (one miss resolves via the manager)
    assert hm["notify_msgs"] > 0
    assert hm["redir"] <= fp["redir"]
    # on this all-nodes-visit workload, broadcast is the fastest (§3.2)
    assert bc["time_s"] <= fp["time_s"]
    assert bc["time_s"] <= hm["time_s"]
    # every mechanism kept the protocol functional
    assert fp["migrations"] == bc["migrations"] == hm["migrations"] > 0
