"""Beyond-paper application bench: LU factorisation under home migration.

LU's single-writer phases *end* mid-run (a pivoted row becomes read-only
forever), stressing that the adaptive protocol migrates early, then
leaves the read-shared pivots alone.
"""

from repro.apps import Lu
from repro.bench.runner import run_once


def test_lu_home_migration_benefit(run_benched):
    pair = run_benched(
        lambda: (
            run_once(Lu(size=96), policy="NM", nodes=8),
            run_once(Lu(size=96), policy="AT", nodes=8),
        )
    )
    nm, at = pair
    assert at.execution_time_us < 0.75 * nm.execution_time_us
    assert at.stats.total_messages() < nm.stats.total_messages()
    # one relocation per row at most; no churn on read-shared pivots
    assert 0 < at.migrations <= 96


def test_lu_scales_with_processors(run_benched):
    # LU's triangular work and serial pivot broadcast cap its scalability
    # at these sizes (as on real clusters); 2 -> 4 processors still wins.
    times = run_benched(
        lambda: [
            run_once(Lu(size=160), policy="AT", nodes=p).execution_time_us
            for p in (2, 4)
        ]
    )
    assert times[0] > times[1]
