"""Ablation — sensitivity of AT to the feedback coefficient lambda.

The paper fixes lambda = 1 "to make the home migration threshold be
sensitive enough to the feedback" (§4.2).  Shape target: on the transient
pattern, lambda = 0 (no feedback at all — a frozen T=1 protocol, i.e.
FT1) migrates far more than any feedback-driven setting, and the r=4
behaviour is stable across a wide lambda range — the protocol does not
need fine tuning.
"""

from repro.bench.ablation import run_lambda_ablation


def test_lambda_zero_degenerates_to_ft1(run_benched):
    rows = run_benched(
        lambda: run_lambda_ablation(lambdas=(0.0, 1.0), repetition=2)
    )
    assert rows[0.0]["migrations"] > 5 * max(rows[1.0]["migrations"], 1)
    assert rows[0.0]["redir"] > rows[1.0]["redir"]


def test_lambda_choice_not_critical(run_benched):
    rows = run_benched(
        lambda: run_lambda_ablation(lambdas=(0.5, 1.0, 2.0, 4.0), repetition=4)
    )
    times = [r["time_s"] for r in rows.values()]
    assert max(times) <= 1.15 * min(times)
