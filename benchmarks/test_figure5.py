"""Figure 5 — sensitivity/robustness sweep of NM/FT1/FT2/AT (§5.2).

Shape targets (the paper's four observations):

1. large repetition => home migration wins big (FT1 and AT eliminate most
   object fault-ins and diff propagations);
2. small repetition => migration may not pay off;
3. FT1 is more sensitive than FT2 at every repetition; AT matches FT1 at
   r in {8, 16};
4. fixed thresholds blow up redirections at r in {2, 4}; AT suppresses
   them.
"""

from repro.bench.figure5 import run_figure5

UPDATES = 512


def _sweep():
    return run_figure5(total_updates=UPDATES)


def test_figure5_large_repetition_elimination(run_benched):
    data = run_benched(_sweep)
    b = data["breakdowns"][16]
    nm_traffic = b["NM"]["obj"] + b["NM"]["diff"]
    for proto in ("FT1", "AT"):
        traffic = b[proto]["obj"] + b[proto]["diff"] + b[proto]["mig"]
        assert traffic < 0.2 * nm_traffic


def test_figure5_ft1_more_sensitive_than_ft2(run_benched):
    data = run_benched(_sweep)
    for r in (4, 8, 16):
        b = data["breakdowns"][r]
        assert (
            b["FT1"]["obj"] + b["FT1"]["diff"]
            < b["FT2"]["obj"] + b["FT2"]["diff"]
        )


def test_figure5_at_matches_ft1_at_large_repetition(run_benched):
    data = run_benched(_sweep)
    for r in (8, 16):
        times = data["times"][r]
        assert times["AT"] <= 1.05 * times["FT1"]


def test_figure5_fixed_thresholds_redirect_blowup_at_small_repetition(
    run_benched,
):
    data = run_benched(_sweep)
    for r in (2, 4):
        b = data["breakdowns"][r]
        assert b["FT1"]["redir"] > 4 * max(b["AT"]["redir"], 1)


def test_figure5_at_robust_at_small_repetition(run_benched):
    data = run_benched(_sweep)
    times = data["times"][2]
    assert times["AT"] <= 1.05 * times["NM"]
    assert times["FT1"] > times["NM"]


def test_figure5_normalization_well_formed(run_benched):
    data = run_benched(_sweep)
    for r, bars in data["normalized_times"].items():
        assert max(bars.values()) == 1.0
        assert all(0 < v <= 1.0 for v in bars.values())
