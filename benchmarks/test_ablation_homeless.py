"""Ablation — home-based vs homeless LRC (the paper's §1 motivation).

Shape targets, per [Iftode, HLRC]: the homeless protocol retains diffs at
writers indefinitely (memory accumulation) and needs one fetch round trip
per lagging writer at a fault, while the home-based protocol keeps no
diff history at all and answers every fault with one round trip to the
home.
"""

from repro.bench.ablation import run_homeless_ablation


def test_homeless_accumulates_diff_memory(run_benched):
    rows = run_benched(lambda: run_homeless_ablation(repetition=4))
    assert rows["homeless"]["stored_diff_bytes"] > 0
    assert rows["home-based NM"]["stored_diff_bytes"] == 0
    assert rows["home-based AT"]["stored_diff_bytes"] == 0


def test_homeless_pays_fetch_round_trips(run_benched):
    rows = run_benched(lambda: run_homeless_ablation(repetition=4))
    assert rows["homeless"]["fetch_rtts"] > 0
    assert rows["home-based NM"]["fetch_rtts"] == 0


def test_home_based_at_beats_homeless_on_lasting_pattern(run_benched):
    """Once AT migrates the home to the single writer, updates are free;
    the homeless writer still pays notice gossip and its readers still
    fetch diffs."""
    rows = run_benched(
        lambda: run_homeless_ablation(repetition=16, total_updates=512)
    )
    assert (
        rows["home-based AT"]["time_s"] < rows["homeless"]["time_s"] * 1.5
    )
