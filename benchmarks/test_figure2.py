"""Figure 2 — execution time vs processors, HM vs NoHM (paper §5.1).

Shape targets: HM (the adaptive protocol) substantially beats NoHM on ASP
and SOR, is neutral on NBody and TSP, and times decrease with processors.
"""

import pytest

from repro.apps import Asp, NBody, Sor, Tsp
from repro.bench.figure2 import run_figure2


APPS_QUICK = {
    "ASP": lambda: Asp(size=96),
    "SOR": lambda: Sor(size=96, iterations=8),
    "NBody": lambda: NBody(bodies=96, steps=2),
    "TSP": lambda: Tsp(cities=11),
}


@pytest.mark.parametrize("app_name", list(APPS_QUICK))
def test_figure2_app(run_benched, app_name):
    data = run_benched(
        lambda: run_figure2(
            processor_counts=(2, 4, 8),
            apps={app_name: APPS_QUICK[app_name]},
        )
    )
    times = data["times"][app_name]
    ratio_at_8 = times["HM"][8] / times["NoHM"][8]
    if app_name in ("ASP", "SOR"):
        assert ratio_at_8 < 0.7, f"{app_name}: HM should win big, got {ratio_at_8:.2f}"
    else:
        assert 0.9 < ratio_at_8 < 1.1, (
            f"{app_name}: HM should be neutral, got {ratio_at_8:.2f}"
        )
    # parallelism helps under HM between 2 and 8 processors
    assert times["HM"][8] < times["HM"][2]


def test_figure2_messages_drop_under_hm(run_benched):
    data = run_benched(
        lambda: run_figure2(
            processor_counts=(8,), apps={"SOR": APPS_QUICK["SOR"]}
        )
    )
    messages = data["messages"]["SOR"]
    assert messages["HM"][8] < 0.6 * messages["NoHM"][8]
