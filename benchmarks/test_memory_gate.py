"""Memory-regression gate: peak footprint within a band of a baseline.

The memory analogue of ``test_perf_gate.py``: one pinned large workload
(SOR 256, AT, 16 nodes — the bounded-sharing leg of the PR-4 memory
tier) runs with barrier-epoch GC enabled in an **isolated subprocess**
(``ru_maxrss`` is a process-lifetime high-water mark, so sharing the
pytest process would contaminate it) and two figures of merit are
compared against ``benchmarks/perf_baseline.json``:

* **peak RSS** (``ru_maxrss``, KiB) — what the OS actually had to give
  the run at its worst moment;
* **tracemalloc peak** — peak bytes of Python-traced allocations,
  which excludes interpreter baseline noise and so moves earlier and
  more sharply when protocol state starts accreting.

Exceeding the band means protocol memory state regressed (a leak of
cache entries, twins, notices or arena slabs); dropping below it means
the baseline is stale after a deliberate memory PR and must be
re-pinned in that PR.  RSS on shared CI runners varies with allocator
and interpreter build — the CI job runs this as a soft gate
(``continue-on-error``); same-host BENCH_PR<n>.json reports are the
authoritative record.  Re-pin by running
``PYTHONPATH=src python benchmarks/test_memory_gate.py`` (after
re-pinning the perf baselines, which the script preserves).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

BASELINE_PATH = Path(__file__).with_name("perf_baseline.json")
BENCH_SCRIPT = Path(__file__).parent.parent / "scripts" / "bench_perf.py"

#: Relative band around the pinned memory baselines.  Wider than the
#: throughput band would need to be — RSS includes allocator/arena
#: granularity effects — but tight enough that an un-GC'd ASP-style
#: blowup (≥ +50% RSS at this scale) cannot slip through.
MEM_BAND = 0.35

#: The pinned memory workload (must be a ``LARGE_WORKLOADS`` name in
#: scripts/bench_perf.py).  SOR is the cheaper of the two tier legs.
WORKLOAD = "sor_large_16"


def measure_memory() -> dict:
    """Run the pinned workload in a fresh subprocess; return its leg dict."""
    env = dict(
        os.environ,
        PYTHONPATH=str(Path(__file__).parent.parent / "src"),
    )
    proc = subprocess.run(
        [
            sys.executable,
            str(BENCH_SCRIPT),
            "--memory-leg",
            WORKLOAD,
            "--emit-json",
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def _check(name: str, value: float, baseline: float) -> None:
    low = baseline * (1.0 - MEM_BAND)
    high = baseline * (1.0 + MEM_BAND)
    assert value <= high, (
        f"{name} regressed: {value:,.0f} is above the baseline band "
        f"[{low:,.0f}, {high:,.0f}] (pinned {baseline:,.0f}); protocol "
        f"memory state is accreting — check arena frees, INVALID-entry "
        f"drops and notice-floor pruning before merging"
    )
    assert value >= low, (
        f"{name} at {value:,.0f} is below the baseline band "
        f"[{low:,.0f}, {high:,.0f}] (pinned {baseline:,.0f}); nice, but "
        f"re-pin benchmarks/perf_baseline.json in this PR so the gate "
        f"keeps teeth (run: PYTHONPATH=src python benchmarks/test_memory_gate.py)"
    )


def _load_baseline(*keys: str) -> dict:
    """The pinned baseline, or a skip when it was never pinned here.

    Same contract as the perf gate's loader: an absent file or key is
    "nothing to compare against" (fresh clone, pre-memory-PR baseline),
    not a regression — skip with the re-pin instruction.
    """
    if not BASELINE_PATH.exists():
        pytest.skip(
            f"no pinned baseline at {BASELINE_PATH.name}; pin one with "
            f"PYTHONPATH=src python benchmarks/test_memory_gate.py"
        )
    baseline = json.loads(BASELINE_PATH.read_text())
    missing = [key for key in keys if key not in baseline]
    if missing:
        pytest.skip(
            f"{BASELINE_PATH.name} has no {', '.join(missing)} baseline; "
            f"pin it with PYTHONPATH=src python benchmarks/test_memory_gate.py"
        )
    return baseline


def test_memory_footprint_within_band():
    baseline = _load_baseline(
        "memory_peak_rss_kb", "memory_tracemalloc_peak_bytes"
    )
    leg = measure_memory()
    assert leg["gc_enabled"] is True
    # drained end state is a hard invariant, not a banded one
    assert leg["footprint"]["cache_entries"] == 0
    assert leg["footprint"]["notice_floors"] == 0
    _check(
        "peak RSS (KiB)",
        leg["peak_rss_kb"],
        baseline["memory_peak_rss_kb"],
    )
    _check(
        "tracemalloc peak (bytes)",
        leg["tracemalloc_peak_bytes"],
        baseline["memory_tracemalloc_peak_bytes"],
    )


def _repin() -> None:
    """Re-measure and rewrite the memory baselines (run as a script).

    Preserves every other key in ``perf_baseline.json`` (the throughput
    baselines are re-pinned by ``test_perf_gate.py``).
    """
    leg = measure_memory()
    payload = json.loads(BASELINE_PATH.read_text())
    payload["memory_workload"] = WORKLOAD
    payload["memory_peak_rss_kb"] = leg["peak_rss_kb"]
    payload["memory_tracemalloc_peak_bytes"] = leg["tracemalloc_peak_bytes"]
    payload["memory_band"] = MEM_BAND
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"pinned: {json.dumps(payload, indent=2)}")


if __name__ == "__main__":
    _repin()
