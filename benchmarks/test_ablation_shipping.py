"""Ablation — synchronized method shipping vs home migration.

§5.1 lists both among the GOS optimizations.  Shipping moves the
*computation* to the data (two small messages per update, wherever the
home is); migration moves the *data* to the computation (free updates
once the home arrives, but redirections on the way).  On the lasting
single-writer pattern the two compose: consecutive ships build the same
consecutive-writes chain diffs do, the home migrates to the shipper, and
the remaining ships become free local home writes.
"""

from repro.apps import SingleWriterBenchmark
from repro.bench.runner import run_once

NODES = 9


def _run(policy, use_shipping, repetition=8, updates=512):
    return run_once(
        SingleWriterBenchmark(
            total_updates=updates,
            repetition=repetition,
            use_shipping=use_shipping,
        ),
        policy=policy,
        nodes=NODES,
    )


def test_shipping_beats_faulting_without_migration(run_benched):
    pair = run_benched(
        lambda: (_run("NM", False), _run("NM", True))
    )
    faulting, shipping = pair
    # shipping avoids object fault-ins and diffs entirely
    assert shipping.stats.events.get("ship", 0) > 0
    assert shipping.stats.events["diff"] == 0
    assert shipping.stats.total_bytes() < faulting.stats.total_bytes()
    assert shipping.execution_time_us < faulting.execution_time_us


def test_shipping_composes_with_migration(run_benched):
    pair = run_benched(lambda: (_run("NM", True), _run("AT", True)))
    ship_only, ship_plus_at = pair
    # consecutive ships attract the home; later updates are local
    assert ship_plus_at.migrations > 0
    assert (
        ship_plus_at.stats.events.get("ship", 0)
        < ship_only.stats.events.get("ship", 0)
    )
    assert ship_plus_at.execution_time_us < ship_only.execution_time_us


def test_migration_alone_comparable_to_shipping_on_lasting_pattern(
    run_benched,
):
    pair = run_benched(lambda: (_run("AT", False), _run("AT", True)))
    migrate_only, ship_plus_at = pair
    # both end with local home writes; times land in the same ballpark
    ratio = ship_plus_at.execution_time_us / migrate_only.execution_time_us
    assert 0.5 < ratio < 1.5
