"""Ablation — feedback decay (the paper's §6 future-work heuristic).

A documented *negative result*: on a transient-then-lasting phase change
the paper's cumulative feedback already re-sensitizes quickly (the
positive feedback E grows within a single lasting turn), so decaying the
memory only erodes transient-phase robustness — plain AT stays the best
protocol, and robustness degrades monotonically as the decay sharpens.
"""

from repro.bench.ablation import run_decay_ablation


def test_decay_is_not_an_improvement(run_benched):
    rows = run_benched(run_decay_ablation)
    at = rows["AT"]
    # AT beats or ties every decayed variant on the phase change...
    for label in ("ATD g=0.9", "ATD g=0.5"):
        assert at["time_s"] <= rows[label]["time_s"] * 1.02
        assert at["migrations"] <= rows[label]["migrations"]
    # ...while every adaptive variant still crushes eager FT1
    for label in ("AT", "ATD g=0.9", "ATD g=0.5"):
        assert rows[label]["time_s"] < rows["FT1"]["time_s"]
    # stronger decay => weaker robustness (more migration churn)
    assert rows["ATD g=0.5"]["migrations"] > rows["ATD g=0.9"]["migrations"]
