"""Benchmark-suite configuration.

Every benchmark drives a full simulated-cluster experiment once
(``benchmark.pedantic(..., rounds=1)``): the interesting number is the
*simulated* execution time and message counts the harness returns — the
wall-clock measurement just tracks the harness cost.  Each benchmark also
asserts the paper's qualitative shape on the data it produced, so
``pytest benchmarks/ --benchmark-only`` doubles as a reproduction check.
"""

import pytest


@pytest.fixture
def run_benched(benchmark):
    """Run ``fn`` once under the benchmark timer and return its result."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return runner
