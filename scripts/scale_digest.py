#!/usr/bin/env python
"""Digest-pinned 256-node scale episode (CI hard gate).

One short ASP run at 256 nodes exercising the whole PR-9 feature stack
at once — fat-tree topology with serialized uplink contention, the
k-ary barrier-release relay, and the sharded home-manager directory —
hashed over its deterministic outcome (every `RunOutcome` field except
the wall clock, telemetry and backend name).  The digest is pinned
below; both backends must reproduce it bit for bit, so CI runs this
under ``REPRO_BACKEND=compiled`` as the scale-tier twin of the 4-node
determinism digest in ``tests/test_determinism_digest.py``.

Usage:
    PYTHONPATH=src python scripts/scale_digest.py          # verify (exit 1 on drift)
    PYTHONPATH=src python scripts/scale_digest.py --pin    # print the current digest
"""

import argparse
import hashlib
import json
import sys

from repro.bench.executor import RunSpec, run_spec

#: The pinned episode: every PR-9 scale feature on one 256-node run.
SPEC = RunSpec(
    app="asp",
    app_kwargs={"size": 256},
    policy="AT",
    nodes=256,
    mechanism="home-manager:shards=8",
    topology="fat-tree:edge=16:pod=4:oversub=2:contention=1",
    release_fanout=4,
    verify=True,
    tag="scale-digest",
)

#: sha256 over the canonical JSON of ``run_spec(SPEC).deterministic()``.
#: Behaviour changes to any scale path require an explicit re-pin here.
EXPECTED_DIGEST = (
    "cae4855ae141767984d62db90b2d0600a3f91868e7dcdadc874e5daa9674144f"
)


def episode_digest() -> str:
    outcome = run_spec(SPEC).deterministic()
    blob = json.dumps(outcome, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pin",
        action="store_true",
        help="print the current digest instead of verifying",
    )
    args = parser.parse_args()
    digest = episode_digest()
    if args.pin:
        print(digest)
        return 0
    if digest != EXPECTED_DIGEST:
        print(
            f"scale digest drift:\n  expected {EXPECTED_DIGEST}\n"
            f"  got      {digest}",
            file=sys.stderr,
        )
        return 1
    print(f"scale digest ok: {digest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
