#!/usr/bin/env python
"""Record one span-enabled JSONL trace for the analyze pipeline.

CI uses this to produce the analyze-smoke input under each backend:

    PYTHONPATH=src python scripts/record_trace.py \
        --app asp --size 24 --policy AT --nodes 8 --out trace.jsonl

The run is deterministic, so two invocations with the same arguments
produce byte-identical event lines regardless of backend; only the meta
line (backend name, kernel build hash) differs.
"""

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="asp", help="app registry name")
    parser.add_argument(
        "--size", type=int, default=None,
        help="problem size (app 'size' kwarg); omit for the app default",
    )
    parser.add_argument("--policy", default="AT")
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", required=True, help="trace output path")
    args = parser.parse_args(argv)

    from repro.bench.record import record_trace

    app_kwargs = {} if args.size is None else {"size": args.size}
    outcome = record_trace(
        args.out,
        app=args.app,
        app_kwargs=app_kwargs,
        policy=args.policy,
        nodes=args.nodes,
        seed=args.seed,
    )
    trace = (outcome.telemetry or {}).get("trace") or {}
    print(
        f"recorded {trace.get('events', '?')} events to {args.out} "
        f"(app={args.app}, policy={args.policy}, nodes={args.nodes}, "
        f"backend={outcome.backend})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
