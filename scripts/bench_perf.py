#!/usr/bin/env python
"""Perf trajectory harness: quick sweep at jobs=1 vs jobs=auto vs telemetry.

Runs a fixed, deterministic sweep (a Figure-2-shaped HM/NoHM grid over
ASP and SOR) three times — sequentially, fanned out over all usable
cores, and sequentially with full telemetry enabled (metrics + JSONL
tracing + info logging) — verifies all three produce bit-identical
simulated results, and writes a JSON report with per-run and total
wall-clock, the parallel speedup, single-process event throughput
(engine events per wall-clock second, the single-run hot-path figure of
merit), and the telemetry-on overhead ratio.

Each PR that touches the hot path re-runs this and checks in the result
(``BENCH_PR<n>.json``), so the repo's performance trajectory is recorded
alongside its correctness trajectory.

Usage:
    PYTHONPATH=src python scripts/bench_perf.py [--out BENCH_PR2.json]
"""

import argparse
import json
import os
import platform
import tempfile
import time


def build_sweep():
    """The fixed quick sweep: HM vs NoHM for ASP/SOR over 2..8 nodes."""
    from repro.bench.executor import RunSpec

    specs = []
    for app, kwargs in (
        ("asp", {"size": 128}),
        ("sor", {"size": 128, "iterations": 10}),
    ):
        for policy in ("NM", "AT"):
            for nodes in (2, 4, 8):
                specs.append(
                    RunSpec(
                        app=app,
                        app_kwargs=kwargs,
                        policy=policy,
                        nodes=nodes,
                        tag=(app, policy, nodes),
                    )
                )
    return specs


def run_mode(specs, jobs, obs=None):
    """Execute the sweep at ``jobs`` workers; return (outcomes, wall_s)."""
    from repro.bench.executor import execute

    start = time.perf_counter()
    outcomes = execute(specs, jobs=jobs, obs=obs)
    return outcomes, time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default="BENCH_PR2.json")
    args = parser.parse_args()

    from repro.bench.executor import default_jobs

    specs = build_sweep()
    jobs_auto = default_jobs()
    # Always exercise the real pool path, even on a single-core host
    # (where the ratio honestly comes out ~1x).
    jobs_par = max(2, jobs_auto)

    # Warm caches (imports, numpy) so jobs=1 isn't penalised for going first.
    run_mode(specs[:1], jobs=1)

    seq_outcomes, seq_wall = run_mode(specs, jobs=1)
    par_outcomes, par_wall = run_mode(specs, jobs=jobs_par)

    # Telemetry-on leg: metrics + streamed JSONL traces + info logging,
    # sequentially, into a scratch directory that vanishes afterwards.
    from repro.bench.executor import ObsSpec

    with tempfile.TemporaryDirectory(prefix="bench-obs-") as scratch:
        obs = ObsSpec(
            trace_path=os.path.join(scratch, "trace.jsonl"),
            metrics=True,
            log_level="error",  # level-gated sites active, stderr quiet
        )
        obs_outcomes, obs_wall = run_mode(specs, jobs=1, obs=obs)
        traced_events = sum(
            o.telemetry["trace"]["events"] for o in obs_outcomes
        )

    if [o.deterministic() for o in seq_outcomes] != [
        o.deterministic() for o in par_outcomes
    ]:
        raise SystemExit("FATAL: jobs=1 and jobs=auto results differ")
    if [o.deterministic() for o in seq_outcomes] != [
        o.deterministic() for o in obs_outcomes
    ]:
        raise SystemExit("FATAL: telemetry changed simulated results")

    total_events = sum(o.events_processed for o in seq_outcomes)
    seq_run_wall = sum(o.wall_clock_s for o in seq_outcomes)
    obs_run_wall = sum(o.wall_clock_s for o in obs_outcomes)
    report = {
        "sweep": "figure2-quick (ASP/SOR x NM/AT x 2,4,8 nodes)",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "usable_cores": jobs_auto,
        },
        "runs": [
            {
                "tag": list(o.tag),
                "sim_time_s": o.time_s,
                "engine_events": o.events_processed,
                "wall_s_seq": o.wall_clock_s,
                "wall_s_par": p.wall_clock_s,
            }
            for o, p in zip(seq_outcomes, par_outcomes)
        ],
        "totals": {
            "n_runs": len(specs),
            "engine_events": total_events,
            "jobs_auto": jobs_auto,
            "jobs_parallel": jobs_par,
            "wall_s_jobs1": seq_wall,
            "wall_s_parallel": par_wall,
            "parallel_speedup": seq_wall / par_wall if par_wall else None,
            "events_per_sec_jobs1": total_events / seq_run_wall,
        },
        "telemetry": {
            "instruments": "metrics + JSONL trace + error-gated logging",
            "wall_s_jobs1": obs_wall,
            "overhead_ratio": (
                obs_run_wall / seq_run_wall if seq_run_wall else None
            ),
            "traced_events": traced_events,
        },
        "identical_results": True,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    totals = report["totals"]
    print(
        f"{totals['n_runs']} runs, {total_events} engine events\n"
        f"jobs=1: {seq_wall:.2f}s wall "
        f"({totals['events_per_sec_jobs1']:.0f} events/s single-process)\n"
        f"jobs={jobs_par}: {par_wall:.2f}s wall "
        f"(speedup {totals['parallel_speedup']:.2f}x on "
        f"{jobs_auto} usable core(s))\n"
        f"telemetry on: {obs_wall:.2f}s wall "
        f"({report['telemetry']['overhead_ratio']:.2f}x per-run overhead, "
        f"{traced_events} traced events)\n"
        f"report written to {args.out}"
    )


if __name__ == "__main__":
    main()
