#!/usr/bin/env python
"""Perf trajectory harness: quick sweep at jobs=1 vs jobs=auto vs telemetry.

Runs a fixed, deterministic sweep (a Figure-2-shaped HM/NoHM grid over
ASP and SOR) three times — sequentially, fanned out over all usable
cores, and sequentially with full telemetry enabled (metrics + JSONL
tracing + info logging) — verifies all three produce bit-identical
simulated results, and writes a JSON report with per-run and total
wall-clock, the parallel speedup, single-process event throughput
(engine events per wall-clock second, the single-run hot-path figure of
merit), and the telemetry-on overhead ratio.

Each PR that touches the hot path re-runs this and checks in the result
(``BENCH_PR<n>.json``), so the repo's performance trajectory is recorded
alongside its correctness trajectory.

A second mode (``--pinned``) measures the two pinned single-run
workloads the PR-3 hot-path work is gated on — ASP/NM/8 and SOR/AT/8 —
plus the bare event-loop microbenchmark, best-of-N wall clock each.
``--compare-src DIR`` additionally runs the identical measurements in a
subprocess against an older source tree (e.g. a ``git worktree`` of the
previous PR's commit) and records the before/after walls and the
percentage reduction, so the checked-in report is a same-host,
same-interpreter comparison rather than numbers from two different
machines.

A third mode (``--tier large``) measures the *memory* tier: each large
workload (ASP 512 and SOR 256 at 16 nodes) runs twice in isolated
subprocesses — barrier-epoch GC off, then on — recording peak RSS
(``ru_maxrss``), the tracemalloc peak/current of traced allocations, and
the cluster's arena/GC footprint counters.  Subprocess isolation matters
because ``ru_maxrss`` is a process-lifetime high-water mark: legs must
not share a process or the first leg's peak masks the second's.  The
report records the GC-on vs GC-off reduction percentages plus the
pinned-workload walls, giving the PR-4 memory work the same checked-in
evidence trail the PR-3 hot-path work has.

A fourth mode (``--tier scale``) measures the *scale* tier: one fixed
ASP problem (a 1024x1024 matrix, so per-event work is constant — every
fault moves the same 8 KiB row) strong-scaled over 16/64/256/1024 nodes
under the compiled backend, one isolated subprocess per leg (honest
peak RSS), rounds interleaved across N so a shared-host load epoch
cannot bias one leg.  The report records per-N
engine-event rates, per-event wall overhead relative to the 16-node
reference leg (the large-N protocol paths are meant to keep this flat —
the gate is within 25% at 1024), peak RSS, and one topology-enabled leg
(fat-tree with contention at 256 nodes) so the table shows what the
topology model costs.  ``--max-nodes`` caps the grid: CI's push job stops
at 256; the 1024-node leg runs nightly.

A fifth mode (``--tier serving``) measures the *serving SLO* tier: the
PR-10 request-driven Zipfian workloads (16 nodes on a small fat tree,
256 nodes on the contention-priced PR-9 fat tree, both with churn) in
isolated compiled-backend subprocesses, best-of-N wall each, plus one
pure-Python subprocess per leg that must reproduce the exact SLO-report
digest — so the checked-in throughput numbers carry their own
cross-backend bit-identity evidence.

Usage:
    PYTHONPATH=src python scripts/bench_perf.py [--out BENCH_PR2.json]
    PYTHONPATH=src python scripts/bench_perf.py --pinned \
        [--compare-src .baseline/wt/src] [--out BENCH_PR3.json]
    PYTHONPATH=src python scripts/bench_perf.py --tier large \
        [--out BENCH_PR4.json]
    PYTHONPATH=src python scripts/bench_perf.py --tier scale \
        [--max-nodes 1024] [--out BENCH_PR9.json]
    PYTHONPATH=src python scripts/bench_perf.py --tier serving \
        [--out BENCH_PR10.json]
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

#: The pinned perf-gate workloads (app registry name, constructor kwargs,
#: policy, nodes).  ASP/NM/8 exercises fault-in + diff propagation with no
#: migration; SOR/AT/8 exercises the migration decision path.  The SOR
#: instance is sized so protocol work (not the numpy stencil) dominates:
#: a small grid swept many times maximises events per numpy second, which
#: is what a *simulator* perf gate should be sensitive to.
PINNED_WORKLOADS = {
    "asp_nm_8": {"app": "asp", "app_kwargs": {"size": 128}, "policy": "NM", "nodes": 8},
    "sor_at_8": {
        "app": "sor",
        "app_kwargs": {"size": 64, "iterations": 40},
        "policy": "AT",
        "nodes": 8,
    },
}

#: Events in the bare event-loop microbenchmark.
MICROBENCH_EVENTS = 50_000

#: The large-workload memory tier: big enough that protocol memory state
#: (cached payloads, twins, notice floors) dominates the interpreter
#: baseline, at 16 nodes so per-node caches multiply.  ASP is the
#: all-pairs broadcast pattern (every node eventually caches every row);
#: SOR is the nearest-neighbour pattern (bounded sharing).
LARGE_WORKLOADS = {
    "asp_large_16": {
        "app": "asp",
        "app_kwargs": {"size": 512},
        "policy": "AT",
        "nodes": 16,
    },
    "sor_large_16": {
        "app": "sor",
        "app_kwargs": {"size": 256, "iterations": 30},
        "policy": "AT",
        "nodes": 16,
    },
}


def build_sweep():
    """The fixed quick sweep: HM vs NoHM for ASP/SOR over 2..8 nodes."""
    from repro.bench.executor import RunSpec

    specs = []
    for app, kwargs in (
        ("asp", {"size": 128}),
        ("sor", {"size": 128, "iterations": 10}),
    ):
        for policy in ("NM", "AT"):
            for nodes in (2, 4, 8):
                specs.append(
                    RunSpec(
                        app=app,
                        app_kwargs=kwargs,
                        policy=policy,
                        nodes=nodes,
                        tag=(app, policy, nodes),
                    )
                )
    return specs


def run_mode(specs, jobs, obs=None):
    """Execute the sweep at ``jobs`` workers; return (outcomes, wall_s)."""
    from repro.bench.executor import execute

    start = time.perf_counter()
    outcomes = execute(specs, jobs=jobs, obs=obs)
    return outcomes, time.perf_counter() - start


def measure_pinned(repeats: int) -> dict:
    """Best-of-``repeats`` wall clock for each pinned workload (1 warmup)."""
    from repro.bench.executor import RunSpec, run_spec

    out = {}
    for name, cfg in PINNED_WORKLOADS.items():
        spec = RunSpec(
            app=cfg["app"],
            app_kwargs=cfg["app_kwargs"],
            policy=cfg["policy"],
            nodes=cfg["nodes"],
            tag=name,
            # The gate times the *simulator*; oracle verification is
            # numpy post-processing that would just dilute the signal.
            verify=False,
        )
        run_spec(spec)  # warm imports/caches outside the timed window
        walls = []
        outcome = None
        for _ in range(repeats):
            start = time.perf_counter()
            outcome = run_spec(spec)
            walls.append(time.perf_counter() - start)
        out[name] = {
            "spec": cfg,
            "wall_s_best": min(walls),
            "walls": walls,
            "sim_time_us": outcome.time_us,
            "engine_events": outcome.events_processed,
            "messages": outcome.messages,
        }
    return out


def measure_microbench(repeats: int = 5) -> dict:
    """Bare event-loop throughput: schedule+drain no-op events."""
    from repro.sim.engine import Simulator

    def noop():
        pass

    best = None
    for _ in range(repeats):
        sim = Simulator()
        schedule = sim.schedule
        start = time.perf_counter()
        for i in range(MICROBENCH_EVENTS):
            schedule(float(i % 97), noop)
        sim.run()
        wall = time.perf_counter() - start
        best = wall if best is None else min(best, wall)
    return {
        "events": MICROBENCH_EVENTS,
        "wall_s_best": best,
        "events_per_sec": MICROBENCH_EVENTS / best,
    }


def _cpu_model() -> str | None:
    """The CPU model string, so cross-host drift in checked-in numbers
    (e.g. the 723k -> 429k ev/s slide between PR 3 and PR 5) is
    attributable to hardware rather than mistaken for a regression."""
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or None


def _host() -> dict:
    from repro.bench.executor import default_jobs

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_model": _cpu_model(),
        "cpu_count": os.cpu_count(),
        "usable_cores": default_jobs(),
    }


def _backend_name() -> str:
    from repro import _kernel

    return _kernel.backend_name()


def _merge_measurements(acc: dict | None, cur: dict) -> dict:
    """Fold one measurement round into the best-so-far accumulator."""
    if acc is None:
        return cur
    for name, w in cur["workloads"].items():
        prev = acc["workloads"][name]
        prev["walls"] = prev["walls"] + w["walls"]
        if w["wall_s_best"] < prev["wall_s_best"]:
            prev["wall_s_best"] = w["wall_s_best"]
    if cur["microbench"]["events_per_sec"] > acc["microbench"]["events_per_sec"]:
        acc["microbench"] = cur["microbench"]
    return acc


def _measure_backend_leg(backend: str, repeats: int) -> dict:
    """One pinned+microbench measurement round in a fresh subprocess
    forced onto ``backend`` via ``REPRO_BACKEND`` — the backend is bound
    at import, so a clean interpreter is the only honest way to measure
    the other one."""
    env = dict(os.environ, REPRO_BACKEND=backend)
    proc = subprocess.run(
        [
            sys.executable,
            os.path.abspath(__file__),
            "--pinned",
            "--emit-json",
            "--repeats",
            str(repeats),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def _measure_old_tree(src: str, repeats: int) -> dict:
    """One measurement round against an older tree, same interpreter.

    The subprocess runs THIS script with ``PYTHONPATH`` pointing at the
    old ``src/`` (e.g. a ``git worktree`` of the previous PR's commit)
    and emits its measurements as JSON on stdout.
    """
    env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
    proc = subprocess.run(
        [
            sys.executable,
            os.path.abspath(__file__),
            "--pinned",
            "--emit-json",
            "--repeats",
            str(repeats),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def _memory_leg(workload: str, gc_enabled: bool) -> dict:
    """Run one large workload in THIS process and measure its memory.

    Invoked in a fresh subprocess per leg (``--memory-leg``) so that
    ``ru_maxrss`` — a process-lifetime high-water mark — reflects this
    leg alone.  Returns a JSON-friendly measurement dict including a
    digest of the deterministic results, so the caller can assert GC
    changed memory and nothing else.
    """
    import hashlib
    import resource
    import tracemalloc

    from repro.bench.executor import RunSpec, _make_app, _make_policy
    from repro.bench.runner import make_comm_model, make_mechanism
    from repro.gos.jvm import DistributedJVM

    cfg = LARGE_WORKLOADS[workload]
    spec = RunSpec(
        app=cfg["app"],
        app_kwargs=cfg["app_kwargs"],
        policy=cfg["policy"],
        nodes=cfg["nodes"],
        verify=False,
        gc_enabled=gc_enabled,
        tag=workload,
    )
    app = _make_app(spec)
    jvm = DistributedJVM(
        nodes=spec.nodes,
        comm_model=make_comm_model(spec.comm_model),
        policy=_make_policy(spec),
        mechanism=make_mechanism(spec.mechanism),
        gc_enabled=gc_enabled,
    )
    tracemalloc.start()
    base_current, _ = tracemalloc.get_traced_memory()
    start = time.perf_counter()
    result = jvm.run(app, nthreads=spec.nthreads)
    wall = time.perf_counter() - start
    current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    footprint = result.gos.memory_footprint()
    rusage = resource.getrusage(resource.RUSAGE_SELF)
    digest = hashlib.sha256(
        json.dumps(
            {
                "stats": result.stats.snapshot(),
                "time_us": result.execution_time_us,
                "migrations": result.migrations,
            },
            sort_keys=True,
        ).encode()
    ).hexdigest()
    return {
        "workload": workload,
        "gc_enabled": gc_enabled,
        "wall_s": wall,
        "sim_time_us": result.execution_time_us,
        "engine_events": result.gos.sim.events_processed,
        "peak_rss_kb": rusage.ru_maxrss,  # KiB on Linux
        "tracemalloc_peak_bytes": peak,
        "tracemalloc_end_bytes": current,
        "tracemalloc_delta_bytes": current - base_current,
        "footprint": footprint,
        "result_digest": digest,
    }


def _spawn_memory_leg(workload: str, gc_enabled: bool) -> dict:
    """Run one memory leg in an isolated subprocess; parse its JSON."""
    cmd = [
        sys.executable,
        os.path.abspath(__file__),
        "--memory-leg",
        workload,
        "--emit-json",
    ]
    if not gc_enabled:
        cmd.append("--no-gc")
    proc = subprocess.run(
        cmd, env=os.environ.copy(), capture_output=True, text=True, check=True
    )
    return json.loads(proc.stdout)


#: Node counts of the scale tier (strong scaling over one fixed
#: problem).
SCALE_NODES = (16, 64, 256, 1024)

#: Fixed ASP matrix size shared by every scale leg.  Keeping the
#: problem fixed while N varies keeps the *per-event work* constant
#: (every fault moves a 1024-column row regardless of N), so the
#: per-event wall cost isolates simulator/protocol overhead.  Sizing
#: ASP to N instead would grow the row payload 64x between the 16- and
#: 1024-node legs and the "overhead" ratio would mostly measure
#: memcpy.  The gate: this cost must stay ~flat to 1024 nodes.
SCALE_SIZE = 1024

#: The topology-enabled scale leg: fat-tree with contention at this N,
#: recording what the topology tables cost the compiled hot path.
SCALE_TOPOLOGY_NODES = 256
SCALE_TOPOLOGY = "fat-tree:edge=16:pod=4:oversub=2:contention=1"


def _scale_leg(nodes: int, topology: str | None) -> dict:
    """Run one ASP scale leg in THIS process and measure it.

    Invoked in a fresh subprocess per leg (``--scale-leg``): peak RSS is
    a process-lifetime high-water mark, and the compiled backend must be
    bound fresh.  A tiny throwaway run first warms imports and the
    kernel so the timed window measures the simulator, not start-up.
    """
    import resource

    from repro import _kernel
    from repro.bench.executor import RunSpec, run_spec

    warm = RunSpec(
        app="asp", app_kwargs={"size": 8}, policy="NM", nodes=4, verify=False
    )
    run_spec(warm)
    spec = RunSpec(
        app="asp",
        app_kwargs={"size": SCALE_SIZE},
        policy="NM",
        nodes=nodes,
        verify=False,
        topology=topology,
    )
    start = time.perf_counter()
    outcome = run_spec(spec)
    wall = time.perf_counter() - start
    return {
        "nodes": nodes,
        "topology": topology,
        "backend": _kernel.backend_name(),
        "wall_s": wall,
        "sim_time_us": outcome.time_us,
        "engine_events": outcome.events_processed,
        "messages": outcome.messages,
        "events_per_sec": outcome.events_processed / wall,
        "us_per_event": 1e6 * wall / outcome.events_processed,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def _spawn_scale_leg(nodes: int, topology: str | None) -> dict:
    """Run one scale leg in an isolated compiled-backend subprocess."""
    cmd = [
        sys.executable,
        os.path.abspath(__file__),
        "--tier",
        "scale",
        "--scale-leg",
        str(nodes),
        "--emit-json",
    ]
    if topology:
        cmd += ["--topology", topology]
    env = dict(os.environ, REPRO_BACKEND="compiled")
    proc = subprocess.run(
        cmd, env=env, capture_output=True, text=True, check=True
    )
    return json.loads(proc.stdout)


#: The serving tier (PR-10): request-driven Zipfian traffic with churn
#: under the PR-9 topology fabrics.  The 16-node leg is the CI smoke
#: shape; the 256-node leg stresses the large-N protocol paths with the
#: same per-request work (fixed key record size), so requests/s of wall
#: clock isolates simulator+protocol cost, not payload size.
SERVING_LEGS = {
    "serve_16": {
        "nodes": 16,
        "keys": 64,
        "phases": 4,
        "requests_per_thread": 16,
        "churn": 0.125,
        "policy": "AT",
        "topology": "fat-tree:edge=4:pod=2:oversub=2",
    },
    "serve_256": {
        "nodes": 256,
        "keys": 512,
        "phases": 4,
        "requests_per_thread": 8,
        "churn": 0.125,
        "policy": "AT",
        "topology": "fat-tree:edge=16:pod=4:oversub=2:contention=1",
    },
}


def _serving_leg(name: str) -> dict:
    """Run one serving leg in THIS process and measure it.

    Invoked in a fresh subprocess per leg (``--serving-leg``) so the
    backend binds cleanly per leg.  A tiny throwaway episode warms
    imports and the kernel first; the timed window then covers exactly
    one :func:`repro.bench.serving.run_serving` call — traffic
    expansion, simulation, and online SLO folding together.
    """
    from repro import _kernel
    from repro.apps.serving import ServingSpec
    from repro.bench.serving import report_digest, run_serving

    cfg = SERVING_LEGS[name]
    run_serving(ServingSpec(seed=0, nodes=2, keys=4, phases=1,
                            requests_per_thread=2))
    spec = ServingSpec(seed=0, **cfg)
    start = time.perf_counter()
    report = run_serving(spec)
    wall = time.perf_counter() - start
    tail = report["latency_us"].get("all", {})
    return {
        "leg": name,
        "spec": cfg,
        "backend": _kernel.backend_name(),
        "wall_s": wall,
        "requests": report["requests"],
        "requests_per_wall_s": report["requests"] / wall,
        "sim_time_us": report["sim_time_us"],
        "migrations": report["migrations"],
        "messages": report["messages"],
        "latency_p50_us": tail.get("p50"),
        "latency_p99_us": tail.get("p99"),
        "latency_p999_us": tail.get("p999"),
        "report_digest": report_digest(report),
    }


def _spawn_serving_leg(name: str, backend: str) -> dict:
    """Run one serving leg in an isolated forced-backend subprocess."""
    cmd = [
        sys.executable,
        os.path.abspath(__file__),
        "--tier",
        "serving",
        "--serving-leg",
        name,
        "--emit-json",
    ]
    env = dict(os.environ, REPRO_BACKEND=backend)
    proc = subprocess.run(
        cmd, env=env, capture_output=True, text=True, check=True
    )
    return json.loads(proc.stdout)


def serving_main(args) -> None:
    """``--tier serving``: SLO-tier legs, compiled wall + parity check.

    Each leg's wall clock is best-of-``rounds`` compiled subprocesses;
    one extra pure-Python subprocess per leg must reproduce the exact
    report digest, so the checked-in numbers carry their own
    cross-backend evidence.
    """
    if args.serving_leg:
        json.dump(_serving_leg(args.serving_leg), sys.stdout)
        return

    legs: dict[str, dict] = {}
    rounds = max(1, args.rounds)
    for rnd in range(rounds):
        for name in SERVING_LEGS:
            print(
                f"round {rnd + 1}/{rounds}: {name} compiled leg ...",
                flush=True,
            )
            cur = _spawn_serving_leg(name, "compiled")
            best = legs.get(name)
            if best is None or cur["wall_s"] < best["wall_s"]:
                legs[name] = cur
    for name, leg in legs.items():
        print(f"{name}: python parity leg ...", flush=True)
        py = _spawn_serving_leg(name, "python")
        if py["report_digest"] != leg["report_digest"]:
            raise SystemExit(
                f"FATAL: backends disagree on {name} report digest: "
                f"python={py['report_digest']} "
                f"compiled={leg['report_digest']}"
            )
        leg["python_wall_s"] = py["wall_s"]
        leg["identical_report"] = True

    report = {
        "mode": "serving-tier",
        "host": _host(),
        "backend": legs[next(iter(legs))]["backend"],
        "interleaved_rounds": rounds,
        "legs": legs,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    for name, leg in legs.items():
        print(
            f"{name}: {leg['requests']} requests in {leg['wall_s']:.2f}s "
            f"wall ({leg['requests_per_wall_s']:.0f} req/s), "
            f"p99 {leg['latency_p99_us']:.1f} us (virtual), "
            f"{leg['migrations']} migrations, digest "
            f"{leg['report_digest'][:12]}.. (both backends)"
        )
    print(f"report written to {args.out}")


def scale_main(args) -> None:
    """``--tier scale``: per-N event rates + RSS, interleaved rounds."""
    if args.scale_leg:
        json.dump(
            _scale_leg(int(args.scale_leg), args.topology or None),
            sys.stdout,
        )
        return

    grid = [n for n in SCALE_NODES if n <= args.max_nodes]
    legs: dict[str, dict] = {}
    rounds = max(1, args.rounds)
    for rnd in range(rounds):
        for n in grid:
            print(
                f"round {rnd + 1}/{rounds}: {n}-node leg ...", flush=True
            )
            cur = _spawn_scale_leg(n, None)
            best = legs.get(str(n))
            if best is None or cur["wall_s"] < best["wall_s"]:
                legs[str(n)] = cur
        if SCALE_TOPOLOGY_NODES <= args.max_nodes:
            key = f"{SCALE_TOPOLOGY_NODES}_topology"
            print(
                f"round {rnd + 1}/{rounds}: {SCALE_TOPOLOGY_NODES}-node "
                f"topology leg ...",
                flush=True,
            )
            cur = _spawn_scale_leg(SCALE_TOPOLOGY_NODES, SCALE_TOPOLOGY)
            best = legs.get(key)
            if best is None or cur["wall_s"] < best["wall_s"]:
                legs[key] = cur

    reference = legs[str(grid[0])]
    overhead = {
        key: leg["us_per_event"] / reference["us_per_event"]
        for key, leg in legs.items()
    }
    report = {
        "mode": "scale-tier",
        "host": _host(),
        "backend": reference["backend"],
        "interleaved_rounds": rounds,
        "workload": f"asp size={SCALE_SIZE} (fixed problem, strong "
        "scaling over N), NM",
        "topology_leg": SCALE_TOPOLOGY,
        "legs": legs,
        "reference_nodes": grid[0],
        "per_event_overhead_vs_reference": overhead,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    for key, leg in legs.items():
        print(
            f"N={key}: {leg['wall_s']:.2f}s wall, "
            f"{leg['engine_events']} events "
            f"({leg['events_per_sec']:.0f} ev/s, "
            f"{leg['us_per_event']:.3f} us/ev, "
            f"{overhead[key]:.2f}x vs N={grid[0]}), "
            f"peak RSS {leg['peak_rss_kb']} KiB"
        )
    print(f"report written to {args.out}")


def large_main(args) -> None:
    """``--tier large``: the memory tier — GC-off vs GC-on legs per
    workload in isolated subprocesses, plus the pinned walls."""
    if args.memory_leg:
        json.dump(_memory_leg(args.memory_leg, not args.no_gc), sys.stdout)
        return

    workloads = {}
    for name in LARGE_WORKLOADS:
        print(f"{name}: measuring gc-off leg ...", flush=True)
        no_gc = _spawn_memory_leg(name, gc_enabled=False)
        print(f"{name}: measuring gc-on leg ...", flush=True)
        gc_on = _spawn_memory_leg(name, gc_enabled=True)
        if no_gc["result_digest"] != gc_on["result_digest"]:
            raise SystemExit(
                f"FATAL: GC changed simulated results for {name}"
            )
        workloads[name] = {
            "spec": LARGE_WORKLOADS[name],
            "no_gc": no_gc,
            "gc": gc_on,
            "reduction": {
                "peak_rss_pct": 100.0
                * (1.0 - gc_on["peak_rss_kb"] / no_gc["peak_rss_kb"]),
                "tracemalloc_peak_pct": 100.0
                * (
                    1.0
                    - gc_on["tracemalloc_peak_bytes"]
                    / no_gc["tracemalloc_peak_bytes"]
                ),
                "cache_payload_pct": 100.0
                * (
                    1.0
                    - gc_on["footprint"]["cache_payload_bytes"]
                    / max(1, no_gc["footprint"]["cache_payload_bytes"])
                ),
            },
            "identical_results": True,
        }

    report = {
        "mode": "large-memory-tier",
        "host": _host(),
        "backend": _backend_name(),
        "workloads": workloads,
        "pinned": measure_pinned(args.repeats),
        "microbench": measure_microbench(3),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    for name, entry in workloads.items():
        red = entry["reduction"]
        print(
            f"{name}: peak RSS {entry['no_gc']['peak_rss_kb']} -> "
            f"{entry['gc']['peak_rss_kb']} KiB "
            f"({red['peak_rss_pct']:.1f}% lower with GC), "
            f"tracemalloc peak {red['tracemalloc_peak_pct']:.1f}% lower, "
            f"live cache payload {red['cache_payload_pct']:.1f}% lower"
        )
    for name, w in report["pinned"].items():
        print(f"{name}: {w['wall_s_best']:.4f}s best of {args.repeats}")
    print(f"report written to {args.out}")


def backends_main(args) -> None:
    """``--compare-backends``: compiled vs pure-Python, interleaved rounds.

    The compiled legs run in this process (which must therefore be on the
    compiled backend); the python legs run the identical measurement in
    ``REPRO_BACKEND=python`` subprocesses.  Rounds alternate so shared-host
    load epochs cannot bias one side, exactly like ``--compare-src``.
    Deterministic outcome fields (simulated time, engine events, message
    count) must agree across backends or the run aborts.
    """
    from repro import _kernel

    if _kernel.backend_name() != "compiled":
        raise SystemExit(
            "FATAL: --compare-backends needs this process on the compiled "
            f"backend, but it is on {_kernel.backend_name()!r} "
            f"({_kernel.backend_info()['reason']})"
        )

    rounds = max(1, args.rounds)
    py = comp = None
    for rnd in range(rounds):
        print(f"round {rnd + 1}/{rounds}: python leg ...", flush=True)
        py = _merge_measurements(
            py, _measure_backend_leg("python", args.repeats)
        )
        print(f"round {rnd + 1}/{rounds}: compiled leg ...", flush=True)
        comp = _merge_measurements(
            comp,
            {
                "backend": "compiled",
                "workloads": measure_pinned(args.repeats),
                "microbench": measure_microbench(3),
            },
        )

    if py.get("backend") != "python":
        raise SystemExit(
            "FATAL: python leg subprocess reported backend "
            f"{py.get('backend')!r}"
        )
    for name in PINNED_WORKLOADS:
        a, b = py["workloads"][name], comp["workloads"][name]
        for field in ("sim_time_us", "engine_events", "messages"):
            if a[field] != b[field]:
                raise SystemExit(
                    f"FATAL: backends disagree on {name}.{field}: "
                    f"python={a[field]} compiled={b[field]}"
                )

    speedup = {
        name: {
            "python_wall_s": py["workloads"][name]["wall_s_best"],
            "compiled_wall_s": comp["workloads"][name]["wall_s_best"],
            "speedup": py["workloads"][name]["wall_s_best"]
            / comp["workloads"][name]["wall_s_best"],
        }
        for name in PINNED_WORKLOADS
    }
    micro_py = py["microbench"]["events_per_sec"]
    micro_comp = comp["microbench"]["events_per_sec"]
    speedup["microbench"] = {
        "python_events_per_sec": micro_py,
        "compiled_events_per_sec": micro_comp,
        "speedup": micro_comp / micro_py,
    }

    report = {
        "mode": "compare-backends",
        "host": _host(),
        "backend": "compiled",
        "kernel": _kernel.backend_info(),
        "interleaved_rounds": rounds,
        "repeats": args.repeats,
        "python": py,
        "compiled": comp,
        "speedup": speedup,
        "identical_results": True,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    for name, entry in speedup.items():
        if name == "microbench":
            continue
        print(
            f"{name}: {entry['python_wall_s']:.4f}s python -> "
            f"{entry['compiled_wall_s']:.4f}s compiled "
            f"({entry['speedup']:.2f}x)"
        )
    micro = speedup["microbench"]
    print(
        f"event loop: {micro['python_events_per_sec']:.0f} -> "
        f"{micro['compiled_events_per_sec']:.0f} events/s "
        f"({micro['speedup']:.2f}x)"
    )
    print(f"report written to {args.out}")


def pinned_main(args) -> None:
    """``--pinned``: measure the gate workloads, optionally vs an old tree."""
    if args.emit_json:
        json.dump(
            {
                "backend": _backend_name(),
                "workloads": measure_pinned(args.repeats),
                "microbench": measure_microbench(3),
            },
            sys.stdout,
        )
        return

    if not args.compare_src:
        measured = {
            "workloads": measure_pinned(args.repeats),
            "microbench": measure_microbench(),
        }
        before = None
    else:
        # Interleave old-tree and new-tree rounds: wall-clock noise on a
        # shared host comes in multi-second epochs, so measuring all of
        # "before" then all of "after" would let one load spike bias the
        # comparison.  Alternating short rounds and taking the best of
        # each side cancels the drift.
        before = after = None
        for _ in range(max(1, args.rounds)):
            before = _merge_measurements(
                before, _measure_old_tree(args.compare_src, args.repeats)
            )
            after = _merge_measurements(
                after,
                {
                    "workloads": measure_pinned(args.repeats),
                    "microbench": measure_microbench(3),
                },
            )
        measured = after

    report = {
        "mode": "pinned",
        "host": _host(),
        "backend": _backend_name(),
        "workloads": measured["workloads"],
        "microbench": measured["microbench"],
    }
    if before is not None:
        report["baseline"] = {"src": args.compare_src, **before}
        report["reduction"] = {}
        for name, after in report["workloads"].items():
            old_wall = before["workloads"][name]["wall_s_best"]
            new_wall = after["wall_s_best"]
            report["reduction"][name] = {
                "before_s": old_wall,
                "after_s": new_wall,
                "reduction_pct": 100.0 * (1.0 - new_wall / old_wall),
            }
        old_rate = before["microbench"]["events_per_sec"]
        new_rate = report["microbench"]["events_per_sec"]
        report["reduction"]["microbench"] = {
            "before_events_per_sec": old_rate,
            "after_events_per_sec": new_rate,
            "speedup": new_rate / old_rate,
        }

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    for name, w in report["workloads"].items():
        line = f"{name}: {w['wall_s_best']:.4f}s best of {args.repeats}"
        if "reduction" in report and name in report["reduction"]:
            line += f" ({report['reduction'][name]['reduction_pct']:.1f}% vs baseline)"
        print(line)
    print(
        f"event loop: {report['microbench']['events_per_sec']:.0f} events/s"
    )
    print(f"report written to {args.out}")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--out",
        default=None,
        help="report path (default: BENCH_PR6.json for --compare-backends, "
        "BENCH_PR2.json otherwise)",
    )
    parser.add_argument(
        "--pinned",
        action="store_true",
        help="measure the pinned perf-gate workloads instead of the sweep",
    )
    parser.add_argument(
        "--compare-backends",
        action="store_true",
        help="measure the pinned workloads + event-loop microbench under "
        "the compiled backend (this process) vs pure-Python (subprocess), "
        "interleaved rounds",
    )
    parser.add_argument(
        "--compare-src",
        default=None,
        metavar="DIR",
        help="also measure an older source tree (its src/ dir) for comparison",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-friendly sizing: fewest repeats/rounds that still produce "
        "a best-of measurement (shared runners are too noisy for the "
        "extra repeats to buy signal; same-host runs should use the "
        "defaults)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repeats per workload (default 5, or 2 with --quick)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="interleaved old/new measurement rounds for --compare-src "
        "(default 3, or 1 with --quick)",
    )
    parser.add_argument(
        "--emit-json",
        action="store_true",
        help=argparse.SUPPRESS,  # internal: used for the --compare-src subprocess
    )
    parser.add_argument(
        "--tier",
        choices=("quick", "large", "scale", "serving"),
        default="quick",
        help="'large' runs the memory tier (GC-off vs GC-on subprocesses); "
        "'scale' runs the 16..1024-node event-rate tier (compiled backend, "
        "one subprocess per leg); 'serving' runs the SLO tier (16- and "
        "256-node Zipfian request legs with cross-backend digest checks)",
    )
    parser.add_argument(
        "--memory-leg",
        default=None,
        help=argparse.SUPPRESS,  # internal: one isolated memory measurement
    )
    parser.add_argument(
        "--scale-leg",
        default=None,
        help=argparse.SUPPRESS,  # internal: one isolated scale measurement
    )
    parser.add_argument(
        "--serving-leg",
        default=None,
        help=argparse.SUPPRESS,  # internal: one isolated serving measurement
    )
    parser.add_argument(
        "--topology",
        default=None,
        help=argparse.SUPPRESS,  # internal: topology spec for --scale-leg
    )
    parser.add_argument(
        "--max-nodes",
        type=int,
        default=1024,
        help="largest scale-tier leg (CI push jobs stop at 256; the "
        "1024-node leg runs nightly)",
    )
    parser.add_argument(
        "--no-gc",
        action="store_true",
        help="disable barrier-epoch memory GC (memory-ablation leg)",
    )
    args = parser.parse_args()
    if args.repeats is None:
        args.repeats = 2 if args.quick else 5
    if args.rounds is None:
        args.rounds = 1 if args.quick else 3
    if args.out is None:
        if args.compare_backends:
            args.out = "BENCH_PR6.json"
        elif args.tier == "scale":
            args.out = "BENCH_PR9.json"
        elif args.tier == "serving":
            args.out = "BENCH_PR10.json"
        else:
            args.out = "BENCH_PR2.json"
    if args.compare_backends:
        backends_main(args)
        return
    if args.tier == "serving" or args.serving_leg:
        serving_main(args)
        return
    if args.tier == "scale" or args.scale_leg:
        scale_main(args)
        return
    if args.tier == "large" or args.memory_leg:
        large_main(args)
        return
    if args.pinned:
        pinned_main(args)
        return

    from repro.bench.executor import default_jobs

    specs = build_sweep()
    jobs_auto = default_jobs()
    # Always exercise the real pool path, even on a single-core host
    # (where the ratio honestly comes out ~1x).
    jobs_par = max(2, jobs_auto)

    # Warm caches (imports, numpy) so jobs=1 isn't penalised for going first.
    run_mode(specs[:1], jobs=1)

    seq_outcomes, seq_wall = run_mode(specs, jobs=1)
    par_outcomes, par_wall = run_mode(specs, jobs=jobs_par)

    # Telemetry-on leg: metrics + streamed JSONL traces + info logging,
    # sequentially, into a scratch directory that vanishes afterwards.
    from repro.bench.executor import ObsSpec

    with tempfile.TemporaryDirectory(prefix="bench-obs-") as scratch:
        obs = ObsSpec(
            trace_path=os.path.join(scratch, "trace.jsonl"),
            metrics=True,
            log_level="error",  # level-gated sites active, stderr quiet
        )
        obs_outcomes, obs_wall = run_mode(specs, jobs=1, obs=obs)
        traced_events = sum(
            o.telemetry["trace"]["events"] for o in obs_outcomes
        )

    if [o.deterministic() for o in seq_outcomes] != [
        o.deterministic() for o in par_outcomes
    ]:
        raise SystemExit("FATAL: jobs=1 and jobs=auto results differ")
    if [o.deterministic() for o in seq_outcomes] != [
        o.deterministic() for o in obs_outcomes
    ]:
        raise SystemExit("FATAL: telemetry changed simulated results")

    total_events = sum(o.events_processed for o in seq_outcomes)
    seq_run_wall = sum(o.wall_clock_s for o in seq_outcomes)
    obs_run_wall = sum(o.wall_clock_s for o in obs_outcomes)
    report = {
        "sweep": "figure2-quick (ASP/SOR x NM/AT x 2,4,8 nodes)",
        "host": {**_host(), "usable_cores": jobs_auto},
        "backend": _backend_name(),
        "runs": [
            {
                "tag": list(o.tag),
                "sim_time_s": o.time_s,
                "engine_events": o.events_processed,
                "wall_s_seq": o.wall_clock_s,
                "wall_s_par": p.wall_clock_s,
            }
            for o, p in zip(seq_outcomes, par_outcomes)
        ],
        "totals": {
            "n_runs": len(specs),
            "engine_events": total_events,
            "jobs_auto": jobs_auto,
            "jobs_parallel": jobs_par,
            "wall_s_jobs1": seq_wall,
            "wall_s_parallel": par_wall,
            # The headline ratio, named for what it is: sequential wall
            # over parallel wall.  (``parallel_speedup`` kept as an alias
            # for readers of the PR-2 report format.)
            "speedup": seq_wall / par_wall if par_wall else None,
            "parallel_speedup": seq_wall / par_wall if par_wall else None,
            "events_per_sec_jobs1": total_events / seq_run_wall,
        },
        "telemetry": {
            "instruments": "metrics + JSONL trace + error-gated logging",
            "wall_s_jobs1": obs_wall,
            "overhead_ratio": (
                obs_run_wall / seq_run_wall if seq_run_wall else None
            ),
            "traced_events": traced_events,
        },
        "identical_results": True,
    }
    if jobs_auto == 1:
        report["totals"]["note"] = (
            "single usable core: the worker pool adds process overhead "
            "with no real concurrency, so speedup ~1x (or below) is the "
            "honest expectation on this host"
        )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    totals = report["totals"]
    print(
        f"{totals['n_runs']} runs, {total_events} engine events\n"
        f"jobs=1: {seq_wall:.2f}s wall "
        f"({totals['events_per_sec_jobs1']:.0f} events/s single-process)\n"
        f"jobs={jobs_par}: {par_wall:.2f}s wall "
        f"(speedup {totals['parallel_speedup']:.2f}x on "
        f"{jobs_auto} usable core(s))\n"
        f"telemetry on: {obs_wall:.2f}s wall "
        f"({report['telemetry']['overhead_ratio']:.2f}x per-run overhead, "
        f"{traced_events} traced events)\n"
        f"report written to {args.out}"
    )


if __name__ == "__main__":
    main()
