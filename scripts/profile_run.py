#!/usr/bin/env python
"""Maintainer tool: profile the simulation harness on a representative run.

The guides' rule — no optimization without measuring — applied to the
harness itself.  Profiles one ASP run (the heaviest figure workload) with
cProfile and prints the top functions by cumulative and internal time,
so hot-path regressions in the engine/protocol are easy to localise.

Usage:
    python scripts/profile_run.py [--size N] [--nodes P] [--top K]
"""

import argparse
import cProfile
import pstats


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--size", type=int, default=256)
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--top", type=int, default=20)
    args = parser.parse_args()

    from repro.apps import Asp
    from repro.bench.runner import run_once

    profiler = cProfile.Profile()
    profiler.enable()
    result = run_once(Asp(size=args.size), policy="AT", nodes=args.nodes)
    profiler.disable()

    print(
        f"ASP({args.size}) on {args.nodes} nodes: simulated "
        f"{result.execution_time_s:.2f}s, "
        f"{result.stats.total_messages()} messages, "
        f"{result.gos.sim.events_processed} engine events\n"
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    print("=== top by cumulative time ===")
    stats.print_stats(args.top)
    stats.sort_stats("tottime")
    print("=== top by internal time ===")
    stats.print_stats(args.top)


if __name__ == "__main__":
    main()
