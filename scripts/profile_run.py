#!/usr/bin/env python
"""Maintainer tool: profile the simulation harness on a representative run.

The guides' rule — no optimization without measuring — applied to the
harness itself.  Profiles one application run (ASP, the heaviest figure
workload, by default) with cProfile and prints the top functions by
cumulative and internal time, so hot-path regressions in the
engine/protocol are easy to localise.  ``--save PATH`` additionally dumps
the raw pstats file, so profiles can be diffed across PRs with
``pstats.Stats(path_a, path_b)`` or snakeviz.

``--memory`` switches the profiler from cProfile to tracemalloc: the run
executes under allocation tracing and the report is the top source lines
by residual allocated bytes at run end — the where-does-the-memory-live
view that motivated the arena/GC work.  ``--save PATH`` then writes the
text report (default: ``results/profiles/memory-<app>-<size>.txt``).

Usage:
    python scripts/profile_run.py [--app {asp,sor,nbody,tsp}] [--size N]
                                  [--policy NAME] [--nodes P] [--top K]
                                  [--save PATH] [--memory] [--no-gc]
"""

import argparse
import cProfile
import os
import pstats


def make_app(name: str, size: int):
    """Instantiate the selected profiling workload at ``size``."""
    from repro.apps import Asp, NBody, Sor, Tsp

    if name == "asp":
        return Asp(size=size)
    if name == "sor":
        return Sor(size=size, iterations=10)
    if name == "nbody":
        return NBody(bodies=size, steps=3)
    if name == "tsp":
        return Tsp(cities=min(size, 12))
    raise ValueError(f"unknown app {name!r}")


def memory_profile(app, args) -> None:
    """Run ``app`` under tracemalloc and report top allocation sites.

    Builds the JVM directly (instead of ``run_once``) so the ``--no-gc``
    contrast leg can disable barrier-epoch memory GC.
    """
    import tracemalloc

    from repro.cluster.hockney import FAST_ETHERNET
    from repro.core.policies import AdaptiveThreshold
    from repro.dsm.redirection import ForwardingPointerMechanism
    from repro.gos.jvm import DistributedJVM

    jvm = DistributedJVM(
        nodes=args.nodes,
        comm_model=FAST_ETHERNET,
        policy=AdaptiveThreshold(),
        mechanism=ForwardingPointerMechanism(),
        gc_enabled=not args.no_gc,
    )
    tracemalloc.start(25)
    result = jvm.run(app)
    current, peak = tracemalloc.get_traced_memory()
    snapshot = tracemalloc.take_snapshot()
    tracemalloc.stop()

    lines = [
        f"memory profile: {args.app}({args.size}) under AT on "
        f"{args.nodes} nodes (gc {'off' if args.no_gc else 'on'})",
        f"simulated {result.execution_time_s:.2f}s, "
        f"{result.stats.total_messages()} messages, "
        f"{result.gos.sim.events_processed} engine events",
        f"tracemalloc: peak {peak / 1e6:.2f} MB, residual {current / 1e6:.2f} MB",
    ]
    footprint = getattr(result.gos, "memory_footprint", None)
    if footprint is not None:
        fp = footprint()
        arena = fp["arena"]
        lines += [
            f"arena: live {arena['live_bytes'] / 1e6:.2f} MB in "
            f"{arena['slabs']} slabs, pooled {arena['pooled_buffers']} "
            f"buffers ({arena['pooled_bytes'] / 1e6:.2f} MB), "
            f"{arena['carves']} carves / {arena['reuses']} reuses",
            f"end state: {fp['cache_entries']} cache entries "
            f"({fp['cache_payload_bytes'] / 1e6:.2f} MB payloads), "
            f"{fp['notice_floors']} notice floors; "
            f"gc dropped {fp['gc_cache_drops']} entries, "
            f"pruned {fp['gc_notice_prunes']} floors",
            f"peaks: {fp['peaks']}",
        ]
    lines.append("")
    lines.append(f"=== top {args.top} source lines by residual bytes ===")
    for stat in snapshot.statistics("lineno")[: args.top]:
        frame = stat.traceback[0]
        lines.append(
            f"{stat.size / 1e3:>10.1f} KB  {stat.count:>7d} blocks  "
            f"{frame.filename}:{frame.lineno}"
        )
    report = "\n".join(lines) + "\n"
    print(report)

    save = args.save or os.path.join(
        "results", "profiles", f"memory-{args.app}-{args.size}.txt"
    )
    os.makedirs(os.path.dirname(save) or ".", exist_ok=True)
    with open(save, "w") as fh:
        fh.write(report)
    print(f"report written to {save}")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--app", choices=("asp", "sor", "nbody", "tsp"), default="asp",
        help="workload to profile (default: asp, the heaviest figure app)",
    )
    parser.add_argument("--size", type=int, default=256)
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument(
        "--policy", default="AT",
        help="migration policy report name (NM/FT1/FT2/AT/JUMP/LF/JIAJIA)",
    )
    parser.add_argument("--top", type=int, default=20)
    parser.add_argument(
        "--save", metavar="PATH",
        help="dump the raw pstats file (or the --memory text report)",
    )
    parser.add_argument(
        "--memory", action="store_true",
        help="profile allocations with tracemalloc instead of time",
    )
    parser.add_argument(
        "--no-gc", action="store_true",
        help="disable barrier-epoch memory GC (contrast leg for --memory)",
    )
    parser.add_argument(
        "--backend", choices=("auto", "python", "compiled"), default="auto",
        help="simulation backend (auto picks the compiled kernel when it "
        "builds; python profiles the pure-Python hot path)",
    )
    args = parser.parse_args()

    from repro import _kernel

    if args.backend != "auto":
        try:
            _kernel.select_backend(args.backend)
        except RuntimeError as exc:
            parser.error(str(exc))
    print(f"backend: {_kernel.backend_name()}")

    app = make_app(args.app, args.size)
    if args.memory:
        memory_profile(app, args)
        return

    from repro.bench.runner import run_once

    profiler = cProfile.Profile()
    profiler.enable()
    result = run_once(app, policy=args.policy, nodes=args.nodes)
    profiler.disable()

    print(
        f"{args.app}({args.size}) under {args.policy} on {args.nodes} nodes: "
        f"simulated {result.execution_time_s:.2f}s, "
        f"{result.stats.total_messages()} messages, "
        f"{result.gos.sim.events_processed} engine events\n"
    )
    stats = pstats.Stats(profiler)
    if args.save:
        stats.dump_stats(args.save)
        print(f"raw pstats written to {args.save}\n")
    stats.sort_stats("cumulative")
    print("=== top by cumulative time ===")
    stats.print_stats(args.top)
    stats.sort_stats("tottime")
    print("=== top by internal time ===")
    stats.print_stats(args.top)


if __name__ == "__main__":
    main()
