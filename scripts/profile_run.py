#!/usr/bin/env python
"""Maintainer tool: profile the simulation harness on a representative run.

The guides' rule — no optimization without measuring — applied to the
harness itself.  Profiles one application run (ASP, the heaviest figure
workload, by default) with cProfile and prints the top functions by
cumulative and internal time, so hot-path regressions in the
engine/protocol are easy to localise.  ``--save PATH`` additionally dumps
the raw pstats file, so profiles can be diffed across PRs with
``pstats.Stats(path_a, path_b)`` or snakeviz.

Usage:
    python scripts/profile_run.py [--app {asp,sor,nbody,tsp}] [--size N]
                                  [--policy NAME] [--nodes P] [--top K]
                                  [--save PATH]
"""

import argparse
import cProfile
import pstats


def make_app(name: str, size: int):
    """Instantiate the selected profiling workload at ``size``."""
    from repro.apps import Asp, NBody, Sor, Tsp

    if name == "asp":
        return Asp(size=size)
    if name == "sor":
        return Sor(size=size, iterations=10)
    if name == "nbody":
        return NBody(bodies=size, steps=3)
    if name == "tsp":
        return Tsp(cities=min(size, 12))
    raise ValueError(f"unknown app {name!r}")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--app", choices=("asp", "sor", "nbody", "tsp"), default="asp",
        help="workload to profile (default: asp, the heaviest figure app)",
    )
    parser.add_argument("--size", type=int, default=256)
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument(
        "--policy", default="AT",
        help="migration policy report name (NM/FT1/FT2/AT/JUMP/LF/JIAJIA)",
    )
    parser.add_argument("--top", type=int, default=20)
    parser.add_argument(
        "--save", metavar="PATH",
        help="dump the raw pstats file for diffing across PRs",
    )
    args = parser.parse_args()

    from repro.bench.runner import run_once

    app = make_app(args.app, args.size)
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_once(app, policy=args.policy, nodes=args.nodes)
    profiler.disable()

    print(
        f"{args.app}({args.size}) under {args.policy} on {args.nodes} nodes: "
        f"simulated {result.execution_time_s:.2f}s, "
        f"{result.stats.total_messages()} messages, "
        f"{result.gos.sim.events_processed} engine events\n"
    )
    stats = pstats.Stats(profiler)
    if args.save:
        stats.dump_stats(args.save)
        print(f"raw pstats written to {args.save}\n")
    stats.sort_stats("cumulative")
    print("=== top by cumulative time ===")
    stats.print_stats(args.top)
    stats.sort_stats("tottime")
    print("=== top by internal time ===")
    stats.print_stats(args.top)


if __name__ == "__main__":
    main()
