"""Tests for the home access coefficient (Appendix A)."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.hockney import FAST_ETHERNET, HockneyModel
from repro.core.coefficient import (
    home_access_coefficient,
    home_access_coefficient_for_model,
)


def _exact_ratio(o, d, model):
    """The first-principles definition: eliminated pair over one redirect."""
    pair = model.latency_us(1) + model.latency_us(o) + model.latency_us(d)
    redirect = 2 * model.latency_us(1)
    return pair / redirect


def test_matches_first_principles_ratio():
    model = HockneyModel(startup_us=100.0, bandwidth_mb_s=11.5)
    for o, d in [(24, 24), (8208, 4000), (1000, 10)]:
        alpha = home_access_coefficient(o, d, model.half_peak_bytes)
        assert alpha == pytest.approx(_exact_ratio(o, d, model))


def test_asymptotic_form():
    # alpha ~ 3/2 + (o+d)/(2 m_half) for m_half >> 1
    m_half = FAST_ETHERNET.half_peak_bytes
    o, d = 4096, 1024
    alpha = home_access_coefficient(o, d, m_half)
    assert alpha == pytest.approx(1.5 + (o + d) / (2 * m_half), rel=1e-3)


def test_small_object_alpha_near_three_halves():
    alpha = home_access_coefficient(24, 24, FAST_ETHERNET.half_peak_bytes)
    assert 1.4 < alpha < 1.7


def test_larger_objects_worth_more():
    m_half = FAST_ETHERNET.half_peak_bytes
    small = home_access_coefficient(100, 50, m_half)
    large = home_access_coefficient(10000, 5000, m_half)
    assert large > small


def test_alpha_orders_inversely_with_half_peak_length():
    """alpha is monotone decreasing in m_half: the longer the half-peak
    length, the more a redirection's start-up dominates and the less an
    eliminated data transfer is worth relative to it.  Note m_half is NOT
    monotone across network generations (GigE's bandwidth grew faster
    than its latency fell), so the ordering follows m_half, not age."""
    from repro.cluster.hockney import GIGABIT, MYRINET

    o, d = 1024, 256
    models = [FAST_ETHERNET, GIGABIT, MYRINET]
    by_half_peak = sorted(models, key=lambda m: m.half_peak_bytes)
    alphas = [
        home_access_coefficient(o, d, m.half_peak_bytes) for m in by_half_peak
    ]
    assert alphas == sorted(alphas, reverse=True)


def test_model_wrapper():
    direct = home_access_coefficient(500, 100, FAST_ETHERNET.half_peak_bytes)
    wrapped = home_access_coefficient_for_model(500, 100, FAST_ETHERNET)
    assert direct == wrapped


@pytest.mark.parametrize(
    "o,d,m", [(0, 1, 1), (-1, 1, 1), (1, -1, 1), (1, 1, 0)]
)
def test_invalid_inputs_rejected(o, d, m):
    with pytest.raises(ValueError):
        home_access_coefficient(o, d, m)


@given(
    o=st.floats(min_value=1, max_value=1e8),
    d=st.floats(min_value=0, max_value=1e8),
    m=st.floats(min_value=1, max_value=1e8),
)
def test_property_alpha_always_favours_migration_benefit(o, d, m):
    """alpha > 1: one eliminated fault-in/diff pair always outweighs one
    redirection (both pay at least the same start-ups, the pair moves more
    data) — the reason the threshold can dip to its floor."""
    assert home_access_coefficient(o, d, m) > 1.0


@given(
    o1=st.floats(min_value=1, max_value=1e8),
    o2=st.floats(min_value=1, max_value=1e8),
    d=st.floats(min_value=0, max_value=1e8),
    m=st.floats(min_value=1, max_value=1e8),
)
def test_property_alpha_monotone_in_object_size(o1, o2, d, m):
    lo, hi = sorted((o1, o2))
    assert home_access_coefficient(lo, d, m) <= home_access_coefficient(
        hi, d, m
    )
