"""Seed-discipline audit: no module-level RNG anywhere in the tree.

Determinism is a hard gate here (``test_determinism_digest.py``), and
the conformance harness promises byte-identical episodes per seed.  Both
break silently the moment any code draws from a *shared global* RNG —
``random.random()``, ``np.random.rand()``, ``random.seed(...)`` — whose
state depends on import order and on whatever ran earlier in the
process.  The repo's rule is: every random draw comes from an RNG
*instance* constructed from an explicit seed (``random.Random(seed)`` /
``np.random.default_rng(seed)``).

This test greps the whole tree (``src``, ``tests``, ``benchmarks``,
``scripts``) for the global-API spellings and fails with file:line on
any hit, so a violation cannot land unnoticed.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Directories whose .py files must obey the discipline.
SCAN_DIRS = ("src", "tests", "benchmarks", "scripts")

#: Global-RNG spellings that are never acceptable.  ``random.Random(``
#: and ``np.random.default_rng(`` construct seeded instances and are the
#: sanctioned alternatives, so they are excluded by construction.
FORBIDDEN = re.compile(
    r"""
    (?<![\w.])random\.(?!Random\b)[a-z_]+\s*\(   # random.random(), random.seed()...
    | np\.random\.(?!default_rng\b|Generator\b)\w+ # np.random.rand(), np.random.seed()...
    | numpy\.random\.(?!default_rng\b|Generator\b)\w+
    """,
    re.VERBOSE,
)


def _iter_source_lines():
    for directory in SCAN_DIRS:
        root = REPO / directory
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*.py")):
            if path.name == "test_seed_discipline.py":
                continue  # this file spells out the forbidden forms
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                yield path.relative_to(REPO), lineno, line


def test_no_global_rng_use():
    """Every random draw must come from an explicitly seeded instance."""
    hits = []
    for relpath, lineno, line in _iter_source_lines():
        stripped = line.split("#", 1)[0]
        if FORBIDDEN.search(stripped):
            hits.append(f"{relpath}:{lineno}: {line.strip()}")
    assert not hits, (
        "global RNG use found — derive an RNG from an explicit seed "
        "(random.Random(seed) / np.random.default_rng(seed)) instead:\n"
        + "\n".join(hits)
    )


#: Wall-clock spellings forbidden in the span layer: span ids and
#: timestamps feed the determinism digest and the backend-parity trace
#: diff, so ``spans.py`` must never read host time on its own — wall
#: time enters only via the explicit ``wall_clock`` injection hook.
WALL_CLOCK = re.compile(
    r"""
    (?<![\w.])time\.(time|perf_counter|monotonic|process_time|
                     time_ns|perf_counter_ns|monotonic_ns)\s*\(
    | (?<![\w.])datetime\.(now|utcnow|today)\s*\(
    | \bimport\s+time\b
    """,
    re.VERBOSE,
)

#: Files that must be wall-clock-free (virtual-time only).
WALL_CLOCK_FREE = ("src/repro/obs/spans.py",)


def test_span_layer_has_no_wall_clock():
    """spans.py must not read host time — only injected clocks."""
    hits = []
    for rel in WALL_CLOCK_FREE:
        path = REPO / rel
        assert path.is_file(), f"audited file moved: {rel}"
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            stripped = line.split("#", 1)[0]
            if WALL_CLOCK.search(stripped):
                hits.append(f"{rel}:{lineno}: {line.strip()}")
    assert not hits, (
        "wall-clock use in the span layer — span timestamps are virtual "
        "time; wall time may only arrive via the wall_clock parameter:\n"
        + "\n".join(hits)
    )


def test_wall_clock_pattern_catches_known_spellings():
    """Guard the regex: canonical wall-clock forms must match."""
    bad = [
        "import time",
        "t = time.time()",
        "t = time.perf_counter()",
        "t = time.monotonic_ns()",
        "stamp = datetime.now()",
    ]
    good = [
        "wall_s = self.wall_clock()",
        "open_us = self.sim.now",
        "lifetime = runtime_us / 1e6",
    ]
    for line in bad:
        assert WALL_CLOCK.search(line), f"should match: {line}"
    for line in good:
        assert not WALL_CLOCK.search(line), f"should not match: {line}"


def test_audit_actually_scans_the_tree():
    """Guard the guard: the walker must see a substantial file set."""
    files = {relpath for relpath, _lineno, _line in _iter_source_lines()}
    assert len(files) > 50, f"audit only saw {len(files)} files"
    assert any(str(f).startswith("src/") for f in files)
    assert any(str(f).startswith("tests/") for f in files)


def test_pattern_catches_known_bad_spellings():
    """Guard the regex: the canonical bad forms must match, the
    sanctioned instance constructors must not."""
    bad = [
        "x = random.random()",
        "random.seed(0)",
        "idx = random.randrange(10)",
        "np.random.seed(1)",
        "a = np.random.rand(3)",
        "numpy.random.shuffle(v)",
    ]
    good = [
        "rng = random.Random(seed)",
        "rng = np.random.default_rng(seed)",
        "gen = numpy.random.default_rng(0)",
        "self._rng = random.Random(10_007 * (node_id + 1) + seed)",
    ]
    for line in bad:
        assert FORBIDDEN.search(line), f"should match: {line}"
    for line in good:
        assert not FORBIDDEN.search(line), f"should not match: {line}"
