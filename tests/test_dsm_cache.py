"""Tests for the cache access-state machine."""

import numpy as np
import pytest

from repro.dsm.cache import AccessMode, CacheEntry


def make_entry(version=3):
    return CacheEntry(payload=np.arange(4.0), version=version)


def test_fresh_entry_readable_not_writable():
    entry = make_entry()
    assert entry.readable()
    assert not entry.writable()
    assert entry.twin is None


def test_upgrade_creates_twin():
    entry = make_entry()
    entry.upgrade_to_write()
    assert entry.writable()
    assert np.array_equal(entry.twin, entry.payload)
    entry.payload[0] = 99.0
    assert entry.twin[0] == 0.0  # twin is an independent snapshot


def test_upgrade_idempotent():
    entry = make_entry()
    entry.upgrade_to_write()
    twin = entry.twin
    entry.payload[1] = 5.0
    entry.upgrade_to_write()
    assert entry.twin is twin  # not re-snapshotted


def test_upgrade_invalid_rejected():
    entry = make_entry()
    entry.invalidate()
    with pytest.raises(RuntimeError):
        entry.upgrade_to_write()


def test_invalidate_read_copy():
    entry = make_entry()
    entry.invalidate()
    assert not entry.readable()


def test_invalidate_dirty_copy_rejected():
    entry = make_entry()
    entry.upgrade_to_write()
    with pytest.raises(RuntimeError):
        entry.invalidate()


def test_downgrade_contiguous_ack_stays_valid():
    entry = make_entry(version=3)
    entry.upgrade_to_write()
    entry.downgrade_after_flush(acked_version=4)
    assert entry.mode is AccessMode.READ
    assert entry.version == 4
    assert entry.twin is None


def test_downgrade_interleaved_ack_invalidates():
    """Another writer's diff applied first: our copy misses it."""
    entry = make_entry(version=3)
    entry.upgrade_to_write()
    entry.downgrade_after_flush(acked_version=6)
    assert entry.mode is AccessMode.INVALID
    assert entry.version == 6


def test_downgrade_clean_drops_twin():
    entry = make_entry()
    entry.upgrade_to_write()
    entry.downgrade_clean()
    assert entry.mode is AccessMode.READ
    assert entry.twin is None
