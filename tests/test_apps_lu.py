"""Tests for the LU application."""

import numpy as np
import pytest

from repro.apps.lu import Lu, dominant_matrix, lu_oracle

from tests.conftest import make_jvm


def test_dominant_matrix_is_dominant():
    m = dominant_matrix(12, seed=1)
    for i in range(12):
        off = np.abs(m[i]).sum() - abs(m[i, i])
        assert abs(m[i, i]) > off


def test_oracle_reconstructs_input():
    m = dominant_matrix(10, seed=2)
    lu = lu_oracle(m)
    lower = np.tril(lu, k=-1) + np.eye(10)
    upper = np.triu(lu)
    assert np.allclose(lower @ upper, m)


def test_oracle_matches_scipy():
    scipy_linalg = pytest.importorskip("scipy.linalg")
    m = dominant_matrix(16, seed=3)
    lu_ours = lu_oracle(m)
    # scipy's lu with permutation disabled equivalently: since the matrix
    # is diagonally dominant, P should be identity
    p, l, u = scipy_linalg.lu(m)
    assert np.allclose(p, np.eye(16))
    assert np.allclose(np.tril(lu_ours, k=-1) + np.eye(16), l)
    assert np.allclose(np.triu(lu_ours), u)


@pytest.mark.parametrize("nodes,threads", [(2, 2), (4, 4), (4, 3)])
def test_lu_correct_on_dsm(nodes, threads):
    app = Lu(size=20, seed=5)
    result = make_jvm(nodes=nodes).run(app, nthreads=threads)
    app.verify(result.output)


def test_lu_correct_under_policies():
    from repro.bench.runner import make_policy

    for policy in ("NM", "AT", "JIAJIA", "FT2"):
        app = Lu(size=16)
        result = make_jvm(nodes=4, policy=make_policy(policy)).run(app)
        app.verify(result.output)


def test_lu_migration_benefit():
    from repro.core.policies import NoMigration

    app_nm = Lu(size=48)
    res_nm = make_jvm(nodes=4, policy=NoMigration()).run(app_nm)
    app_nm.verify(res_nm.output)
    app_at = Lu(size=48)
    res_at = make_jvm(nodes=4).run(app_at)
    app_at.verify(res_at.output)
    assert res_at.execution_time_us < 0.8 * res_nm.execution_time_us
    assert res_at.migrations > 0


def test_lu_rows_stop_migrating_once_pivoted():
    """After row i becomes the pivot it is only read — migration churn
    on read-shared pivots would show up as extra migrations beyond one
    per row."""
    app = Lu(size=32)
    result = make_jvm(nodes=4).run(app)
    app.verify(result.output)
    assert result.migrations <= 32


def test_lu_validation():
    with pytest.raises(ValueError):
        Lu(size=1)
