"""§5's lightweight-protocol claim: metadata memory is contained.

"The GOS needs to allocate memory for the adaptive threshold, consecutive
remote writes, redirected object requests, and exclusive home writes, for
each shared Java object ... the memory consumption of the adaptive home
migration protocol is well contained."
"""

from repro.apps import Sor, SingleWriterBenchmark
from repro.bench.runner import run_once


def test_monitor_memory_scales_with_objects_only():
    small = run_once(Sor(size=16, iterations=2), policy="AT", nodes=4)
    large = run_once(Sor(size=32, iterations=2), policy="AT", nodes=4)
    small_mem = small.gos.protocol_memory_estimate()
    large_mem = large.gos.protocol_memory_estimate()
    # monitor bytes = 48 per shared object, independent of activity
    assert small_mem["monitor_bytes"] == 48 * len(small.gos.heap)
    assert large_mem["monitor_bytes"] == 48 * len(large.gos.heap)


def test_migration_adds_only_pointer_words():
    nm = run_once(Sor(size=24, iterations=3), policy="NM", nodes=4)
    at = run_once(Sor(size=24, iterations=3), policy="AT", nodes=4)
    nm_mem = nm.gos.protocol_memory_estimate()
    at_mem = at.gos.protocol_memory_estimate()
    # identical monitor footprint; AT adds 8 bytes per migration chain hop
    assert at_mem["monitor_bytes"] == nm_mem["monitor_bytes"]
    assert nm_mem["forwarding_bytes"] == 0
    assert 0 < at_mem["forwarding_bytes"] <= 8 * at.migrations


def test_metadata_dwarfed_by_data():
    result = run_once(
        SingleWriterBenchmark(total_updates=128, repetition=8),
        policy="AT",
        nodes=5,
    )
    mem = result.gos.protocol_memory_estimate()
    total_meta = mem["monitor_bytes"] + mem["forwarding_bytes"]
    # one shared counter: tens of bytes of protocol metadata in total
    assert total_meta < 200