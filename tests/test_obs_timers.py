"""Tests for phase timers, epoch timers and span trackers."""

from repro.obs.timers import EpochTimer, PhaseTimer, SpanTracker


def _fake_clock(times):
    """Zero-arg clock yielding successive values from ``times``."""
    it = iter(times)
    return lambda: next(it)


def test_phase_timer_accumulates_wall_and_sim():
    timer = PhaseTimer(wall_clock=_fake_clock([0.0, 1.0, 5.0, 7.0]))
    sim = _fake_clock([100.0, 250.0, 300.0, 450.0])
    with timer.phase("simulate", sim_clock=sim):
        pass
    with timer.phase("simulate", sim_clock=sim):
        pass
    report = timer.report()
    assert report == {
        "simulate": {"wall_s": 3.0, "sim_us": 300.0, "count": 2}
    }


def test_phase_timer_records_even_on_exception():
    timer = PhaseTimer(wall_clock=_fake_clock([0.0, 2.0]))
    try:
        with timer.phase("build"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert timer.report()["build"]["count"] == 1
    assert timer.report()["build"]["wall_s"] == 2.0


def test_phase_timer_merge():
    a = PhaseTimer(wall_clock=_fake_clock([0.0, 1.0]))
    with a.phase("build"):
        pass
    b = PhaseTimer(wall_clock=_fake_clock([0.0, 4.0]))
    with b.phase("build"):
        pass
    a.merge(b)
    assert a.report()["build"] == {"wall_s": 5.0, "sim_us": 0.0, "count": 2}
    # merging a plain report dict works the same way
    a.merge({"verify": {"wall_s": 0.5, "sim_us": 0.0, "count": 1}})
    assert a.report()["verify"]["count"] == 1


def test_epoch_timer_laps():
    timer = EpochTimer()
    assert timer.lap(10.0) is None  # first lap arms
    assert timer.lap(25.0) == 15.0
    assert timer.lap(100.0) == 75.0


def test_span_tracker_matched_and_unmatched():
    spans = SpanTracker()
    spans.begin("lock-1", 10.0)
    spans.begin("lock-2", 12.0)
    assert spans.end("lock-1", 30.0) == 20.0
    assert spans.end("lock-1", 40.0) is None  # already closed
    assert spans.end("never-opened", 50.0) is None
    assert len(spans) == 1  # lock-2 still open
