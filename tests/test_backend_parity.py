"""Cross-backend bit-identity: compiled and pure-Python must agree.

The compiled kernel's contract is not "fast and close" but "fast and
byte-identical": every deterministic artifact of the reproduction — the
pinned determinism digest, a figure-2 sweep cell, and batches of fuzzer
episodes — must hash the same whichever backend is active.

The backend is bound per-process (``REPRO_BACKEND`` is read at first
kernel use and the simulator class is rebound at import), so each leg
runs in a fresh subprocess with the environment forced.  When the
extension cannot be built (no C toolchain, or the backend was pinned to
python), the whole module skips with the reason.
"""

import functools
import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

BACKENDS = ("python", "compiled")


@functools.lru_cache(maxsize=1)
def _compiled_unavailable() -> str | None:
    """Why the compiled backend cannot run here, or ``None`` if it can.

    Probed in a subprocess so an inherited ``REPRO_BACKEND=python`` in
    this process does not mask a perfectly buildable extension.
    """
    proc = _spawn(
        "compiled",
        "from repro import _kernel\n"
        "print(_kernel.select_backend('compiled'))\n",
    )
    if proc.returncode != 0:
        tail = proc.stderr.strip().splitlines()[-1:] or ["no output"]
        return tail[0]
    return None


def _spawn(backend: str, code: str) -> subprocess.CompletedProcess:
    env = dict(
        os.environ,
        REPRO_BACKEND=backend,
        PYTHONPATH=os.pathsep.join([str(SRC), str(ROOT)]),
    )
    return subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        cwd=ROOT,
        capture_output=True,
        text=True,
    )


def _run_both(code: str) -> dict[str, str]:
    """Last stdout line of ``code`` under each backend (asserting success)."""
    reason = _compiled_unavailable()
    if reason is not None:
        pytest.skip(f"compiled backend unavailable: {reason}")
    out = {}
    for backend in BACKENDS:
        proc = _spawn(backend, code)
        assert proc.returncode == 0, (
            f"{backend} leg failed:\n{proc.stderr}"
        )
        out[backend] = proc.stdout.strip().splitlines()[-1]
    return out


DIGEST_CODE = """\
import importlib.util, pathlib
path = pathlib.Path({root!r}) / "tests" / "test_determinism_digest.py"
spec = importlib.util.spec_from_file_location("tdd", path)
mod = importlib.util.module_from_spec(spec)
spec.loader.exec_module(mod)
from repro import _kernel
assert _kernel.backend_name() == {backend_expr}, _kernel.backend_info()
print(mod._digest(mod._run_payload()))
""".format(root=str(ROOT), backend_expr="__import__('os').environ['REPRO_BACKEND']")


def test_determinism_digest_identical_across_backends():
    """The pinned ASP/AT/4 digest is the same hash under both backends."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "tdd", ROOT / "tests" / "test_determinism_digest.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)

    digests = _run_both(DIGEST_CODE)
    assert digests["python"] == digests["compiled"]
    assert digests["python"] == mod.EXPECTED_DIGEST


SWEEP_CELL_CODE = """\
import hashlib, json
from repro.bench.executor import RunSpec, run_spec
spec = RunSpec(
    app="sor", app_kwargs={"size": 32, "iterations": 10},
    policy="AT", nodes=8, tag="parity-cell",
)
outcome = run_spec(spec).deterministic()
blob = json.dumps(outcome, sort_keys=True, default=repr)
print(hashlib.sha256(blob.encode()).hexdigest())
"""


def test_figure2_cell_identical_across_backends():
    """One figure-2 sweep cell (SOR/AT/8) produces identical outcomes."""
    digests = _run_both(SWEEP_CELL_CODE)
    assert digests["python"] == digests["compiled"]


FUZZER_CODE = """\
import hashlib
from repro.check.runner import run_check
reports = [
    run_check(episodes=25, base_seed=seed, self_test=False).to_json()
    for seed in (0, 7, 1234)
]
print(hashlib.sha256("\\n".join(reports).encode()).hexdigest())
"""


def test_fuzzer_episodes_identical_across_backends():
    """25 conformance episodes at 3 fixed seeds are bit-identical."""
    digests = _run_both(FUZZER_CODE)
    assert digests["python"] == digests["compiled"]


FASTPATH_CODE = """\
import hashlib, json
from repro.bench.executor import RunSpec, run_spec
# Episodes chosen to exercise every compiled fast path: ASP/NM drives
# fault-in + diff propagation through the batched delivery layer with no
# migration; tokenring/AT is lock-transfer heavy (ReplyRouter, pending
# queues); the homeless SOR leg uses the fallback engine whose accesses
# bypass the LocalAccess shadows entirely.
specs = [
    RunSpec(app="asp", app_kwargs={"size": 20}, policy="NM", nodes=8,
            tag="fp-asp"),
    RunSpec(app="tokenring", app_kwargs={}, policy="AT", nodes=8,
            tag="fp-ring"),
    RunSpec(app="sor", app_kwargs={"size": 24, "iterations": 6},
            policy="AT", nodes=4, protocol="homeless", tag="fp-homeless"),
]
blobs = [
    json.dumps(run_spec(s).deterministic(), sort_keys=True, default=repr)
    for s in specs
]
print(hashlib.sha256("\\n".join(blobs).encode()).hexdigest())
"""


def test_fastpath_episodes_identical_across_backends():
    """Episode hashes across the PR-8 fast paths (local-access shadows,
    batched delivery, C pending queues, C futures/arenas) are identical
    under both backends."""
    digests = _run_both(FASTPATH_CODE)
    assert digests["python"] == digests["compiled"]


TOPOLOGY_CODE = """\
import hashlib, json
from repro.bench.executor import RunSpec, run_spec
# Episodes chosen to exercise the scale-tier paths end to end: a
# hierarchical topology with per-link contention (the C fabric's
# store-and-forward branch), a fat-tree with the k-ary barrier-release
# relay, and the sharded home manager routing notices over the fat
# tree.  Any float-order divergence between _topo_arrival and the C
# fabric_send_core shifts arrival times and changes these hashes.
specs = [
    RunSpec(app="asp", app_kwargs={"size": 24}, policy="AT", nodes=8,
            topology="hier:leaf=4:oversub=4:contention=1",
            tag="topo-hier"),
    RunSpec(app="sor", app_kwargs={"size": 24, "iterations": 6},
            policy="AT", nodes=16,
            topology="fat-tree:edge=4:pod=2:oversub=2",
            release_fanout=2, tag="topo-fat"),
    RunSpec(app="tokenring", app_kwargs={}, policy="AT", nodes=16,
            mechanism="home-manager:shards=4",
            topology="fat-tree:edge=4:pod=2:oversub=2:contention=1",
            release_fanout=4, tag="topo-shards"),
]
blobs = [
    json.dumps(run_spec(s).deterministic(), sort_keys=True, default=repr)
    for s in specs
]
print(hashlib.sha256("\\n".join(blobs).encode()).hexdigest())
"""


def test_topology_episodes_identical_across_backends():
    """Topology-priced episodes (hierarchical + fat-tree, contention,
    multicast release relay, sharded home manager) hash identically
    under both backends."""
    digests = _run_both(TOPOLOGY_CODE)
    assert digests["python"] == digests["compiled"]


SPAN_TRACE_CODE = """\
import hashlib, tempfile, os
from repro.bench.record import record_trace
fd, path = tempfile.mkstemp(suffix=".jsonl")
os.close(fd)
try:
    record_trace(path, app="asp", app_kwargs={"size": 20}, policy="AT",
                 nodes=4)
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
finally:
    os.unlink(path)
# the meta line legitimately differs (backend name, kernel build hash);
# every event line — span ids, parents, timestamps — must not
blob = "\\n".join(lines[1:])
print(hashlib.sha256(blob.encode()).hexdigest())
"""


def test_span_trace_identical_across_backends():
    """Span-enabled traces (op ids, parents, times) are bit-identical.

    Every span id is allocated in dispatch order, so equality of the
    full event stream proves the compiled backend schedules the
    instrumented operations in exactly the reference order.
    """
    digests = _run_both(SPAN_TRACE_CODE)
    assert digests["python"] == digests["compiled"]


SERVING_CODE = """\
from repro.apps.serving import ServingSpec
from repro.bench.serving import run_serving, report_digest
spec = ServingSpec(seed=0, nodes=64, keys=96, phases=3,
                   requests_per_thread=4, churn=0.125, policy="AT",
                   topology="fat-tree:edge=8:pod=2:oversub=2")
print(report_digest(run_serving(spec)))
"""

#: Pinned digest of the 64-node serving leg above; recompute with the
#: SERVING_CODE snippet if the traffic generator or report schema
#: changes intentionally.
SERVING_DIGEST = (
    "fa4c2938a6b8baf7f569ae2654d3d3e84a0f12dd001a08af0ab77d27587216a8"
)


def test_serving_report_identical_across_backends():
    """A 64-node churned serving episode over a fat tree produces the
    pinned SLO-report digest under both backends — arrivals, request
    spans, epoch windows and tail quantiles all bit-identical."""
    digests = _run_both(SERVING_CODE)
    assert digests["python"] == digests["compiled"]
    assert digests["python"] == SERVING_DIGEST


ANALYZE_CODE = """\
import hashlib, tempfile, os
from repro.bench.record import record_trace
from repro.bench.analyze import analyze_trace, render_analysis
fd, path = tempfile.mkstemp(suffix=".jsonl")
os.close(fd)
try:
    record_trace(path, app="asp", app_kwargs={"size": 20}, policy="AT",
                 nodes=4)
    report = render_analysis(analyze_trace(path))
finally:
    os.unlink(path)
print(hashlib.sha256(report.encode()).hexdigest())
"""


def test_slo_report_identical_across_backends():
    """The rendered SLO analysis is byte-identical under both backends."""
    digests = _run_both(ANALYZE_CODE)
    assert digests["python"] == digests["compiled"]
