"""Tests for synchronized method shipping (§5.1's GOS optimization)."""

import numpy as np
import pytest

from repro.cluster.message import MsgCategory
from repro.core.policies import AdaptiveThreshold, FixedThreshold
from repro.gos.thread import ThreadContext

from tests.conftest import make_gos, run_threads


def _increment(payload):
    payload[0] += 1.0
    return float(payload[0])


def test_ship_executes_at_remote_home(gos):
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)
    results = []

    def body():
        ctx = ThreadContext(gos, tid=0, node=2)
        yield from ctx.acquire(lock)
        value = yield from ctx.ship(obj, _increment)
        results.append(value)
        yield from ctx.release(lock)

    run_threads(gos, body())
    assert results == [1.0]
    assert gos.engines[0].homes[obj.oid].payload[0] == 1.0
    assert gos.stats.msg_count[MsgCategory.SHIP_REQUEST] == 1
    assert gos.stats.msg_count[MsgCategory.SHIP_REPLY] == 1
    # no object image ever crossed the wire
    assert gos.stats.msg_count.get(MsgCategory.OBJ_REPLY, 0) == 0
    assert gos.stats.msg_count.get(MsgCategory.DIFF, 0) == 0


def test_ship_at_local_home_is_message_free(gos):
    obj = gos.alloc_fields(("v",), home=1)
    lock = gos.alloc_lock(home=1)

    def body():
        ctx = ThreadContext(gos, tid=0, node=1)
        yield from ctx.acquire(lock)
        yield from ctx.ship(obj, _increment)
        yield from ctx.release(lock)

    run_threads(gos, body())
    assert gos.stats.msg_count.get(MsgCategory.SHIP_REQUEST, 0) == 0
    assert gos.engines[1].homes[obj.oid].payload[0] == 1.0
    # it was trapped as a home write for the monitor
    assert gos.engines[1].homes[obj.oid].state.home_writes == 1


def test_shipped_updates_visible_after_synchronization(gos):
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)
    seen = []

    def shipper():
        ctx = ThreadContext(gos, tid=0, node=1)
        for _ in range(3):
            yield from ctx.acquire(lock)
            yield from ctx.ship(obj, _increment)
            yield from ctx.release(lock)

    def reader():
        ctx = ThreadContext(gos, tid=1, node=2)
        for _ in range(3):
            yield from ctx.acquire(lock)
            payload = yield from ctx.read(obj)
            seen.append(float(payload[0]))
            yield from ctx.release(lock)

    run_threads(gos, shipper(), reader())
    # lock-serialized: the reader sees a monotone prefix ending at 3
    assert seen == sorted(seen)
    assert seen[-1] <= 3.0
    assert gos.engines[0].homes[obj.oid].payload[0] == 3.0


def test_consecutive_ships_trigger_migration():
    """Ships count as remote writes: a persistent shipper attracts the
    home, after which its ships become free local home writes."""
    gos = make_gos(nnodes=4, policy=FixedThreshold(1))
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)

    def body():
        ctx = ThreadContext(gos, tid=0, node=2)
        for _ in range(5):
            yield from ctx.acquire(lock)
            yield from ctx.ship(obj, _increment)
            yield from ctx.release(lock)

    run_threads(gos, body())
    assert gos.current_home(obj) == 2
    assert gos.stats.events["migration"] == 1
    assert gos.engines[2].homes[obj.oid].payload[0] == 5.0
    # after migration the remaining ships were local
    assert gos.stats.msg_count[MsgCategory.SHIP_REQUEST] <= 2


def test_ship_follows_forwarding_pointer():
    gos = make_gos(nnodes=4, policy=FixedThreshold(1))
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)

    def writer():
        ctx = ThreadContext(gos, tid=0, node=1)
        for _ in range(3):
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[0] += 1.0
            yield from ctx.release(lock)

    run_threads(gos, writer())
    assert gos.current_home(obj) == 1

    def shipper():
        ctx = ThreadContext(gos, tid=1, node=3)
        yield from ctx.acquire(lock)
        value = yield from ctx.ship(obj, _increment)
        assert value == 4.0
        yield from ctx.release(lock)

    run_threads(gos, shipper())
    # the stale initial-home hint cost one redirection
    assert gos.stats.events["redir"] >= 1
    assert gos.engines[1].homes[obj.oid].payload[0] == 4.0


def test_ship_compute_cost_charged():
    def one_run(compute_us):
        gos = make_gos()
        obj = gos.alloc_fields(("v",), home=0)
        lock = gos.alloc_lock(home=0)

        def body():
            ctx = ThreadContext(gos, tid=0, node=2)
            yield from ctx.acquire(lock)
            yield from ctx.ship(obj, _increment, compute_us=compute_us)
            yield from ctx.release(lock)

        return run_threads(gos, body())

    assert one_run(500.0) == pytest.approx(one_run(0.0) + 500.0)


def test_ship_vs_fault_in_message_economy(gos):
    """Shipping a counter update needs 2 small messages; the fault-in
    path needs request + object reply + diff + ack."""
    obj_ship = gos.alloc_array(256, home=0)
    obj_fault = gos.alloc_array(256, home=0)
    lock = gos.alloc_lock(home=0)

    def body():
        ctx = ThreadContext(gos, tid=0, node=2)
        yield from ctx.acquire(lock)
        yield from ctx.ship(obj_ship, _increment)
        yield from ctx.release(lock)
        yield from ctx.acquire(lock)
        payload = yield from ctx.write(obj_fault)
        payload[0] += 1.0
        yield from ctx.release(lock)

    run_threads(gos, body())
    ship_bytes = (
        gos.stats.msg_bytes[MsgCategory.SHIP_REQUEST]
        + gos.stats.msg_bytes[MsgCategory.SHIP_REPLY]
    )
    fault_bytes = (
        gos.stats.msg_bytes[MsgCategory.OBJ_REQUEST]
        + gos.stats.msg_bytes[MsgCategory.OBJ_REPLY]
        + gos.stats.msg_bytes[MsgCategory.DIFF]
        + gos.stats.msg_bytes[MsgCategory.DIFF_ACK]
    )
    assert ship_bytes < fault_bytes / 3


def test_shipped_state_coherent_with_oracle(gos):
    """Mixing shipping and plain writes under one lock stays coherent."""
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)

    def mixed(node, use_ship, times):
        ctx = ThreadContext(gos, tid=node, node=node)
        for _ in range(times):
            yield from ctx.acquire(lock)
            if use_ship:
                yield from ctx.ship(obj, _increment)
            else:
                payload = yield from ctx.write(obj)
                payload[0] += 1.0
            yield from ctx.release(lock)

    run_threads(gos, mixed(1, True, 7), mixed(2, False, 7), mixed(3, True, 7))
    assert gos.read_global(obj)[0] == 21.0
