"""Tests for the parallel sweep executor (determinism across processes)."""

import pickle

import pytest

from repro.apps import Sor
from repro.bench.executor import (
    APP_FACTORIES,
    RunSpec,
    default_jobs,
    execute,
    run_spec,
)


def _sweep_specs():
    """A small mixed sweep: two apps, two policies, odd node counts."""
    return [
        RunSpec(
            app="synthetic",
            app_kwargs={"total_updates": 64, "repetition": r},
            policy=policy,
            nodes=9,
            tag=("synthetic", policy, r),
        )
        for policy in ("NM", "AT")
        for r in (2, 8)
    ] + [
        RunSpec(
            app="sor",
            app_kwargs={"size": 16, "iterations": 2},
            policy="AT",
            nodes=4,
            tag=("sor", "AT", 16),
        )
    ]


def test_jobs1_and_jobs4_bit_identical():
    """Fanning out over processes must not change a single bit of the
    simulated results (the determinism guarantee the figures rely on)."""
    specs = _sweep_specs()
    seq = execute(specs, jobs=1)
    par = execute(specs, jobs=4)
    assert [o.deterministic() for o in seq] == [
        o.deterministic() for o in par
    ]


def test_result_order_matches_spec_order():
    specs = _sweep_specs()
    outcomes = execute(specs, jobs=4)
    assert [o.tag for o in outcomes] == [s.tag for s in specs]


def test_specs_are_picklable():
    for spec in _sweep_specs():
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec


def test_callable_app_falls_back_to_sequential():
    """A lambda app cannot cross process boundaries; execute must still
    return correct results (sequential fallback)."""
    specs = [
        RunSpec(app=lambda: Sor(size=16, iterations=2), nodes=4, tag="inline")
    ]
    (outcome,) = execute(specs, jobs=4)
    assert outcome.tag == "inline"
    assert outcome.time_us > 0


def test_run_spec_matches_run_once():
    """The spec path and the legacy run_once path measure the same run."""
    from repro.bench.runner import run_once

    outcome = run_spec(
        RunSpec(app="sor", app_kwargs={"size": 16, "iterations": 2}, nodes=4)
    )
    result = run_once(Sor(size=16, iterations=2), policy="AT", nodes=4)
    assert outcome.time_us == result.execution_time_us
    assert outcome.messages == result.stats.total_messages()
    assert outcome.breakdown == result.stats.breakdown()


def test_policy_kwargs_and_registries():
    outcome = run_spec(
        RunSpec(
            app="synthetic",
            app_kwargs={"total_updates": 32, "repetition": 4},
            policy="AT",
            policy_kwargs={"lam": 2.0},
            nodes=4,
        )
    )
    assert outcome.policy == "AT"
    with pytest.raises(ValueError):
        run_spec(RunSpec(app="no-such-app"))
    with pytest.raises(ValueError):
        run_spec(
            RunSpec(
                app="sor",
                app_kwargs={"size": 8, "iterations": 1},
                policy="no-such-policy",
            )
        )
    with pytest.raises(ValueError):
        run_spec(
            RunSpec(
                app="sor",
                app_kwargs={"size": 8, "iterations": 1},
                policy="JUMP",
                policy_kwargs={"zap": 1},
            )
        )


def test_outcome_wall_clock_and_events_populated():
    (outcome,) = execute(
        [RunSpec(app="sor", app_kwargs={"size": 16, "iterations": 2},
                 nodes=4)],
        jobs=1,
    )
    assert outcome.wall_clock_s > 0
    assert outcome.events_processed > 0
    assert "wall_clock_s" not in outcome.deterministic()


def test_jobs_validation_and_default():
    with pytest.raises(ValueError):
        execute([], jobs=0)
    assert default_jobs() >= 1
    assert execute([], jobs=None) == []


def test_app_registry_covers_all_shipped_apps():
    assert set(APP_FACTORIES) == {
        "asp", "sor", "nbody", "tsp", "lu", "tokenring", "synthetic",
    }


def test_console_script_entry_point_resolves():
    """pyproject's ``repro-bench`` console script points at the CLI main."""
    import pathlib
    import re

    from repro.bench import cli

    pyproject = (
        pathlib.Path(__file__).parent.parent / "pyproject.toml"
    ).read_text(encoding="utf-8")
    match = re.search(r'repro-bench\s*=\s*"([\w.]+):(\w+)"', pyproject)
    assert match, "repro-bench console script missing from pyproject.toml"
    module, attr = match.groups()
    assert module == "repro.bench.cli"
    assert callable(getattr(cli, attr))


def test_figure2_sweep_identical_across_jobs():
    """End-to-end: the figure driver's public ``jobs`` knob is a no-op
    for results."""
    from repro.bench import figure2
    from repro.bench.figure2 import run_figure2

    tiny = {"SOR": ("sor", {"size": 16, "iterations": 2})}
    orig = figure2.SIZES["quick"]
    figure2.SIZES["quick"] = tiny
    try:
        seq = run_figure2(processor_counts=(2, 4), jobs=1)
        par = run_figure2(processor_counts=(2, 4), jobs=2)
    finally:
        figure2.SIZES["quick"] = orig
    assert seq == par
