"""Edge cases of report cell formatting."""

from repro.bench.report import _format_cell, format_table


def test_negative_float_formatting():
    assert _format_cell(-12.345).startswith("-12")
    assert _format_cell(-1234567.0) == "-1,234,567"


def test_integer_passthrough():
    assert _format_cell(42) == "42"
    assert _format_cell(0) == "0"


def test_zero_float():
    assert _format_cell(0.0) == "0"


def test_small_float_three_sig_figs():
    assert _format_cell(0.0123456) == "0.0123"


def test_string_passthrough():
    assert _format_cell("label") == "label"


def test_table_with_mixed_types():
    out = format_table(
        ["a", "b", "c"],
        [["x", -1.5, 1000000.0], ["y", 2, "z"]],
    )
    assert "-1.5" in out
    assert "1,000,000" in out
