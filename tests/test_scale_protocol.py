"""Tests for the large-N protocol paths (PR 9).

Covers the k-ary multicast tree used by fanned-out barrier releases and
HOME_BCAST relays, the mechanism parameter validation added for big
clusters (manager/shard ids must fit the cluster), the colon-parameter
mechanism specs, broadcast racing in-flight migrations at N >= 64, the
sharded home manager against the fuzzer corpus, and a complexity
regression pinning ~linear event/message growth in N for a fixed
per-node workload.
"""

import math

import pytest

from repro.bench.executor import RunSpec, run_spec
from repro.bench.runner import make_mechanism
from repro.check.runner import run_episode
from repro.check.fuzz import generate_program
from repro.dsm.redirection import (
    BroadcastMechanism,
    ForwardingPointerMechanism,
    HomeManagerMechanism,
    fanout_children,
)


# -- k-ary multicast tree --------------------------------------------------


@pytest.mark.parametrize("nnodes", [1, 2, 5, 16, 64, 257])
@pytest.mark.parametrize("fanout", [2, 4, 8])
@pytest.mark.parametrize("root", [0, 3])
def test_fanout_tree_spans_all_nodes_once(nnodes, fanout, root):
    """Every non-root node has exactly one parent; the root has none."""
    root = root % nnodes
    reached: dict[int, int] = {}
    for node in range(nnodes):
        for child in fanout_children(node, root, fanout, nnodes):
            assert child not in reached, "two parents forward to one node"
            reached[child] = node
    assert root not in reached
    assert len(reached) == nnodes - 1


def test_fanout_tree_depth_is_logarithmic():
    """Relay depth from the root is ceil(log_k N), not N."""
    nnodes, fanout, root = 1024, 4, 7
    depth = {root: 0}
    frontier = [root]
    while frontier:
        nxt = []
        for node in frontier:
            for child in fanout_children(node, root, fanout, nnodes):
                depth[child] = depth[node] + 1
                nxt.append(child)
        frontier = nxt
    assert len(depth) == nnodes
    assert max(depth.values()) == math.ceil(math.log(nnodes, fanout))


def test_fanout_children_counts():
    """Interior nodes forward to at most ``fanout`` children."""
    for node in range(64):
        kids = list(fanout_children(node, 0, 4, 64))
        assert len(kids) <= 4


# -- mechanism parameter validation (big-cluster guards) -------------------


def test_manager_node_must_fit_cluster():
    mech = HomeManagerMechanism(manager_node=8)
    with pytest.raises(ValueError, match="outside the 8-node cluster"):
        mech.validate(8)
    mech.validate(9)  # fits


def test_shards_must_fit_cluster():
    mech = HomeManagerMechanism(shards=8)
    with pytest.raises(ValueError, match="8 manager shards on a 4-node"):
        mech.validate(4)
    mech.validate(8)  # K == N is legal: one shard per node


def test_constructor_rejects_degenerate_parameters():
    with pytest.raises(ValueError, match="manager node"):
        HomeManagerMechanism(manager_node=-1)
    with pytest.raises(ValueError, match="shards"):
        HomeManagerMechanism(shards=0)
    with pytest.raises(ValueError, match="fanout"):
        BroadcastMechanism(fanout=1)
    BroadcastMechanism(fanout=2)  # minimum legal tree


def test_shard_for_routing():
    mech = HomeManagerMechanism(manager_node=3, shards=4)
    managers = {mech.shard_for(oid, 8) for oid in range(32)}
    assert managers == {3, 4, 5, 6}
    # stable: same oid always lands on the same shard
    assert mech.shard_for(17, 8) == mech.shard_for(17, 8)
    # one shard is the classic single manager regardless of oid
    classic = HomeManagerMechanism(manager_node=3)
    assert {classic.shard_for(oid, 8) for oid in range(32)} == {3}


def test_run_spec_rejects_out_of_range_manager():
    spec = RunSpec(
        app="synthetic",
        app_kwargs={"total_updates": 8, "repetition": 2},
        policy="NM",
        nodes=4,
        mechanism="home-manager:manager=9",
        verify=False,
    )
    with pytest.raises(ValueError, match="outside the 4-node cluster"):
        run_spec(spec)


# -- colon-parameter mechanism specs ---------------------------------------


def test_make_mechanism_parses_parameters():
    mech = make_mechanism("broadcast:fanout=4")
    assert isinstance(mech, BroadcastMechanism)
    assert mech.fanout == 4

    mech = make_mechanism("home-manager:manager=3:shards=2")
    assert isinstance(mech, HomeManagerMechanism)
    assert mech.manager_node == 3
    assert mech.shards == 2
    assert mech.name == "home-manager-x2"

    assert isinstance(
        make_mechanism("forwarding-pointer"), ForwardingPointerMechanism
    )


def test_make_mechanism_rejects_bad_specs():
    with pytest.raises(ValueError, match="unknown mechanism"):
        make_mechanism("gossip")
    with pytest.raises(ValueError, match="accepts"):
        make_mechanism("broadcast:shards=2")
    with pytest.raises(ValueError, match="accepts"):
        make_mechanism("forwarding-pointer:fanout=2")
    with pytest.raises(ValueError, match="not an integer"):
        make_mechanism("broadcast:fanout=wide")
    with pytest.raises(ValueError, match="accepts"):
        make_mechanism("broadcast:fanout")


# -- broadcast racing in-flight migrations at scale ------------------------


@pytest.mark.parametrize(
    "mechanism", ["broadcast", "broadcast:fanout=4", "broadcast:fanout=8"]
)
def test_broadcast_races_migrations_at_64_nodes(mechanism):
    """A churn-heavy 64-node run under AT migrates on nearly every
    round, so HOME_BCAST notices race in-flight faults and follow-up
    migrations; result verification proves every reader still reached
    the authoritative copy (fanned-out relays included)."""
    outcome = run_spec(
        RunSpec(
            app="synthetic",
            app_kwargs={"total_updates": 504, "repetition": 8},
            policy="AT",
            nodes=64,
            mechanism=mechanism,
            verify=True,
        )
    )
    assert outcome.migrations >= 50


def test_fanned_broadcast_matches_flat_broadcast_outcome():
    """The relay tree changes who forwards a notice, not the protocol
    outcome: migrations agree with the flat burst leg and the relayed
    run still verifies (previous test).  Message totals may differ by
    the relay bookkeeping, but only within the notice budget."""
    flat, fanned = (
        run_spec(
            RunSpec(
                app="synthetic",
                app_kwargs={"total_updates": 504, "repetition": 8},
                policy="AT",
                nodes=64,
                mechanism=mech,
                verify=True,
            )
        )
        for mech in ("broadcast", "broadcast:fanout=4")
    )
    assert flat.migrations == fanned.migrations


# -- sharded home manager vs the fuzzer corpus -----------------------------


def _forced_manager_episode(seed: int, shards: int):
    """One fuzzer episode with the mechanism pinned to a home manager."""
    spec = generate_program(seed)
    spec.mechanism_name = "home-manager"
    if shards > 1:
        spec.build_mechanism = lambda: HomeManagerMechanism(  # type: ignore[method-assign]
            manager_node=spec.manager_node,
            shards=min(shards, spec.nnodes),
        )
    return run_episode(spec=spec)


def test_single_shard_matches_classic_manager_on_corpus():
    """``shards=1`` is the classic manager episode for episode."""
    for seed in range(10):
        classic = _forced_manager_episode(seed, shards=1)
        spec = generate_program(seed)
        spec.mechanism_name = "home-manager"
        spec.build_mechanism = lambda: HomeManagerMechanism(  # type: ignore[method-assign]
            manager_node=spec.manager_node, shards=1
        )
        sharded = run_episode(spec=spec)
        assert classic.verdict() == sharded.verdict()
        assert classic.ok, f"seed {seed} episode not clean"


def test_sharded_manager_is_clean_on_corpus():
    """Sharding the directory must not break coherence: every corpus
    episode passes the oracle and the protocol invariants."""
    for seed in range(10):
        result = _forced_manager_episode(seed, shards=2)
        assert result.ok, (
            f"seed {seed}: oracle={result.oracle_violations} "
            f"invariants={result.invariant_violations} "
            f"error={result.run_error}"
        )


# -- complexity regression: ~linear events/messages in N -------------------


def test_fixed_per_node_workload_scales_linearly():
    """With per-node offered load fixed (8 updates per worker, NM), the
    total event and message counts must grow ~linearly in N: the
    per-node rates at 64 nodes stay within 30% of the 8-node rates.
    This is the regression guard for the large-N protocol paths — an
    O(N) term hiding in a per-node per-epoch path shows up here as
    superlinear growth."""
    per_node = {}
    for n in (8, 64):
        out = run_spec(
            RunSpec(
                app="synthetic",
                app_kwargs={"total_updates": 8 * (n - 1), "repetition": 8},
                policy="NM",
                nodes=n,
                verify=False,
            )
        )
        per_node[n] = (out.events_processed / n, out.messages / n)
    assert per_node[64][0] <= 1.3 * per_node[8][0]
    assert per_node[64][1] <= 1.3 * per_node[8][1]
