"""Tests for the branch-and-bound TSP application."""

import itertools

import numpy as np
import pytest

from repro.apps.tsp import (
    Tsp,
    held_karp_oracle,
    nearest_neighbour_tour,
    random_cities,
)

from tests.conftest import make_jvm


def brute_force(dist):
    n = dist.shape[0]
    best = float("inf")
    for perm in itertools.permutations(range(1, n)):
        length = dist[0, perm[0]]
        for a, b in zip(perm, perm[1:]):
            length += dist[a, b]
        length += dist[perm[-1], 0]
        best = min(best, length)
    return best


def test_distance_matrix_properties():
    dist = random_cities(8, seed=1)
    assert dist.shape == (8, 8)
    assert np.allclose(dist, dist.T)
    assert np.all(np.diag(dist) == 0.0)
    off_diag = dist[~np.eye(8, dtype=bool)]
    assert np.all(off_diag > 0)


def test_held_karp_matches_brute_force():
    for seed in (1, 2, 3):
        dist = random_cities(7, seed=seed)
        assert held_karp_oracle(dist) == pytest.approx(brute_force(dist))


def test_held_karp_size_cap():
    with pytest.raises(ValueError):
        held_karp_oracle(np.zeros((17, 17)))


def test_nearest_neighbour_is_valid_upper_bound():
    dist = random_cities(9, seed=4)
    assert nearest_neighbour_tour(dist) >= held_karp_oracle(dist) - 1e-9


@pytest.mark.parametrize("nodes", [2, 4])
def test_tsp_finds_optimum_on_dsm(nodes):
    app = Tsp(cities=8, seed=3)
    result = make_jvm(nodes=nodes).run(app)
    app.verify(result.output)


def test_tsp_correct_under_nm_and_at():
    for policy in ("NM", "AT"):
        from repro.bench.runner import make_policy

        app = Tsp(cities=7, seed=5)
        result = make_jvm(nodes=3, policy=make_policy(policy)).run(app)
        app.verify(result.output)


def test_tsp_bound_object_rarely_migrates():
    """The incumbent bound is multiple-writer: the adaptive protocol must
    not thrash its home (the paper's TSP observation)."""
    app = Tsp(cities=8, seed=3)
    result = make_jvm(nodes=4).run(app)
    assert result.migrations <= 3


def test_tsp_validation():
    with pytest.raises(ValueError):
        Tsp(cities=3)
    with pytest.raises(ValueError):
        Tsp(cities=17)
