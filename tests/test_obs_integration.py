"""End-to-end tests: telemetry through the executor, CLI and report."""

import json
from dataclasses import replace

from repro.bench.executor import ObsSpec, RunSpec, execute, run_spec
from repro.bench.obs_report import render_trace_report
from repro.obs.export import load_trace
from repro.obs.metrics import MetricsRegistry

SPEC = RunSpec(
    app="synthetic",
    app_kwargs={"total_updates": 64, "repetition": 8},
    policy="AT",
    nodes=4,
    tag="t0",
)


def test_obsspec_enabled_and_for_run(tmp_path):
    assert not ObsSpec().enabled
    obs = ObsSpec(trace_path=str(tmp_path / "run.jsonl"), metrics=True)
    assert obs.enabled
    assert obs.for_run(0, 1) is obs  # single run keeps the path
    derived = obs.for_run(2, 5)
    assert derived.trace_path == str(tmp_path / "run-002.jsonl")
    assert derived.metrics  # other fields carried over


def test_run_spec_with_obs_carries_telemetry(tmp_path):
    trace = str(tmp_path / "run.jsonl")
    obs = ObsSpec(trace_path=trace, metrics=True)
    outcome = run_spec(replace(SPEC, obs=obs))
    telemetry = outcome.telemetry
    assert telemetry is not None
    assert set(telemetry["phases"]) == {"build", "simulate", "verify"}
    assert telemetry["phases"]["simulate"]["count"] == 1
    assert telemetry["trace"]["path"] == trace
    assert telemetry["trace"]["events"] > 0
    metrics = MetricsRegistry.from_snapshot(telemetry["metrics"])
    assert (
        metrics.counter_total("dsm_migrations_total") == outcome.migrations
    )
    # the streamed trace agrees with the outcome
    loaded = load_trace(trace)
    assert len(loaded.migrations()) == outcome.migrations
    json.dumps(telemetry)  # picklable and JSON-clean


def test_telemetry_does_not_change_deterministic_fields():
    bare = run_spec(SPEC)
    obs = ObsSpec(metrics=True)
    instrumented = run_spec(replace(SPEC, obs=obs))
    assert bare.telemetry is None
    assert instrumented.deterministic() == bare.deterministic()


def test_execute_applies_obs_and_reports_progress(tmp_path):
    specs = [
        replace(SPEC, tag=f"t{i}", seed=i)
        for i in range(3)
    ]
    obs = ObsSpec(trace_path=str(tmp_path / "sweep.jsonl"), metrics=True)
    seen = []
    outcomes = execute(
        specs, jobs=1, obs=obs,
        progress=lambda done, total, outcome: seen.append((done, total)),
    )
    assert seen == [(1, 3), (2, 3), (3, 3)]
    assert [o.tag for o in outcomes] == ["t0", "t1", "t2"]
    for i, outcome in enumerate(outcomes):
        path = str(tmp_path / f"sweep-{i:03d}.jsonl")
        assert outcome.telemetry["trace"]["path"] == path
        assert load_trace(path).events  # file exists and has events
    # per-run snapshots merge into one registry
    total = MetricsRegistry()
    for outcome in outcomes:
        total.merge(outcome.telemetry["metrics"])
    assert total.counter_total("dsm_migrations_total") == sum(
        o.migrations for o in outcomes
    )


def test_execute_without_obs_is_unchanged():
    outcomes = execute([SPEC], jobs=1)
    assert outcomes[0].telemetry is None


def test_render_trace_report(tmp_path):
    trace = str(tmp_path / "run.jsonl")
    obs = ObsSpec(trace_path=trace)
    outcome = run_spec(replace(SPEC, obs=obs))
    report = render_trace_report(trace)
    assert "migrations" in report
    assert str(outcome.migrations) in report
    assert "threshold" in report


def test_cli_observability_flags(tmp_path, capsys):
    from repro.bench.cli import main

    trace = str(tmp_path / "cli.jsonl")
    metrics_out = str(tmp_path / "metrics.json")
    code = main([
        "figure5", "--jobs", "1",
        "--trace-out", trace,
        "--metrics-out", metrics_out,
        "--progress",
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "[1/" in captured.err  # progress heartbeats on stderr
    snap = json.load(open(metrics_out, encoding="utf-8"))
    assert snap["runs"] > 0
    assert snap["counters"]
    # per-sweep trace files were derived from the base path
    produced = sorted(tmp_path.glob("cli-figure5-*.jsonl"))
    assert len(produced) == snap["runs"]


def test_cli_report_target(tmp_path, capsys):
    from repro.bench.cli import main

    trace = str(tmp_path / "run.jsonl")
    run_spec(replace(SPEC, obs=ObsSpec(trace_path=trace)))
    assert main(["report", "--trace", trace]) == 0
    out = capsys.readouterr().out
    assert "migrations" in out
