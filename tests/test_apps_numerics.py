"""Numerical robustness checks across the applications."""

import numpy as np
import pytest

from repro.apps.asp import Asp, floyd_oracle, random_graph, INF
from repro.apps.nbody import BarnesHutTree, THETA
from repro.apps.sor import sor_oracle
from repro.apps.lu import dominant_matrix, lu_oracle

from tests.conftest import make_jvm


def test_asp_handles_unreachable_nodes():
    """Sparse graphs leave INF distances; the DSM result must carry them
    through the min-plus updates without overflow."""
    app = Asp(size=16, seed=3, density=0.08)
    result = make_jvm(nodes=4).run(app)
    app.verify(result.output)
    assert (result.output >= 0).all()
    # something is genuinely unreachable at this density
    assert (result.output >= INF / 2).any()


def test_asp_dense_graph_fully_reachable():
    app = Asp(size=16, seed=3, density=1.0)
    result = make_jvm(nodes=4).run(app)
    app.verify(result.output)
    off_diag = result.output[~np.eye(16, dtype=bool)]
    assert (off_diag < INF / 2).all()


def test_floyd_oracle_triangle_inequality():
    dist = floyd_oracle(random_graph(14, seed=8))
    n = dist.shape[0]
    for k in range(n):
        assert (
            dist <= dist[:, k, None] + dist[None, k, :] + 1e-9
        ).all(), f"triangle inequality violated through {k}"


def test_sor_fixed_point_is_stable():
    """A harmonic (linear) field is a fixed point of the 5-point stencil."""
    n = 12
    x = np.arange(n)[None, :].repeat(n, axis=0).astype(float)
    out = sor_oracle(x, iterations=5)
    assert np.allclose(out, x, atol=1e-12)


def test_bh_tree_far_field_matches_point_mass():
    """A distant cluster must act like a single point mass (the theta
    criterion's purpose)."""
    rng = np.random.default_rng(5)
    xs = np.concatenate([rng.uniform(-0.01, 0.01, 50), [100.0]])
    ys = np.concatenate([rng.uniform(-0.01, 0.01, 50), [0.0]])
    ms = np.concatenate([np.full(50, 1.0), [1.0]])
    tree = BarnesHutTree(xs, ys, ms)
    ax, ay = tree.acceleration(50)
    # all 50 bodies are ~100 away: |a| ~ 50 / 100^2
    assert ax == pytest.approx(-50.0 / 100.0**2, rel=0.01)
    assert abs(ay) < 1e-4


def test_bh_theta_zero_is_exact():
    """theta -> 0 degenerates to the direct sum."""
    import repro.apps.nbody as nbody_mod

    rng = np.random.default_rng(9)
    xs, ys = rng.uniform(-1, 1, 30), rng.uniform(-1, 1, 30)
    ms = rng.uniform(0.5, 1.5, 30)
    original = nbody_mod.THETA
    try:
        nbody_mod.THETA = 0.0
        tree = BarnesHutTree(xs, ys, ms)
        ax, ay = tree.acceleration(0)
    finally:
        nbody_mod.THETA = original
    dx = xs - xs[0]
    dy = ys - ys[0]
    d2 = dx**2 + dy**2 + nbody_mod.SOFTENING**2
    inv = ms / (d2 * np.sqrt(d2))
    inv[0] = 0.0
    assert ax == pytest.approx(float(np.sum(dx * inv)))
    assert ay == pytest.approx(float(np.sum(dy * inv)))


def test_lu_conditioning_headroom():
    """Diagonal dominance keeps elimination factors small (< 1)."""
    m = dominant_matrix(24, seed=11)
    lu = lu_oracle(m)
    factors = np.tril(lu, k=-1)
    assert np.abs(factors).max() < 1.0


def test_theta_is_sane():
    assert 0.0 < THETA < 1.0
