"""Tests for the Barnes-Hut N-body application."""

import numpy as np
import pytest

from repro.apps.nbody import BarnesHutTree, NBody, nbody_oracle

from tests.conftest import make_jvm


def _cloud(n, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.uniform(-1, 1, n),
        rng.uniform(-1, 1, n),
        rng.uniform(0.5, 1.5, n),
    )


def test_tree_total_mass():
    xs, ys, ms = _cloud(50)
    tree = BarnesHutTree(xs, ys, ms)
    assert tree.root.mass == pytest.approx(ms.sum())


def test_tree_center_of_mass():
    xs, ys, ms = _cloud(50)
    tree = BarnesHutTree(xs, ys, ms)
    assert tree.root.mx / tree.root.mass == pytest.approx(
        np.average(xs, weights=ms)
    )
    assert tree.root.my / tree.root.mass == pytest.approx(
        np.average(ys, weights=ms)
    )


def test_tree_two_bodies_exact():
    xs = np.array([0.0, 1.0])
    ys = np.array([0.0, 0.0])
    ms = np.array([1.0, 1.0])
    tree = BarnesHutTree(xs, ys, ms)
    ax, ay = tree.acceleration(0)
    # pull along +x with softened distance
    from repro.apps.nbody import SOFTENING

    dist2 = 1.0 + SOFTENING**2
    assert ay == pytest.approx(0.0)
    assert ax == pytest.approx(1.0 / (dist2 * np.sqrt(dist2)))


def test_tree_acceleration_close_to_direct_sum():
    xs, ys, ms = _cloud(200, seed=4)
    tree = BarnesHutTree(xs, ys, ms)
    from repro.apps.nbody import SOFTENING

    for i in (0, 37, 199):
        ax, ay = tree.acceleration(i)
        dx = xs - xs[i]
        dy = ys - ys[i]
        d2 = dx * dx + dy * dy + SOFTENING**2
        inv = ms / (d2 * np.sqrt(d2))
        inv[i] = 0.0
        direct_ax = float(np.sum(dx * inv))
        direct_ay = float(np.sum(dy * inv))
        # theta=0.5 keeps the approximation within a few percent
        norm = max(1.0, abs(direct_ax), abs(direct_ay))
        assert abs(ax - direct_ax) / norm < 0.05
        assert abs(ay - direct_ay) / norm < 0.05


def test_tree_empty_rejected():
    with pytest.raises(ValueError):
        BarnesHutTree(np.array([]), np.array([]), np.array([]))


def test_tree_coincident_bodies_supported():
    xs = np.array([0.5, 0.5, 0.5])
    ys = np.array([0.5, 0.5, 0.5])
    ms = np.array([1.0, 1.0, 1.0])
    # Coincident points could recurse forever without the softened leaf
    # handling; the tree must terminate and conserve mass.
    tree = BarnesHutTree(xs, ys, ms)
    assert tree.root.mass == pytest.approx(3.0)


@pytest.mark.parametrize("nodes", [2, 4])
def test_nbody_correct_on_dsm(nodes):
    app = NBody(bodies=24, steps=2)
    result = make_jvm(nodes=nodes).run(app)
    app.verify(result.output)


def test_nbody_matches_oracle_bitwise():
    app = NBody(bodies=16, steps=3)
    result = make_jvm(nodes=4).run(app)
    xs, ys = result.output
    ex, ey = nbody_oracle(
        app._x0, app._y0, app._vx0, app._vy0, app._m0, app.steps
    )
    assert np.array_equal(xs, ex)
    assert np.array_equal(ys, ey)


def test_nbody_no_migrations_with_creation_site_homes():
    """Bodies are created by their owners, so homes start optimal — the
    paper's observation that home migration has little to offer NBody."""
    app = NBody(bodies=24, steps=2)
    result = make_jvm(nodes=4).run(app)
    assert result.migrations == 0


def test_nbody_validation():
    with pytest.raises(ValueError):
        NBody(bodies=1)
    with pytest.raises(ValueError):
        NBody(bodies=8, steps=0)
