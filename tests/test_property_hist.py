"""Property-based invariants of the mergeable latency histogram.

The SLO analytics engine merges per-shard histograms into one before
reporting percentiles, so merge must be a true monoid operation on the
recorded multiset:

* **single-shot equivalence** — recording a sequence into one histogram
  equals recording any partition of it into shards and merging:
  bit-identical buckets, count, ``sum_ticks``, min/max, and therefore
  identical quantiles;
* **commutativity / associativity** — shard merge order never matters;
* **empty identity** — merging an empty histogram is a no-op;
* **quantile bounds** — every quantile lies within the recorded
  [min, max] and within its bucket's upper bound error envelope.

All generators are derandomized so CI failures replay exactly.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.obs.hist import (
    LatencyHistogram,
    SUBBUCKETS,
    TICKS_PER_UNIT,
    bucket_index,
    bucket_upper,
)

# Latencies spanning the realistic simulated range: sub-us to minutes,
# plus exact zeros (instant local operations).
_values = st.lists(
    st.one_of(
        st.just(0.0),
        st.floats(min_value=1e-3, max_value=1e8, allow_nan=False),
    ),
    min_size=0,
    max_size=200,
)
_quantile = st.floats(min_value=0.0, max_value=1.0)


def _single_shot(values):
    hist = LatencyHistogram()
    for value in values:
        hist.record(value)
    return hist


@settings(derandomize=True)
@given(values=_values, cut=st.integers(min_value=0, max_value=200))
def test_property_merge_equals_single_shot(values, cut):
    """Any two-way split, recorded apart and merged, is bit-identical."""
    cut = min(cut, len(values))
    left = _single_shot(values[:cut])
    right = _single_shot(values[cut:])
    merged = LatencyHistogram.merged([left, right])
    whole = _single_shot(values)
    assert merged == whole
    assert merged.to_dict() == whole.to_dict()
    assert merged.summary() == whole.summary()


@settings(derandomize=True)
@given(values=_values, cut=st.integers(min_value=0, max_value=200))
def test_property_merge_commutes(values, cut):
    """a+b == b+a on every observable field."""
    cut = min(cut, len(values))
    a = _single_shot(values[:cut])
    b = _single_shot(values[cut:])
    assert LatencyHistogram.merged([a, b]) == LatencyHistogram.merged([b, a])


@settings(derandomize=True)
@given(
    values=_values,
    cut1=st.integers(min_value=0, max_value=200),
    cut2=st.integers(min_value=0, max_value=200),
)
def test_property_merge_associates(values, cut1, cut2):
    """(a+b)+c == a+(b+c) for every three-way partition."""
    i, j = sorted((min(cut1, len(values)), min(cut2, len(values))))
    a = _single_shot(values[:i])
    b = _single_shot(values[i:j])
    c = _single_shot(values[j:])
    left_first = LatencyHistogram.merged([a, b]).merge(c)
    right_first = LatencyHistogram.merged([b, c])
    assert left_first == LatencyHistogram.merged([a, right_first])


@settings(derandomize=True)
@given(values=_values)
def test_property_empty_is_identity(values):
    """Merging an empty histogram changes nothing, either direction."""
    hist = _single_shot(values)
    empty = LatencyHistogram()
    assert LatencyHistogram.merged([hist, empty]) == hist
    assert LatencyHistogram.merged([empty, hist]) == hist


@settings(derandomize=True)
@given(values=_values, q=_quantile)
def test_property_quantile_within_recorded_range(values, q):
    """Quantiles are clamped into the exact recorded [min, max]."""
    if not values:
        assert _single_shot(values).quantile(q) is None
        return
    hist = _single_shot(values)
    result = hist.quantile(q)
    assert min(values) <= result <= max(values)


@settings(derandomize=True)
@given(
    value=st.floats(min_value=1e-3, max_value=1e8, allow_nan=False)
)
def test_property_bucket_relative_error(value):
    """The bucket envelope bounds values to ~1/SUBBUCKETS relative error."""
    index = bucket_index(value)
    upper = bucket_upper(index)
    assert value <= upper
    # the bucket's width is one sub-bucket of its binade
    assert upper <= value * (1.0 + 1.0 / SUBBUCKETS) + 1e-12


@settings(derandomize=True)
@given(values=_values, q=_quantile)
def test_property_quantile_at_value_matches_quantile(values, q):
    """quantile_at returns exactly quantile()'s value, plus the flag."""
    hist = _single_shot(values)
    value, estimated = hist.quantile_at(q)
    assert value == hist.quantile(q)
    if value is None:
        assert not estimated


@settings(derandomize=True)
@given(values=_values, q=_quantile)
def test_property_saturated_quantiles_are_flagged(values, q):
    """estimated ⇔ the rank clamps to the max sample (and q < 1)."""
    if not values:
        return
    hist = _single_shot(values)
    value, estimated = hist.quantile_at(q)
    expected = q < 1.0 and math.ceil(q * hist.count) >= hist.count
    assert estimated == expected
    if estimated:
        # a saturated quantile reports the recorded maximum
        assert value == hist.quantile(1.0)


def test_small_sample_tail_is_estimated():
    """The PR-10 fix: p999 of a 5-sample histogram is flagged, not
    silently reported as a resolved percentile equal to the max."""
    hist = _single_shot([1.0, 2.0, 3.0, 4.0, 5.0])
    p999, estimated = hist.quantile_at(0.999)
    assert estimated
    assert p999 == hist.quantile(1.0)
    # p50 of the same sample resolves exactly — not flagged
    _, est50 = hist.quantile_at(0.5)
    assert not est50
    # and the summary names exactly the saturated quantiles
    assert hist.summary()["estimated"] == ["p95", "p99", "p999"]


def test_large_sample_tail_not_estimated():
    """With >=1000 samples every canonical quantile resolves."""
    hist = _single_shot([float(i + 1) for i in range(1000)])
    assert hist.summary()["estimated"] == []
    _, est = hist.quantile_at(0.999)
    assert not est


@settings(derandomize=True)
@given(values=_values)
def test_property_roundtrip_dict(values):
    """to_dict/from_dict is a lossless round trip."""
    hist = _single_shot(values)
    clone = LatencyHistogram.from_dict(hist.to_dict())
    assert clone == hist
    assert clone.summary() == hist.summary()


@settings(derandomize=True)
@given(values=_values)
def test_property_sum_is_order_independent(values):
    """Integer tick accumulation makes the mean permutation-invariant."""
    forward = _single_shot(values)
    backward = _single_shot(list(reversed(values)))
    assert forward.sum_ticks == backward.sum_ticks
    assert forward.mean == backward.mean
    if values:
        # each sample quantizes to the nearest tick: the mean is within
        # half a tick (plus float rounding) of the true average
        expected = sum(values) / len(values)
        assert math.isclose(
            forward.mean,
            expected,
            rel_tol=1e-3,
            abs_tol=0.5 / TICKS_PER_UNIT,
        )
