"""Tests for the bench runner and registries."""

import pytest

from repro.apps import SingleWriterBenchmark, Sor
from repro.bench.runner import (
    MECHANISMS,
    POLICIES,
    make_mechanism,
    make_policy,
    run_once,
)
from repro.core.policies import AdaptiveThreshold, FixedThreshold


def test_policy_registry_complete():
    assert set(POLICIES) == {"NM", "FT1", "FT2", "AT", "JUMP", "LF", "JIAJIA"}
    for name in POLICIES:
        policy = make_policy(name)
        assert policy.name == name


def test_mechanism_registry_complete():
    assert set(MECHANISMS) == {
        "forwarding-pointer", "broadcast", "home-manager"
    }
    for name in MECHANISMS:
        assert make_mechanism(name).name == name


def test_unknown_names_rejected():
    with pytest.raises(ValueError):
        make_policy("nope")
    with pytest.raises(ValueError):
        make_mechanism("nope")


def test_ft_instances_are_fresh():
    a, b = make_policy("FT1"), make_policy("FT1")
    assert a is not b
    assert isinstance(a, FixedThreshold)


def test_run_once_by_name_and_instance():
    by_name = run_once(Sor(size=8, iterations=1), policy="AT", nodes=2)
    by_instance = run_once(
        Sor(size=8, iterations=1), policy=AdaptiveThreshold(), nodes=2
    )
    assert by_name.execution_time_us == by_instance.execution_time_us


def test_run_once_verifies_by_default():
    result = run_once(
        SingleWriterBenchmark(total_updates=32, repetition=2),
        policy="NM",
        nodes=3,
    )
    assert result.output >= 32


def test_run_once_custom_mechanism():
    result = run_once(
        SingleWriterBenchmark(total_updates=32, repetition=4),
        policy="AT",
        nodes=3,
        mechanism="broadcast",
    )
    assert result.mechanism_name == "broadcast"
