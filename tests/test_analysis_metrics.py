"""Tests for analysis helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.metrics import (
    improvement_percent,
    normalize_map,
    normalize_series,
    speedup,
)


def test_normalize_series_peak_is_one():
    assert normalize_series([2.0, 4.0, 1.0]) == [0.5, 1.0, 0.25]


def test_normalize_empty():
    assert normalize_series([]) == []


def test_normalize_zero_peak_rejected():
    with pytest.raises(ValueError):
        normalize_series([0.0, 0.0])


def test_normalize_map_keys_preserved():
    normed = normalize_map({"a": 1.0, "b": 2.0})
    assert normed == {"a": 0.5, "b": 1.0}


def test_improvement_percent_signs():
    assert improvement_percent(100.0, 80.0) == pytest.approx(20.0)
    assert improvement_percent(100.0, 120.0) == pytest.approx(-20.0)
    assert improvement_percent(100.0, 100.0) == 0.0


def test_improvement_invalid_baseline():
    with pytest.raises(ValueError):
        improvement_percent(0.0, 1.0)


def test_speedup():
    assert speedup(10.0, 2.0) == 5.0
    with pytest.raises(ValueError):
        speedup(1.0, 0.0)


@given(
    values=st.lists(
        st.floats(min_value=1e-6, max_value=1e9), min_size=1, max_size=32
    )
)
def test_property_normalized_values_in_unit_interval(values):
    normed = normalize_series(values)
    assert max(normed) == pytest.approx(1.0)
    assert all(0 < v <= 1.0 + 1e-12 for v in normed)


@given(
    baseline=st.floats(min_value=1e-6, max_value=1e9),
    improved=st.floats(min_value=0, max_value=1e9),
)
def test_property_improvement_bounded_above_by_100(baseline, improved):
    # float rounding of 100*(b-0)/b can land one ulp above 100
    assert improvement_percent(baseline, improved) <= 100.0 + 1e-9
