"""Property-based invariants of the threshold rule under paper defaults.

Complements ``test_core_threshold.py`` (which pins the rule's point
values and basic monotonicity) with the paper-parameterisation
properties the conformance harness leans on:

* the default arguments *are* the paper's §4.2 constants — calling the
  rule without ``lam``/``t_init`` is identical to passing ``LAMBDA`` and
  ``T_INIT`` explicitly;
* with the paper's balance ``lam = 1/alpha``, each exclusive home write
  lowers the threshold by exactly one (until the floor), mirroring how
  each redirection raises it by ``1/alpha``;
* the clamp is *exactly* ``max(..., t_init)`` — whenever the unclamped
  linear form stays above the floor the rule is affine, and whenever it
  dips below, the result is the floor itself;
* feedback composes: accumulating ``(R, E)`` in one step equals
  freezing an intermediate base, as the engine does at migrations.

All generators are derandomized so CI failures replay exactly.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.threshold import LAMBDA, T_INIT, adaptive_threshold

# Moderate magnitudes: the composition/affine identities below compare
# float sums for exact equality, which holds as long as every
# intermediate is exactly representable (integers and halves well below
# 2**52 are).
_base = st.floats(min_value=1.0, max_value=1e6)
_count = st.integers(min_value=0, max_value=10**6)
_alpha = st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0])
_lam = st.sampled_from([0.0, 0.5, 1.0, 2.0])


@settings(derandomize=True)
@given(base=_base, r=_count, e=_count)
def test_property_defaults_are_paper_constants(base, r, e):
    """Omitting lam/t_init must equal passing the §4.2 constants."""
    assert adaptive_threshold(base, r, e, alpha=2.0) == adaptive_threshold(
        base, r, e, alpha=2.0, lam=LAMBDA, t_init=T_INIT
    )
    assert LAMBDA == 1.0 and T_INIT == 1.0


@settings(derandomize=True)
@given(base=_base, r=_count, e=_count, alpha=_alpha)
def test_property_lam_inverse_alpha_unit_decrement(base, r, e, alpha):
    """With ``lam = 1/alpha`` each E lowers the threshold by exactly 1.

    ``lam * (R - alpha*E) = R/alpha - E``: the positive feedback becomes
    a unit decrement regardless of the network coefficient, which is the
    balance point the paper's ``lam = 1`` default hits at ``alpha = 1``.
    """
    lam = 1.0 / alpha
    with_e = adaptive_threshold(base, r, e, alpha, lam=lam)
    without_e = adaptive_threshold(base, r, 0, alpha, lam=lam)
    expected = max(without_e - e, T_INIT)
    assert math.isclose(with_e, expected, rel_tol=0, abs_tol=1e-9)


@settings(derandomize=True)
@given(base=_base, r=_count, e=_count, alpha=_alpha, lam=_lam)
def test_property_clamp_is_exact(base, r, e, alpha, lam):
    """The rule is the affine form when above the floor, T_init when not."""
    linear = base + lam * (r - alpha * e)
    got = adaptive_threshold(base, r, e, alpha, lam=lam)
    if linear >= T_INIT:
        assert got == linear
    else:
        assert got == T_INIT


@settings(derandomize=True)
@given(
    base=_base,
    r1=_count,
    e1=_count,
    r2=_count,
    e2=_count,
    alpha=_alpha,
    lam=_lam,
)
def test_property_feedback_composes_through_frozen_base(
    base, r1, e1, r2, e2, alpha, lam
):
    """Freezing an intermediate threshold as the next base (what
    ``on_migrated`` does) never yields less than accumulating the same
    feedback in one epoch — the clamp can only raise the split path."""
    one_shot = adaptive_threshold(base, r1 + r2, e1 + e2, alpha, lam=lam)
    frozen = adaptive_threshold(base, r1, e1, alpha, lam=lam)
    split = adaptive_threshold(frozen, r2, e2, alpha, lam=lam)
    assert split >= one_shot or math.isclose(split, one_shot, abs_tol=1e-9)
    # and when neither leg clamps, the two paths agree exactly
    if (
        base + lam * (r1 - alpha * e1) >= T_INIT
        and frozen + lam * (r2 - alpha * e2) >= T_INIT
    ):
        assert math.isclose(split, one_shot, rel_tol=0, abs_tol=1e-9)
