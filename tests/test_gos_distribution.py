"""Tests for home assignment and block partitioning helpers."""

import pytest

from repro.gos.distribution import block_owner, block_range, round_robin_homes


def test_round_robin_cycles():
    assert list(round_robin_homes(6, 4)) == [0, 1, 2, 3, 0, 1]


def test_round_robin_start_offset():
    assert list(round_robin_homes(4, 4, start=2)) == [2, 3, 0, 1]


def test_round_robin_validation():
    with pytest.raises(ValueError):
        list(round_robin_homes(-1, 4))
    with pytest.raises(ValueError):
        list(round_robin_homes(4, 0))
    with pytest.raises(ValueError):
        list(round_robin_homes(4, 4, start=4))


def test_block_ranges_partition_exactly():
    total, threads = 20, 6
    seen = []
    for tid in range(threads):
        seen.extend(block_range(tid, total, threads))
    assert seen == list(range(total))


def test_block_ranges_balanced():
    sizes = [len(block_range(t, 20, 6)) for t in range(6)]
    assert max(sizes) - min(sizes) <= 1
    assert sum(sizes) == 20


def test_block_owner_consistent_with_ranges():
    total, threads = 17, 5
    for tid in range(threads):
        for index in block_range(tid, total, threads):
            assert block_owner(index, total, threads) == tid


def test_block_owner_validation():
    with pytest.raises(ValueError):
        block_owner(20, 20, 4)
    with pytest.raises(ValueError):
        block_owner(0, 20, 0)
    with pytest.raises(ValueError):
        block_range(4, 20, 4)


def test_more_threads_than_items():
    ranges = [block_range(t, 2, 5) for t in range(5)]
    lens = [len(r) for r in ranges]
    assert sum(lens) == 2
    assert all(length in (0, 1) for length in lens)
