"""Integration tests of the HLRC protocol engine (no migration policy)."""

import numpy as np
import pytest

from repro.cluster.message import MsgCategory
from repro.gos.thread import ThreadContext

from tests.conftest import make_gos, run_threads


def test_home_access_is_free_and_trapped(gos):
    obj = gos.alloc_array(8, home=0)
    lock = gos.alloc_lock(home=1)
    ctx = ThreadContext(gos, tid=0, node=0)

    def body():
        yield from ctx.acquire(lock)
        payload = yield from ctx.read(obj)
        assert payload.shape == (8,)
        payload = yield from ctx.write(obj)
        payload[0] = 1.0
        yield from ctx.release(lock)

    run_threads(gos, body())
    # no object traffic: the accessor is the home
    assert gos.stats.msg_count[MsgCategory.OBJ_REQUEST] == 0
    assert gos.stats.msg_count[MsgCategory.DIFF] == 0
    # but the monitor trapped the home accesses
    state = gos.engines[0].homes[obj.oid].state
    assert state.home_reads == 1
    assert state.home_writes == 1


def test_remote_read_faults_once_per_interval(gos):
    obj = gos.alloc_array(8, home=0)
    gos.write_global(obj, np.arange(8.0))
    ctx = ThreadContext(gos, tid=0, node=2)
    seen = []

    def body():
        first = yield from ctx.read(obj)
        seen.append(first.copy())
        again = yield from ctx.read(obj)
        assert again is first  # cache hit returns the same payload

    run_threads(gos, body())
    assert np.array_equal(seen[0], np.arange(8.0))
    assert gos.stats.msg_count[MsgCategory.OBJ_REQUEST] == 1
    assert gos.stats.events["obj"] == 1
    assert gos.engines[0].homes[obj.oid].state.remote_reads == 1


def test_write_flush_applies_diff_at_home(gos):
    obj = gos.alloc_array(64, home=0)
    lock = gos.alloc_lock(home=0)
    ctx = ThreadContext(gos, tid=0, node=3)

    def body():
        yield from ctx.acquire(lock)
        payload = yield from ctx.write(obj)
        payload[2] = 42.0
        payload[5] = -1.0
        yield from ctx.release(lock)

    run_threads(gos, body())
    home = gos.engines[0].homes[obj.oid]
    assert home.payload[2] == 42.0
    assert home.payload[5] == -1.0
    assert home.version == 1
    assert home.state.remote_writes == 1
    assert gos.stats.events["diff"] == 1
    # diff carried only the two changed elements (RLE-sized)
    diff_bytes = gos.stats.msg_bytes[MsgCategory.DIFF]
    assert diff_bytes < obj.size_bytes


def test_clean_release_sends_no_diff(gos):
    obj = gos.alloc_array(8, home=0)
    lock = gos.alloc_lock(home=0)
    ctx = ThreadContext(gos, tid=0, node=1)

    def body():
        yield from ctx.acquire(lock)
        payload = yield from ctx.write(obj)
        payload[0] = payload[0]  # no actual change
        yield from ctx.release(lock)

    run_threads(gos, body())
    assert gos.stats.msg_count[MsgCategory.DIFF] == 0


def test_acquire_invalidates_cached_copies(gos):
    """Java consistency: every synchronization re-faults cached objects."""
    obj = gos.alloc_array(8, home=0)
    lock = gos.alloc_lock(home=0)
    ctx = ThreadContext(gos, tid=0, node=1)

    def body():
        yield from ctx.read(obj)
        yield from ctx.acquire(lock)
        yield from ctx.read(obj)  # must re-fault
        yield from ctx.release(lock)

    run_threads(gos, body())
    assert gos.stats.msg_count[MsgCategory.OBJ_REQUEST] == 2


def test_lock_passes_updates_between_writers(gos):
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)
    results = []

    def incrementer(node, times):
        ctx = ThreadContext(gos, tid=node, node=node)
        for _ in range(times):
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[0] += 1
            yield from ctx.release(lock)
        results.append(node)

    run_threads(gos, incrementer(1, 10), incrementer(2, 10), incrementer(3, 10))
    final = gos.engines[0].homes[obj.oid].payload[0]
    assert final == 30.0


def test_multiple_writers_disjoint_elements_merge(gos):
    """TreadMarks-style multiple-writer: concurrent diffs merge at home."""
    obj = gos.alloc_array(8, home=0)
    barrier = gos.alloc_barrier(parties=2, home=0)

    def writer(node, index):
        ctx = ThreadContext(gos, tid=node, node=node)
        payload = yield from ctx.write(obj)
        payload[index] = float(node)
        yield from ctx.barrier(barrier)
        merged = yield from ctx.read(obj)
        assert merged[1] == 1.0
        assert merged[2] == 2.0

    run_threads(gos, writer(1, 1), writer(2, 2))
    home = gos.engines[0].homes[obj.oid]
    assert home.payload[1] == 1.0 and home.payload[2] == 2.0
    assert home.version == 2


def test_barrier_separates_phases(gos):
    obj = gos.alloc_array(4, home=0)
    barrier = gos.alloc_barrier(parties=2, home=0)
    observed = []

    def producer():
        ctx = ThreadContext(gos, tid=0, node=1)
        payload = yield from ctx.write(obj)
        payload[0] = 7.0
        yield from ctx.barrier(barrier)

    def consumer():
        ctx = ThreadContext(gos, tid=1, node=2)
        yield from ctx.barrier(barrier)
        payload = yield from ctx.read(obj)
        observed.append(payload[0])

    run_threads(gos, producer(), consumer())
    assert observed == [7.0]


def test_barrier_multiple_rounds(gos):
    obj = gos.alloc_fields(("v",), home=0)
    barrier = gos.alloc_barrier(parties=2, home=0)
    rounds = 5
    trace = []

    def body(tid, node):
        ctx = ThreadContext(gos, tid=tid, node=node)
        for phase in range(rounds):
            if phase % 2 == tid:
                payload = yield from ctx.write(obj)
                payload[0] = phase * 10 + tid
            yield from ctx.barrier(barrier)
            payload = yield from ctx.read(obj)
            trace.append((tid, phase, float(payload[0])))

    run_threads(gos, body(0, 1), body(1, 2))
    # both threads observe the same value after each barrier
    for phase in range(rounds):
        values = {v for t, p, v in trace if p == phase}
        assert len(values) == 1
        assert values == {phase * 10 + (phase % 2)}


def test_read_many_batches_by_home(gos):
    objs = [gos.alloc_array(8, home=i % 4, label=f"o{i}") for i in range(8)]
    for i, obj in enumerate(objs):
        gos.write_global(obj, np.full(8, float(i)))
    ctx = ThreadContext(gos, tid=0, node=0)

    def body():
        yield from ctx.read_many(objs)
        for i, obj in enumerate(objs):
            payload = yield from ctx.read(obj)
            assert payload[0] == float(i)

    run_threads(gos, body())
    # homes 1, 2, 3 each get exactly one batched request (home 0 is local)
    assert gos.stats.msg_count[MsgCategory.OBJ_REQUEST] == 3
    assert gos.stats.events["obj"] == 6  # six remote objects served


def test_read_many_with_all_local_is_free(gos):
    objs = [gos.alloc_array(4, home=0) for _ in range(3)]
    ctx = ThreadContext(gos, tid=0, node=0)

    def body():
        yield from ctx.read_many(objs)

    run_threads(gos, body())
    assert gos.stats.total_messages() == 0


def test_home_write_version_visible_after_lock(gos):
    obj = gos.alloc_fields(("v",), home=1)
    lock = gos.alloc_lock(home=0)
    values = []

    def home_writer():
        ctx = ThreadContext(gos, tid=0, node=1)
        yield from ctx.acquire(lock)
        payload = yield from ctx.write(obj)
        payload[0] = 5.0
        yield from ctx.release(lock)

    def remote_reader():
        ctx = ThreadContext(gos, tid=1, node=2)
        # first fault-in may precede the write; then synchronize and re-read
        yield from ctx.read(obj)
        yield from ctx.acquire(lock)
        payload = yield from ctx.read(obj)
        values.append(float(payload[0]))
        yield from ctx.release(lock)

    run_threads(gos, home_writer(), remote_reader())
    assert values == [5.0]


def test_deadlock_on_unreleased_lock(gos):
    lock = gos.alloc_lock(home=0)

    def holder():
        ctx = ThreadContext(gos, tid=0, node=1)
        yield from ctx.acquire(lock)
        # never releases

    def waiter():
        ctx = ThreadContext(gos, tid=1, node=2)
        yield from ctx.acquire(lock)

    from repro.sim.errors import DeadlockError

    with pytest.raises(DeadlockError):
        run_threads(gos, holder(), waiter())
