"""Documentation integrity: referenced files and targets must exist."""

import pathlib
import re

ROOT = pathlib.Path(__file__).parent.parent


def _doc(name):
    return (ROOT / name).read_text(encoding="utf-8")


def test_required_documents_exist():
    for name in (
        "README.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        "LICENSE",
        "docs/PROTOCOL.md",
        "docs/API.md",
        "docs/PAPER.md",
        "results/bench_quick.txt",
    ):
        assert (ROOT / name).exists(), f"{name} missing"


def test_design_experiment_targets_exist():
    text = _doc("DESIGN.md")
    for match in re.findall(r"`(benchmarks/[\w./]+\.py)`", text):
        assert (ROOT / match).exists(), f"DESIGN.md references {match}"


def test_experiments_bench_targets_exist():
    text = _doc("EXPERIMENTS.md")
    for match in re.findall(r"`(benchmarks/[\w./]+\.py)`", text):
        assert (ROOT / match).exists(), f"EXPERIMENTS.md references {match}"


def test_readme_example_references_exist():
    text = _doc("README.md")
    for match in re.findall(r"`(examples/[\w./]+\.py)`", text):
        assert (ROOT / match).exists(), f"README references {match}"


def test_readme_module_references_import():
    import importlib

    text = _doc("README.md")
    for match in set(re.findall(r"`(repro\.[\w.]+)`", text)):
        module_path = match
        # strip trailing attribute if it is not a module
        try:
            importlib.import_module(module_path)
        except ModuleNotFoundError:
            parent, _, attr = module_path.rpartition(".")
            module = importlib.import_module(parent)
            assert hasattr(module, attr), f"README references {match}"


def test_cli_targets_documented_match_registry():
    from repro.bench.cli import TARGETS

    text = _doc("README.md")
    for target in ("figure2", "figure3", "figure5", "ablation", "all"):
        assert target in TARGETS
        assert target in text


def test_experiments_claims_match_checked_in_results():
    """The numbers EXPERIMENTS.md quotes for Figure 5b (full) must match
    the checked-in bench output."""
    results = _doc("results/bench_full.txt")
    # NM at r=16: obj=4104 diff=4096 (8200 total data msgs)
    assert re.search(r"16\s+NM\s+4104\s+0\s+4096\s+0\s+8200", results)
    # FT1 at r=16
    assert re.search(r"16\s+FT1\s+263\s+256\s+256\s+1537", results)
