"""Tests for generator-based processes."""

import pytest

from repro.sim.errors import ProcessFailed, SimulationError
from repro.sim.future import Future
from repro.sim.process import Delay, join_all


def test_delay_advances_local_time(sim):
    times = []

    def body():
        yield Delay(3.0)
        times.append(sim.now)
        yield Delay(4.5)
        times.append(sim.now)

    sim.spawn(body(), name="t")
    sim.run()
    assert times == [3.0, 7.5]


def test_yield_none_is_noop_reschedule(sim):
    steps = []

    def body():
        steps.append(sim.now)
        yield None
        steps.append(sim.now)

    sim.spawn(body(), name="t")
    sim.run()
    assert steps == [0.0, 0.0]


def test_future_blocks_until_resolved(sim):
    fut = Future()
    got = []

    def waiter():
        value = yield fut
        got.append((value, sim.now))

    sim.spawn(waiter(), name="waiter")
    sim.schedule(9.0, lambda: fut.resolve("payload"))
    sim.run()
    assert got == [("payload", 9.0)]


def test_failed_future_raises_inside_generator(sim):
    fut = Future()
    caught = []

    def waiter():
        try:
            yield fut
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(waiter(), name="waiter")
    sim.schedule(1.0, lambda: fut.fail(ValueError("bad")))
    sim.run()
    assert caught == ["bad"]


def test_return_value_lands_in_finished(sim):
    def body():
        yield Delay(1.0)
        return "result"

    proc = sim.spawn(body(), name="t")
    sim.run()
    assert proc.done
    assert proc.finished.value == "result"


def test_exception_wrapped_in_process_failed(sim):
    def body():
        yield Delay(1.0)
        raise RuntimeError("kaput")

    proc = sim.spawn(body(), name="bad-proc")
    sim.run()
    assert proc.done
    failure = proc.finished.exception
    assert isinstance(failure, ProcessFailed)
    assert failure.process_name == "bad-proc"
    assert isinstance(failure.original, RuntimeError)


def test_unknown_effect_fails_process(sim):
    def body():
        yield "not-an-effect"

    proc = sim.spawn(body(), name="t")
    sim.run()
    assert isinstance(proc.finished.exception, ProcessFailed)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Delay(-0.5)


def test_yield_from_composition(sim):
    def inner():
        yield Delay(2.0)
        return 10

    def outer():
        value = yield from inner()
        yield Delay(1.0)
        return value + 1

    proc = sim.spawn(outer(), name="outer")
    sim.run()
    assert proc.finished.value == 11
    assert sim.now == 3.0


def test_join_all_collects_in_order(sim):
    def body(duration, value):
        yield Delay(duration)
        return value

    procs = [
        sim.spawn(body(3.0, "slow"), name="slow"),
        sim.spawn(body(1.0, "fast"), name="fast"),
    ]
    collected = []

    def joiner():
        results = yield from join_all(procs)
        collected.append(results)

    sim.spawn(joiner(), name="joiner")
    sim.run()
    assert collected == [["slow", "fast"]]


def test_start_twice_rejected(sim):
    def body():
        yield Delay(1.0)

    proc = sim.spawn(body(), name="t")
    with pytest.raises(SimulationError):
        proc.start()
    sim.run()


def test_two_processes_interleave_deterministically(sim):
    log = []

    def body(name, step):
        for _ in range(3):
            yield Delay(step)
            log.append((name, sim.now))

    sim.spawn(body("a", 2.0), name="a")
    sim.spawn(body("b", 3.0), name="b")
    sim.run()
    # at t=6 both wake; b's event was scheduled earlier (at t=3) so it
    # fires first — deterministic FIFO tie-breaking
    assert log == [
        ("a", 2.0), ("b", 3.0), ("a", 4.0), ("b", 6.0), ("a", 6.0), ("b", 9.0)
    ]
