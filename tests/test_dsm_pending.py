"""Edge cases for the indexed pending-work containers (dsm/pending.py).

The protocol's determinism contract requires these containers to
reproduce the service order of the flat-list code they replaced:
eligibility in arrival (FIFO) order among the eligible set.  The cases
here pin the subtle orderings — duplicate ``min_version`` keys,
pop-after-bump interleavings, and FIFO stability under interleaved
keys — that a heap or dict could silently permute.
"""

import pytest

from repro.dsm.pending import (
    KeyedFifo,
    VersionIndexedQueue,
    new_keyed_fifo,
    new_version_queue,
)


# -- VersionIndexedQueue ----------------------------------------------------


def test_duplicate_min_version_keys_pop_in_arrival_order():
    q = VersionIndexedQueue()
    for tag in ("a", "b", "c", "d"):
        q.push(5, tag)
    assert q.pop_ready(5) == ["a", "b", "c", "d"]
    assert len(q) == 0


def test_pop_ready_interleaves_versions_in_arrival_order():
    q = VersionIndexedQueue()
    q.push(2, "first")   # seq 0
    q.push(1, "second")  # seq 1
    q.push(2, "third")   # seq 2
    q.push(1, "fourth")  # seq 3
    # all eligible at version 2: arrival order wins, not version order
    assert q.pop_ready(2) == ["first", "second", "third", "fourth"]


def test_pop_ready_returns_only_newly_eligible():
    q = VersionIndexedQueue()
    q.push(1, "v1")
    q.push(3, "v3")
    q.push(2, "v2")
    assert q.pop_ready(0) == []
    assert q.pop_ready(1) == ["v1"]
    assert q.pop_ready(2) == ["v2"]
    assert len(q) == 1
    assert q.pop_ready(10) == ["v3"]


def test_pop_after_bump_preserves_arrival_order_within_each_bump():
    # requests keep arriving between version bumps; each pop must hand
    # back the newly-eligible set in arrival order, and later arrivals
    # for an already-reached version pop immediately on the next bump
    q = VersionIndexedQueue()
    q.push(1, "a")
    q.push(2, "b")
    assert q.pop_ready(1) == ["a"]
    q.push(1, "late-for-v1")  # arrives after v1 was already reached
    q.push(2, "c")
    assert q.pop_ready(2) == ["b", "late-for-v1", "c"]


def test_drain_returns_everything_in_arrival_order():
    q = VersionIndexedQueue()
    q.push(9, "x")
    q.push(1, "y")
    q.push(5, "z")
    assert q.drain() == ["x", "y", "z"]
    assert not q
    assert q.drain() == []


def test_iter_is_arrival_order_and_non_destructive():
    q = VersionIndexedQueue()
    q.push(7, "p")
    q.push(3, "q")
    assert list(q) == ["p", "q"]
    assert len(q) == 2


# -- KeyedFifo --------------------------------------------------------------


def test_pop_all_is_fifo_stable_under_interleaved_keys():
    fifo = KeyedFifo()
    fifo.add("x", 1)
    fifo.add("y", 10)
    fifo.add("x", 2)
    fifo.add("y", 20)
    fifo.add("x", 3)
    assert fifo.pop_all("x") == [1, 2, 3]
    assert fifo.pop_all("y") == [10, 20]


def test_pop_all_forgets_the_key():
    fifo = KeyedFifo()
    fifo.add("k", "only")
    assert fifo.pop_all("k") == ["only"]
    assert "k" not in fifo
    assert not fifo
    assert fifo.pop_all("k") == []


def test_truthiness_tracks_parked_work():
    fifo = KeyedFifo()
    assert not fifo
    fifo.add(42, "item")
    assert fifo
    assert 42 in fifo
    assert len(fifo) == 1
    fifo.pop_all(42)
    assert not fifo


def test_prune_empty_drops_only_drained_in_place_keys():
    fifo = KeyedFifo()
    fifo.add("live", 1)
    fifo.add("dead", 2)
    # simulate a caller draining a queue in place through a held reference
    fifo._by_key["dead"].clear()
    assert fifo.prune_empty() == 1
    assert "dead" not in fifo
    assert fifo.pop_all("live") == [1]
    # idempotent on a clean map
    assert fifo.prune_empty() == 0


def test_add_after_prune_empty_starts_a_fresh_queue():
    # pruning must fully forget the key: a later add for it creates a
    # fresh FIFO, and a queue reference held across the prune cannot
    # resurrect parked items into the new one
    fifo = KeyedFifo()
    fifo.add("k", "old")
    stale_ref = fifo._by_key["k"]
    stale_ref.clear()  # drained in place by a reference-holding caller
    assert fifo.prune_empty() == 1
    stale_ref.append("ghost")  # writes to the pruned, orphaned deque
    fifo.add("k", "new")
    assert fifo.pop_all("k") == ["new"]
    assert not fifo
    assert fifo.prune_empty() == 0


# -- compiled twins ---------------------------------------------------------
#
# The kernel ships C twins of both containers with the same API and the
# same service order.  The subtle orderings pinned above for the Python
# classes are re-pinned here against the C classes directly, so a twin
# regression cannot hide behind the (whole-run) backend-parity hashes.


def _kernel_classes():
    from repro import _kernel

    module = _kernel.kernel()
    if module is None:
        pytest.skip(
            f"compiled backend unavailable: {_kernel.backend_info()['reason']}"
        )
    return module.VersionIndexedQueue, module.KeyedFifo


def test_compiled_duplicate_min_version_keys_pop_in_arrival_order():
    vq_cls, _ = _kernel_classes()
    q = vq_cls()
    for tag in ("a", "b", "c", "d"):
        q.push(5, tag)
    assert q.pop_ready(5) == ["a", "b", "c", "d"]
    assert len(q) == 0


def test_compiled_pop_after_bump_preserves_arrival_order():
    vq_cls, _ = _kernel_classes()
    q = vq_cls()
    q.push(1, "a")
    q.push(2, "b")
    assert q.pop_ready(1) == ["a"]
    q.push(1, "late-for-v1")
    q.push(2, "c")
    assert q.pop_ready(2) == ["b", "late-for-v1", "c"]


def test_compiled_prune_empty_drops_only_drained_in_place_keys():
    _, kf_cls = _kernel_classes()
    fifo = kf_cls()
    fifo.add("live", 1)
    fifo.add("dead", 2)
    fifo._by_key["dead"].clear()
    assert fifo.prune_empty() == 1
    assert "dead" not in fifo
    assert fifo.pop_all("live") == [1]
    assert fifo.prune_empty() == 0


def test_compiled_and_python_twins_agree_on_a_mixed_script():
    """One interleaved operation script, replayed on both implementations."""
    vq_cls, kf_cls = _kernel_classes()
    for py_cls, c_cls in ((VersionIndexedQueue, vq_cls), (KeyedFifo, kf_cls)):
        py, cc = py_cls(), c_cls()
        if py_cls is VersionIndexedQueue:
            script = [
                ("push", 3, "x"), ("push", 1, "y"), ("pop", 2),
                ("push", 2, "z"), ("pop", 3), ("drain",),
            ]
            for op in script:
                if op[0] == "push":
                    py.push(op[1], op[2])
                    cc.push(op[1], op[2])
                elif op[0] == "pop":
                    assert py.pop_ready(op[1]) == cc.pop_ready(op[1])
                else:
                    assert py.drain() == cc.drain()
                assert len(py) == len(cc)
                assert list(py) == list(cc)
        else:
            for key, item in [("a", 1), ("b", 2), ("a", 3), ("c", 4)]:
                py.add(key, item)
                cc.add(key, item)
            assert py.pop_all("a") == cc.pop_all("a") == [1, 3]
            assert ("a" in py) == ("a" in cc) is False
            assert len(py) == len(cc) == 2
            assert py.prune_empty() == cc.prune_empty() == 0


def test_factories_return_backend_classes():
    from repro import _kernel

    vq, kf = new_version_queue(), new_keyed_fifo()
    if _kernel.kernel() is not None:
        assert type(vq).__module__ == "repro._kernel._kernelc"
        assert type(kf).__module__ == "repro._kernel._kernelc"
    else:
        assert isinstance(vq, VersionIndexedQueue)
        assert isinstance(kf, KeyedFifo)
