"""Tests for shared object descriptors and the heap."""

import numpy as np
import pytest

from repro.memory.heap import ObjectHeap
from repro.memory.objects import (
    ArraySpec,
    FieldsSpec,
    OBJECT_HEADER_BYTES,
    SharedObject,
)


def test_array_spec_size_model():
    spec = ArraySpec(length=100, dtype="float64")
    assert spec.itemsize == 8
    assert spec.data_bytes == 800
    obj = SharedObject(oid=1, spec=spec)
    assert obj.size_bytes == OBJECT_HEADER_BYTES + 800


def test_array_payload_zeroed():
    spec = ArraySpec(length=5, dtype="int32")
    payload = spec.new_payload()
    assert payload.dtype == np.int32
    assert payload.shape == (5,)
    assert not payload.any()


def test_array_invalid_length():
    with pytest.raises(ValueError):
        ArraySpec(length=0)


def test_array_invalid_dtype():
    with pytest.raises(TypeError):
        ArraySpec(length=4, dtype="not-a-dtype")


def test_fields_spec_slots():
    spec = FieldsSpec(fields=("x", "y", "m"))
    assert spec.slot("x") == 0
    assert spec.slot("m") == 2
    with pytest.raises(KeyError):
        spec.slot("nope")


def test_fields_duplicate_names_rejected():
    with pytest.raises(ValueError):
        FieldsSpec(fields=("a", "a"))


def test_fields_empty_rejected():
    with pytest.raises(ValueError):
        FieldsSpec(fields=())


def test_fields_size_model():
    obj = SharedObject(oid=2, spec=FieldsSpec(fields=("a", "b")))
    assert obj.size_bytes == OBJECT_HEADER_BYTES + 16


def test_heap_allocates_unique_oids():
    heap = ObjectHeap()
    a = heap.alloc_array(10)
    b = heap.alloc_fields(("f",))
    assert a.oid != b.oid
    assert len(heap) == 2
    assert a.oid in heap and b.oid in heap


def test_heap_initial_home_tracking():
    heap = ObjectHeap()
    obj = heap.alloc_array(4, home=3)
    assert heap.initial_home(obj.oid) == 3
    assert heap.get(obj.oid) is obj


def test_heap_negative_home_rejected():
    heap = ObjectHeap()
    with pytest.raises(ValueError):
        heap.alloc_array(4, home=-1)


def test_heap_unknown_oid():
    heap = ObjectHeap()
    with pytest.raises(KeyError):
        heap.get(999)


def test_heap_iteration_order():
    heap = ObjectHeap()
    objs = [heap.alloc_array(2) for _ in range(5)]
    assert [o.oid for o in heap] == [o.oid for o in objs]


def test_meta_not_part_of_identity():
    spec = ArraySpec(length=3)
    a = SharedObject(oid=1, spec=spec, meta={"row": 7})
    b = SharedObject(oid=1, spec=spec, meta={"row": 8})
    assert a == b
    assert hash(a) == hash(b)
