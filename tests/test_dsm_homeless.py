"""Tests for the homeless (TreadMarks-style) LRC baseline."""

import numpy as np
import pytest

from repro.apps import Asp, SingleWriterBenchmark, Sor
from repro.cluster.hockney import FAST_ETHERNET
from repro.gos.homeless import HomelessObjectSpace
from repro.gos.jvm import DistributedJVM
from repro.gos.thread import ThreadContext

from tests.conftest import run_threads


def homeless_jvm(nodes=4):
    return DistributedJVM(
        nodes=nodes, comm_model=FAST_ETHERNET, protocol="homeless"
    )


def test_protocol_name_validation():
    with pytest.raises(ValueError):
        DistributedJVM(nodes=2, comm_model=FAST_ETHERNET, protocol="bogus")


def test_result_reports_homeless():
    result = homeless_jvm(3).run(Sor(size=9, iterations=1))
    assert result.policy_name == "HOMELESS"


def test_initial_image_shared_without_messages():
    gos = HomelessObjectSpace(3, FAST_ETHERNET)
    obj = gos.alloc_array(4)
    gos.write_global(obj, np.array([1.0, 2.0, 3.0, 4.0]))
    seen = []

    def reader(node):
        ctx = ThreadContext(gos, tid=node, node=node)
        payload = yield from ctx.read(obj)
        seen.append(list(payload))

    run_threads(gos, reader(0), reader(1), reader(2))
    assert seen == [[1.0, 2.0, 3.0, 4.0]] * 3
    assert gos.stats.total_messages() == 0  # identical initial images


def test_diffs_fetched_on_demand_not_pushed():
    gos = HomelessObjectSpace(3, FAST_ETHERNET)
    obj = gos.alloc_array(4)
    lock = gos.alloc_lock(home=0)
    from repro.cluster.message import MsgCategory

    def writer():
        ctx = ThreadContext(gos, tid=0, node=1)
        yield from ctx.acquire(lock)
        payload = yield from ctx.write(obj)
        payload[0] = 9.0
        yield from ctx.release(lock)

    run_threads(gos, writer())
    # release sent NO diff anywhere: the diff stays at the writer
    assert gos.stats.msg_count.get(MsgCategory.DIFF, 0) == 0
    assert gos.engines[1].history[obj.oid][0].diff.nchanged == 1

    def reader(values):
        ctx = ThreadContext(gos, tid=1, node=2)
        yield from ctx.acquire(lock)
        payload = yield from ctx.read(obj)
        values.append(float(payload[0]))
        yield from ctx.release(lock)

    values = []
    run_threads(gos, reader(values))
    assert values == [9.0]
    assert gos.stats.events["homeless_fetch"] == 1


def test_fetch_from_multiple_writers_multiple_round_trips():
    """The paper's §1 pathology: a fault needs one round trip per writer."""
    gos = HomelessObjectSpace(4, FAST_ETHERNET)
    obj = gos.alloc_array(4)
    lock = gos.alloc_lock(home=0)

    def writer(node, index):
        ctx = ThreadContext(gos, tid=node, node=node)
        yield from ctx.acquire(lock)
        payload = yield from ctx.write(obj)
        payload[index] = float(node)
        yield from ctx.release(lock)

    run_threads(gos, writer(1, 1), writer(2, 2))

    def reader(values):
        ctx = ThreadContext(gos, tid=9, node=3)
        yield from ctx.acquire(lock)
        payload = yield from ctx.read(obj)
        values.append(list(payload))
        yield from ctx.release(lock)

    values = []
    fetches_before = gos.stats.events["homeless_fetch"]
    run_threads(gos, reader(values))
    assert values[0][1] == 1.0 and values[0][2] == 2.0
    assert gos.stats.events["homeless_fetch"] - fetches_before == 2


def test_diff_memory_accumulates():
    """No GC: every flushed diff stays at its writer (the memory cost the
    paper cites for homeless protocols)."""
    gos = HomelessObjectSpace(2, FAST_ETHERNET)
    obj = gos.alloc_array(16)
    lock = gos.alloc_lock(home=0)

    def writer():
        ctx = ThreadContext(gos, tid=0, node=1)
        for i in range(10):
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[i] = float(i + 1)
            yield from ctx.release(lock)

    run_threads(gos, writer())
    assert len(gos.engines[1].history[obj.oid]) == 10
    assert gos.stats.events["homeless_diff_bytes"] > 0


def test_serialized_writes_apply_in_causal_order():
    gos = HomelessObjectSpace(4, FAST_ETHERNET)
    obj = gos.alloc_fields(("v",))
    lock = gos.alloc_lock(home=0)

    def incrementer(node, times):
        ctx = ThreadContext(gos, tid=node, node=node)
        for _ in range(times):
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[0] += 1.0
            yield from ctx.release(lock)

    run_threads(gos, incrementer(1, 5), incrementer(2, 5), incrementer(3, 5))
    assert gos.read_global(obj)[0] == 15.0


@pytest.mark.parametrize(
    "app_factory",
    [
        lambda: SingleWriterBenchmark(total_updates=64, repetition=4),
        lambda: Sor(size=16, iterations=2),
        lambda: Asp(size=16),
    ],
)
def test_applications_verify_on_homeless_protocol(app_factory):
    app = app_factory()
    result = homeless_jvm(5).run(app)
    app.verify(result.output)


def test_no_migrations_reported():
    result = homeless_jvm(3).run(Sor(size=9, iterations=1))
    assert result.migrations == 0


def test_shipping_unsupported_with_clear_error():
    gos = HomelessObjectSpace(2, FAST_ETHERNET)
    obj = gos.alloc_fields(("v",))

    def body():
        ctx = ThreadContext(gos, tid=0, node=1)
        yield from ctx.ship(obj, lambda p: None)

    from repro.sim.errors import ProcessFailed

    with pytest.raises(ProcessFailed) as err:
        run_threads(gos, body())
    assert isinstance(err.value.original, NotImplementedError)
