"""SLO analytics engine: trace -> report -> markdown, end to end.

Records real traces through :func:`repro.bench.record.record_trace`
(once per workload per module, via fixtures) and checks the acceptance
surface of ``repro-bench analyze``:

* the synthetic lock workload reports exact percentiles for all four
  headline kinds — read_miss, write_miss, migration, lock_acquire;
* ASP (barrier-synchronised) yields per-epoch throughput, redirect
  chain lengths and p99 read-miss critical paths with a
  forwarding-vs-home decomposition;
* migration timelines pair each object's Eq-2 threshold trajectory
  with the decisions that fired;
* the report is backend-independent and deterministic: analyzing the
  same trace twice is identical, the rendered markdown round-trips
  through the CLI, and the JSON dump is stable.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.analyze import (
    REPORT_SCHEMA,
    analyze_trace,
    render_analysis,
    write_json_report,
)
from repro.bench.record import record_trace
from repro.obs.spans import SPAN_KINDS

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def asp_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "asp_at8.jsonl"
    record_trace(str(path), app="asp", app_kwargs={"size": 24},
                 policy="AT", nodes=8)
    return str(path)


@pytest.fixture(scope="module")
def lock_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "synthetic_at8.jsonl"
    record_trace(
        str(path),
        app="synthetic",
        app_kwargs={"total_updates": 96, "repetition": 4},
        policy="AT",
        nodes=8,
    )
    return str(path)


def test_headline_kinds_have_exact_percentiles(lock_trace):
    """Acceptance: p50/p99/p999 for the four headline span kinds."""
    report = analyze_trace(lock_trace)
    for kind in ("read_miss", "write_miss", "migration", "lock_acquire"):
        summary = report["latency_us"][kind]
        assert summary["count"] > 0, kind
        for q in ("p50", "p95", "p99", "p999"):
            assert summary[q] is not None, (kind, q)
            assert summary["min"] <= summary[q] <= summary["max"]
        assert summary["p50"] <= summary["p99"] <= summary["p999"]


def test_span_health_is_clean_on_real_traces(asp_trace, lock_trace):
    for path in (asp_trace, lock_trace):
        spans = analyze_trace(path)["spans"]
        assert spans["opened"] == spans["closed"] > 0
        assert spans["unclosed"] == 0
        assert spans["orphans"] == 0
        assert spans["double_close"] == 0
        assert spans["unmatched_close"] == 0


def test_latency_kinds_are_known_span_kinds(asp_trace):
    report = analyze_trace(asp_trace)
    assert set(report["latency_us"]) <= SPAN_KINDS
    assert report["schema"] == REPORT_SCHEMA


def test_chain_length_distribution_counts_every_fault(asp_trace):
    report = analyze_trace(asp_trace)
    chain = report["chain_lengths"]
    assert chain, "expected redirection chains under AT"
    faults = (
        report["latency_us"]["read_miss"]["count"]
        + report["latency_us"]["write_miss"]["count"]
    )
    assert sum(chain.values()) == faults
    assert any(int(h) > 0 for h in chain), "AT should produce >=1-hop chains"


def test_critical_paths_decompose_the_slowest_read_misses(asp_trace):
    report = analyze_trace(asp_trace)
    paths = report["critical_paths"]
    assert 1 <= len(paths) <= 5
    p99 = report["read_miss_p99_us"]
    assert p99 is not None
    # sorted slowest-first, and the decomposition must add up
    totals = [cp["total_us"] for cp in paths]
    assert totals == sorted(totals, reverse=True)
    for cp in paths:
        assert cp["dominant"] in ("forwarding-chain", "home+network")
        assert cp["redirect_us"] + cp["residual_us"] == pytest.approx(
            cp["total_us"]
        )
        if cp["hops"] == 0:
            assert cp["redirect_us"] == 0.0


def test_migration_timeline_tracks_threshold_vs_decisions(asp_trace):
    report = analyze_trace(asp_trace)
    objects = report["migration_objects"]
    assert objects, "pinned ASP/AT workload migrates homes"
    for entry in objects:
        assert entry["migrations"] >= 1
        assert entry["decisions"] >= entry["migrations"]
        # home path has one more node than migrations (origin included)
        assert len(entry["path"]) == entry["migrations"] + 1
        assert entry["threshold_min"] <= entry["threshold_max"]
    timeline = report["hottest_decision_timeline"]
    assert timeline
    assert any(d["migrated"] for d in timeline)
    times = [d["t"] for d in timeline]
    assert times == sorted(times)


def test_epoch_throughput_covers_barrier_rounds(asp_trace):
    report = analyze_trace(asp_trace)
    epochs = report["epoch_throughput"]
    assert epochs, "barrier app must produce epoch series"
    numbered = [e for e in epochs if e["epoch"] is not None]
    rounds = [e["epoch"] for e in numbered]
    assert rounds == sorted(rounds)
    ends = [e["end_us"] for e in numbered]
    assert ends == sorted(ends)
    assert all(e["ops"] >= 0 for e in epochs)
    assert any(e["ops"] > 0 for e in epochs)


def test_epoch_fanout_tracks_release_bursts(asp_trace):
    """The fan-out section reports, per barrier epoch, the release
    burst spread (first vs last barrier_wait close) and the redirect
    chain statistics of the faults that epoch absorbed."""
    report = analyze_trace(asp_trace)
    fanout = report["epoch_fanout"]
    assert fanout, "barrier app must produce fan-out series"
    epochs = [row["epoch"] for row in fanout]
    assert epochs == sorted(epochs)
    for row in fanout:
        assert row["parties"] >= 1
        assert row["release_last_us"] >= row["release_first_us"]
        assert row["release_spread_us"] == pytest.approx(
            row["release_last_us"] - row["release_first_us"]
        )
        assert row["faults"] >= 0
        if row["faults"]:
            assert row["max_chain"] >= row["mean_chain"] >= 0
    # every epoch's parties in a fixed-node run is the thread count
    assert {row["parties"] for row in fanout} == {8}
    # chain-carrying faults across epochs match the chain distribution
    chain_total = sum(report["chain_lengths"].values())
    assert sum(row["faults"] for row in fanout) <= chain_total


def test_lock_only_trace_has_no_fanout(lock_trace):
    report = analyze_trace(lock_trace)
    assert report["epoch_fanout"] == []
    assert "Per-epoch fan-out" not in render_analysis(report)


def test_lock_only_trace_has_no_epochs(lock_trace):
    """No barriers -> no epoch series, and that renders fine."""
    report = analyze_trace(lock_trace)
    assert report["epoch_throughput"] == []
    text = render_analysis(report)
    assert "Per-barrier-epoch throughput" not in text
    assert "lock_acquire" in text


def test_analysis_is_deterministic(asp_trace):
    first = analyze_trace(asp_trace)
    second = analyze_trace(asp_trace)
    assert first == second
    assert render_analysis(first) == render_analysis(second)


def test_report_is_json_serialisable_and_stable(asp_trace, tmp_path):
    report = analyze_trace(asp_trace)
    out = tmp_path / "slo.json"
    write_json_report(report, str(out))
    loaded = json.loads(out.read_text())
    assert loaded["schema"] == REPORT_SCHEMA
    assert loaded["spans"]["opened"] == report["spans"]["opened"]
    # stable: a second dump is byte-identical
    out2 = tmp_path / "slo2.json"
    write_json_report(report, str(out2))
    assert out.read_text() == out2.read_text()


def test_report_contains_no_environment_identifiers(asp_trace):
    """Backend independence: nothing machine- or path-specific leaks in.

    The CI parity job diffs python-vs-compiled reports byte-for-byte,
    which only works if the report never mentions the trace path, the
    backend name, or the kernel build hash.
    """
    report = analyze_trace(asp_trace)
    blob = json.dumps(report)
    assert asp_trace not in blob
    assert "backend" not in blob
    assert "kernel" not in blob


def test_render_mentions_every_section(asp_trace):
    text = render_analysis(analyze_trace(asp_trace))
    for needle in (
        "SLO report",
        "span health",
        "Latency by operation kind",
        "Redirection chain length",
        "Critical paths",
        "Migration-decision timelines",
        "Per-barrier-epoch throughput",
        "Per-epoch fan-out",
    ):
        assert needle in text, needle


def test_cli_analyze_target(asp_trace, tmp_path):
    """`repro-bench analyze <trace> --json out` prints markdown + JSON."""
    out = tmp_path / "slo.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", "analyze", asp_trace,
         "--json", str(out)],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin",
             "REPRO_BACKEND": "python"},
    )
    assert proc.returncode == 0, proc.stderr
    assert "SLO report" in proc.stdout
    assert "Latency by operation kind" in proc.stdout
    assert json.loads(out.read_text())["schema"] == REPORT_SCHEMA
    # stdout matches the library rendering exactly (CI diffs this)
    assert proc.stdout == render_analysis(analyze_trace(asp_trace))


def test_cli_analyze_requires_a_path():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", "analyze"],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode != 0
    assert "requires a trace path" in proc.stderr


def test_empty_span_trace_renders_gracefully(tmp_path):
    """A trace without spans analyzes to an explicit 'no spans' report."""
    path = tmp_path / "nospans.jsonl"
    record_trace(str(path), app="asp", app_kwargs={"size": 20},
                 policy="NM", nodes=4)
    # strip the span events to simulate a filtered recording
    lines = path.read_text().splitlines()
    kept = [lines[0]] + [
        line for line in lines[1:]
        if '"span_open"' not in line and '"span_close"' not in line
    ]
    filtered = tmp_path / "filtered.jsonl"
    filtered.write_text("\n".join(kept) + "\n")
    report = analyze_trace(str(filtered))
    assert report["spans"]["opened"] == 0
    text = render_analysis(report)
    assert "no spans in this trace" in text


def test_cli_analyze_spans_disabled_trace_is_one_line_and_exit_0(tmp_path):
    """``repro-bench analyze`` on a spans-disabled trace prints a single
    actionable line (how to re-record) and exits 0 — a filtered trace is
    not an error condition."""
    path = tmp_path / "nospans.jsonl"
    record_trace(str(path), app="asp", app_kwargs={"size": 20},
                 policy="NM", nodes=4)
    lines = path.read_text().splitlines()
    kept = [lines[0]] + [
        line for line in lines[1:]
        if '"span_open"' not in line and '"span_close"' not in line
    ]
    filtered = tmp_path / "filtered.jsonl"
    filtered.write_text("\n".join(kept) + "\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", "analyze", str(filtered)],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin",
             "REPRO_BACKEND": "python"},
    )
    assert proc.returncode == 0, proc.stderr
    out_lines = proc.stdout.strip().splitlines()
    assert len(out_lines) == 1, proc.stdout
    assert "no spans in this trace" in out_lines[0]
    assert "re-record" in out_lines[0]
