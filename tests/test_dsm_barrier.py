"""Tests for barrier manager state."""

import pytest

from repro.dsm.barrier import BarrierHandle, BarrierState


def make_barrier(parties=3):
    return BarrierState(BarrierHandle(barrier_id=1, home=0, parties=parties))


def test_handle_validation():
    with pytest.raises(ValueError):
        BarrierHandle(barrier_id=1, home=0, parties=0)


def test_round_completes_after_all_arrive():
    barrier = make_barrier(3)
    assert not barrier.arrive(0, {}, round_no=0)
    assert not barrier.arrive(1, {}, round_no=0)
    assert barrier.arrive(2, {}, round_no=0)


def test_notices_merge_across_arrivals():
    barrier = make_barrier(2)
    barrier.arrive(0, {10: 3}, 0)
    barrier.arrive(1, {10: 1, 11: 2}, 0)
    round_no, notices, writers = barrier.complete_round()
    assert round_no == 0
    assert notices == {10: 3, 11: 2}
    assert writers == {10: {0, 1}, 11: {1}}


def test_round_numbers_advance():
    barrier = make_barrier(1)
    barrier.arrive(0, {}, 0)
    assert barrier.complete_round()[0] == 0
    barrier.arrive(0, {}, 1)
    assert barrier.complete_round()[0] == 1


def test_wrong_round_rejected():
    barrier = make_barrier(2)
    with pytest.raises(RuntimeError):
        barrier.arrive(0, {}, round_no=5)


def test_too_many_arrivals_rejected():
    barrier = make_barrier(1)
    barrier.arrive(0, {}, 0)
    with pytest.raises(RuntimeError):
        barrier.arrive(1, {}, 0)


def test_writer_sets_empty_without_notices():
    barrier = make_barrier(1)
    barrier.arrive(0, {}, 0)
    _rn, notices, writers = barrier.complete_round()
    assert notices == {}
    assert writers == {}
