"""Tests for the Hockney communication model."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.hockney import FAST_ETHERNET, GIGABIT, MYRINET, HockneyModel


def test_latency_is_linear():
    model = HockneyModel(startup_us=50.0, bandwidth_mb_s=10.0)
    assert model.latency_us(0) == 50.0
    assert model.latency_us(100) == 50.0 + 10.0
    assert model.latency_us(1000) == 50.0 + 100.0


def test_half_peak_definition():
    model = HockneyModel(startup_us=80.0, bandwidth_mb_s=12.5)
    # at m = m_half the effective bandwidth is half the asymptote
    m_half = model.half_peak_bytes
    assert m_half == 80.0 * 12.5
    assert model.bandwidth_at(m_half) == pytest.approx(12.5 / 2)


def test_transfer_excludes_startup():
    model = HockneyModel(startup_us=100.0, bandwidth_mb_s=10.0)
    assert model.transfer_us(500) == 50.0


def test_presets_are_ordered_by_speed():
    assert FAST_ETHERNET.startup_us > GIGABIT.startup_us > MYRINET.startup_us
    assert (
        FAST_ETHERNET.bandwidth_mb_s
        < GIGABIT.bandwidth_mb_s
        < MYRINET.bandwidth_mb_s
    )


def test_fast_ethernet_half_peak_is_2004_plausible():
    # ~1 KB half-peak length for period Fast-Ethernet TCP stacks.
    assert 500 <= FAST_ETHERNET.half_peak_bytes <= 2500


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_invalid_startup_rejected(bad):
    with pytest.raises(ValueError):
        HockneyModel(startup_us=bad, bandwidth_mb_s=10.0)


@pytest.mark.parametrize("bad", [0.0, -5.0])
def test_invalid_bandwidth_rejected(bad):
    with pytest.raises(ValueError):
        HockneyModel(startup_us=10.0, bandwidth_mb_s=bad)


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        FAST_ETHERNET.latency_us(-1)
    with pytest.raises(ValueError):
        FAST_ETHERNET.transfer_us(-1)


def test_bandwidth_at_zero_bytes():
    assert FAST_ETHERNET.bandwidth_at(0) == 0.0


@given(
    t0=st.floats(min_value=0.1, max_value=1e4),
    bw=st.floats(min_value=0.1, max_value=1e4),
    m1=st.integers(min_value=0, max_value=10**9),
    m2=st.integers(min_value=0, max_value=10**9),
)
def test_latency_monotone_in_size(t0, bw, m1, m2):
    model = HockneyModel(startup_us=t0, bandwidth_mb_s=bw)
    lo, hi = sorted((m1, m2))
    assert model.latency_us(lo) <= model.latency_us(hi)


@given(
    t0=st.floats(min_value=0.1, max_value=1e4),
    bw=st.floats(min_value=0.1, max_value=1e4),
    m=st.integers(min_value=1, max_value=10**9),
)
def test_effective_bandwidth_below_asymptote(t0, bw, m):
    model = HockneyModel(startup_us=t0, bandwidth_mb_s=bw)
    assert model.bandwidth_at(m) < bw
