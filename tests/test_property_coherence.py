"""Property-based coherence fuzzing of the whole DSM stack.

Hypothesis generates small random parallel programs; we execute them on
the simulated DSM under randomly drawn migration policies / notification
mechanisms and compare the final shared state to a trivially correct
sequential oracle.  Any lost update, stale read-after-barrier, or
migration race shows up as an oracle mismatch or a deadlock.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster.hockney import FAST_ETHERNET
from repro.core.policies import (
    AdaptiveThreshold,
    BarrierMigration,
    FixedThreshold,
    LazyFlushing,
    MigratingHome,
    NoMigration,
)
from repro.dsm.redirection import (
    BroadcastMechanism,
    ForwardingPointerMechanism,
    HomeManagerMechanism,
)
from repro.gos.space import GlobalObjectSpace
from repro.gos.thread import ThreadContext

POLICIES = st.sampled_from([
    NoMigration(),
    FixedThreshold(1),
    FixedThreshold(2),
    AdaptiveThreshold(),
    MigratingHome(),
    LazyFlushing(),
    BarrierMigration(),
])

MECHANISMS = st.sampled_from([
    ForwardingPointerMechanism(),
    BroadcastMechanism(),
    HomeManagerMechanism(),
])


def _run(gos, bodies):
    processes = [
        gos.sim.spawn(body, name=f"fuzz-{i}") for i, body in enumerate(bodies)
    ]
    gos.sim.run()
    for process in processes:
        if process.finished.exception is not None:
            raise process.finished.exception


@given(
    policy=POLICIES,
    mechanism=MECHANISMS,
    nthreads=st.integers(min_value=1, max_value=4),
    nobjects=st.integers(min_value=1, max_value=4),
    phases=st.integers(min_value=1, max_value=5),
    plan_seed=st.randoms(use_true_random=False),
)
@settings(max_examples=60, deadline=None)
def test_barrier_phase_writes_match_oracle(
    policy, mechanism, nthreads, nobjects, phases, plan_seed
):
    """Each phase assigns every object one unique writer that overwrites
    some slots; after each barrier all threads must read exactly the
    oracle's state (LRC with barriers == sequentially consistent phases)."""
    nnodes = max(2, nthreads)
    gos = GlobalObjectSpace(
        nnodes, FAST_ETHERNET, policy=policy, mechanism=mechanism
    )
    objs = [gos.alloc_array(6, home=i % nnodes) for i in range(nobjects)]
    barrier = gos.alloc_barrier(parties=nthreads, home=0)

    # plan[phase][obj_index] = (writer_tid, slot, value)
    plan = []
    for phase in range(phases):
        per_obj = []
        for obj_index in range(nobjects):
            writer = plan_seed.randrange(nthreads)
            slot = plan_seed.randrange(6)
            value = float(phase * 100 + obj_index * 10 + writer + 1)
            per_obj.append((writer, slot, value))
        plan.append(per_obj)

    # sequential oracle
    oracle = [[0.0] * 6 for _ in range(nobjects)]
    for per_obj in plan:
        for obj_index, (_writer, slot, value) in enumerate(per_obj):
            oracle[obj_index][slot] = value

    observations = []

    def body(tid):
        ctx = ThreadContext(gos, tid, tid % nnodes)
        expected = [[0.0] * 6 for _ in range(nobjects)]
        for per_obj in plan:
            for obj_index, (writer, slot, value) in enumerate(per_obj):
                if writer == tid:
                    payload = yield from ctx.write(objs[obj_index])
                    payload[slot] = value
                expected[obj_index][slot] = value
            yield from ctx.barrier(barrier)
            for obj_index in range(nobjects):
                payload = yield from ctx.read(objs[obj_index])
                observations.append(
                    (tid, list(payload) == expected[obj_index])
                )
            # second barrier: the next phase's writes must not race with
            # this phase's reads (data-race-freedom, which is what LRC
            # guarantees coherence for)
            yield from ctx.barrier(barrier)

    _run(gos, [body(tid) for tid in range(nthreads)])
    # every post-barrier read saw exactly the oracle state
    assert all(ok for _tid, ok in observations)
    # and the final home copies match too
    for obj_index, obj in enumerate(objs):
        assert list(gos.read_global(obj)) == oracle[obj_index]


@given(
    policy=POLICIES,
    mechanism=MECHANISMS,
    nthreads=st.integers(min_value=1, max_value=4),
    increments=st.lists(
        st.integers(min_value=1, max_value=6), min_size=1, max_size=4
    ),
    lock_discipline=st.sampled_from(["fifo", "retry"]),
)
@settings(max_examples=60, deadline=None)
def test_lock_protected_counters_never_lose_updates(
    policy, mechanism, nthreads, increments, lock_discipline
):
    """Threads increment shared counters under a lock; the final values
    must equal the exact totals regardless of policy/mechanism/lock
    discipline."""
    nnodes = max(2, nthreads)
    gos = GlobalObjectSpace(
        nnodes,
        FAST_ETHERNET,
        policy=policy,
        mechanism=mechanism,
        lock_discipline=lock_discipline,
    )
    counters = [
        gos.alloc_fields(("v",), home=i % nnodes)
        for i in range(len(increments))
    ]
    lock = gos.alloc_lock(home=0)

    def body(tid):
        ctx = ThreadContext(gos, tid, tid % nnodes)
        for counter, times in zip(counters, increments):
            for _ in range(times):
                yield from ctx.acquire(lock)
                payload = yield from ctx.write(counter)
                payload[0] += 1.0
                yield from ctx.release(lock)

    _run(gos, [body(tid) for tid in range(nthreads)])
    for counter, times in zip(counters, increments):
        assert gos.read_global(counter)[0] == float(times * nthreads)


@given(
    policy=POLICIES,
    nwriters=st.integers(min_value=2, max_value=4),
    rounds=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_disjoint_concurrent_writers_all_land(policy, nwriters, rounds):
    """Multiple-writer intervals on one object: each thread owns disjoint
    slots; every write must survive the diff merge at the home."""
    nnodes = nwriters + 1
    gos = GlobalObjectSpace(nnodes, FAST_ETHERNET, policy=policy)
    obj = gos.alloc_array(nwriters, home=0)
    barrier = gos.alloc_barrier(parties=nwriters, home=0)

    def body(tid):
        ctx = ThreadContext(gos, tid, tid + 1)
        for phase in range(rounds):
            payload = yield from ctx.write(obj)
            payload[tid] = float(phase * 10 + tid + 1)
            yield from ctx.barrier(barrier)

    _run(gos, [body(tid) for tid in range(nwriters)])
    final = gos.read_global(obj)
    for tid in range(nwriters):
        assert final[tid] == float((rounds - 1) * 10 + tid + 1)
