"""Tests for the per-message receiver service overhead knob."""

import pytest

from repro.apps import SingleWriterBenchmark
from repro.cluster.hockney import FAST_ETHERNET
from repro.cluster.node import DEFAULT_SERVICE_US
from repro.core.policies import NoMigration
from repro.gos.jvm import DistributedJVM


def _run(service_us):
    app = SingleWriterBenchmark(total_updates=64, repetition=4)
    jvm = DistributedJVM(
        nodes=3,
        comm_model=FAST_ETHERNET,
        policy=NoMigration(),
        service_us=service_us,
    )
    result = jvm.run(app)
    app.verify(result.output)
    return result


def test_default_service_time_is_modest():
    assert 0 < DEFAULT_SERVICE_US <= 20.0


def test_service_time_slows_execution_proportionally():
    fast = _run(0.0)
    slow = _run(50.0)
    assert slow.execution_time_us > fast.execution_time_us
    # message counts are identical: only the timing changed
    assert slow.stats.snapshot() == fast.stats.snapshot()


def test_negative_service_time_rejected():
    from repro.cluster.node import Node
    from repro.sim.engine import Simulator

    with pytest.raises(ValueError):
        Node(0, Simulator(), service_us=-1.0)
