"""Tests for the structured level-gated run logger."""

import io

import pytest

from repro.obs.logging import LEVELS, NULL_LOGGER, RunLogger


def test_level_gating():
    buf = io.StringIO()
    log = RunLogger(level="warning", stream=buf)
    log.debug("d")
    log.info("i")
    log.warning("w")
    log.error("e")
    lines = buf.getvalue().splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("[warning]")
    assert lines[1].startswith("[error]")


def test_enabled_for_matches_emission():
    log = RunLogger(level="info", stream=io.StringIO())
    assert not log.enabled_for("debug")
    assert log.enabled_for("info")
    assert log.enabled_for("error")


def test_unknown_level_rejected():
    with pytest.raises(ValueError):
        RunLogger(level="verbose")
    with pytest.raises(ValueError):
        RunLogger(stream=io.StringIO()).log("loud", "event")


def test_structured_fields_and_clock():
    buf = io.StringIO()
    log = RunLogger(level="info", stream=buf, clock=lambda: 1234.5)
    log.info("migration", oid=3, new_home=2)
    line = buf.getvalue().strip()
    assert line == "[info] repro migration sim_us=1234.5 oid=3 new_home=2"


def test_values_with_spaces_are_quoted():
    buf = io.StringIO()
    log = RunLogger(level="info", stream=buf)
    log.info("event", msg="two words", eq="a=b")
    line = buf.getvalue().strip()
    assert "msg='two words'" in line
    assert "eq='a=b'" in line


def test_child_binds_fields_and_clock():
    buf = io.StringIO()
    parent = RunLogger(level="info", stream=buf, run="r1")
    child = parent.child(clock=lambda: 7.0, node=3)
    child.info("event", x=1)
    line = buf.getvalue().strip()
    assert "sim_us=7" in line
    assert "run=r1" in line
    assert "node=3" in line
    assert "x=1" in line


def test_off_level_disables_everything():
    buf = io.StringIO()
    log = RunLogger(level="off", stream=buf)
    log.error("even errors")
    assert buf.getvalue() == ""
    assert not NULL_LOGGER.enabled_for("error")
    assert LEVELS["off"] > LEVELS["error"]
