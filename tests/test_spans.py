"""Causal span layer: unit behaviour, live-run trees, digest safety.

Three layers of coverage:

* ``SpanTracer`` in isolation — id allocation, enable gating, event
  shape, kind validation, retro-dated ``completed`` spans, the optional
  wall-clock hook;
* live runs — every span a real ASP (barriers) and synthetic-benchmark
  (locks) run emits opens exactly once, closes exactly once, and links
  children to already-open parents, i.e. the causal tree reconstructs;
* the hard determinism gate — the pinned ASP/AT/4 digest is unchanged
  with span recording fully enabled (instrumentation must be
  observation-only);
* the invariant checker's span lifecycle checks flag each corruption
  class (orphan child, double open, double close, close-without-open,
  kind mismatch, never closed).
"""

import importlib.util
import warnings
from pathlib import Path

import pytest

from repro.apps import Asp
from repro.apps.synthetic import SingleWriterBenchmark
from repro.bench.runner import make_mechanism, make_policy
from repro.check.invariants import InvariantChecker
from repro.cluster.hockney import FAST_ETHERNET
from repro.gos.jvm import DistributedJVM
from repro.obs.spans import SPAN_KINDS, SpanTracer
from repro.trace.events import TraceEvent
from repro.trace.recorder import TraceRecorder

ROOT = Path(__file__).resolve().parent.parent


# -- SpanTracer unit behaviour ------------------------------------------------


def test_span_tracer_disabled_without_span_kinds():
    """A kind-filtered recorder (e.g. the digest's) disables the tracer."""
    recorder = TraceRecorder(kinds=("migration",))
    spans = SpanTracer(recorder)
    assert spans.enabled is False


def test_span_tracer_allocates_sequential_unique_ids():
    recorder = TraceRecorder()
    spans = SpanTracer(recorder)
    assert spans.enabled is True
    a = spans.open("read_miss", 10.0, oid=1, node=0)
    b = spans.open("write_miss", 11.0, oid=2, node=1, parent=a)
    assert (a, b) == (0, 1)
    assert spans.issued == 2
    opens = recorder.of_kind("span_open")
    assert [e.detail["op"] for e in opens] == [0, 1]
    assert opens[0].detail["parent"] is None
    assert opens[1].detail["parent"] == a
    assert opens[1].detail["op_kind"] == "write_miss"


def test_span_tracer_close_records_matching_event():
    recorder = TraceRecorder()
    spans = SpanTracer(recorder)
    op = spans.open("lock_acquire", 5.0, oid=7, node=3, home=2)
    spans.close(op, "lock_acquire", 9.5, oid=7, node=3)
    closes = recorder.of_kind("span_close")
    assert len(closes) == 1
    assert closes[0].detail == {"op": op, "op_kind": "lock_acquire"}
    assert closes[0].time_us == 9.5
    # the open carried the extra detail
    assert recorder.of_kind("span_open")[0].detail["home"] == 2


def test_span_tracer_rejects_unknown_kind():
    spans = SpanTracer(TraceRecorder())
    with pytest.raises(ValueError, match="unknown span kind"):
        spans.open("disk_seek", 0.0, oid=0, node=0)
    op = spans.open("read_miss", 0.0, oid=0, node=0)
    with pytest.raises(ValueError, match="unknown span kind"):
        spans.close(op, "disk_seek", 1.0, oid=0, node=0)


def test_span_tracer_completed_is_retro_dated():
    """completed() opens at the earlier send time, closes at arrival."""
    recorder = TraceRecorder()
    spans = SpanTracer(recorder)
    op = spans.completed(
        "redirect_hop", 100.0, 140.0, oid=4, node=2, parent=None, target=5
    )
    opens = recorder.of_kind("span_open")
    closes = recorder.of_kind("span_close")
    assert opens[0].time_us == 100.0 and closes[0].time_us == 140.0
    assert opens[0].detail["op"] == closes[0].detail["op"] == op
    assert opens[0].detail["target"] == 5


def test_span_tracer_wall_clock_hook_annotates_events():
    """The injected clock stamps wall_s; absent by default."""
    recorder = TraceRecorder()
    ticks = iter([1.5, 2.5])
    spans = SpanTracer(recorder, wall_clock=lambda: next(ticks))
    op = spans.open("barrier_wait", 0.0, oid=0, node=0)
    spans.close(op, "barrier_wait", 1.0, oid=0, node=0)
    assert recorder.of_kind("span_open")[0].detail["wall_s"] == 1.5
    assert recorder.of_kind("span_close")[0].detail["wall_s"] == 2.5
    bare = SpanTracer(TraceRecorder())
    bare.open("barrier_wait", 0.0, oid=0, node=0)
    assert "wall_s" not in bare.tracer.of_kind("span_open")[0].detail


# -- live-run causal trees ----------------------------------------------------


def _run_with_spans(app, nodes=4, policy="AT"):
    tracer = TraceRecorder()
    jvm = DistributedJVM(
        nodes=nodes,
        comm_model=FAST_ETHERNET,
        policy=make_policy(policy),
        mechanism=make_mechanism("forwarding-pointer"),
        tracer=tracer,
    )
    jvm.run(app)
    return tracer


def _assert_well_formed(tracer):
    """Every span opens once, closes once, and parents are already open."""
    seen: dict[int, str] = {}
    closed: set[int] = set()
    for event in tracer.events:
        if event.kind == "span_open":
            op = event.detail["op"]
            assert op not in seen, f"op {op} opened twice"
            parent = event.detail["parent"]
            assert parent is None or parent in seen, (
                f"op {op} links to unknown parent {parent}"
            )
            assert event.detail["op_kind"] in SPAN_KINDS
            seen[op] = event.detail["op_kind"]
        elif event.kind == "span_close":
            op = event.detail["op"]
            assert op in seen, f"close of unopened op {op}"
            assert op not in closed, f"op {op} closed twice"
            assert event.detail["op_kind"] == seen[op]
            closed.add(op)
    assert set(seen) == closed, (
        f"unclosed spans: {sorted(set(seen) - closed)[:10]}"
    )
    return seen


def test_asp_run_produces_balanced_span_tree():
    tracer = _run_with_spans(Asp(size=24))
    kinds = _assert_well_formed(tracer)
    by_kind = {}
    for kind in kinds.values():
        by_kind[kind] = by_kind.get(kind, 0) + 1
    # ASP is barrier-synchronised: misses, flushes, migrations, barriers
    for expected in ("read_miss", "write_miss", "migration",
                     "barrier_wait", "diff_flush"):
        assert by_kind.get(expected, 0) > 0, (expected, by_kind)


def test_synthetic_run_produces_lock_spans():
    tracer = _run_with_spans(
        SingleWriterBenchmark(total_updates=64, repetition=4), nodes=4
    )
    kinds = _assert_well_formed(tracer)
    by_kind = set(kinds.values())
    assert "lock_acquire" in by_kind and "lock_release" in by_kind


def test_migration_spans_link_to_triggering_fault():
    """Migration spans opened while serving a fault carry its parent id."""
    tracer = _run_with_spans(Asp(size=24))
    opens = {
        e.detail["op"]: e for e in tracer.events if e.kind == "span_open"
    }
    parented = [
        e for e in opens.values()
        if e.detail["op_kind"] == "migration"
        and e.detail["parent"] is not None
    ]
    assert parented, "no fault-triggered migration in the pinned workload"
    for event in parented:
        parent = opens[event.detail["parent"]]
        assert parent.detail["op_kind"] in (
            "read_miss", "write_miss", "ship"
        )


def test_redirect_hops_nest_under_their_fault():
    tracer = _run_with_spans(Asp(size=24))
    opens = {
        e.detail["op"]: e for e in tracer.events if e.kind == "span_open"
    }
    hops = [
        e for e in opens.values()
        if e.detail["op_kind"] == "redirect_hop"
    ]
    assert hops, "expected redirection hops under the AT policy"
    for event in hops:
        assert event.detail["parent"] is not None
        parent = opens[event.detail["parent"]]
        assert parent.detail["op_kind"] in (
            "read_miss", "write_miss", "ship"
        )


# -- determinism: spans are observation-only ---------------------------------


def _digest_module():
    spec = importlib.util.spec_from_file_location(
        "tdd", ROOT / "tests" / "test_determinism_digest.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_digest_unchanged_with_spans_enabled():
    """The pinned digest must not move when span recording is on.

    The digest's own harness records migrations only (spans disabled);
    re-running the identical workload with an unfiltered recorder proves
    the instrumentation never perturbs stats, scheduling or timing.
    """
    mod = _digest_module()
    tracer = TraceRecorder()
    jvm = DistributedJVM(
        nodes=4,
        comm_model=FAST_ETHERNET,
        policy=make_policy("AT"),
        mechanism=make_mechanism("forwarding-pointer"),
        tracer=tracer,
    )
    result = jvm.run(Asp(size=64))
    payload = {
        "stats": result.stats.snapshot(),
        "time_us": result.execution_time_us,
        "migrations": [
            [
                event.time_us,
                event.oid,
                event.node,
                event.detail.get("old_home"),
                event.detail.get("new_home"),
            ]
            for event in tracer.migrations()
        ],
    }
    assert mod._digest(payload) == mod.EXPECTED_DIGEST
    _assert_well_formed(tracer)


# -- bounded recorders: dropped spans are never silent ------------------------


def test_dropped_spans_counted_and_warned():
    tracer = TraceRecorder(max_events=50)
    jvm = DistributedJVM(
        nodes=4,
        comm_model=FAST_ETHERNET,
        policy=make_policy("AT"),
        mechanism=make_mechanism("forwarding-pointer"),
        tracer=tracer,
    )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        jvm.run(Asp(size=24))
    assert tracer.dropped_spans > 0
    assert tracer.dropped >= tracer.dropped_spans
    dropped_warnings = [
        w for w in caught
        if issubclass(w.category, RuntimeWarning)
        and "dropped" in str(w.message)
    ]
    assert len(dropped_warnings) == 1
    assert str(tracer.dropped_spans) in str(dropped_warnings[0].message)


def test_unbounded_recorder_drops_nothing():
    tracer = _run_with_spans(Asp(size=24))
    assert tracer.dropped == 0 and tracer.dropped_spans == 0


# -- invariant checker: span lifecycle ---------------------------------------


def _feed(checker, events):
    for kind, time_us, detail in events:
        checker.on_event(
            TraceEvent(time_us=time_us, kind=kind, oid=0, node=0,
                       detail=detail)
        )


def test_checker_accepts_clean_span_stream():
    checker = InvariantChecker(nnodes=4)
    _feed(checker, [
        ("span_open", 0.0, {"op": 0, "op_kind": "read_miss",
                            "parent": None}),
        ("span_open", 1.0, {"op": 1, "op_kind": "migration", "parent": 0}),
        ("span_close", 2.0, {"op": 1, "op_kind": "migration"}),
        ("span_close", 3.0, {"op": 0, "op_kind": "read_miss"}),
    ])
    assert checker.finish() == []


def test_checker_flags_orphan_child():
    checker = InvariantChecker(nnodes=4)
    _feed(checker, [
        ("span_open", 0.0, {"op": 5, "op_kind": "migration",
                            "parent": 99}),
        ("span_close", 1.0, {"op": 5, "op_kind": "migration"}),
    ])
    assert any("parent" in v for v in checker.finish())


def test_checker_flags_duplicate_open():
    checker = InvariantChecker(nnodes=4)
    _feed(checker, [
        ("span_open", 0.0, {"op": 3, "op_kind": "read_miss",
                            "parent": None}),
        ("span_open", 1.0, {"op": 3, "op_kind": "read_miss",
                            "parent": None}),
    ])
    assert any("opened twice" in v for v in checker.violations)


def test_checker_flags_double_close_and_unmatched_close():
    checker = InvariantChecker(nnodes=4)
    _feed(checker, [
        ("span_open", 0.0, {"op": 1, "op_kind": "read_miss",
                            "parent": None}),
        ("span_close", 1.0, {"op": 1, "op_kind": "read_miss"}),
        ("span_close", 2.0, {"op": 1, "op_kind": "read_miss"}),
        ("span_close", 3.0, {"op": 42, "op_kind": "read_miss"}),
    ])
    violations = checker.violations
    assert any("closed" in v and "1" in v for v in violations)
    assert any("42" in v for v in violations)


def test_checker_flags_kind_mismatch():
    checker = InvariantChecker(nnodes=4)
    _feed(checker, [
        ("span_open", 0.0, {"op": 2, "op_kind": "read_miss",
                            "parent": None}),
        ("span_close", 1.0, {"op": 2, "op_kind": "write_miss"}),
    ])
    assert any(
        "opened as 'read_miss'" in v and "closed as 'write_miss'" in v
        for v in checker.violations
    )


def test_checker_flags_never_closed_span():
    checker = InvariantChecker(nnodes=4)
    _feed(checker, [
        ("span_open", 0.0, {"op": 9, "op_kind": "barrier_wait",
                            "parent": None}),
    ])
    assert checker.violations == []
    assert any("never" in v or "close" in v for v in checker.finish())
