"""Fuzzer properties: determinism, serialization, DRF well-formedness."""

import json

import pytest

from repro.check.fuzz import (
    ProgramSpec,
    episode_seeds,
    generate_program,
)

SEEDS = list(range(20))


def test_same_seed_is_byte_identical():
    for seed in SEEDS:
        assert generate_program(seed).to_json() == generate_program(seed).to_json()


def test_different_seeds_differ():
    texts = {generate_program(seed).to_json() for seed in SEEDS}
    assert len(texts) == len(SEEDS)


def test_json_round_trip_is_lossless():
    for seed in SEEDS:
        spec = generate_program(seed)
        rebuilt = ProgramSpec.from_dict(json.loads(spec.to_json()))
        assert rebuilt.to_json() == spec.to_json()


def test_episode_seed_sequence_is_deterministic():
    assert list(episode_seeds(0, 10)) == list(episode_seeds(0, 10))
    assert list(episode_seeds(0, 10)) != list(episode_seeds(1, 10))
    # a longer run extends, never reshuffles, a shorter one
    assert list(episode_seeds(7, 20))[:10] == list(episode_seeds(7, 10))


def test_specs_are_structurally_valid():
    for seed in SEEDS:
        spec = generate_program(seed)
        assert 2 <= spec.nnodes <= 5
        assert 2 <= spec.nthreads <= 5
        assert len(spec.placement) == spec.nthreads
        assert all(0 <= node < spec.nnodes for node in spec.placement)
        assert spec.objects
        names = {obj.name for obj in spec.objects}
        assert all(0 <= obj.home < spec.nnodes for obj in spec.objects)
        assert all(0 <= home < spec.nnodes for home in spec.lock_homes)
        for phase in spec.phases:
            assert len(phase) == spec.nthreads
            for sections in phase:
                for section in sections:
                    if section.lock is not None:
                        assert 0 <= section.lock < len(spec.lock_homes)
                    for op in section.ops:
                        assert op[1] in names


def test_specs_are_drf_by_construction():
    """Within a phase, every object is single-thread-owned or guarded by
    exactly one lock — the property that makes log-order replay exact."""
    for seed in SEEDS:
        spec = generate_program(seed)
        for phase in spec.phases:
            # object -> set of (tid, lock) contexts touching it
            contexts: dict[str, set] = {}
            for tid, sections in enumerate(phase):
                for section in sections:
                    for op in section.ops:
                        key = (
                            ("lock", section.lock)
                            if section.lock is not None
                            else ("owner", tid)
                        )
                        contexts.setdefault(op[1], set()).add(key)
            for obj, keys in contexts.items():
                locks = {k for k in keys if k[0] == "lock"}
                owners = {k for k in keys if k[0] == "owner"}
                assert (len(locks) == 1 and not owners) or (
                    len(owners) == 1 and not locks
                ), f"seed {seed}: {obj} raced via {keys}"


def test_policy_and_mechanism_build():
    for seed in SEEDS:
        spec = generate_program(seed)
        policy = spec.build_policy()
        mechanism = spec.build_mechanism()
        assert policy is not None and mechanism is not None


def test_from_dict_rejects_incomplete_payload():
    with pytest.raises((ValueError, KeyError, TypeError)):
        ProgramSpec.from_dict({"seed": 0})
