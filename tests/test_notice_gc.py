"""Barrier-epoch memory GC: result-neutral, bounded, and switchable.

The memory-engine GC (``ProtocolEngine.collect_garbage``) runs at every
barrier release and must be a pure *storage* operation: dropping dead
INVALID cache entries, pruning version-horizon-covered write-notice
floors, and compacting pending-work maps may never change simulated
time, message traffic, stats, or application output.  These tests pin
that contract and the boundedness claims the large-workload tier
measures.
"""

import hashlib
import json

import numpy as np

from repro.apps import Sor
from repro.bench.runner import make_mechanism, make_policy
from repro.cluster.hockney import FAST_ETHERNET
from repro.gos.jvm import DistributedJVM


def _run(gc_enabled, iterations=6, policy="AT"):
    jvm = DistributedJVM(
        nodes=4,
        comm_model=FAST_ETHERNET,
        policy=make_policy(policy),
        mechanism=make_mechanism("forwarding-pointer"),
        gc_enabled=gc_enabled,
    )
    return jvm.run(Sor(size=24, iterations=iterations))


def _digest(result) -> str:
    payload = {
        "stats": result.stats.snapshot(),
        "time_us": result.execution_time_us,
        "migrations": result.migrations,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def test_gc_on_and_off_produce_identical_runs():
    on = _run(gc_enabled=True)
    off = _run(gc_enabled=False)
    assert _digest(on) == _digest(off)
    np.testing.assert_array_equal(on.output, off.output)
    assert on.execution_time_us == off.execution_time_us
    assert on.stats.total_messages() == off.stats.total_messages()


def test_gc_drops_dead_cache_entries_and_notice_floors():
    on = _run(gc_enabled=True)
    off = _run(gc_enabled=False)
    fp_on = on.gos.memory_footprint()
    fp_off = off.gos.memory_footprint()
    assert fp_on["gc_enabled"] is True
    assert fp_off["gc_enabled"] is False
    # with GC the run ends drained; without it, history accretes
    assert fp_on["cache_entries"] == 0
    assert fp_on["notice_floors"] == 0
    assert fp_on["gc_cache_drops"] > 0
    assert fp_on["gc_notice_prunes"] > 0
    assert fp_off["gc_cache_drops"] == 0
    assert fp_off["gc_notice_prunes"] == 0
    assert fp_off["notice_floors"] > 0
    assert fp_off["cache_payload_bytes"] > fp_on["cache_payload_bytes"]


def test_gc_bounds_steady_state_independent_of_run_length():
    # peak live protocol state must track the live set, not the run
    # history: tripling the iteration count must not grow the peaks
    short = _run(gc_enabled=True, iterations=4)
    long = _run(gc_enabled=True, iterations=12)
    peaks_short = short.gos.memory_footprint()["peaks"]
    peaks_long = long.gos.memory_footprint()["peaks"]
    assert peaks_long["cache_entries"] <= peaks_short["cache_entries"] + 2
    assert peaks_long["notice_floors"] <= peaks_short["notice_floors"] + 2


def test_gc_recycles_arena_storage():
    result = _run(gc_enabled=True, iterations=10)
    arena = result.gos.memory_footprint()["arena"]
    # steady state runs out of the free lists, not fresh slab space
    assert arena["reuses"] > arena["carves"]
    assert arena["frees"] > 0


def test_no_migration_policy_also_gc_neutral():
    # the notice-horizon rule must hold when homes never move
    on = _run(gc_enabled=True, policy="NM")
    off = _run(gc_enabled=False, policy="NM")
    assert _digest(on) == _digest(off)
    np.testing.assert_array_equal(on.output, off.output)
    assert on.gos.memory_footprint()["notice_floors"] == 0


def test_peaks_channel_is_excluded_from_stats_snapshot():
    result = _run(gc_enabled=True)
    snapshot = result.stats.snapshot()
    assert "peaks" not in snapshot
    peaks = result.stats.memory_snapshot()
    assert peaks.get("cache_entries", 0) > 0
