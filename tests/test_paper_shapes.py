"""Reproduction shape tests: the paper's qualitative claims, asserted.

These are the headline checks of the whole project — each test pins one
of the observations §5 of the paper reports, on scaled-down problem
sizes.  The benchmark harness re-measures the same shapes at larger
sizes.
"""

import pytest

from repro.apps import Asp, NBody, SingleWriterBenchmark, Sor, Tsp
from repro.bench.runner import run_once

NODES_SYNTH = 9  # 8 working threads off the master (§5.2)


def _synth(policy, repetition, updates=256):
    return run_once(
        SingleWriterBenchmark(total_updates=updates, repetition=repetition),
        policy=policy,
        nodes=NODES_SYNTH,
    )


# -- Figure 2 shapes -----------------------------------------------------------


@pytest.mark.parametrize("app_factory", [
    lambda: Asp(size=48),
    lambda: Sor(size=48, iterations=6),
])
def test_fig2_hm_improves_asp_and_sor(app_factory):
    no_hm = run_once(app_factory(), policy="NM", nodes=8)
    hm = run_once(app_factory(), policy="AT", nodes=8)
    assert hm.execution_time_us < 0.7 * no_hm.execution_time_us
    assert hm.stats.total_messages() < no_hm.stats.total_messages()


@pytest.mark.parametrize("app_factory", [
    lambda: NBody(bodies=48, steps=2),
    lambda: Tsp(cities=8),
])
def test_fig2_hm_harmless_for_nbody_and_tsp(app_factory):
    """Little single-writer pattern => little effect, and crucially no
    slowdown (the protocol's lightweight-ness)."""
    no_hm = run_once(app_factory(), policy="NM", nodes=8)
    hm = run_once(app_factory(), policy="AT", nodes=8)
    assert hm.execution_time_us <= 1.10 * no_hm.execution_time_us


def test_fig2_times_decrease_with_processors():
    times = [
        run_once(Asp(size=128), policy="AT", nodes=p).execution_time_us
        for p in (2, 4, 8)
    ]
    assert times[0] > times[1] > times[2]


# -- Figure 3 shapes -----------------------------------------------------------


def test_fig3_at_beats_ft2_on_asp_and_sor():
    for factory in (lambda: Asp(size=48), lambda: Sor(size=48, iterations=6)):
        ft2 = run_once(factory(), policy="FT2", nodes=8)
        at = run_once(factory(), policy="AT", nodes=8)
        assert at.execution_time_us <= ft2.execution_time_us
        assert at.stats.total_messages() <= ft2.stats.total_messages()
        assert at.stats.total_bytes() <= ft2.stats.total_bytes()


def test_fig3_sor_improvement_grows_with_problem_size():
    improvements = []
    for size in (24, 48, 96):
        ft2 = run_once(Sor(size=size, iterations=8), policy="FT2", nodes=8)
        at = run_once(Sor(size=size, iterations=8), policy="AT", nodes=8)
        improvements.append(
            (ft2.execution_time_us - at.execution_time_us)
            / ft2.execution_time_us
        )
    assert improvements[-1] > improvements[0]


# -- Figure 5 shapes -----------------------------------------------------------


def test_fig5_ft1_eliminates_most_traffic_at_large_repetition():
    """Paper: 87.2% of object fault-ins and diff propagations eliminated
    by FT1 at r=16."""
    nm = _synth("NM", 16)
    ft1 = _synth("FT1", 16)
    nm_traffic = nm.stats.events["obj"] + nm.stats.events["diff"]
    ft1_traffic = (
        ft1.stats.events["obj"]
        + ft1.stats.events["diff"]
        + ft1.stats.events["mig"]
    )
    eliminated = (nm_traffic - ft1_traffic) / nm_traffic
    assert eliminated > 0.80


def test_fig5_at_matches_ft1_sensitivity_at_large_repetition():
    """Paper: 'AT performs as well as FT1' at r in {8, 16}."""
    for r in (8, 16):
        ft1 = _synth("FT1", r)
        at = _synth("AT", r)
        assert at.stats.events["obj"] <= ft1.stats.events["obj"] * 1.05
        assert at.execution_time_us <= ft1.execution_time_us * 1.05


def test_fig5_fixed_thresholds_suffer_redirections_at_small_repetition():
    ft1 = _synth("FT1", 2)
    at = _synth("AT", 2)
    assert ft1.stats.events["redir"] > 5 * max(at.stats.events["redir"], 1)


def test_fig5_at_robust_against_transient_pattern():
    """Paper: AT inhibits migration under the transient single-writer
    pattern, avoiding FT1's redirection blow-up."""
    nm = _synth("NM", 2)
    ft1 = _synth("FT1", 2)
    at = _synth("AT", 2)
    # FT1 pays for eager migration; AT stays within a whisker of NM
    assert ft1.execution_time_us > nm.execution_time_us
    assert at.execution_time_us <= 1.05 * nm.execution_time_us
    assert at.migrations < ft1.migrations / 4


def test_fig5_ft2_inhibits_migration_at_repetition_two():
    """Paper: 'FT2 prohibits home migration when the repetition is two.'"""
    ft2 = _synth("FT2", 2)
    assert ft2.migrations <= 2


def test_fig5_ft1_more_sensitive_than_ft2():
    """Paper: FT1's fault-in + diff counts are below FT2's at every r."""
    for r in (4, 8, 16):
        ft1 = _synth("FT1", r)
        ft2 = _synth("FT2", r)
        assert (
            ft1.stats.events["obj"] + ft1.stats.events["diff"]
            < ft2.stats.events["obj"] + ft2.stats.events["diff"]
        )


def test_fig5_migration_pays_off_at_large_repetition():
    nm = _synth("NM", 16)
    at = _synth("AT", 16)
    assert at.execution_time_us < 0.75 * nm.execution_time_us


# -- §5.1's lightweight-protocol claim ------------------------------------------


def test_protocol_memory_is_contained_to_shared_objects():
    """Monitor state exists only for objects that actually have a home
    entry — no global tables proportional to all allocations."""
    result = run_once(Sor(size=16, iterations=2), policy="AT", nodes=4)
    gos = result.gos
    total_homes = sum(len(engine.homes) for engine in gos.engines)
    assert total_homes == len(gos.heap)
