"""Mutation self-test: the checkers must catch every built-in mutation."""

import pytest

from repro.check.mutations import (
    MUTATION_NAMES,
    apply_mutation,
    mutation_spec,
)
from repro.check.runner import run_episode, run_self_test


def test_self_test_catches_every_mutation():
    outcome = run_self_test()
    assert set(outcome) == set(MUTATION_NAMES)
    for name, (clean_unmutated, caught_mutated) in outcome.items():
        assert clean_unmutated, f"{name}: crafted episode dirty unmutated"
        assert caught_mutated, f"{name}: mutation not caught"


@pytest.mark.parametrize("name", MUTATION_NAMES)
def test_each_crafted_episode_is_clean_without_its_mutation(name):
    result = run_episode(spec=mutation_spec(name))
    assert result.ok, result.oracle_violations + result.invariant_violations


def test_unknown_mutation_rejected():
    with pytest.raises(ValueError):
        with apply_mutation("no_such_mutation"):
            pass


def test_mutations_are_fully_restored_after_exit():
    import repro.dsm.protocol as protocol
    from repro.core.policies import AdaptiveThreshold
    from repro.dsm.redirection import ForwardingPointerMechanism

    originals = (
        protocol.apply_diff,
        ForwardingPointerMechanism.miss_directive,
        AdaptiveThreshold.current_threshold,
    )
    for name in MUTATION_NAMES:
        with apply_mutation(name):
            pass
        assert (
            protocol.apply_diff,
            ForwardingPointerMechanism.miss_directive,
            AdaptiveThreshold.current_threshold,
        ) == originals, f"{name} leaked its patch"


def test_mutation_restored_even_when_run_crashes():
    import repro.dsm.protocol as protocol

    original = protocol.apply_diff
    with pytest.raises(RuntimeError):
        with apply_mutation("skip_diff"):
            raise RuntimeError("episode blew up")
    assert protocol.apply_diff is original
