"""Cross-cutting protocol invariants, checked after whole-app runs.

These are conservation laws of the message/event accounting and the
home-uniqueness invariant — they must hold for every application under
every policy and mechanism.
"""

import pytest

from repro.apps import Asp, Lu, SingleWriterBenchmark, Sor, Tsp
from repro.bench.runner import make_mechanism, make_policy, run_once
from repro.cluster.message import MsgCategory

CONFIGS = [
    (lambda: SingleWriterBenchmark(total_updates=96, repetition=4), "AT",
     "forwarding-pointer", 5),
    (lambda: SingleWriterBenchmark(total_updates=96, repetition=2), "FT1",
     "forwarding-pointer", 5),
    (lambda: SingleWriterBenchmark(total_updates=96, repetition=8), "AT",
     "broadcast", 5),
    (lambda: SingleWriterBenchmark(total_updates=96, repetition=8), "FT1",
     "home-manager", 5),
    (lambda: Sor(size=16, iterations=3), "AT", "forwarding-pointer", 4),
    (lambda: Sor(size=16, iterations=3), "JIAJIA", "forwarding-pointer", 4),
    (lambda: Asp(size=16), "FT2", "forwarding-pointer", 4),
    (lambda: Lu(size=16), "AT", "forwarding-pointer", 4),
    (lambda: Tsp(cities=7), "JUMP", "forwarding-pointer", 4),
]


@pytest.fixture(
    params=CONFIGS,
    ids=[f"{i}" for i in range(len(CONFIGS))],
    scope="module",
)
def completed_run(request):
    factory, policy, mechanism, nodes = request.param
    app = factory()
    result = run_once(
        app,
        policy=make_policy(policy),
        nodes=nodes,
        mechanism=make_mechanism(mechanism),
    )
    return result


def test_every_object_has_exactly_one_home(completed_run):
    gos = completed_run.gos
    for obj in gos.heap:
        holders = [
            engine.node_id
            for engine in gos.engines
            if obj.oid in engine.homes
        ]
        assert len(holders) == 1, f"{obj!r} homed at {holders}"


def test_no_pending_protocol_state_left(completed_run):
    for engine in completed_run.gos.engines:
        assert not engine._reply_waiters
        assert not engine.pending_foreign
        assert not engine._pending_diffs
        assert not engine._local_home_waits
        assert not engine.dirty
        assert not engine.home_dirty
        for oid, entry in engine.homes.items():
            assert not entry.pending, f"oid {oid} has deferred requests"


def test_redirect_messages_match_redirection_events(completed_run):
    stats = completed_run.stats
    assert (
        stats.msg_count.get(MsgCategory.REDIRECT, 0)
        == stats.events.get("redir", 0)
    )


def test_diff_acks_match_applied_diffs(completed_run):
    stats = completed_run.stats
    assert (
        stats.msg_count.get(MsgCategory.DIFF_ACK, 0)
        == stats.events.get("diff", 0)
    )
    # DIFF messages = original sends + chain forwards
    assert stats.msg_count.get(MsgCategory.DIFF, 0) == (
        stats.events.get("diff", 0) + stats.events.get("diff_forward", 0)
    )


def test_migration_events_match_transfer_messages(completed_run):
    stats = completed_run.stats
    # request-triggered migrations ride OBJ_REPLY_MIG / SHIP_REPLY;
    # JiaJia transfers ride CONTROL — the mig event counts them all
    transfers = stats.msg_count.get(MsgCategory.OBJ_REPLY_MIG, 0)
    assert stats.events.get("mig", 0) >= transfers
    assert stats.events.get("migration", 0) == stats.events.get("mig", 0)


def test_home_versions_account_for_all_updates(completed_run):
    """Every version bump at a home is a diff apply, a ship, or a
    home-write interval close."""
    gos = completed_run.gos
    stats = completed_run.stats
    total_versions = sum(
        entry.version
        for engine in gos.engines
        for entry in engine.homes.values()
    )
    updates = (
        stats.events.get("diff", 0)
        + stats.events.get("ship", 0)
        + stats.events.get("home_write", 0)
    )
    # home_write traps once per interval, bumps once per flush: 1:1 except
    # for the final never-flushed interval of each thread, so <=.
    assert total_versions <= updates
    assert total_versions >= stats.events.get("diff", 0)


def test_monitor_counts_cover_served_requests(completed_run):
    gos = completed_run.gos
    stats = completed_run.stats
    total_remote_reads = sum(
        entry.state.remote_reads
        for engine in gos.engines
        for entry in engine.homes.values()
    )
    assert total_remote_reads == stats.events.get("remote_read", 0)
