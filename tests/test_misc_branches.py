"""Remaining branch coverage: render details, batch staleness, misc."""

import numpy as np

from repro.bench.figure2 import render_figure2
from repro.dsm.cache import AccessMode, CacheEntry
from repro.gos.thread import ThreadContext

from tests.conftest import make_gos, run_threads


def test_figure2_render_includes_speedup_row():
    data = {
        "times": {
            "DEMO": {
                "NoHM": {2: 8.0, 4: 6.0},
                "HM": {2: 4.0, 4: 2.0},
            }
        },
        "messages": {},
        "mode": "quick",
    }
    out = render_figure2(data)
    assert "HM/NoHM" in out
    assert "HM speedup" in out
    assert "2.00x" in out  # speedup at P=4 relative to P=2


def test_batch_reply_stale_version_refetched_singularly():
    """If a batched copy arrives below the requester's required version
    (a rare notice race), it is discarded and refetched via the
    deferring singular path."""
    gos = make_gos(nnodes=3)
    obj = gos.alloc_array(4, home=0)
    engine2 = gos.engines[2]
    # fabricate: node 2 believes version 1 is required, but home is at 0
    engine2.required_version[obj.oid] = 1
    fetched = []

    def reader():
        ctx = ThreadContext(gos, tid=0, node=2)
        yield from ctx.read_many([obj])
        payload = yield from ctx.read(obj)
        fetched.append(payload.copy())

    def writer():
        ctx = ThreadContext(gos, tid=1, node=1)
        lock = gos.alloc_lock(home=1)
        yield from ctx.acquire(lock)
        payload = yield from ctx.write(obj)
        payload[0] = 9.0
        yield from ctx.release(lock)

    run_threads(gos, reader(), writer())
    # the reader discarded the stale batched copy and eventually saw
    # version >= 1 (the write) through the singular path
    assert fetched[0][0] == 9.0
    assert gos.stats.events["obj"] >= 2  # the refetch happened


def test_downgrade_clean_on_read_copy_is_noop():
    entry = CacheEntry(payload=np.zeros(4), version=1)
    entry.downgrade_clean()
    assert entry.mode is AccessMode.READ
    assert entry.twin is None


def test_lu_with_more_threads_than_rows():
    from repro.apps import Lu
    from tests.conftest import make_jvm

    app = Lu(size=4)
    result = make_jvm(nodes=4).run(app, nthreads=4)
    app.verify(result.output)


def test_two_barriers_interleaved():
    gos = make_gos(nnodes=3)
    bar_a = gos.alloc_barrier(parties=2, home=0)
    bar_b = gos.alloc_barrier(parties=2, home=1)
    trace = []

    def body(tid):
        ctx = ThreadContext(gos, tid=tid, node=tid + 1)
        for phase in range(3):
            yield from ctx.barrier(bar_a)
            trace.append((tid, "a", phase))
            yield from ctx.barrier(bar_b)
            trace.append((tid, "b", phase))

    run_threads(gos, body(0), body(1))
    # phases interleave in lockstep: all "a" of phase k precede all "b"
    for phase in range(3):
        a_idx = [i for i, t in enumerate(trace) if t[1:] == ("a", phase)]
        b_idx = [i for i, t in enumerate(trace) if t[1:] == ("b", phase)]
        assert max(a_idx) < min(b_idx)


def test_stats_repr_and_engine_repr_smoke():
    gos = make_gos(nnodes=2)
    assert "ClusterStats" in repr(gos.stats)
    assert "DsmEngine" in repr(gos.engines[0])
