"""Tests for the AdaptiveThresholdDecay future-work heuristic."""

import pytest

from repro.apps import SingleWriterBenchmark
from repro.bench.runner import run_once
from repro.core.policies import AdaptiveThreshold, AdaptiveThresholdDecay
from repro.core.state import ObjectAccessState

ALPHA = 2.0


def make_state(**kwargs):
    return ObjectAccessState(oid=7, object_bytes=512, **kwargs)


def test_gamma_validation():
    with pytest.raises(ValueError):
        AdaptiveThresholdDecay(gamma=0.0)
    with pytest.raises(ValueError):
        AdaptiveThresholdDecay(gamma=1.5)
    AdaptiveThresholdDecay(gamma=1.0)  # degenerate but legal


def test_gamma_one_matches_plain_adaptive():
    plain = AdaptiveThreshold()
    degenerate = AdaptiveThresholdDecay(gamma=1.0)
    state_a = make_state()
    state_b = make_state()
    for state in (state_a, state_b):
        state.record_redirections(5)
        state.record_remote_write(2, 10)
    assert plain.should_migrate(state_a, 2, ALPHA, False) == (
        degenerate.should_migrate(state_b, 2, ALPHA, False)
    )
    assert state_a.redirections == state_b.redirections == 5


def test_decay_erodes_old_redirections():
    policy = AdaptiveThresholdDecay(gamma=0.5)
    state = make_state()
    state.record_redirections(16)
    state.record_remote_write(2, 10)
    # each decision halves the remembered redirections
    for expected in (8, 4, 2, 1, 0):
        policy.should_migrate(state, 2, ALPHA, False)
        assert state.redirections == expected
    # with the feedback gone, the threshold is back at the floor
    assert policy.current_threshold(state, ALPHA) == 1.0


def test_fractions_carry_between_decisions():
    policy = AdaptiveThresholdDecay(gamma=0.9)
    state = make_state()
    state.record_redirections(1)
    state.record_remote_write(2, 10)
    # 1 * 0.9 -> int 0, fraction .9; next decay: .9*.9=.81 -> 0
    policy.should_migrate(state, 2, ALPHA, False)
    assert state.redirections == 0
    assert policy._fractions[state.oid][0] == pytest.approx(0.9)
    policy.should_migrate(state, 2, ALPHA, False)
    assert policy._fractions[state.oid][0] == pytest.approx(0.81)


def test_migration_clears_fraction_state():
    policy = AdaptiveThresholdDecay(gamma=0.5)
    state = make_state()
    state.record_redirections(3)
    state.record_remote_write(2, 10)
    policy.should_migrate(state, 2, ALPHA, False)
    assert state.oid in policy._fractions
    policy.on_migrated(state, ALPHA)
    assert state.oid not in policy._fractions


def test_decay_is_a_negative_result_on_the_phase_change():
    """The honest ablation finding (EXPERIMENTS.md): the paper's
    cumulative feedback already re-sensitizes quickly after a phase
    change (E grows within a single lasting turn), so decaying the
    memory only weakens transient-phase robustness."""
    schedule = [(256, 2), (256, 16)]
    at = run_once(
        SingleWriterBenchmark(schedule=schedule),
        policy=AdaptiveThreshold(),
        nodes=9,
    )
    atd = run_once(
        SingleWriterBenchmark(schedule=schedule),
        policy=AdaptiveThresholdDecay(gamma=0.5),
        nodes=9,
    )
    assert atd.migrations > at.migrations
    assert atd.execution_time_us >= at.execution_time_us


def test_decay_correctness_on_apps():
    app = SingleWriterBenchmark(total_updates=128, repetition=4)
    result = run_once(app, policy=AdaptiveThresholdDecay(), nodes=5)
    assert 128 <= result.output <= 131


def test_schedule_validation():
    with pytest.raises(ValueError):
        SingleWriterBenchmark(schedule=[])
    with pytest.raises(ValueError):
        SingleWriterBenchmark(schedule=[(0, 4)])
    with pytest.raises(ValueError):
        SingleWriterBenchmark(schedule=[(16, 0)])
    app = SingleWriterBenchmark(schedule=[(16, 2), (16, 8)])
    assert app.total_updates == 32
