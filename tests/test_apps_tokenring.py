"""Tests for the migratory-data TokenRing application."""

import pytest

from repro.apps import TokenRing
from repro.bench.runner import run_once
from repro.core.policies import MigratingHome, NoMigration


def test_parameter_validation():
    with pytest.raises(ValueError):
        TokenRing(rounds=0)
    with pytest.raises(ValueError):
        TokenRing(burst=0)
    with pytest.raises(ValueError):
        TokenRing(buffer_len=0)


@pytest.mark.parametrize("nodes,burst", [(2, 1), (5, 1), (5, 4)])
def test_ring_completes_and_verifies(nodes, burst):
    app = TokenRing(rounds=8, burst=burst)
    result = run_once(app, policy="AT", nodes=nodes)
    turn, _buffer = result.output
    assert turn == 8 * nodes


def test_ring_verifies_under_all_policies():
    for policy in ("NM", "FT1", "FT2", "AT", "JUMP", "LF"):
        app = TokenRing(rounds=6)
        run_once(app, policy=policy, nodes=4)


def test_verify_rejects_wrong_final_turn():
    app = TokenRing(rounds=4)
    app._nthreads = 3
    import numpy as np

    with pytest.raises(Exception):
        app.verify((11, np.zeros(64)))


def test_jump_thrashes_on_migratory_pattern():
    """§2: 'the worst case happens when the shared page is written by
    processes sequentially, which produces numerous home notification
    messages' — JUMP drags the home around the ring."""
    jump = run_once(TokenRing(rounds=16, burst=1), policy="JUMP", nodes=5)
    at = run_once(TokenRing(rounds=16, burst=1), policy="AT", nodes=5)
    assert jump.migrations > 20 * max(at.migrations, 1)
    assert jump.stats.events["redir"] > 20 * max(at.stats.events["redir"], 1)
    assert jump.execution_time_us > 1.5 * at.execution_time_us


def test_at_pins_home_on_pure_migratory_pattern():
    at = run_once(TokenRing(rounds=16, burst=1), policy="AT", nodes=5)
    nm = run_once(TokenRing(rounds=16, burst=1), policy="NM", nodes=5)
    assert at.migrations <= 2
    # AT costs nothing relative to never migrating
    assert at.execution_time_us <= 1.02 * nm.execution_time_us


def test_burst_reintroduces_single_writer_benefit():
    nm = run_once(TokenRing(rounds=16, burst=8), policy="NM", nodes=5)
    at = run_once(TokenRing(rounds=16, burst=8), policy="AT", nodes=5)
    ft1 = run_once(TokenRing(rounds=16, burst=8), policy="FT1", nodes=5)
    assert at.execution_time_us < nm.execution_time_us
    # the feedback halves the migration churn relative to FT1
    assert at.migrations < ft1.migrations
