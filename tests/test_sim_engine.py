"""Tests for the discrete-event simulator core."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.errors import DeadlockError, SimulationError
from repro.sim.future import Future
from repro.sim.process import Delay


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_advances_clock(sim):
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    assert sim.run() == 5.0
    assert fired == [5.0]


def test_events_run_in_time_order(sim):
    order = []
    sim.schedule(10.0, lambda: order.append("late"))
    sim.schedule(1.0, lambda: order.append("early"))
    sim.schedule(5.0, lambda: order.append("middle"))
    sim.run()
    assert order == ["early", "middle", "late"]


def test_ties_break_in_scheduling_order(sim):
    order = []
    for i in range(10):
        sim.schedule(3.0, lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_nested_scheduling(sim):
    order = []

    def outer():
        order.append(("outer", sim.now))
        sim.schedule(2.0, inner)

    def inner():
        order.append(("inner", sim.now))

    sim.schedule(1.0, outer)
    sim.run()
    assert order == [("outer", 1.0), ("inner", 3.0)]


def test_call_soon_runs_at_current_instant(sim):
    times = []
    sim.schedule(4.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
    sim.run()
    assert times == [4.0]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_at_in_the_past_rejected(sim):
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(1.0, lambda: None)


def test_run_until_stops_early(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(100.0, lambda: fired.append(2))
    assert sim.run(until=50.0) == 50.0
    assert fired == [1]
    # the remaining event still fires on the next run
    sim.run()
    assert fired == [1, 2]


def test_run_until_beyond_last_event_advances_clock(sim):
    sim.schedule(1.0, lambda: None)
    assert sim.run(until=10.0) == 10.0


def test_events_processed_counter(sim):
    for i in range(7):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 7


def test_empty_run_returns_zero(sim):
    assert sim.run() == 0.0


def test_deadlock_detection_names_blocked_process(sim):
    def blocked_forever():
        yield Future(label="never")

    sim.spawn(blocked_forever(), name="stuck-thread")
    with pytest.raises(DeadlockError) as exc:
        sim.run()
    assert "stuck-thread" in str(exc.value)


def test_no_deadlock_when_processes_finish(sim):
    def quick():
        yield Delay(1.0)

    sim.spawn(quick(), name="quick")
    assert sim.run() == 1.0


def test_determinism_across_instances():
    def build_and_run():
        sim = Simulator()
        log = []

        def worker(name, delays):
            for d in delays:
                yield Delay(d)
                log.append((name, sim.now))

        sim.spawn(worker("a", [1.0, 2.0, 3.0]), name="a")
        sim.spawn(worker("b", [2.0, 2.0, 2.0]), name="b")
        sim.run()
        return log

    assert build_and_run() == build_and_run()
