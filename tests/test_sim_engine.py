"""Tests for the discrete-event simulator core."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.errors import DeadlockError, SimulationError
from repro.sim.future import Future
from repro.sim.process import Delay


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_advances_clock(sim):
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    assert sim.run() == 5.0
    assert fired == [5.0]


def test_events_run_in_time_order(sim):
    order = []
    sim.schedule(10.0, lambda: order.append("late"))
    sim.schedule(1.0, lambda: order.append("early"))
    sim.schedule(5.0, lambda: order.append("middle"))
    sim.run()
    assert order == ["early", "middle", "late"]


def test_ties_break_in_scheduling_order(sim):
    order = []
    for i in range(10):
        sim.schedule(3.0, lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_nested_scheduling(sim):
    order = []

    def outer():
        order.append(("outer", sim.now))
        sim.schedule(2.0, inner)

    def inner():
        order.append(("inner", sim.now))

    sim.schedule(1.0, outer)
    sim.run()
    assert order == [("outer", 1.0), ("inner", 3.0)]


def test_call_soon_runs_at_current_instant(sim):
    times = []
    sim.schedule(4.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
    sim.run()
    assert times == [4.0]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_at_in_the_past_rejected(sim):
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(1.0, lambda: None)


def test_run_until_stops_early(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(100.0, lambda: fired.append(2))
    assert sim.run(until=50.0) == 50.0
    assert fired == [1]
    # the remaining event still fires on the next run
    sim.run()
    assert fired == [1, 2]


def test_run_until_beyond_last_event_advances_clock(sim):
    sim.schedule(1.0, lambda: None)
    assert sim.run(until=10.0) == 10.0


def test_events_processed_counter(sim):
    for i in range(7):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 7


def test_empty_run_returns_zero(sim):
    assert sim.run() == 0.0


def test_deadlock_detection_names_blocked_process(sim):
    def blocked_forever():
        yield Future(label="never")

    sim.spawn(blocked_forever(), name="stuck-thread")
    with pytest.raises(DeadlockError) as exc:
        sim.run()
    assert "stuck-thread" in str(exc.value)


def test_no_deadlock_when_processes_finish(sim):
    def quick():
        yield Delay(1.0)

    sim.spawn(quick(), name="quick")
    assert sim.run() == 1.0


def test_determinism_across_instances():
    def build_and_run():
        sim = Simulator()
        log = []

        def worker(name, delays):
            for d in delays:
                yield Delay(d)
                log.append((name, sim.now))

        sim.spawn(worker("a", [1.0, 2.0, 3.0]), name="a")
        sim.spawn(worker("b", [2.0, 2.0, 2.0]), name="b")
        sim.run()
        return log

    assert build_and_run() == build_and_run()


# -- run(until=...) edge cases with argument-carrying event tuples ---------


def test_heartbeat_run_until_stops_early(sim):
    """The instrumented (heartbeat) drain honours ``until`` exactly like
    the plain drain: later events stay queued, the clock lands on
    ``until``, and the heartbeat saw only the executed prefix."""
    ran = []
    beats = []
    sim.set_heartbeat(2, lambda s: beats.append(s.events_processed))
    for t in (1.0, 2.0, 3.0, 10.0, 11.0):
        sim.at(t, ran.append, t)
    assert sim.run(until=5.0) == 5.0
    assert ran == [1.0, 2.0, 3.0]
    assert beats == [2]  # 3 events executed -> one full interval of 2
    # the deferred tail runs on resume
    assert sim.run() == 11.0
    assert ran == [1.0, 2.0, 3.0, 10.0, 11.0]


def test_zero_delay_ties_from_inside_callback_run_in_order(sim):
    """Events scheduled at the current instant from a running callback
    execute after already-queued ties, in scheduling order — for arg
    tuples exactly as for bare callbacks."""
    order = []

    def first():
        order.append("first")
        sim.schedule(0.0, order.append, "nested-arg")
        sim.call_soon(lambda: order.append("nested-lambda"))

    sim.at(1.0, first)
    sim.at(1.0, order.append, "tie")
    assert sim.run() == 1.0
    assert order == ["first", "tie", "nested-arg", "nested-lambda"]


def test_run_until_boundary_executes_events_at_until(sim):
    """An event scheduled exactly at ``until`` runs; strictly-later ones
    do not."""
    ran = []
    sim.at(5.0, ran.append, "at-until")
    sim.at(5.0 + 1e-9, ran.append, "after")
    assert sim.run(until=5.0) == 5.0
    assert ran == ["at-until"]


def test_run_until_with_blocked_process_does_not_raise(sim):
    """Stopping at ``until`` with a process still blocked is not a
    deadlock — the process may be waiting for events beyond the horizon."""
    def sleeper():
        yield Delay(100.0)

    sim.spawn(sleeper(), name="sleeper")
    assert sim.run(until=1.0) == 1.0
    # draining past the wake-up completes it without error
    assert sim.run() == 100.0


def test_deadlock_report_names_blocked_processes_with_tuple_events(sim):
    """A drained heap with waiting processes still names every blocked
    process, also when the heap only ever held argument-carrying tuples."""
    gate = Future(label="never")

    def waiter(name):
        yield gate

    sim.spawn(waiter("w1"), name="w1")
    sim.spawn(waiter("w2"), name="w2")
    sim.at(1.0, (lambda *a: None), "arg1", "arg2")
    with pytest.raises(DeadlockError) as excinfo:
        sim.run()
    assert "w1" in str(excinfo.value) and "w2" in str(excinfo.value)
