"""Tests (incl. property-based) for twin/diff machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.diff import (
    DIFF_HEADER_BYTES,
    RUN_HEADER_BYTES,
    apply_diff,
    compute_diff,
    diff_size_bytes,
)
from repro.memory.twin import make_twin


def test_no_change_yields_none():
    twin = np.arange(10.0)
    assert compute_diff(1, twin, twin.copy()) is None


def test_single_change():
    twin = np.zeros(10)
    current = twin.copy()
    current[3] = 7.0
    diff = compute_diff(1, twin, current)
    assert diff.nchanged == 1
    assert list(diff.indices) == [3]
    assert list(diff.values) == [7.0]


def test_size_single_run():
    # 4 consecutive float64 changes: header + one run + 32B payload
    indices = np.array([2, 3, 4, 5])
    assert diff_size_bytes(indices, 8) == (
        DIFF_HEADER_BYTES + RUN_HEADER_BYTES + 32
    )


def test_size_two_runs():
    indices = np.array([0, 1, 7, 8, 9])
    assert diff_size_bytes(indices, 8) == (
        DIFF_HEADER_BYTES + 2 * RUN_HEADER_BYTES + 40
    )


def test_size_empty():
    assert diff_size_bytes(np.array([], dtype=int), 8) == 0


def test_apply_roundtrip():
    twin = np.arange(20.0)
    current = twin.copy()
    current[[0, 5, 19]] = [-1.0, -2.0, -3.0]
    diff = compute_diff(1, twin, current)
    target = twin.copy()
    apply_diff(target, diff)
    assert np.array_equal(target, current)


def test_apply_out_of_bounds_rejected():
    twin = np.zeros(10)
    current = twin.copy()
    current[9] = 1.0
    diff = compute_diff(1, twin, current)
    small = np.zeros(5)
    with pytest.raises(IndexError):
        apply_diff(small, diff)


def test_layout_mismatch_rejected():
    with pytest.raises(ValueError):
        compute_diff(1, np.zeros(3), np.zeros(4))
    with pytest.raises(ValueError):
        compute_diff(1, np.zeros(3), np.zeros(3, dtype=np.int32))


def test_twin_is_independent_copy():
    payload = np.arange(5.0)
    twin = make_twin(payload)
    payload[0] = 99.0
    assert twin[0] == 0.0


def test_twin_requires_1d():
    with pytest.raises(ValueError):
        make_twin(np.zeros((2, 2)))


@given(
    base=st.lists(
        st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=64
    ),
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=63),
            st.integers(min_value=-1000, max_value=1000),
        ),
        max_size=32,
    ),
)
@settings(max_examples=200)
def test_property_diff_apply_reconstructs_exactly(base, writes):
    """twin + diff(current) applied to a copy of twin == current."""
    twin = np.array(base, dtype=np.int64)
    current = twin.copy()
    for index, value in writes:
        current[index % len(current)] = value
    diff = compute_diff(42, twin, current)
    reconstructed = twin.copy()
    if diff is not None:
        apply_diff(reconstructed, diff)
    assert np.array_equal(reconstructed, current)


@given(
    base=st.lists(
        st.integers(min_value=-5, max_value=5), min_size=1, max_size=64
    ),
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=63),
            st.integers(min_value=-5, max_value=5),
        ),
        max_size=32,
    ),
)
@settings(max_examples=200)
def test_property_diff_only_carries_changes(base, writes):
    twin = np.array(base, dtype=np.int64)
    current = twin.copy()
    for index, value in writes:
        current[index % len(current)] = value
    diff = compute_diff(1, twin, current)
    if diff is None:
        assert np.array_equal(twin, current)
    else:
        # every carried index truly changed, and nothing else did
        changed = set(int(i) for i in diff.indices)
        for i in range(len(twin)):
            assert (twin[i] != current[i]) == (i in changed)


@given(
    indices=st.lists(
        st.integers(min_value=0, max_value=10**6), min_size=1, max_size=200,
        unique=True,
    ),
    itemsize=st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=200)
def test_property_size_bounds(indices, itemsize):
    """RLE size is bounded below by payload+header and above by worst-case
    one-run-per-index."""
    arr = np.array(sorted(indices))
    size = diff_size_bytes(arr, itemsize)
    payload = len(indices) * itemsize
    assert size >= DIFF_HEADER_BYTES + RUN_HEADER_BYTES + payload
    assert size <= DIFF_HEADER_BYTES + len(indices) * RUN_HEADER_BYTES + payload


class _CountingArray(np.ndarray):
    """ndarray view that counts element-wise comparison invocations."""

    ne_calls = 0
    eq_calls = 0

    def __ne__(self, other):
        _CountingArray.ne_calls += 1
        return np.ndarray.__ne__(self, other)

    def __eq__(self, other):
        _CountingArray.eq_calls += 1
        return np.ndarray.__eq__(self, other)

    __hash__ = None


@pytest.fixture
def comparison_counter():
    _CountingArray.ne_calls = 0
    _CountingArray.eq_calls = 0
    yield _CountingArray


def test_compute_diff_single_comparison_when_changed(comparison_counter):
    """The single-scan contract: one array comparison per compute_diff.

    The cheap exit, the changed-index extraction and the wire-size
    computation must all feed off one ``!=`` scan — a second comparison
    (the pre-PR-3 shape computed ``==`` for the exit and ``!=`` for the
    extraction) is a hot-path regression this test pins down.
    """
    twin = np.zeros(64).view(comparison_counter)
    current = np.zeros(64).view(comparison_counter)
    current[5] = 1.0
    current[17] = 2.0
    diff = compute_diff(1, twin, current)
    assert diff is not None and diff.nchanged == 2
    assert comparison_counter.ne_calls == 1
    assert comparison_counter.eq_calls == 0


def test_compute_diff_single_comparison_when_clean(comparison_counter):
    """The no-change exit also costs exactly one comparison."""
    twin = np.arange(64.0).view(comparison_counter)
    current = np.arange(64.0).view(comparison_counter)
    assert compute_diff(1, twin, current) is None
    assert comparison_counter.ne_calls == 1
    assert comparison_counter.eq_calls == 0
