"""Sequential oracle: op semantics, observation checks, heap comparison."""

import numpy as np

from repro.check import oracle
from repro.check.fuzz import generate_program


def _episode(seed=3):
    spec = generate_program(seed)
    heap = oracle.reference_heap(spec)
    return spec, heap


def test_reference_heap_matches_inits():
    spec, heap = _episode()
    for obj in spec.objects:
        assert heap[obj.name].dtype == np.float64
        np.testing.assert_array_equal(heap[obj.name], np.asarray(obj.init))


def test_apply_op_semantics():
    spec, heap = _episode()
    obj = spec.objects[0].name
    arr = heap[obj]
    assert oracle.apply_op(heap, ("set", obj, 0, 2.5)) is None
    assert arr[0] == 2.5
    assert oracle.apply_op(heap, ("add", obj, 0, 1.5)) is None
    assert arr[0] == 4.0
    observed = oracle.apply_op(heap, ("read", obj, 0))
    assert observed == 4.0
    oracle.apply_op(heap, ("ship_add", obj, 0, -1.0))
    assert arr[0] == 3.0


def test_replay_accepts_faithful_log():
    spec, heap = _episode()
    obj = spec.objects[0].name
    log = [
        (0, ("set", obj, 0, 7.0), None),
        (1, ("read", obj, 0), 7.0),
        (0, ("add", obj, 0, 1.0), None),
        (1, ("read", obj, 0), 8.0),
    ]
    _heap, violations = oracle.replay(spec, log)
    assert violations == []


def test_replay_flags_stale_observation():
    spec, _ = _episode()
    obj = spec.objects[0].name
    log = [
        (0, ("set", obj, 0, 7.0), None),
        (1, ("read", obj, 0, ), 6.0),  # stale: replay says 7.0
    ]
    _heap, violations = oracle.replay(spec, log)
    assert violations
    assert "read" in violations[0] or obj in violations[0]


def test_check_episode_flags_final_heap_divergence():
    spec, heap = _episode()
    obj = spec.objects[0].name
    log = [(0, ("set", obj, 0, 7.0), None)]
    good = {name: arr.copy() for name, arr in oracle.replay(spec, log)[0].items()}
    assert oracle.check_episode(spec, log, good) == []
    bad = {name: arr.copy() for name, arr in good.items()}
    bad[obj][0] += 1.0
    violations = oracle.check_episode(spec, log, bad)
    assert violations
    assert any(obj in v for v in violations)


def test_check_episode_without_final_heap_skips_comparison():
    # a crashed run has no final heap; the log itself is still judged
    spec, _ = _episode()
    obj = spec.objects[0].name
    log = [(0, ("set", obj, 0, 7.0), None)]
    assert oracle.check_episode(spec, log, None) == []


def test_nan_equals_nan():
    spec, _ = _episode()
    obj = spec.objects[0].name
    nan = float("nan")
    log = [
        (0, ("set", obj, 0, nan), None),
        (1, ("read", obj, 0), nan),
    ]
    _heap, violations = oracle.replay(spec, log)
    assert violations == []
