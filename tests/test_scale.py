"""Scale coverage: clusters beyond the paper's 16 nodes."""

import pytest

from repro.apps import Sor, SingleWriterBenchmark
from repro.bench.runner import run_once


def test_thirty_two_node_cluster_runs_and_verifies():
    app = Sor(size=64, iterations=3)
    result = run_once(app, policy="AT", nodes=32)
    assert result.nnodes == 32
    assert result.migrations > 0


def test_many_threads_share_fewer_nodes():
    """More threads than nodes: round-robin placement, co-located
    threads share caches and locks correctly."""
    app = SingleWriterBenchmark(
        total_updates=64, repetition=4, workers_off_master=False
    )
    result = run_once(app, policy="AT", nodes=3, nthreads=9)
    assert result.nthreads == 9
    assert 64 <= result.output <= 67


def test_single_thread_on_many_nodes():
    app = Sor(size=16, iterations=2)
    result = run_once(app, policy="AT", nodes=8, nthreads=1)
    # one thread: everything local after the initial relocations
    assert result.nthreads == 1


@pytest.mark.parametrize("nodes", [17, 24])
def test_odd_cluster_sizes(nodes):
    app = Sor(size=48, iterations=2)
    result = run_once(app, policy="AT", nodes=nodes)
    assert result.nnodes == nodes