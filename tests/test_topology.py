"""Tests for the interconnect topology models (PROTOCOL.md §15).

Covers the per-pair cost triples of the hierarchical and fat-tree
models, the colon-spec/dict/instance forms of :func:`make_topology`,
and the Network integration: hop latency, oversubscription penalty,
and serialized uplink contention on the legacy send path.
"""

import pytest

from repro.cluster.hockney import HockneyModel
from repro.cluster.message import HEADER_BYTES, MsgCategory
from repro.cluster.network import Network
from repro.cluster.stats import ClusterStats
from repro.cluster.topology import (
    FatTreeTopology,
    FlatTopology,
    HierarchicalTopology,
    make_topology,
)
from repro.sim.engine import Simulator

#: startup 100 us, 10 MB/s == 10 bytes/us — round numbers for hand math.
MODEL = HockneyModel(startup_us=100.0, bandwidth_mb_s=10.0)


def _build(nnodes, topology=None):
    sim = Simulator()
    net = Network(
        sim, MODEL, nnodes, ClusterStats(), service_us=0.0,
        topology=topology,
    )
    inbox = []
    for node in net.nodes:
        node.install_handler(
            lambda msg, nid=node.node_id: inbox.append((nid, sim.now))
        )
    return sim, net, inbox


# -- per-pair cost triples -------------------------------------------------


def test_flat_topology_is_free():
    topo = FlatTopology(8)
    for src in range(8):
        for dst in range(8):
            assert topo.pair(src, dst) == (0.0, 0.0, -1)


def test_hierarchical_pair_classes():
    # leaves: {0..3} {4..7} {8..11}
    topo = HierarchicalTopology(
        12, leaf_size=4, hop_us=5.0, oversubscription=4.0
    )
    assert topo.nlinks == 3
    # same leaf: free, no shared uplink
    assert topo.pair(0, 3) == (0.0, 0.0, -1)
    # cross leaf: 2 extra hops, (S-1) penalty, source leaf's uplink
    assert topo.pair(0, 4) == (10.0, 3.0, 0)
    assert topo.pair(11, 2) == (10.0, 3.0, 2)


def test_fat_tree_pair_classes():
    # edges of 2 nodes, pods of 2 edges: pods {0..3} {4..7}
    topo = FatTreeTopology(
        8,
        edge_size=2,
        pod_size=2,
        hop_us=5.0,
        oversubscription=2.0,
        core_oversubscription=3.0,
    )
    assert topo.nlinks == 4
    assert topo.pair(0, 1) == (0.0, 0.0, -1)  # same edge
    # same pod: edge->agg->edge = 2 extra hops, edge oversub only
    assert topo.pair(0, 2) == (10.0, 1.0, 0)
    # cross pod: 4 extra hops, compounded ratio 2*3 -> penalty 5
    assert topo.pair(0, 4) == (20.0, 5.0, 0)
    # the contention link is always the *source* edge uplink
    assert topo.pair(5, 0) == (20.0, 5.0, 2)


def test_tables_match_pair_function():
    topo = FatTreeTopology(12, edge_size=2, pod_size=2, oversubscription=2.0)
    hop, pen, link = topo.tables()
    for src in range(12):
        for dst in range(12):
            expect = (
                (0.0, 0.0, -1) if src == dst else topo.pair(src, dst)
            )
            assert (hop[src, dst], pen[src, dst], link[src, dst]) == expect


# -- constructor validation ------------------------------------------------


def test_parameter_validation():
    with pytest.raises(ValueError, match="at least one node"):
        FlatTopology(0)
    with pytest.raises(ValueError, match="leaf_size"):
        HierarchicalTopology(8, leaf_size=0)
    with pytest.raises(ValueError, match="hop_us"):
        HierarchicalTopology(8, hop_us=-1.0)
    with pytest.raises(ValueError, match="oversubscription"):
        HierarchicalTopology(8, oversubscription=0.5)
    with pytest.raises(ValueError, match="edge_size"):
        FatTreeTopology(8, edge_size=0)
    with pytest.raises(ValueError, match="pod_size"):
        FatTreeTopology(8, pod_size=0)
    with pytest.raises(ValueError, match="ratios"):
        FatTreeTopology(8, core_oversubscription=0.9)


# -- make_topology spec forms ----------------------------------------------


def test_make_topology_none_and_instance():
    assert make_topology(None, 8) is None
    topo = HierarchicalTopology(8, leaf_size=4)
    assert make_topology(topo, 8) is topo
    with pytest.raises(ValueError, match="built for 8 nodes"):
        make_topology(topo, 16)


def test_make_topology_from_string():
    topo = make_topology("hier:leaf=4:oversub=4:hop=2.5:contention=1", 12)
    assert isinstance(topo, HierarchicalTopology)
    assert topo.leaf_size == 4
    assert topo.oversubscription == 4.0
    assert topo.hop_us == 2.5
    assert topo.contention is True

    topo = make_topology("fat-tree:edge=2:pod=2:core-oversub=3", 8)
    assert isinstance(topo, FatTreeTopology)
    assert topo.core_oversubscription == 3.0
    assert topo.contention is False

    assert isinstance(make_topology("flat", 4), FlatTopology)


def test_make_topology_from_dict():
    topo = make_topology(
        {"kind": "fat-tree", "edge_size": 2, "pod_size": 2}, 8
    )
    assert isinstance(topo, FatTreeTopology)
    assert topo.edge_size == 2


def test_make_topology_rejects_bad_specs():
    with pytest.raises(ValueError, match="unknown topology kind"):
        make_topology("torus", 8)
    with pytest.raises(ValueError, match="unknown topology kind"):
        make_topology({"kind": "torus"}, 8)
    with pytest.raises(ValueError, match="unknown topology parameter"):
        make_topology("hier:leaves=4", 8)
    with pytest.raises(ValueError, match="malformed topology parameter"):
        make_topology("hier:leaf", 8)


# -- Network integration ---------------------------------------------------


def test_flat_topology_matches_no_topology():
    """A flat topology charges exactly the seed's single-switch cost."""
    for topology in (None, "flat"):
        sim, net, inbox = _build(4, topology=topology)
        net.send(0, 3, MsgCategory.CONTROL, size_bytes=460)
        sim.run()
        (_, t), = inbox
        # 500B total / 10 B/us = 50 us wire + 100 us startup
        assert t == pytest.approx(150.0)


def test_cross_leaf_pays_hops_and_penalty():
    sim, net, inbox = _build(
        8, topology="hier:leaf=4:hop=5:oversub=4"
    )
    net.send(0, 4, MsgCategory.CONTROL, size_bytes=460)
    sim.run()
    (_, t), = inbox
    # 50 wire + 100 startup + 2*5 hops + 50*(4-1) oversub stretch
    assert t == pytest.approx(310.0)


def test_same_leaf_stays_at_hockney_cost():
    sim, net, inbox = _build(
        8, topology="hier:leaf=4:hop=5:oversub=4"
    )
    net.send(0, 3, MsgCategory.CONTROL, size_bytes=460)
    sim.run()
    (_, t), = inbox
    assert t == pytest.approx(150.0)


def test_contention_serializes_same_leaf_uplink():
    """Two same-leaf senders crossing the spine queue on the shared
    uplink: the second message's occupancy starts when the first ends."""
    sim, net, inbox = _build(
        8, topology="hier:leaf=4:hop=5:oversub=4:contention=1"
    )
    net.send(0, 4, MsgCategory.CONTROL, size_bytes=460)
    net.send(1, 5, MsgCategory.CONTROL, size_bytes=460)
    sim.run()
    times = dict(inbox)
    # first: NIC 0..50, uplink occupancy 500*4/10 = 200 -> ends 250,
    # + startup 100 + hops 10 = 360
    assert times[4] == pytest.approx(360.0)
    # second: own NIC free (different node) -> injection ends 50, but
    # the leaf uplink is busy until 250 -> ends 450, arrives 560
    assert times[5] == pytest.approx(560.0)


def test_contention_leaves_other_leaves_alone():
    """Senders on different leaves use different uplinks: no queueing."""
    sim, net, inbox = _build(
        8, topology="hier:leaf=4:hop=5:oversub=4:contention=1"
    )
    net.send(0, 4, MsgCategory.CONTROL, size_bytes=460)
    net.send(4, 0, MsgCategory.CONTROL, size_bytes=460)
    sim.run()
    times = dict(inbox)
    assert times[4] == pytest.approx(360.0)
    assert times[0] == pytest.approx(360.0)


def test_contention_intra_leaf_traffic_skips_uplink():
    """Same-leaf messages never occupy the uplink even with contention
    on — a later cross-leaf message sees a free link."""
    sim, net, inbox = _build(
        8, topology="hier:leaf=4:hop=5:oversub=4:contention=1"
    )
    net.send(0, 3, MsgCategory.CONTROL, size_bytes=460)
    net.send(1, 4, MsgCategory.CONTROL, size_bytes=460)
    sim.run()
    times = dict(inbox)
    assert times[3] == pytest.approx(150.0)
    # uplink was idle: occupancy 50..250, + 100 startup + 10 hops
    assert times[4] == pytest.approx(360.0)


def test_network_rejects_mismatched_topology():
    topo = HierarchicalTopology(16, leaf_size=4)
    with pytest.raises(ValueError, match="built for 16 nodes"):
        Network(Simulator(), MODEL, 8, ClusterStats(), topology=topo)


def test_describe_is_json_friendly():
    import json

    topo = make_topology("fat-tree:edge=2:pod=2:oversub=2:contention=1", 8)
    desc = json.loads(json.dumps(topo.describe()))
    assert desc["kind"] == "fat-tree"
    assert desc["nnodes"] == 8
    assert desc["contention"] is True
