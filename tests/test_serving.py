"""The serving SLO pipeline end to end (repro-bench serve).

Covers the bench layer above :mod:`repro.apps.serving`: the online
request-span collector, the deterministic report and its digest, the
policy race, the CLI target, and the conformance-harness integration
(a serving episode must run clean under the oracle and the runtime
invariant checker).
"""

import json

import pytest

from repro.apps.serving import ServingSpec
from repro.bench.cli import main as cli_main
from repro.bench.serving import (
    SERVE_POLICIES,
    SERVE_SCHEMA,
    render_race,
    render_serving,
    report_digest,
    run_serving,
    run_serving_race,
)
from repro.check.runner import run_check, run_episode

SPEC = ServingSpec(seed=0, nodes=4, keys=12, phases=2, requests_per_thread=4)


def test_report_shape_and_accounting():
    """Every request span closes and lands in exactly one histogram."""
    report = run_serving(SPEC)
    assert report["schema"] == SERVE_SCHEMA
    expected = SPEC.nthreads * SPEC.requests_per_thread * SPEC.phases
    assert report["requests"] == expected
    assert report["spans"] == {"opened": expected, "closed": expected}
    per_class = sum(
        report["latency_us"][cls]["count"]
        for cls in report["latency_us"]
        if cls != "all"
    )
    assert per_class == expected
    assert report["latency_us"]["all"]["count"] == expected
    assert sum(e["requests"] for e in report["epoch_throughput"]) == expected
    # one throughput row per phase, windows strictly ordered
    assert [e["epoch"] for e in report["epoch_throughput"]] == [0, 1]
    ends = [e["end_us"] for e in report["epoch_throughput"]]
    assert all(e is not None for e in ends)
    assert ends == sorted(ends)
    assert all(
        e["req_per_s"] > 0 for e in report["epoch_throughput"]
    )


def test_report_deterministic_and_digest_stable():
    """Equal specs produce byte-identical reports (same digest)."""
    first = run_serving(SPEC)
    second = run_serving(SPEC)
    assert first == second
    assert report_digest(first) == report_digest(second)
    # and the digest is over canonical JSON — key order never matters
    reordered = json.loads(
        json.dumps(first, sort_keys=True), object_pairs_hook=dict
    )
    assert report_digest(reordered) == report_digest(first)


def test_report_json_clean():
    """Reports hold only JSON types — no numpy scalars, no objects."""
    report = run_serving(SPEC)
    json.dumps(report)  # raises on anything exotic


def test_migrations_follow_hot_set_shift():
    """Adaptive policies migrate when the hot set (and owners) rotate."""
    moving = run_serving(
        ServingSpec(seed=0, nodes=8, keys=16, phases=3,
                    requests_per_thread=6, policy="JUMP")
    )
    frozen = run_serving(
        ServingSpec(seed=0, nodes=8, keys=16, phases=3,
                    requests_per_thread=6, policy="NM")
    )
    assert frozen["migrations"] == 0
    assert moving["migrations"] > 0


def test_race_runs_identical_traffic():
    """Race legs differ only in policy: same request count everywhere."""
    race = run_serving_race(SPEC, ["NM", "AT"])
    assert race["schema"] == SERVE_SCHEMA + "-race"
    nm, at = race["policies"]["NM"], race["policies"]["AT"]
    assert nm["requests"] == at["requests"]
    assert nm["policy"] == "NM" and at["policy"] == "AT"
    text = render_race(race)
    assert "NM" in text and "AT" in text and "p999_us" in text


def test_render_serving_mentions_saturation():
    """Small runs flag unresolved tails with the ~ marker."""
    report = run_serving(SPEC)
    text = render_serving(report)
    assert "Serving SLO report" in text
    assert "p999_us" in text
    assert "~" in text  # 32 requests cannot resolve p999


def test_serve_policies_all_instantiable():
    """Every raceable policy runs without mandatory parameters."""
    tiny = ServingSpec(seed=1, nodes=2, keys=4, phases=1,
                       requests_per_thread=2)
    race = run_serving_race(tiny, list(SERVE_POLICIES))
    assert set(race["policies"]) == set(SERVE_POLICIES)


def test_cli_serve_single(capsys):
    """repro-bench serve prints the report and its digest."""
    assert cli_main([
        "serve", "--nodes", "4", "--policy", "AT", "--seed", "0",
        "--keys", "12", "--requests", "4", "--phases", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "Serving SLO report" in out
    assert "report digest: " in out
    digest = out.rsplit("report digest: ", 1)[1].strip()
    assert digest == report_digest(run_serving(SPEC))


def test_cli_serve_race_and_json(tmp_path, capsys):
    """Comma-separated policies race; --json lands the raw report."""
    out_path = tmp_path / "race.json"
    assert cli_main([
        "serve", "--nodes", "2", "--policy", "NM,AT", "--seed", "1",
        "--keys", "4", "--requests", "2", "--phases", "1",
        "--json", str(out_path),
    ]) == 0
    assert "Policy race" in capsys.readouterr().out
    payload = json.loads(out_path.read_text())
    assert set(payload["policies"]) == {"NM", "AT"}


def test_cli_serve_rejects_unknown_policy(capsys):
    """FT (mandatory threshold) and typos are refused with a message."""
    with pytest.raises(SystemExit):
        cli_main(["serve", "--policy", "FT"])
    with pytest.raises(SystemExit):
        cli_main(["serve", "--policy", "WAT"])


def test_serving_episode_clean_under_conformance():
    """A serving episode passes the oracle and the invariant checker."""
    result = run_episode(seed=0, flavor="serving")
    assert result.ok, result.verdict()
    assert result.ops > 0


def test_check_session_serving_flavor(tmp_path):
    """A short serving-flavoured check session is green end to end."""
    report = run_check(
        episodes=5,
        base_seed=0,
        corpus_dir=tmp_path,
        self_test=False,
        flavor="serving",
    )
    assert report.ok
    assert len(report.episodes) == 5
    saved = json.loads((tmp_path / "report.json").read_text())
    assert saved["ok"] is True


def test_cli_check_flavor_flag(capsys):
    """The check target threads --flavor through to the generator."""
    assert cli_main([
        "check", "--episodes", "2", "--seed", "0",
        "--flavor", "serving", "--no-self-test",
    ]) == 0
    assert "conformance" in capsys.readouterr().out
