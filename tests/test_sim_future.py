"""Tests for one-shot futures."""

import pytest

from repro.sim.errors import SimulationError
from repro.sim.future import Future


def test_unresolved_state():
    fut = Future(label="x")
    assert not fut.resolved
    with pytest.raises(SimulationError):
        _ = fut.value


def test_resolve_and_read():
    fut = Future()
    fut.resolve(42)
    assert fut.resolved
    assert fut.value == 42


def test_resolve_none_is_a_value():
    fut = Future()
    fut.resolve(None)
    assert fut.resolved
    assert fut.value is None


def test_double_resolve_rejected():
    fut = Future()
    fut.resolve(1)
    with pytest.raises(SimulationError):
        fut.resolve(2)


def test_fail_then_value_raises_original():
    fut = Future()
    error = ValueError("boom")
    fut.fail(error)
    assert fut.resolved
    assert fut.exception is error
    with pytest.raises(ValueError):
        _ = fut.value


def test_fail_after_resolve_rejected():
    fut = Future()
    fut.resolve(1)
    with pytest.raises(SimulationError):
        fut.fail(ValueError())


def test_callbacks_fire_in_registration_order():
    fut = Future()
    order = []
    fut.add_done_callback(lambda f: order.append(1))
    fut.add_done_callback(lambda f: order.append(2))
    fut.resolve("v")
    assert order == [1, 2]


def test_callback_on_already_resolved_fires_immediately():
    fut = Future()
    fut.resolve(7)
    seen = []
    fut.add_done_callback(lambda f: seen.append(f.value))
    assert seen == [7]


def test_callbacks_fire_once():
    fut = Future()
    count = []
    fut.add_done_callback(lambda f: count.append(1))
    fut.resolve(0)
    assert count == [1]
