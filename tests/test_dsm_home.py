"""Tests for home-side entries and interval-based access trapping."""

import numpy as np

from repro.core.state import ObjectAccessState
from repro.dsm.home import HomeEntry


def make_home():
    return HomeEntry(
        payload=np.zeros(8),
        version=0,
        state=ObjectAccessState(oid=1, object_bytes=64),
    )


def test_home_read_trapped_once_per_interval():
    entry = make_home()
    assert entry.trap_home_read(interval=1)
    assert not entry.trap_home_read(interval=1)
    assert entry.trap_home_read(interval=2)
    assert entry.state.home_reads == 2


def test_home_write_trapped_once_per_interval():
    entry = make_home()
    trapped, exclusive = entry.trap_home_write(interval=1)
    assert trapped and not exclusive
    trapped, _ = entry.trap_home_write(interval=1)
    assert not trapped
    assert entry.state.home_writes == 1


def test_consecutive_interval_home_writes_become_exclusive():
    entry = make_home()
    _, exclusive1 = entry.trap_home_write(interval=1)
    _, exclusive2 = entry.trap_home_write(interval=2)
    assert not exclusive1
    assert exclusive2
    assert entry.state.exclusive_home_writes == 1


def test_reads_and_writes_trap_independently():
    entry = make_home()
    assert entry.trap_home_read(1)
    trapped, _ = entry.trap_home_write(1)
    assert trapped


def test_pending_queue_starts_empty():
    entry = make_home()
    assert not entry.pending
    assert len(entry.pending) == 0
    assert list(entry.pending) == []
