"""Stability of the JSON results schema downstream tooling consumes."""

import json
import pathlib

import pytest

ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture(scope="module")
def quick_json():
    path = ROOT / "results" / "bench_quick.json"
    if not path.exists():
        pytest.skip("results/bench_quick.json not generated")
    return json.loads(path.read_text())


def test_top_level_sections(quick_json):
    assert set(quick_json) >= {"figure2", "figure3", "figure5", "ablation"}


def test_figure2_schema(quick_json):
    fig2 = quick_json["figure2"]
    assert set(fig2) == {"times", "messages", "mode"}
    for app, variants in fig2["times"].items():
        assert set(variants) == {"NoHM", "HM"}
        for series in variants.values():
            assert all(float(v) > 0 for v in series.values())


def test_figure3_schema(quick_json):
    fig3 = quick_json["figure3"]
    for app in ("ASP", "SOR"):
        for vals in fig3["improvements"][app].values():
            assert set(vals) == {"time", "messages", "traffic"}


def test_figure5_schema(quick_json):
    fig5 = quick_json["figure5"]
    for section in ("times", "normalized_times", "breakdowns",
                    "normalized_messages"):
        assert section in fig5
    for per_proto in fig5["breakdowns"].values():
        for breakdown in per_proto.values():
            assert set(breakdown) == {"obj", "mig", "diff", "redir"}


def test_ablation_schema(quick_json):
    ablation = quick_json["ablation"]
    assert set(ablation) >= {
        "notification", "policies", "barrier_policies", "homeless",
        "lambda", "lock_discipline", "network", "decay",
    }
