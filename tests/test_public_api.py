"""Tests for the public package surface."""

import importlib

import pytest

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_version_is_semver_ish():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


@pytest.mark.parametrize(
    "module",
    [
        "repro.sim",
        "repro.cluster",
        "repro.memory",
        "repro.core",
        "repro.dsm",
        "repro.gos",
        "repro.apps",
        "repro.bench",
        "repro.analysis",
        "repro.trace",
    ],
)
def test_subpackages_import_cleanly(module):
    mod = importlib.import_module(module)
    assert mod.__doc__, f"{module} has no module docstring"


def test_subpackage_alls_resolve():
    for module_name in (
        "repro.sim",
        "repro.cluster",
        "repro.memory",
        "repro.core",
        "repro.dsm",
        "repro.gos",
        "repro.apps",
        "repro.trace",
        "repro.analysis",
    ):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"


def test_every_public_symbol_documented():
    for name in repro.__all__:
        obj = getattr(repro, name)
        if isinstance(obj, type) or callable(obj):
            assert obj.__doc__, f"repro.{name} lacks a docstring"


def test_py_typed_marker_shipped():
    import pathlib

    pkg_dir = pathlib.Path(repro.__file__).parent
    assert (pkg_dir / "py.typed").exists()
