"""Tests for streaming JSONL trace export/import round-trips."""

import json

import pytest

from repro.apps import SingleWriterBenchmark
from repro.cluster.hockney import FAST_ETHERNET
from repro.core.policies import AdaptiveThreshold
from repro.gos.jvm import DistributedJVM
from repro.obs.export import (
    TRACE_SCHEMA,
    JsonlTraceWriter,
    dump_trace,
    iter_trace,
    load_trace,
)
from repro.trace import TraceRecorder


def test_writer_meta_line_and_events(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    with JsonlTraceWriter(path, kinds=["migration"]) as sink:
        assert sink.wants("migration")
        assert not sink.wants("decision")
        sink.record("migration", 1.5, oid=1, node=0, new_home=2)
        sink.record("decision", 2.0, oid=1, node=0)  # filtered: no-op
        assert sink.events_written == 1
    lines = [json.loads(l) for l in open(path, encoding="utf-8")]
    from repro import _kernel
    from repro.obs.export import read_trace_meta

    assert lines[0] == {
        "schema": TRACE_SCHEMA,
        "kinds": ["migration"],
        "backend": _kernel.backend_name(),
        "kernel_build_hash": _kernel.build_hash(),
    }
    meta = read_trace_meta(path)
    assert meta["backend"] == _kernel.backend_name()
    # build provenance: the compiled kernel's build tag, None under
    # pure Python
    assert meta["kernel_build_hash"] == _kernel.build_hash()
    if _kernel.backend_name() == "compiled":
        assert isinstance(meta["kernel_build_hash"], str)
    else:
        assert meta["kernel_build_hash"] is None
    assert lines[1] == {
        "t": 1.5, "kind": "migration", "oid": 1, "node": 0,
        "detail": {"new_home": 2},
    }


def test_writer_creates_parent_directories(tmp_path):
    path = str(tmp_path / "deep" / "nested" / "trace.jsonl")
    with JsonlTraceWriter(path) as sink:
        sink.record("migration", 1.0, oid=1, node=0, new_home=2)
    assert load_trace(path).events[0].oid == 1


def test_writer_validates_kinds_and_flush_every(tmp_path):
    with pytest.raises(ValueError):
        JsonlTraceWriter(str(tmp_path / "x.jsonl"), kinds=["bogus"])
    with pytest.raises(ValueError):
        JsonlTraceWriter(str(tmp_path / "y.jsonl"), flush_every=0)


def test_record_after_close_raises(tmp_path):
    sink = JsonlTraceWriter(str(tmp_path / "t.jsonl"))
    sink.close()
    sink.close()  # idempotent
    with pytest.raises(ValueError):
        sink.record("migration", 1.0, oid=1, node=0, new_home=2)


def test_load_trace_rejects_non_trace_files(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError):
        load_trace(str(empty))
    bogus = tmp_path / "bogus.jsonl"
    bogus.write_text('{"not": "a trace"}\n')
    with pytest.raises(ValueError):
        load_trace(str(bogus))


def _run(tracer):
    app = SingleWriterBenchmark(total_updates=128, repetition=8)
    jvm = DistributedJVM(
        nodes=5, comm_model=FAST_ETHERNET, policy=AdaptiveThreshold(),
        tracer=tracer,
    )
    result = jvm.run(app)
    return result, app


def test_streamed_trace_round_trips_to_recorder_queries(tmp_path):
    """Acceptance: the same deterministic run traced to memory and to a
    JSONL stream yields identical events and query results."""
    recorder = TraceRecorder()
    _run(recorder)

    path = str(tmp_path / "run.jsonl")
    with JsonlTraceWriter(path) as sink:
        result, app = _run(sink)
    assert sink.events_written == len(recorder.events)

    loaded = load_trace(path)
    assert loaded.kinds == recorder.kinds
    assert loaded.events == recorder.events
    oid = app.counter.oid
    assert loaded.threshold_series(oid) == recorder.threshold_series(oid)
    assert loaded.home_path(oid, 0) == recorder.home_path(oid, 0)
    assert len(loaded.migrations()) == result.migrations


def test_iter_trace_streams_without_loading(tmp_path):
    recorder = TraceRecorder(kinds=["migration"])
    _run(recorder)
    path = str(tmp_path / "run.jsonl")
    assert dump_trace(recorder, path) == len(recorder.events)
    streamed = list(iter_trace(path))
    assert streamed == list(recorder.events)


def test_dump_trace_round_trips(tmp_path):
    recorder = TraceRecorder()
    recorder.record("migration", 1.0, oid=1, node=0, new_home=2)
    recorder.record("decision", 2.0, oid=1, node=2, threshold=1.5,
                    migrated=False)
    path = str(tmp_path / "dump.jsonl")
    dump_trace(recorder, path)
    loaded = load_trace(path)
    assert loaded.events == recorder.events
    assert loaded.kinds == recorder.kinds


def test_numpy_details_serialize(tmp_path):
    import numpy as np

    path = str(tmp_path / "np.jsonl")
    with JsonlTraceWriter(path) as sink:
        sink.record(
            "ship", 1.0, oid=1, node=0,
            size=np.int64(42), value=np.float64(1.5),
        )
    event = next(iter_trace(path))
    assert event.detail == {"size": 42, "value": 1.5}
