"""Tests for write notices and notice merging."""

import pytest

from repro.memory.version import WriteNotice, merge_notices


def test_notice_validation():
    WriteNotice(oid=1, version=1)
    with pytest.raises(ValueError):
        WriteNotice(oid=1, version=0)


def test_notice_ordering():
    assert WriteNotice(1, 2) < WriteNotice(1, 3) < WriteNotice(2, 1)


def test_merge_from_list():
    acc = {}
    merge_notices(acc, [WriteNotice(1, 3), WriteNotice(2, 1)])
    assert acc == {1: 3, 2: 1}


def test_merge_keeps_max_version():
    acc = {1: 5}
    merge_notices(acc, [WriteNotice(1, 3)])
    assert acc == {1: 5}
    merge_notices(acc, [WriteNotice(1, 9)])
    assert acc == {1: 9}


def test_merge_from_dict():
    acc = {1: 1}
    merge_notices(acc, {1: 4, 2: 2})
    assert acc == {1: 4, 2: 2}


def test_merge_empty_is_noop():
    acc = {3: 3}
    merge_notices(acc, [])
    merge_notices(acc, {})
    assert acc == {3: 3}
