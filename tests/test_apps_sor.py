"""Tests for the SOR application."""

import numpy as np
import pytest

from repro.apps.sor import Sor, sor_oracle, _relax_row, OMEGA

from tests.conftest import make_jvm


def test_relax_row_touches_only_one_color():
    row = np.ones(10)
    above = np.zeros(10)
    below = np.zeros(10)
    before = row.copy()
    _relax_row(row, above, below, i=2, color=0)
    changed = np.nonzero(row != before)[0]
    assert len(changed) > 0
    for j in changed:
        assert (2 + j) % 2 == 0
        assert 1 <= j <= 8  # boundary columns fixed


def test_relax_row_boundaries_fixed():
    row = np.arange(10.0)
    _relax_row(row, np.zeros(10), np.zeros(10), i=1, color=0)
    assert row[0] == 0.0 and row[9] == 9.0


def test_oracle_converges_toward_harmonic():
    """With zero boundary, SOR drives the interior toward zero."""
    grid = np.zeros((10, 10))
    grid[1:-1, 1:-1] = 1.0
    out = sor_oracle(grid, iterations=200)
    assert np.abs(out[1:-1, 1:-1]).max() < 1e-6


def test_oracle_preserves_boundary():
    rng = np.random.default_rng(0)
    grid = rng.random((8, 8))
    out = sor_oracle(grid, iterations=3)
    assert np.array_equal(out[0], grid[0])
    assert np.array_equal(out[-1], grid[-1])
    assert np.array_equal(out[:, 0], grid[:, 0])
    assert np.array_equal(out[:, -1], grid[:, -1])


@pytest.mark.parametrize("nodes,threads", [(2, 2), (4, 4), (3, 3)])
def test_sor_correct_on_dsm(nodes, threads):
    app = Sor(size=16, iterations=3)
    result = make_jvm(nodes=nodes).run(app, nthreads=threads)
    app.verify(result.output)


def test_sor_correct_under_all_policies():
    from repro.bench.runner import make_policy

    for policy in ("NM", "FT1", "FT2", "AT", "JIAJIA", "JUMP"):
        app = Sor(size=12, iterations=2)
        result = make_jvm(nodes=3, policy=make_policy(policy)).run(app)
        app.verify(result.output)


def test_sor_single_thread_matches_oracle_trivially():
    app = Sor(size=10, iterations=2)
    result = make_jvm(nodes=1).run(app)
    app.verify(result.output)
    assert result.stats.total_messages() == 0  # all local


def test_sor_interior_rows_migrate_to_owners():
    app = Sor(size=24, iterations=4)
    result = make_jvm(nodes=4).run(app)
    app.verify(result.output)
    gos = result.gos
    # after the run, every interior row is homed at its owner's node
    from repro.gos.distribution import block_owner

    for i, row in enumerate(app.rows[1:-1], start=1):
        owner_tid = block_owner(i - 1, app.size, result.nthreads)
        assert gos.current_home(row) == owner_tid % result.nnodes


def test_sor_validation():
    with pytest.raises(ValueError):
        Sor(size=0)
    with pytest.raises(ValueError):
        Sor(size=4, iterations=0)


def test_omega_in_stable_range():
    assert 0 < OMEGA < 2  # SOR stability condition
