"""Regression tests for protocol bugs found by the coherence fuzzer.

Each test pins the exact scenario that once deadlocked or crashed, so
the fixes cannot silently rot.
"""

from repro.cluster.hockney import FAST_ETHERNET
from repro.core.policies import BarrierMigration, FixedThreshold
from repro.dsm.redirection import HomeManagerMechanism
from repro.gos.space import GlobalObjectSpace
from repro.gos.thread import ThreadContext

from tests.conftest import run_threads


def test_manager_node_faulting_after_home_left_manager():
    """Bug 1: the manager node itself missing at an obsolete home used to
    self-send a HOME_QUERY (ValueError) which surfaced as a deadlock.

    Scenario: object homed at node 0 (the manager), migrated to node 1;
    node 0 then faults on it, gets redirected to 'ask the manager' — i.e.
    itself — and must answer from its local map."""
    gos = GlobalObjectSpace(
        3,
        FAST_ETHERNET,
        policy=FixedThreshold(1),
        mechanism=HomeManagerMechanism(manager_node=0),
    )
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)

    def writer():
        ctx = ThreadContext(gos, tid=0, node=1)
        for _ in range(3):
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[0] += 1.0
            yield from ctx.release(lock)

    run_threads(gos, writer())
    assert gos.current_home(obj) == 1
    seen = []

    def manager_reader():
        ctx = ThreadContext(gos, tid=1, node=0)
        yield from ctx.acquire(lock)
        payload = yield from ctx.read(obj)
        seen.append(float(payload[0]))
        yield from ctx.release(lock)

    run_threads(gos, manager_reader())
    assert seen == [3.0]


def test_home_returning_to_former_home_clears_stale_pointer():
    """Bug 2: a node that was home, lost the home, and became home again
    kept its old forwarding pointer; a later self-hinted fault followed
    the stale pointer into a loop/deadlock.

    Scenario (JiaJia): ping-pong writers move the home 0 -> 1 -> 0 across
    barriers; node 0's pointer from the first migration must be dropped
    when the home comes back."""
    gos = GlobalObjectSpace(2, FAST_ETHERNET, policy=BarrierMigration())
    obj = gos.alloc_array(4, home=0)
    barrier = gos.alloc_barrier(parties=2, home=0)

    def body(tid, phases_writing):
        ctx = ThreadContext(gos, tid=tid, node=tid)
        for phase in range(4):
            if phase in phases_writing:
                payload = yield from ctx.write(obj)
                payload[tid] = float(phase * 10 + tid)
            yield from ctx.barrier(barrier)
            yield from ctx.read(obj)
            yield from ctx.barrier(barrier)

    # node 1 writes phases 0,1 (home -> 1), node 0 writes phases 2,3
    # (home -> back to 0)
    run_threads(gos, body(0, {2, 3}), body(1, {0, 1}))
    assert gos.current_home(obj) == 0
    assert obj.oid not in gos.engines[0].forwards
    final = gos.read_global(obj)
    assert final[0] == 30.0 and final[1] == 11.0

def test_fresh_monitor_starts_at_policy_floor():
    """Bug 3 (found by the conformance fuzzer, episode seed 6): fresh
    object monitors started from ``threshold_base = 1.0`` even under
    ``AdaptiveThreshold(t_init=2)``, so the first decision crashed
    Equation 2's floor check.  Monitors must start at the policy's own
    floor (``T_0 = T_init``, paper §4.2)."""
    from repro.check.runner import run_episode
    from repro.core.policies import AdaptiveThreshold, NoMigration

    assert NoMigration().initial_base() == 1.0
    assert AdaptiveThreshold(t_init=2.0).initial_base() == 2.0
    result = run_episode(seed=6)  # draws AT with t_init=2
    assert result.ok, (
        result.run_error,
        result.oracle_violations,
        result.invariant_violations,
    )


def test_colocated_flush_during_ack_window_keeps_all_writes():
    """Bug 4 (found by the conformance fuzzer): a lock release by one
    co-located thread flushed another thread's dirty object; a third
    thread then wrote into the still-WRITE entry against the *old* twin
    before the ack landed, and its diff could come out empty (a write
    restoring the twin's value) — a silent lost update.  The write
    interval now ends at diff *send*, so the later write opens a fresh
    interval against the post-diff image.  These seeds reproduced the
    loss (one per failure mode the fix went through)."""
    from repro.check.runner import run_episode

    for seed in (
        1523881144904842212,
        7020556084422670476,
        2829050777472913798,
    ):
        result = run_episode(seed=seed)
        assert result.ok, (
            seed,
            result.run_error,
            result.oracle_violations,
            result.invariant_violations,
        )
