"""Unit event-streams for the runtime invariant checker."""

from repro.check.invariants import InvariantChecker
from repro.core.threshold import adaptive_threshold
from repro.trace.events import TraceEvent


def ev(kind, oid, node, t=0.0, **detail):
    """Shorthand trace event for feeding the checker directly."""
    return TraceEvent(time_us=t, kind=kind, oid=oid, node=node, detail=detail)


def feed(checker, *events):
    """Push events through the subscriber entry point."""
    for event in events:
        checker.on_event(event)
    return checker


def test_clean_lifecycle_is_ok():
    c = InvariantChecker(nnodes=3)
    feed(
        c,
        ev("home_install", 1, 0, origin="initial", version=0),
        ev("twin_create", 1, 2, interval=1),
        ev("diff_send", 1, 2, target=0, size_bytes=16, base_version=0),
        ev("twin_free", 1, 2, interval=1),
        ev(
            "diff_apply", 1, 0,
            writer=2, size_bytes=16, version_before=0, version_after=1,
        ),
    )
    assert c.finish() == []
    assert c.ok
    assert c.events_seen == 5


def test_double_initial_install_flagged():
    c = InvariantChecker(nnodes=2)
    feed(
        c,
        ev("home_install", 1, 0, origin="initial", version=0),
        ev("home_install", 1, 1, origin="initial", version=0),
    )
    assert any("single-home" in v for v in c.violations)


def test_migration_handshake_checked():
    # migrating from a non-home, installing at the wrong target, and
    # installing with nothing in flight are all distinct violations
    c = InvariantChecker(nnodes=3)
    feed(c, ev("migration", 1, 0, old_home=0, new_home=2))
    assert any("not its home" in v for v in c.violations)

    c = InvariantChecker(nnodes=3)
    feed(
        c,
        ev("home_install", 1, 0, origin="initial", version=0),
        ev("migration", 1, 0, old_home=0, new_home=2),
        ev("home_install", 1, 1, origin="reply-mig", version=0),
    )
    assert any("targeted node 2" in v for v in c.violations)

    c = InvariantChecker(nnodes=3)
    feed(c, ev("home_install", 1, 1, origin="reply-mig", version=3))
    assert any("no migration in flight" in v for v in c.violations)


def test_completed_migration_is_clean():
    c = InvariantChecker(nnodes=3)
    feed(
        c,
        ev("home_install", 1, 0, origin="initial", version=0),
        ev("migration", 1, 0, old_home=0, new_home=2),
        ev("home_install", 1, 2, origin="reply-mig", version=0),
    )
    assert c.finish() == []


def test_version_discipline():
    c = InvariantChecker(nnodes=2)
    feed(
        c,
        ev("home_install", 1, 0, origin="initial", version=0),
        ev("twin_create", 1, 1, interval=1),
        ev(
            "diff_apply", 1, 0,
            writer=1, size_bytes=8, version_before=0, version_after=2,
        ),
    )
    assert any("expected +1" in v for v in c.violations)

    c = InvariantChecker(nnodes=2)
    feed(
        c,
        ev("home_install", 1, 0, origin="initial", version=5),
        ev(
            "diff_apply", 1, 0,
            writer=1, size_bytes=8, version_before=2, version_after=3,
        ),
    )
    assert any("stale" in v for v in c.violations)


def test_diff_send_requires_live_twin():
    c = InvariantChecker(nnodes=2)
    feed(c, ev("diff_send", 1, 1, target=0, size_bytes=8, base_version=0))
    assert any("without a live twin" in v for v in c.violations)


def test_twin_alternation():
    c = InvariantChecker(nnodes=2)
    feed(
        c,
        ev("twin_create", 1, 1, interval=1),
        ev("twin_create", 1, 1, interval=2),
    )
    assert any("already live" in v for v in c.violations)

    c = InvariantChecker(nnodes=2)
    feed(c, ev("twin_free", 1, 1, interval=1))
    assert any("none live" in v for v in c.violations)


def test_redirect_chain_bound():
    c = InvariantChecker(nnodes=2)
    # bound with no migrations is nnodes + 1 = 3; the 4th hop trips it
    for _ in range(3):
        feed(c, ev("redirect", 1, 0, obsolete_home=0, requester=1))
    assert c.ok
    feed(c, ev("redirect", 1, 0, obsolete_home=0, requester=1))
    assert any("redirect-bound" in v for v in c.violations)


def test_redirect_chain_resets_on_reaching_home():
    c = InvariantChecker(nnodes=2)
    feed(c, ev("home_install", 1, 0, origin="initial", version=0))
    for _ in range(3):
        feed(c, ev("redirect", 1, 1, obsolete_home=1, requester=1))
        feed(
            c,
            ev(
                "decision", 1, 0,
                requester=1, threshold=None, consecutive=0,
                exclusive_home_writes=0, redirections=0, migrated=False,
                writer=-1, alpha=1.5, base=1.0,
            ),
        )
    assert c.finish() == []


def test_nm_must_never_migrate_on_request():
    c = InvariantChecker(nnodes=2, policy_name="NM")
    feed(
        c,
        ev("home_install", 1, 0, origin="initial", version=0),
        ev(
            "decision", 1, 0,
            requester=1, threshold=None, consecutive=2,
            exclusive_home_writes=0, redirections=0, migrated=True,
            writer=1, alpha=1.5, base=1.0,
        ),
    )
    assert any("never does" in v for v in c.violations)


def _decision(threshold, migrated, consecutive=2, r=3, e=1, alpha=2.0):
    return ev(
        "decision", 1, 0,
        requester=1, threshold=threshold, consecutive=consecutive,
        exclusive_home_writes=e, redirections=r, migrated=migrated,
        writer=1, alpha=alpha, base=1.0,
    )


def test_adaptive_threshold_replay():
    params = {"lam": 1.0, "t_init": 1.0}
    good = adaptive_threshold(
        base=1.0, redirections=3, exclusive_home_writes=1, alpha=2.0
    )
    c = InvariantChecker(nnodes=2, policy_name="AT", policy_params=params)
    feed(
        c,
        ev("home_install", 1, 0, origin="initial", version=0),
        _decision(good, migrated=(2 >= good)),
    )
    assert c.ok, c.violations

    c = InvariantChecker(nnodes=2, policy_name="AT", policy_params=params)
    feed(
        c,
        ev("home_install", 1, 0, origin="initial", version=0),
        _decision(good + 1.0, migrated=False),
    )
    assert any("rule replay" in v for v in c.violations)


def test_decision_outcome_must_follow_threshold():
    c = InvariantChecker(
        nnodes=2, policy_name="FT", policy_params={"threshold": 2}
    )
    feed(
        c,
        ev("home_install", 1, 0, origin="initial", version=0),
        _decision(2.0, migrated=False, consecutive=5),
    )
    assert any("disagrees with rule" in v for v in c.violations)


def test_finish_flags_leaks():
    c = InvariantChecker(nnodes=2)
    feed(
        c,
        ev("home_install", 1, 0, origin="initial", version=0),
        ev("migration", 1, 0, old_home=0, new_home=1),
        ev("twin_create", 2, 1, interval=1),
        ev("twin_create", 2, 0, interval=1),
        ev("diff_send", 2, 0, target=1, size_bytes=8, base_version=0),
    )
    violations = c.finish()
    assert any("never completed" in v for v in violations)
    assert any("leaked a live twin" in v for v in violations)
    assert any("diff-conservation" in v for v in violations)


def test_finish_flags_settled_pointer_cycle():
    c = InvariantChecker(nnodes=3)
    # a settled forwarding cycle cannot be produced by legal event
    # sequences, so plant one directly in the replayed state
    c._pointers[7] = {0: 1, 1: 0}
    assert any("redirect-acyclic" in v for v in c.finish())


def test_violation_cap_preserves_overflow_count():
    c = InvariantChecker(nnodes=2, max_violations=3)
    for _ in range(10):
        feed(c, ev("twin_free", 1, 1, interval=1))
    assert len(c.violations) == 3
    assert c.overflow == 7
    assert not c.ok
