"""Tests for the GlobalObjectSpace facade."""

import numpy as np
import pytest

from repro.gos.thread import ThreadContext

from tests.conftest import make_gos, run_threads


def test_alloc_array_installs_home(gos):
    obj = gos.alloc_array(16, home=2, label="arr")
    assert obj.oid in gos.engines[2].homes
    assert gos.current_home(obj) == 2
    assert gos.heap.initial_home(obj.oid) == 2


def test_alloc_fields_installs_home(gos):
    obj = gos.alloc_fields(("a", "b"), home=1)
    assert gos.current_home(obj) == 1


def test_write_and_read_global_roundtrip(gos):
    obj = gos.alloc_array(4, home=3)
    gos.write_global(obj, np.array([1.0, 2.0, 3.0, 4.0]))
    out = gos.read_global(obj)
    assert np.array_equal(out, [1.0, 2.0, 3.0, 4.0])
    # read_global returns a copy
    out[0] = 99.0
    assert gos.read_global(obj)[0] == 1.0


def test_lock_ids_unique(gos):
    a = gos.alloc_lock(home=0)
    b = gos.alloc_lock(home=1)
    assert a.lock_id != b.lock_id
    assert b.home == 1


def test_barrier_registration(gos):
    handle = gos.alloc_barrier(parties=3, home=2)
    assert handle.barrier_id in gos.engines[2].barriers


def test_barrier_on_wrong_node_rejected(gos):
    from repro.dsm.barrier import BarrierHandle

    with pytest.raises(ValueError):
        gos.engines[1].register_barrier(
            BarrierHandle(barrier_id=99, home=0, parties=2)
        )


def test_migration_count_tracks_stats(gos):
    assert gos.migration_count() == 0
    gos.stats.incr("migration", 3)
    assert gos.migration_count() == 3


def test_thread_context_placement_validation(gos):
    with pytest.raises(ValueError):
        ThreadContext(gos, tid=0, node=99)


def test_get_put_field_roundtrip(gos):
    obj = gos.alloc_fields(("x", "y"), home=0)
    got = []

    def body():
        ctx = ThreadContext(gos, tid=0, node=1)
        yield from ctx.put_field(obj, "y", 3.5)
        value = yield from ctx.get_field(obj, "y")
        got.append(value)

    run_threads(gos, body())
    assert got == [3.5]


def test_field_access_on_array_rejected(gos):
    obj = gos.alloc_array(4, home=0)

    def body():
        ctx = ThreadContext(gos, tid=0, node=1)
        yield from ctx.get_field(obj, "x")

    from repro.sim.errors import ProcessFailed

    with pytest.raises(ProcessFailed):
        run_threads(gos, body())


def test_compute_charges_time(gos):
    def body():
        ctx = ThreadContext(gos, tid=0, node=0)
        yield from ctx.compute(123.0)

    end = run_threads(gos, body())
    assert end == 123.0


def test_compute_zero_is_free(gos):
    def body():
        ctx = ThreadContext(gos, tid=0, node=0)
        yield from ctx.compute(0.0)

    assert run_threads(gos, body()) == 0.0
