"""Tests for the migration policy family."""

import pytest

from repro.core.policies import (
    AdaptiveThreshold,
    BarrierMigration,
    FixedThreshold,
    LazyFlushing,
    MigratingHome,
    NoMigration,
)
from repro.core.state import ObjectAccessState

ALPHA = 2.0


def make_state(**kwargs):
    return ObjectAccessState(oid=1, object_bytes=1000, **kwargs)


# -- NoMigration ------------------------------------------------------------


def test_no_migration_never_fires():
    policy = NoMigration()
    state = make_state()
    for _ in range(100):
        state.record_remote_write(2, 10)
    assert not policy.should_migrate(state, 2, ALPHA, True)
    assert policy.name == "NM"


# -- FixedThreshold -----------------------------------------------------------


def test_fixed_threshold_fires_at_k():
    policy = FixedThreshold(3)
    state = make_state()
    for _ in range(2):
        state.record_remote_write(2, 10)
        assert not policy.should_migrate(state, 2, ALPHA, False)
    state.record_remote_write(2, 10)
    assert policy.should_migrate(state, 2, ALPHA, False)


def test_fixed_threshold_requires_matching_requester():
    policy = FixedThreshold(1)
    state = make_state()
    state.record_remote_write(2, 10)
    assert not policy.should_migrate(state, 3, ALPHA, False)
    assert policy.should_migrate(state, 2, ALPHA, False)


def test_fixed_threshold_names():
    assert FixedThreshold(1).name == "FT1"
    assert FixedThreshold(2).name == "FT2"


def test_fixed_threshold_validation():
    with pytest.raises(ValueError):
        FixedThreshold(0)


def test_fixed_threshold_on_migrated_resets():
    policy = FixedThreshold(1)
    state = make_state()
    state.record_remote_write(2, 10)
    policy.on_migrated(state, ALPHA)
    assert state.consecutive_writes == 0
    assert state.migrations == 1


# -- AdaptiveThreshold --------------------------------------------------------


def test_adaptive_starts_at_t_init():
    policy = AdaptiveThreshold()
    state = make_state()
    assert policy.current_threshold(state, ALPHA) == 1.0
    state.record_remote_write(2, 10)
    assert policy.should_migrate(state, 2, ALPHA, False)


def test_adaptive_redirections_inhibit():
    policy = AdaptiveThreshold()
    state = make_state()
    state.record_redirections(5)
    state.record_remote_write(2, 10)
    assert policy.current_threshold(state, ALPHA) == 6.0
    assert not policy.should_migrate(state, 2, ALPHA, False)


def test_adaptive_exclusive_home_writes_sensitize():
    policy = AdaptiveThreshold()
    state = make_state(threshold_base=5.0)
    state.record_redirections(2)
    # two exclusive home writes at alpha=2 cancel four redirections
    state.record_home_write()
    state.record_home_write()
    state.record_home_write()
    assert state.exclusive_home_writes == 2
    assert policy.current_threshold(state, ALPHA) == pytest.approx(3.0)


def test_adaptive_on_migrated_freezes_threshold():
    policy = AdaptiveThreshold()
    state = make_state()
    state.record_redirections(3)
    state.record_remote_write(2, 10)
    frozen = policy.current_threshold(state, ALPHA)
    policy.on_migrated(state, ALPHA)
    assert state.threshold_base == frozen
    assert state.redirections == 0
    assert state.exclusive_home_writes == 0


def test_adaptive_requires_matching_requester():
    policy = AdaptiveThreshold()
    state = make_state()
    state.record_remote_write(2, 10)
    assert not policy.should_migrate(state, 9, ALPHA, False)


def test_adaptive_custom_lambda():
    policy = AdaptiveThreshold(lam=0.5)
    state = make_state()
    state.record_redirections(4)
    assert policy.current_threshold(state, ALPHA) == 3.0


def test_adaptive_t_init_validation():
    with pytest.raises(ValueError):
        AdaptiveThreshold(t_init=0.5)


# -- MigratingHome (JUMP) ------------------------------------------------------


def test_jump_migrates_on_any_write_request():
    policy = MigratingHome()
    state = make_state()
    assert policy.should_migrate(state, 7, ALPHA, for_write=True)
    assert not policy.should_migrate(state, 7, ALPHA, for_write=False)


# -- LazyFlushing (Jackal) ------------------------------------------------------


def test_lazy_flushing_requires_sole_sharer():
    policy = LazyFlushing()
    state = make_state()
    state.record_remote_read(3)
    assert policy.should_migrate(state, 3, ALPHA, for_write=True)
    state.record_remote_read(4)  # another sharer appears
    assert not policy.should_migrate(state, 3, ALPHA, for_write=True)


def test_lazy_flushing_read_requests_never_migrate():
    policy = LazyFlushing()
    state = make_state()
    assert not policy.should_migrate(state, 3, ALPHA, for_write=False)


def test_lazy_flushing_transition_cap():
    policy = LazyFlushing(max_transitions=2)
    state = make_state()
    for _ in range(2):
        assert policy.should_migrate(state, 3, ALPHA, for_write=True)
        policy.on_migrated(state, ALPHA)
    assert state.transitions == 2
    assert not policy.should_migrate(state, 3, ALPHA, for_write=True)


def test_lazy_flushing_validation():
    with pytest.raises(ValueError):
        LazyFlushing(max_transitions=0)


# -- BarrierMigration (JiaJia) ---------------------------------------------------


def test_barrier_migration_never_fires_on_requests():
    policy = BarrierMigration()
    state = make_state()
    state.record_remote_write(2, 10)
    assert not policy.should_migrate(state, 2, ALPHA, True)
    assert policy.wants_barrier_migration()


def test_barrier_migration_target_single_writer():
    policy = BarrierMigration()
    state = make_state()
    state.record_remote_write(4, 10)
    assert policy.barrier_migrate_target(state) == 4
    state.record_remote_write(5, 10)
    assert policy.barrier_migrate_target(state) is None


def test_non_barrier_policies_decline_barrier_hook():
    for policy in (NoMigration(), FixedThreshold(1), AdaptiveThreshold()):
        assert not policy.wants_barrier_migration()
        assert policy.barrier_migrate_target(make_state()) is None
