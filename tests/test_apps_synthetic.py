"""Tests for the Figure-4 synthetic single-writer benchmark."""

import pytest

from repro.apps import SingleWriterBenchmark
from repro.apps.base import VerificationError

from tests.conftest import make_jvm


def run_synthetic(policy=None, nodes=5, **kwargs):
    app = SingleWriterBenchmark(**kwargs)
    result = make_jvm(nodes=nodes, policy=policy).run(app)
    app.verify(result.output)
    return app, result


def test_counter_reaches_target():
    _app, result = run_synthetic(total_updates=64, repetition=4)
    assert 64 <= result.output <= 67


def test_counter_exact_multiple_when_r_divides():
    app, result = run_synthetic(total_updates=64, repetition=8)
    # turns are atomic blocks of 8 -> the counter lands on a multiple of 8
    assert result.output % 8 == 0


def test_workers_placed_off_master():
    app = SingleWriterBenchmark(total_updates=16, repetition=2)
    assert app.default_threads(9) == 8
    for tid in range(8):
        assert app.placement(tid, 9, 8) != 0


def test_single_node_cluster_fallback():
    app = SingleWriterBenchmark(total_updates=16, repetition=2)
    assert app.default_threads(1) == 1
    assert app.placement(0, 1, 1) == 0


def test_parameter_validation():
    with pytest.raises(ValueError):
        SingleWriterBenchmark(total_updates=0)
    with pytest.raises(ValueError):
        SingleWriterBenchmark(repetition=0)
    with pytest.raises(ValueError):
        SingleWriterBenchmark(compute_us=-1.0)


def test_verify_rejects_bad_counts():
    app = SingleWriterBenchmark(total_updates=100, repetition=4)
    app._nthreads = 8
    with pytest.raises(VerificationError):
        app.verify(99)
    with pytest.raises(VerificationError):
        app.verify(104)
    app.verify(100)
    app.verify(103)


def test_larger_repetition_means_fewer_lock0_tenures():
    _app2, r2 = run_synthetic(total_updates=128, repetition=2)
    _app16, r16 = run_synthetic(total_updates=128, repetition=16)
    # lock0 tenure count ~ updates / r; lock_acquire events count both locks
    assert (
        r16.stats.events["lock_acquire"] < r2.stats.events["lock_acquire"] * 2
    )


def test_single_writer_dominates_under_at():
    """With one working thread the pattern is perfectly lasting: AT moves
    the home once and everything becomes local."""
    app = SingleWriterBenchmark(
        total_updates=64, repetition=8, workers_off_master=True
    )
    result = make_jvm(nodes=2).run(app, nthreads=1)
    app.verify(result.output)
    assert result.migrations == 1
    # after migration, later updates are home writes: few diffs
    assert result.stats.events["diff"] <= 3
