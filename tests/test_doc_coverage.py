"""Docstring coverage lint: every public callable ships documentation."""

import importlib
import inspect
import pkgutil

import repro

EXEMPT_NAMES = frozenset({"main"})  # CLI entry points are documented in-module


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # executing `python -m` shims on import is not useful
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in _walk_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_documented():
    missing = []
    for module in _walk_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or name in EXEMPT_NAMES:
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {sorted(set(missing))}"


def test_public_methods_documented_on_key_classes():
    from repro.core.policies import MigrationPolicy
    from repro.dsm.protocol import DsmEngine
    from repro.gos.thread import ThreadContext

    missing = []
    for cls in (DsmEngine, ThreadContext, MigrationPolicy):
        for name, member in vars(cls).items():
            if name.startswith("_") or not inspect.isfunction(member):
                continue
            if not inspect.getdoc(member):
                missing.append(f"{cls.__name__}.{name}")
    assert not missing, f"undocumented methods: {missing}"