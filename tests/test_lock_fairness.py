"""End-to-end FIFO lock fairness through the simulated network."""

from repro.gos.thread import ThreadContext

from tests.conftest import make_gos, run_threads


def test_remote_contenders_granted_in_arrival_order():
    """Three contenders whose acquire messages arrive in a known order
    (staggered by compute delays) are granted strictly in that order,
    repeatedly."""
    gos = make_gos(nnodes=4)
    lock = gos.alloc_lock(home=0)
    grants = []

    def contender(node, stagger_us):
        ctx = ThreadContext(gos, tid=node, node=node)
        yield from ctx.compute(stagger_us)
        for _ in range(3):
            yield from ctx.acquire(lock)
            grants.append(node)
            # hold long enough that all others queue behind
            yield from ctx.compute(5_000.0)
            yield from ctx.release(lock)

    run_threads(
        gos,
        contender(1, 0.0),
        contender(2, 10.0),
        contender(3, 20.0),
    )
    assert len(grants) == 9
    # first round follows arrival order, then strict round-robin (each
    # re-request joins the back of the queue)
    assert grants == [1, 2, 3] * 3


def test_fifo_no_starvation_under_asymmetric_load():
    """A thread that re-acquires aggressively cannot starve a slow one."""
    gos = make_gos(nnodes=3)
    lock = gos.alloc_lock(home=0)
    obj = gos.alloc_fields(("fast", "slow"), home=0)

    def fast():
        ctx = ThreadContext(gos, tid=0, node=1)
        for _ in range(20):
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[0] += 1.0
            yield from ctx.release(lock)

    def slow():
        ctx = ThreadContext(gos, tid=1, node=2)
        for _ in range(5):
            yield from ctx.compute(2_000.0)
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[1] += 1.0
            yield from ctx.release(lock)

    run_threads(gos, fast(), slow())
    final = gos.read_global(obj)
    assert final[0] == 20.0
    assert final[1] == 5.0
