"""Tests for the network model: latency, serialization, ordering."""

import pytest

from repro.cluster.hockney import HockneyModel
from repro.cluster.message import HEADER_BYTES, MsgCategory
from repro.cluster.network import Network
from repro.cluster.stats import ClusterStats
from repro.sim.engine import Simulator

MODEL = HockneyModel(startup_us=100.0, bandwidth_mb_s=10.0)


def _build(nnodes=3, service_us=0.0):
    sim = Simulator()
    stats = ClusterStats()
    net = Network(sim, MODEL, nnodes, stats, service_us=service_us)
    inbox = []
    for node in net.nodes:
        node.install_handler(
            lambda msg, nid=node.node_id: inbox.append((nid, msg, sim.now))
        )
    return sim, net, stats, inbox


def test_point_to_point_latency_matches_hockney():
    sim, net, _stats, inbox = _build()
    net.send(0, 1, MsgCategory.CONTROL, size_bytes=460)
    sim.run()
    (nid, msg, t), = inbox
    assert nid == 1
    # 460B payload + 40B header = 500B -> 100 + 50 us
    assert msg.size_bytes == 500
    assert t == pytest.approx(150.0)


def test_receiver_service_time_charged():
    sim, net, _stats, inbox = _build(service_us=7.0)
    net.send(0, 1, MsgCategory.CONTROL, size_bytes=460)
    sim.run()
    (_nid, _msg, t), = inbox
    assert t == pytest.approx(157.0)


def test_nic_serialization_backpressures_sender():
    sim, net, _stats, inbox = _build()
    # two 960B+40B = 1000B messages back to back: injections serialize
    net.send(0, 1, MsgCategory.CONTROL, size_bytes=960)
    net.send(0, 2, MsgCategory.CONTROL, size_bytes=960)
    sim.run()
    t1 = inbox[0][2]
    t2 = inbox[1][2]
    assert t1 == pytest.approx(100.0 + 100.0)
    # second injection waits for the first (100us each), then +startup
    assert t2 == pytest.approx(100.0 + 100.0 + 100.0)


def test_fifo_per_src_dst_pair():
    sim, net, _stats, inbox = _build()
    for i in range(5):
        net.send(0, 1, MsgCategory.CONTROL, size_bytes=100 * (5 - i))
    sim.run()
    seqs = [msg.seq for _nid, msg, _t in inbox]
    assert seqs == sorted(seqs)


def test_distinct_senders_do_not_serialize():
    sim, net, _stats, inbox = _build()
    net.send(0, 2, MsgCategory.CONTROL, size_bytes=960)
    net.send(1, 2, MsgCategory.CONTROL, size_bytes=960)
    sim.run()
    times = [t for _nid, _msg, t in inbox]
    assert times == [pytest.approx(200.0), pytest.approx(200.0)]


def test_local_send_rejected():
    _sim, net, _stats, _inbox = _build()
    with pytest.raises(ValueError):
        net.send(1, 1, MsgCategory.CONTROL, size_bytes=10)


def test_out_of_range_endpoint_rejected():
    _sim, net, _stats, _inbox = _build()
    with pytest.raises(ValueError):
        net.send(0, 99, MsgCategory.CONTROL, size_bytes=10)


def test_stats_recorded_on_send():
    sim, net, stats, _inbox = _build()
    net.send(0, 1, MsgCategory.DIFF, size_bytes=60)
    assert stats.msg_count[MsgCategory.DIFF] == 1
    assert stats.msg_bytes[MsgCategory.DIFF] == 60 + HEADER_BYTES
    sim.run()


def test_broadcast_reaches_everyone_but_sender():
    sim, net, _stats, inbox = _build(nnodes=5)
    msgs = net.broadcast(2, MsgCategory.HOME_BCAST, size_bytes=8)
    sim.run()
    assert len(msgs) == 4
    receivers = sorted(nid for nid, _msg, _t in inbox)
    assert receivers == [0, 1, 3, 4]


def test_single_node_network_allowed():
    sim = Simulator()
    net = Network(sim, MODEL, 1, ClusterStats())
    assert net.nnodes == 1


def test_zero_nodes_rejected():
    with pytest.raises(ValueError):
        Network(Simulator(), MODEL, 0, ClusterStats())


def test_node_without_handler_raises():
    sim = Simulator()
    net = Network(sim, MODEL, 2, ClusterStats())
    net.send(0, 1, MsgCategory.CONTROL, size_bytes=10)
    with pytest.raises(RuntimeError):
        sim.run()


def test_handler_installed_twice_rejected():
    _sim, net, _stats, _inbox = _build()
    with pytest.raises(RuntimeError):
        net.nodes[0].install_handler(lambda msg: None)
