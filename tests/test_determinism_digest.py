"""Golden-digest determinism gate: one pinned run, one pinned hash.

One fixed configuration (ASP, size 64, AT policy, 4 nodes,
forwarding-pointer mechanism) is simulated and everything the paper's
figures are built from — the full :class:`ClusterStats` snapshot, the
final simulated time, and the complete home-migration event list — is
hashed into a single SHA-256.  The digest below was recorded before the
PR-3 hot-path overhaul and verified unchanged after it; any future
change to event ordering, protocol decisions, message accounting or
migration behaviour moves the hash and fails this test.

Deliberately NOT hashed: ``events_processed``.  The engine may
legitimately process fewer internal events for the same simulated
behaviour (e.g. the resolved-future fast path elides call_soon round
trips), so the event count is an implementation detail, not part of the
reproduction's deterministic contract.

If a PR *intentionally* changes protocol behaviour, re-pin the digest in
the same PR and say so in the PR description — that is the only
legitimate reason to touch EXPECTED_DIGEST.
"""

import hashlib
import json

from repro.apps import Asp
from repro.bench.runner import make_mechanism, make_policy
from repro.cluster.hockney import FAST_ETHERNET
from repro.gos.jvm import DistributedJVM
from repro.trace.recorder import TraceRecorder

EXPECTED_DIGEST = (
    "05a9d3183dedc867faded32b8a4d538ad8a836397fa01db3aef2fe1be2d06302"
)


def _run_payload() -> dict:
    tracer = TraceRecorder(kinds=("migration",))
    jvm = DistributedJVM(
        nodes=4,
        comm_model=FAST_ETHERNET,
        policy=make_policy("AT"),
        mechanism=make_mechanism("forwarding-pointer"),
        tracer=tracer,
    )
    result = jvm.run(Asp(size=64))
    Asp(size=64).verify(result.output)
    migrations = [
        [
            event.time_us,
            event.oid,
            event.node,
            event.detail.get("old_home"),
            event.detail.get("new_home"),
        ]
        for event in tracer.migrations()
    ]
    return {
        "stats": result.stats.snapshot(),
        "time_us": result.execution_time_us,
        "migrations": migrations,
    }


def _digest(payload: dict) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def test_pinned_run_digest_unchanged():
    payload = _run_payload()
    assert payload["migrations"], "pinned run is expected to migrate homes"
    assert _digest(payload) == EXPECTED_DIGEST, (
        "deterministic outputs of the pinned ASP/AT/4 run changed; if this "
        "is an intentional protocol/behaviour change, re-pin "
        "EXPECTED_DIGEST and document it in the PR"
    )


def test_pinned_run_digest_stable_across_repeats():
    """Two in-process runs produce byte-identical payloads (no hidden
    global state leaks between simulations)."""
    assert _digest(_run_payload()) == _digest(_run_payload())
