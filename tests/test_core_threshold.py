"""Tests (incl. property-based) for the adaptive threshold rule (Eq. 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.threshold import LAMBDA, T_INIT, adaptive_threshold


def test_paper_constants():
    assert T_INIT == 1.0
    assert LAMBDA == 1.0


def test_neutral_feedback_keeps_base():
    assert adaptive_threshold(3.0, 0, 0, alpha=2.0) == 3.0


def test_redirections_raise_threshold():
    assert adaptive_threshold(1.0, 5, 0, alpha=2.0) == 6.0


def test_exclusive_home_writes_lower_threshold():
    assert adaptive_threshold(10.0, 0, 3, alpha=2.0) == 4.0


def test_floor_at_t_init():
    assert adaptive_threshold(1.0, 0, 100, alpha=2.0) == T_INIT


def test_lambda_scales_feedback():
    assert adaptive_threshold(1.0, 4, 0, alpha=2.0, lam=0.5) == 3.0


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        adaptive_threshold(0.5, 0, 0, alpha=2.0)  # base below floor
    with pytest.raises(ValueError):
        adaptive_threshold(1.0, -1, 0, alpha=2.0)
    with pytest.raises(ValueError):
        adaptive_threshold(1.0, 0, -1, alpha=2.0)
    with pytest.raises(ValueError):
        adaptive_threshold(1.0, 0, 0, alpha=0.0)
    with pytest.raises(ValueError):
        adaptive_threshold(1.0, 0, 0, alpha=2.0, lam=-1.0)


_base = st.floats(min_value=1.0, max_value=1e6)
_count = st.integers(min_value=0, max_value=10**6)
_alpha = st.floats(min_value=1e-3, max_value=1e3)
_lam = st.floats(min_value=0.0, max_value=1e3)


@given(base=_base, r=_count, e=_count, alpha=_alpha, lam=_lam)
def test_property_never_below_floor(base, r, e, alpha, lam):
    assert adaptive_threshold(base, r, e, alpha, lam) >= T_INIT


@given(base=_base, r1=_count, r2=_count, e=_count, alpha=_alpha, lam=_lam)
def test_property_monotone_in_negative_feedback(base, r1, r2, e, alpha, lam):
    lo, hi = sorted((r1, r2))
    assert adaptive_threshold(base, lo, e, alpha, lam) <= adaptive_threshold(
        base, hi, e, alpha, lam
    )


@given(base=_base, r=_count, e1=_count, e2=_count, alpha=_alpha, lam=_lam)
def test_property_monotone_decreasing_in_positive_feedback(
    base, r, e1, e2, alpha, lam
):
    """The paper's core claim: the threshold is monotonously decreasing
    with increased likelihood (E) of a lasting single-writer pattern."""
    lo, hi = sorted((e1, e2))
    assert adaptive_threshold(base, r, hi, alpha, lam) <= adaptive_threshold(
        base, r, lo, alpha, lam
    )


@given(base=_base, r=_count, e=_count, alpha=_alpha)
def test_property_lambda_zero_freezes_threshold(base, r, e, alpha):
    assert adaptive_threshold(base, r, e, alpha, lam=0.0) == base
