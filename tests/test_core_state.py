"""Tests for the per-object home access monitor state (§3.3, §4.1)."""

import pytest

from repro.core.state import HOME_WRITER, ObjectAccessState


def make_state(**kwargs):
    return ObjectAccessState(oid=1, object_bytes=1024, **kwargs)


def test_initial_state():
    state = make_state()
    assert state.consecutive_writes == 0
    assert state.consecutive_writer is None
    assert state.exclusive_home_writes == 0
    assert state.redirections == 0
    assert state.threshold_base == 1.0
    assert state.diff_bytes_avg == 1024.0  # seeded with the object size


def test_invalid_object_bytes():
    with pytest.raises(ValueError):
        ObjectAccessState(oid=1, object_bytes=0)


def test_consecutive_writes_same_writer():
    state = make_state()
    for i in range(4):
        state.record_remote_write(writer=2, diff_bytes=100)
        assert state.consecutive_writes == i + 1
    assert state.consecutive_writer == 2
    assert state.remote_writes == 4


def test_other_writer_restarts_chain():
    state = make_state()
    state.record_remote_write(2, 100)
    state.record_remote_write(2, 100)
    state.record_remote_write(3, 100)
    assert state.consecutive_writer == 3
    assert state.consecutive_writes == 1


def test_home_write_breaks_chain():
    state = make_state()
    state.record_remote_write(2, 100)
    state.record_home_write()
    assert state.consecutive_writes == 0
    assert state.consecutive_writer is None


def test_remote_read_does_not_break_chain():
    """§1: the single-writer pattern tolerates concurrent readers."""
    state = make_state()
    state.record_remote_write(2, 100)
    state.record_remote_read(5)
    state.record_remote_write(2, 100)
    assert state.consecutive_writes == 2


def test_exclusive_home_write_requires_prior_home_write():
    state = make_state()
    assert state.record_home_write() is False  # first: last writer unknown
    assert state.record_home_write() is True
    assert state.record_home_write() is True
    assert state.exclusive_home_writes == 2
    assert state.last_writer == HOME_WRITER


def test_remote_write_interrupts_exclusivity():
    state = make_state()
    state.record_home_write()
    state.record_remote_write(4, 10)
    assert state.record_home_write() is False  # remote write intervened
    assert state.exclusive_home_writes == 0


def test_redirection_accumulation():
    """A request redirected three times counts three (§4.1)."""
    state = make_state()
    state.record_redirections(3)
    state.record_redirections(0)
    state.record_redirections(2)
    assert state.redirections == 5
    with pytest.raises(ValueError):
        state.record_redirections(-1)


def test_negative_writer_rejected():
    state = make_state()
    with pytest.raises(ValueError):
        state.record_remote_write(-1, 10)


def test_diff_size_ewma_moves_toward_observations():
    state = make_state()
    state.record_remote_write(2, 0)
    assert state.diff_bytes_avg == 512.0  # halfway toward 0
    state.record_remote_write(2, 0)
    assert state.diff_bytes_avg == 256.0


def test_reset_after_migration():
    state = make_state()
    state.record_remote_write(2, 100)
    state.record_redirections(4)
    state.record_home_write()
    state.record_home_write()
    state.reset_after_migration(new_threshold_base=7.5)
    assert state.migrations == 1
    assert state.transitions == 1
    assert state.threshold_base == 7.5
    assert state.consecutive_writes == 0
    assert state.consecutive_writer is None
    assert state.exclusive_home_writes == 0
    assert state.redirections == 0
    assert state.last_writer is None
    assert state.sharers == set()


def test_first_home_write_after_migration_not_exclusive():
    state = make_state()
    state.record_remote_write(2, 100)
    state.reset_after_migration(1.0)
    assert state.record_home_write() is False
    assert state.record_home_write() is True


def test_sharers_tracking():
    state = make_state()
    state.record_remote_read(1)
    state.record_remote_read(2)
    state.record_remote_read(1)
    assert state.sharers == {1, 2}


def test_interval_writers_tracking():
    state = make_state()
    state.record_remote_write(3, 10)
    state.record_remote_write(5, 10)
    assert state.interval_writers == {3, 5}
