"""Tests for the DistributedJVM runner."""

import pytest

from repro.apps import SingleWriterBenchmark, Sor
from repro.apps.base import DsmApplication
from repro.cluster.hockney import FAST_ETHERNET
from repro.core.policies import AdaptiveThreshold
from repro.gos.jvm import DistributedJVM

from tests.conftest import make_jvm


def test_run_result_fields():
    jvm = make_jvm(nodes=4)
    app = Sor(size=12, iterations=2)
    result = jvm.run(app)
    assert result.app_name == "SOR"
    assert result.policy_name == "AT"
    assert result.mechanism_name == "forwarding-pointer"
    assert result.nnodes == 4
    assert result.nthreads == 4
    assert result.execution_time_us > 0
    assert result.execution_time_s == result.execution_time_us / 1e6


def test_default_threads_equals_nodes():
    jvm = make_jvm(nodes=3)
    result = jvm.run(Sor(size=9, iterations=1))
    assert result.nthreads == 3


def test_explicit_thread_count():
    jvm = make_jvm(nodes=4)
    result = jvm.run(Sor(size=12, iterations=1), nthreads=2)
    assert result.nthreads == 2


def test_summary_is_json_friendly():
    import json

    jvm = make_jvm(nodes=2)
    result = jvm.run(Sor(size=8, iterations=1))
    summary = result.summary()
    json.dumps(summary)  # must not raise
    assert summary["app"] == "SOR"
    assert set(summary["breakdown"]) == {"obj", "mig", "diff", "redir"}


def test_runs_are_deterministic():
    def run():
        jvm = DistributedJVM(
            nodes=4, comm_model=FAST_ETHERNET, policy=AdaptiveThreshold()
        )
        result = jvm.run(SingleWriterBenchmark(total_updates=64, repetition=4))
        return (
            result.execution_time_us,
            result.stats.snapshot(),
        )

    assert run() == run()


def test_each_run_gets_fresh_state():
    jvm = make_jvm(nodes=3)
    first = jvm.run(Sor(size=9, iterations=1))
    second = jvm.run(Sor(size=9, iterations=1))
    assert first.execution_time_us == second.execution_time_us
    assert first.stats is not second.stats


def test_thread_failure_propagates():
    class Broken(DsmApplication):
        name = "broken"

        def setup(self, gos, nthreads):
            pass

        def thread_body(self, ctx, tid):
            yield from ctx.compute(1.0)
            raise RuntimeError("app bug")

    from repro.sim.errors import ProcessFailed

    with pytest.raises(ProcessFailed):
        make_jvm(nodes=2).run(Broken())


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        DistributedJVM(nodes=0, comm_model=FAST_ETHERNET)
    jvm = make_jvm(nodes=2)
    with pytest.raises(ValueError):
        jvm.run(Sor(size=8, iterations=1), nthreads=0)
