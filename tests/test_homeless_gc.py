"""Tests for the homeless protocol's global diff garbage collection."""

import numpy as np
import pytest

from repro.cluster.hockney import FAST_ETHERNET
from repro.gos.homeless import HomelessObjectSpace
from repro.gos.thread import ThreadContext

from tests.conftest import run_threads


def _barrier_writers(gos, obj, rounds, parties=2):
    barrier = gos.alloc_barrier(parties=parties, home=0)

    def body(tid):
        ctx = ThreadContext(gos, tid, tid % gos.nnodes)
        for phase in range(rounds):
            payload = yield from ctx.write(obj)
            payload[tid] = float(phase * 10 + tid + 1)
            yield from ctx.barrier(barrier)
            payload = yield from ctx.read(obj)
            for other in range(parties):
                assert payload[other] == float(phase * 10 + other + 1)
            yield from ctx.barrier(barrier)

    return [body(tid) for tid in range(parties)]


def test_gc_threshold_validation():
    with pytest.raises(ValueError):
        HomelessObjectSpace(2, FAST_ETHERNET, gc_threshold_bytes=0)


def test_no_gc_without_threshold():
    gos = HomelessObjectSpace(3, FAST_ETHERNET)
    obj = gos.alloc_array(8)
    run_threads(gos, *_barrier_writers(gos, obj, rounds=6))
    assert gos.stats.events.get("homeless_gc", 0) == 0
    assert gos.retained_diff_bytes() > 0


def test_gc_triggers_and_clears_histories():
    gos = HomelessObjectSpace(3, FAST_ETHERNET, gc_threshold_bytes=100)
    obj = gos.alloc_array(8)
    run_threads(gos, *_barrier_writers(gos, obj, rounds=6))
    assert gos.stats.events["homeless_gc"] >= 1
    # collections kept the retained footprint bounded
    assert gos.retained_diff_bytes() < 300


def test_correctness_preserved_across_gc():
    """Post-barrier reads stay oracle-exact even with aggressive GC."""
    gos = HomelessObjectSpace(3, FAST_ETHERNET, gc_threshold_bytes=1)
    obj = gos.alloc_array(8)
    run_threads(gos, *_barrier_writers(gos, obj, rounds=5))
    final = gos.read_global(obj)
    assert final[0] == 41.0 and final[1] == 42.0


def test_gc_rebases_initial_image():
    gos = HomelessObjectSpace(3, FAST_ETHERNET, gc_threshold_bytes=1)
    obj = gos.alloc_array(8)
    gos.write_global(obj, np.arange(8.0))
    run_threads(gos, *_barrier_writers(gos, obj, rounds=2))
    # a node that never touched the object materialises the rebased image
    image = gos.heap.initial_values[obj.oid]
    assert image[0] == 11.0 and image[1] == 12.0
    assert image[2] == 2.0  # untouched slots keep the original data


def test_gc_charges_traffic():
    with_gc = HomelessObjectSpace(3, FAST_ETHERNET, gc_threshold_bytes=1)
    obj = with_gc.alloc_array(64)
    run_threads(with_gc, *_barrier_writers(with_gc, obj, rounds=4))
    without_gc = HomelessObjectSpace(3, FAST_ETHERNET)
    obj2 = without_gc.alloc_array(64)
    run_threads(without_gc, *_barrier_writers(without_gc, obj2, rounds=4))
    from repro.cluster.message import MsgCategory

    assert with_gc.stats.msg_count[MsgCategory.CONTROL] > 0
    assert without_gc.stats.msg_count.get(MsgCategory.CONTROL, 0) == 0


def test_lock_workload_after_gc_round():
    """Mixing barrier-triggered GC with lock-protected counters."""
    gos = HomelessObjectSpace(3, FAST_ETHERNET, gc_threshold_bytes=50)
    counter = gos.alloc_fields(("v",))
    grid = gos.alloc_array(8)
    lock = gos.alloc_lock(home=0)
    barrier = gos.alloc_barrier(parties=2, home=0)

    def body(tid):
        ctx = ThreadContext(gos, tid, tid + 1)
        for phase in range(4):
            for _ in range(3):
                yield from ctx.acquire(lock)
                payload = yield from ctx.write(counter)
                payload[0] += 1.0
                yield from ctx.release(lock)
            payload = yield from ctx.write(grid)
            payload[tid] = float(phase)
            yield from ctx.barrier(barrier)

    run_threads(gos, body(0), body(1))
    assert gos.read_global(counter)[0] == 24.0
