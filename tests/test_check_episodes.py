"""End-to-end conformance episodes: clean verdicts, byte-stable reports."""

import json

import pytest

from repro.check.runner import run_check, run_episode

#: Matches the CI conformance job's per-seed episode count.
EPISODES = 25


@pytest.fixture(scope="module")
def session():
    """One shared conformance session (episodes are cheap but not free)."""
    return run_check(episodes=EPISODES, base_seed=0, self_test=False)


def test_all_episodes_clean(session):
    for episode in session.episodes:
        assert episode.ok, (
            f"seed {episode.seed}: "
            f"{episode.oracle_violations + episode.invariant_violations} "
            f"{episode.run_error}"
        )
    assert len(session.episodes) == EPISODES


def test_episodes_exercise_the_protocol(session):
    """The fuzzer must actually drive the machinery it claims to judge:
    across the corpus there are ops, trace events, and some migrations."""
    assert sum(e.ops for e in session.episodes) > 100
    assert sum(e.events for e in session.episodes) > 100
    assert sum(e.migrations for e in session.episodes) > 0


def test_verdicts_are_byte_identical_across_runs(session):
    again = run_check(episodes=EPISODES, base_seed=0, self_test=False)
    first = [e.verdict() for e in session.episodes]
    second = [e.verdict() for e in again.episodes]
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )
    specs_first = [e.spec.to_json() for e in session.episodes]
    specs_second = [e.spec.to_json() for e in again.episodes]
    assert specs_first == specs_second


def test_corpus_round_trips(tmp_path, session):
    report = run_check(
        episodes=3, base_seed=11, corpus_dir=tmp_path, self_test=False
    )
    files = sorted(p.name for p in tmp_path.iterdir())
    assert files == [
        "episode-0000.json",
        "episode-0001.json",
        "episode-0002.json",
        "report.json",
    ]
    for index in range(3):
        payload = json.loads((tmp_path / f"episode-{index:04d}.json").read_text())
        assert payload["index"] == index
        assert payload["verdict"]["ok"] is True
        # the stored program replays to the stored verdict
        from repro.check.fuzz import ProgramSpec

        spec = ProgramSpec.from_dict(payload["program"])
        replayed = run_episode(spec=spec)
        assert replayed.verdict() == payload["verdict"]
    summary = json.loads((tmp_path / "report.json").read_text())
    assert summary["ok"] is True
    assert summary == json.loads(report.to_json())


def test_run_episode_argument_validation():
    with pytest.raises(ValueError):
        run_episode()
    with pytest.raises(ValueError):
        from repro.check.fuzz import generate_program

        run_episode(seed=1, spec=generate_program(1))
