"""Tests for the protocol trace subsystem."""

import pytest

from repro.apps import SingleWriterBenchmark
from repro.cluster.hockney import FAST_ETHERNET
from repro.core.policies import AdaptiveThreshold, FixedThreshold
from repro.gos.jvm import DistributedJVM
from repro.gos.thread import ThreadContext
from repro.trace import TraceRecorder
from repro.trace.events import TraceEvent

from tests.conftest import run_threads


def test_event_kind_validation():
    with pytest.raises(ValueError):
        TraceEvent(time_us=0.0, kind="nope", oid=1, node=0)
    with pytest.raises(ValueError):
        TraceRecorder(kinds=["bogus"])


def test_kind_filtering():
    recorder = TraceRecorder(kinds=["migration"])
    recorder.record("migration", 1.0, oid=1, node=0, new_home=2)
    recorder.record("redirect", 2.0, oid=1, node=0)
    assert len(recorder) == 1
    assert not recorder.wants("redirect")


def _traced_run(policy):
    tracer = TraceRecorder()
    app = SingleWriterBenchmark(total_updates=128, repetition=8)
    jvm = DistributedJVM(
        nodes=5, comm_model=FAST_ETHERNET, policy=policy, tracer=tracer
    )
    result = jvm.run(app)
    app.verify(result.output)
    return tracer, result, app


def test_migration_events_match_stats():
    tracer, result, _app = _traced_run(AdaptiveThreshold())
    assert len(tracer.migrations()) == result.migrations
    for event in tracer.migrations():
        assert event.detail["old_home"] == event.node
        assert event.detail["new_home"] != event.node
        assert event.time_us > 0


def test_redirect_events_match_stats():
    tracer, result, _app = _traced_run(FixedThreshold(1))
    assert len(tracer.of_kind("redirect")) == result.stats.events["redir"]


def test_home_path_reconstruction():
    tracer, result, app = _traced_run(AdaptiveThreshold())
    gos = result.gos
    oid = app.counter.oid
    path = tracer.home_path(oid, initial_home=0)
    assert path[0] == 0
    assert path[-1] == gos.current_home(app.counter)
    # consecutive entries always differ (a migration moves the home)
    assert all(a != b for a, b in zip(path, path[1:]))


def test_decision_events_capture_threshold_inputs():
    tracer, _result, app = _traced_run(AdaptiveThreshold())
    decisions = tracer.of_kind("decision", app.counter.oid)
    assert decisions, "no decision events captured"
    for event in decisions:
        detail = event.detail
        assert detail["threshold"] >= 1.0
        assert detail["consecutive"] >= 0
        assert isinstance(detail["migrated"], bool)
    # at least one decision fired and one declined
    outcomes = {d.detail["migrated"] for d in decisions}
    assert outcomes == {True, False}


def test_threshold_series_is_time_ordered():
    tracer, _result, app = _traced_run(AdaptiveThreshold())
    series = tracer.threshold_series(app.counter.oid)
    assert series
    times = [t for t, _ in series]
    assert times == sorted(times)


def test_tracing_does_not_change_behaviour():
    app1 = SingleWriterBenchmark(total_updates=128, repetition=4)
    plain = DistributedJVM(
        nodes=5, comm_model=FAST_ETHERNET, policy=AdaptiveThreshold()
    ).run(app1)
    app2 = SingleWriterBenchmark(total_updates=128, repetition=4)
    traced = DistributedJVM(
        nodes=5,
        comm_model=FAST_ETHERNET,
        policy=AdaptiveThreshold(),
        tracer=TraceRecorder(),
    ).run(app2)
    assert plain.execution_time_us == traced.execution_time_us
    assert plain.stats.snapshot() == traced.stats.snapshot()


def test_bounded_recorder_drops_oldest():
    recorder = TraceRecorder(kinds=["migration"], max_events=3)
    for i in range(5):
        recorder.record("migration", float(i), oid=1, node=0, new_home=i + 1)
    assert len(recorder) == 3
    assert recorder.dropped == 2
    # the newest three survive
    assert [e.time_us for e in recorder.events] == [2.0, 3.0, 4.0]


def test_bounded_recorder_validation():
    with pytest.raises(ValueError):
        TraceRecorder(max_events=0)


def test_bounded_recorder_filtered_kinds_do_not_drop():
    recorder = TraceRecorder(kinds=["migration"], max_events=2)
    for _ in range(10):
        recorder.record("redirect", 1.0, oid=1, node=0)
    assert len(recorder) == 0
    assert recorder.dropped == 0


def test_bounded_recorder_home_path_starts_mid_journey():
    """The documented caveat: dropped migrations truncate the replay."""
    recorder = TraceRecorder(kinds=["migration"], max_events=2)
    for i in range(4):
        recorder.record("migration", float(i), oid=1, node=i, new_home=i + 1)
    assert recorder.dropped == 2
    # only hops 3 and 4 survive; the path no longer starts at the true
    # initial home's successor
    assert recorder.home_path(1, initial_home=0) == [0, 3, 4]


def test_empty_recorder_queries():
    recorder = TraceRecorder()
    assert recorder.migrations() == []
    assert recorder.of_kind("decision") == []
    assert recorder.threshold_series(1) == []
    assert recorder.home_path(1, initial_home=3) == [3]
    assert len(recorder) == 0


def test_threshold_series_skips_missing_threshold():
    recorder = TraceRecorder()
    recorder.record("decision", 1.0, oid=1, node=0, threshold=2.0)
    recorder.record("decision", 2.0, oid=1, node=0)  # no threshold detail
    recorder.record("decision", 3.0, oid=1, node=0, threshold=None)
    recorder.record("decision", 4.0, oid=1, node=0, threshold=3.0)
    assert recorder.threshold_series(1) == [(1.0, 2.0), (4.0, 3.0)]


def test_home_path_with_migrations_filtered_out():
    recorder = TraceRecorder(kinds=["decision"])
    recorder.record("migration", 1.0, oid=1, node=0, new_home=2)
    assert recorder.home_path(1, initial_home=0) == [0]


def test_jiajia_barrier_migrations_traced():
    from repro.apps import Sor
    from repro.bench.runner import make_policy

    tracer = TraceRecorder(kinds=["migration"])
    app = Sor(size=12, iterations=2)
    result = DistributedJVM(
        nodes=3,
        comm_model=FAST_ETHERNET,
        policy=make_policy("JIAJIA"),
        tracer=tracer,
    ).run(app)
    app.verify(result.output)
    assert len(tracer.migrations()) == result.migrations > 0


def test_ship_decisions_traced():
    tracer = TraceRecorder()
    from tests.conftest import make_gos

    gos = make_gos(nnodes=3, policy=FixedThreshold(2))
    for engine in gos.engines:
        engine.tracer = tracer
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)

    def body():
        ctx = ThreadContext(gos, tid=0, node=1)
        for _ in range(3):
            yield from ctx.acquire(lock)
            yield from ctx.ship(obj, lambda p: p.__setitem__(0, p[0] + 1))
            yield from ctx.release(lock)

    run_threads(gos, body())
    decisions = tracer.of_kind("decision", obj.oid)
    assert decisions
