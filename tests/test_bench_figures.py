"""Tests for the figure drivers (tiny configurations) and the CLI."""

from repro.apps import Asp, Sor
from repro.bench.cli import main as cli_main
from repro.bench.figure2 import render_figure2, run_figure2
from repro.bench.figure3 import render_figure3, run_figure3
from repro.bench.figure5 import render_figure5, run_figure5


def test_figure2_driver_structure():
    data = run_figure2(
        processor_counts=(2, 4),
        apps={"SOR": lambda: Sor(size=16, iterations=2)},
    )
    assert set(data["times"]) == {"SOR"}
    assert set(data["times"]["SOR"]) == {"NoHM", "HM"}
    assert set(data["times"]["SOR"]["HM"]) == {2, 4}
    assert all(t > 0 for t in data["times"]["SOR"]["HM"].values())
    rendered = render_figure2(data)
    assert "SOR" in rendered and "HM/NoHM" in rendered


def test_figure3_driver_structure():
    data = run_figure3(sizes=(16, 24))
    for app_name in ("ASP", "SOR"):
        for size in (16, 24):
            vals = data["improvements"][app_name][size]
            assert set(vals) == {"time", "messages", "traffic"}
    rendered = render_figure3(data)
    assert "ASP" in rendered and "exec time" in rendered


def test_figure5_driver_structure():
    data = run_figure5(repetitions=(2, 8), total_updates=64)
    assert set(data["times"]) == {2, 8}
    for r in (2, 8):
        assert set(data["times"][r]) == {"NM", "FT1", "FT2", "AT"}
        assert max(data["normalized_times"][r].values()) == 1.0
        for proto in data["breakdowns"][r].values():
            assert set(proto) == {"obj", "mig", "diff", "redir"}
    rendered = render_figure5(data)
    assert "Figure 5a" in rendered and "Figure 5b" in rendered


def test_cli_figure5_smoke(capsys, monkeypatch):
    # shrink the quick config so the CLI test stays fast
    import repro.bench.figure5 as f5

    monkeypatch.setitem(f5.TOTAL_UPDATES, "quick", 64)
    monkeypatch.setattr(f5, "REPETITIONS", (2, 8))
    assert cli_main(["figure5"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5a" in out
    assert "normalized" in out


def test_cli_rejects_unknown_target():
    import pytest

    with pytest.raises(SystemExit):
        cli_main(["figure9"])


def test_figure5_driver_is_deterministic():
    """The whole sweep — 8 runs across 4 protocols — is bit-stable."""

    def sweep():
        return run_figure5(repetitions=(2, 16), total_updates=128)

    assert sweep() == sweep()


def test_cli_figure3_smoke(capsys, monkeypatch):
    import repro.bench.figure3 as f3

    monkeypatch.setitem(f3.PROBLEM_SIZES, "quick", (16, 24))
    assert cli_main(["figure3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out and "exec time" in out


def test_cli_json_export(tmp_path, monkeypatch):
    import json

    import repro.bench.figure5 as f5

    monkeypatch.setitem(f5.TOTAL_UPDATES, "quick", 64)
    monkeypatch.setattr(f5, "REPETITIONS", (4,))
    out = tmp_path / "out.json"
    assert cli_main(["figure5", "--json", str(out)]) == 0
    data = json.loads(out.read_text())
    assert "figure5" in data
    assert "times" in data["figure5"]
