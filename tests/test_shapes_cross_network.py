"""Figure-5 qualitative shapes must survive a change of interconnect.

The paper's conclusions are about protocol behaviour, not Fast Ethernet;
re-assert the two headline shapes on the Gigabit and Myrinet models.
"""

import pytest

from repro.apps import SingleWriterBenchmark
from repro.cluster.hockney import GIGABIT, MYRINET
from repro.bench.runner import run_once

NETWORKS = [GIGABIT, MYRINET]


@pytest.mark.parametrize("model", NETWORKS, ids=lambda m: m.name)
def test_at_matches_ft1_on_lasting_pattern(model):
    ft1 = run_once(
        SingleWriterBenchmark(total_updates=256, repetition=16),
        policy="FT1", nodes=9, comm_model=model,
    )
    at = run_once(
        SingleWriterBenchmark(total_updates=256, repetition=16),
        policy="AT", nodes=9, comm_model=model,
    )
    nm = run_once(
        SingleWriterBenchmark(total_updates=256, repetition=16),
        policy="NM", nodes=9, comm_model=model,
    )
    assert at.execution_time_us <= 1.05 * ft1.execution_time_us
    assert at.execution_time_us < 0.8 * nm.execution_time_us


@pytest.mark.parametrize("model", NETWORKS, ids=lambda m: m.name)
def test_at_robust_on_transient_pattern(model):
    ft1 = run_once(
        SingleWriterBenchmark(total_updates=256, repetition=2),
        policy="FT1", nodes=9, comm_model=model,
    )
    at = run_once(
        SingleWriterBenchmark(total_updates=256, repetition=2),
        policy="AT", nodes=9, comm_model=model,
    )
    nm = run_once(
        SingleWriterBenchmark(total_updates=256, repetition=2),
        policy="NM", nodes=9, comm_model=model,
    )
    assert at.execution_time_us <= 1.05 * nm.execution_time_us
    assert at.migrations < ft1.migrations / 4