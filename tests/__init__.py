"""Test package for the repro DSM reproduction.

Being a package (rather than loose modules) lets test modules import the
shared helpers in :mod:`tests.conftest` under both ``pytest tests/`` and
``python -m pytest tests/`` invocations.
"""
