"""Tests for the ASP application."""

import numpy as np
import pytest

from repro.apps.asp import Asp, floyd_oracle, random_graph, INF

from tests.conftest import make_jvm


def test_random_graph_properties():
    g = random_graph(10, seed=3)
    assert g.shape == (10, 10)
    assert np.all(np.diag(g) == 0.0)
    present = g[(g > 0) & (g < INF)]
    assert present.min() >= 1 and present.max() <= 100
    assert (g == INF).any()  # some edges are absent


def test_random_graph_deterministic():
    assert np.array_equal(random_graph(8, seed=1), random_graph(8, seed=1))
    assert not np.array_equal(random_graph(8, seed=1), random_graph(8, seed=2))


def test_floyd_oracle_matches_networkx():
    networkx = pytest.importorskip("networkx")
    n = 12
    matrix = random_graph(n, seed=5)
    ours = floyd_oracle(matrix)
    graph = networkx.DiGraph()
    graph.add_nodes_from(range(n))
    for i in range(n):
        for j in range(n):
            if i != j and matrix[i, j] < INF:
                graph.add_edge(i, j, weight=matrix[i, j])
    lengths = dict(networkx.all_pairs_dijkstra_path_length(graph))
    for i in range(n):
        for j in range(n):
            expected = lengths.get(i, {}).get(j)
            if expected is None:
                assert ours[i, j] >= INF / 2  # unreachable stays huge
            else:
                assert ours[i, j] == pytest.approx(expected)


@pytest.mark.parametrize("nodes,threads", [(2, 2), (4, 4), (4, 3)])
def test_asp_correct_on_dsm(nodes, threads):
    app = Asp(size=24, seed=9)
    result = make_jvm(nodes=nodes).run(app, nthreads=threads)
    app.verify(result.output)


def test_asp_correct_under_all_policies():
    for policy in ("NM", "FT1", "FT2", "AT", "JIAJIA"):
        from repro.bench.runner import make_policy

        app = Asp(size=16, seed=2)
        result = make_jvm(nodes=4, policy=make_policy(policy)).run(app)
        app.verify(result.output)


def test_asp_migrations_happen_under_at():
    app = Asp(size=32)
    result = make_jvm(nodes=4).run(app)
    app.verify(result.output)
    # rows whose round-robin home is not their owner migrate exactly once
    assert result.migrations > 0
    assert result.migrations <= 32


def test_asp_validation():
    with pytest.raises(ValueError):
        Asp(size=1)
