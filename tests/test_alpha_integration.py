"""Integration of the home access coefficient with the live protocol."""

import pytest

from repro.core.coefficient import home_access_coefficient
from repro.core.policies import AdaptiveThreshold
from repro.gos.thread import ThreadContext

from tests.conftest import make_gos, run_threads


def test_engine_alpha_uses_object_size_and_diff_average(gos):
    big = gos.alloc_array(2048, home=0)
    small = gos.alloc_fields(("v",), home=0)
    engine = gos.engines[0]
    alpha_big = engine.alpha(big.oid, engine.homes[big.oid].state)
    alpha_small = engine.alpha(small.oid, engine.homes[small.oid].state)
    assert alpha_big > alpha_small
    m_half = gos.network.comm_model.half_peak_bytes
    # before any diff is observed, the diff average is seeded with the
    # object size
    assert alpha_big == pytest.approx(
        home_access_coefficient(big.size_bytes, big.size_bytes, m_half)
    )


def test_alpha_tracks_observed_diff_sizes():
    gos = make_gos(nnodes=3)
    obj = gos.alloc_array(2048, home=0)
    lock = gos.alloc_lock(home=0)

    def sparse_writer():
        ctx = ThreadContext(gos, tid=0, node=1)
        for i in range(4):
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[i] = 1.0  # one element per interval: tiny diffs
            yield from ctx.release(lock)

    run_threads(gos, sparse_writer())
    engine = gos.engines[gos.current_home(obj)]
    state = engine.homes[obj.oid].state
    # the EWMA pulled the diff average far below the object size
    assert state.diff_bytes_avg < obj.size_bytes / 4
    alpha_now = engine.alpha(obj.oid, state)
    alpha_seeded = home_access_coefficient(
        obj.size_bytes, obj.size_bytes, gos.network.comm_model.half_peak_bytes
    )
    assert alpha_now < alpha_seeded


def test_larger_objects_tolerate_more_redirections():
    """Policy-level consequence of alpha: for the same feedback history,
    a large object's exclusive home writes buy back more redirections."""
    policy = AdaptiveThreshold()
    gos = make_gos(nnodes=3, policy=policy)
    big = gos.alloc_array(8192, home=0)
    small = gos.alloc_fields(("v",), home=0)
    engine = gos.engines[0]
    for obj in (big, small):
        state = engine.homes[obj.oid].state
        state.record_redirections(6)
        state.record_home_write()
        state.record_home_write()
        state.record_home_write()  # E = 2
    t_big = policy.current_threshold(
        engine.homes[big.oid].state, engine.alpha(big.oid, engine.homes[big.oid].state)
    )
    t_small = policy.current_threshold(
        engine.homes[small.oid].state,
        engine.alpha(small.oid, engine.homes[small.oid].state),
    )
    assert t_big < t_small
