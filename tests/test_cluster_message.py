"""Tests for the message taxonomy."""

import pytest

from repro.cluster.message import (
    HEADER_BYTES,
    Message,
    MsgCategory,
    SYNC_CATEGORIES,
)


def test_message_size_includes_header():
    msg = Message(src=0, dst=1, category=MsgCategory.DIFF, size_bytes=100)
    assert msg.size_bytes == 100


def test_size_below_header_rejected():
    with pytest.raises(ValueError):
        Message(
            src=0, dst=1, category=MsgCategory.DIFF,
            size_bytes=HEADER_BYTES - 1,
        )


def test_negative_endpoints_rejected():
    with pytest.raises(ValueError):
        Message(src=-1, dst=0, category=MsgCategory.DIFF, size_bytes=64)


def test_sequence_numbers_increase():
    a = Message(src=0, dst=1, category=MsgCategory.CONTROL, size_bytes=64)
    b = Message(src=0, dst=1, category=MsgCategory.CONTROL, size_bytes=64)
    assert b.seq > a.seq


def test_sync_categories_cover_locks_and_barriers():
    assert MsgCategory.LOCK_ACQUIRE in SYNC_CATEGORIES
    assert MsgCategory.LOCK_GRANT in SYNC_CATEGORIES
    assert MsgCategory.LOCK_RELEASE in SYNC_CATEGORIES
    assert MsgCategory.BARRIER_ARRIVE in SYNC_CATEGORIES
    assert MsgCategory.BARRIER_RELEASE in SYNC_CATEGORIES


def test_data_categories_not_sync():
    for category in (
        MsgCategory.OBJ_REQUEST,
        MsgCategory.OBJ_REPLY,
        MsgCategory.OBJ_REPLY_MIG,
        MsgCategory.DIFF,
        MsgCategory.REDIRECT,
    ):
        assert category not in SYNC_CATEGORIES


def test_category_values_unique():
    values = [c.value for c in MsgCategory]
    assert len(values) == len(set(values))
