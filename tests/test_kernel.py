"""Unit tests for the compiled kernel primitives (``repro._kernel``).

Each primitive is checked directly against its pure-Python ground truth
in the same process — ordering, results, and error *messages* (the
fallback contract promises byte-identical behaviour, which includes what
an exception says).  The build/fallback machinery is exercised in
subprocesses with a deliberately broken compiler.

Skips (with the reason) when the extension is unavailable, e.g. under
``REPRO_BACKEND=python`` CI legs or a host with no C toolchain.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import _kernel

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"


@pytest.fixture(scope="module")
def km():
    module = _kernel.kernel()
    if module is None:
        pytest.skip(
            f"compiled backend unavailable: {_kernel.backend_info()['reason']}"
        )
    return module


@pytest.fixture(scope="module")
def sim_classes(km):
    from repro.sim import engine

    compiled = engine.CompiledSimulator or engine._build_compiled_class(km)
    return engine.PySimulator, compiled


# --------------------------------------------------------------------------
# Engine: event ordering, time semantics, error messages
# --------------------------------------------------------------------------


def _drive(sim_cls, until=None):
    """Schedule a fixed mix of ties/out-of-order events; return the trace."""
    sim = sim_cls()
    order = []
    for label, delay in [
        ("a", 5.0), ("b", 1.0), ("c", 5.0), ("d", 0.0), ("e", 3.0),
    ]:
        sim.schedule(delay, lambda lb=label: order.append((lb, sim.now)))
    sim.call_soon(lambda: order.append(("soon", sim.now)))
    sim.schedule(2.0, lambda: sim.schedule(0.5, lambda: order.append(("nested", sim.now))))
    end = sim.run(until)
    return order, end, sim.events_processed


def test_engine_order_matches_python(sim_classes):
    py_cls, compiled_cls = sim_classes
    assert _drive(py_cls) == _drive(compiled_cls)
    assert _drive(py_cls, until=2.4) == _drive(compiled_cls, until=2.4)
    assert _drive(py_cls, until=100.0) == _drive(compiled_cls, until=100.0)


def test_engine_error_messages_match(sim_classes):
    from repro.sim.errors import SimulationError

    py_cls, compiled_cls = sim_classes
    messages = {}
    for name, cls in (("python", py_cls), ("compiled", compiled_cls)):
        sim = cls()
        with pytest.raises(SimulationError) as neg:
            sim.schedule(-1.5, lambda: None)
        sim.schedule(4.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError) as past:
            sim.at(1.0, lambda: None)
        messages[name] = (str(neg.value), str(past.value))
    assert messages["python"] == messages["compiled"]


def test_engine_counter_exact_on_raise(sim_classes):
    py_cls, compiled_cls = sim_classes

    def boom():
        raise RuntimeError("boom")

    counts = {}
    for name, cls in (("python", py_cls), ("compiled", compiled_cls)):
        sim = cls()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, boom)
        sim.schedule(3.0, lambda: None)
        with pytest.raises(RuntimeError):
            sim.run()
        counts[name] = sim.events_processed
    assert counts["python"] == counts["compiled"] == 2


# --------------------------------------------------------------------------
# Dispatcher
# --------------------------------------------------------------------------


class _Msg:
    def __init__(self, category, payload):
        self.category = category
        self.payload = payload


def test_dispatcher_routes_by_category(km):
    seen = []
    dispatcher = km.Dispatcher({"ping": seen.append, "pong": seen.append})
    dispatcher(_Msg("ping", 1))
    dispatcher(_Msg("pong", 2))
    assert seen == [1, 2]


def test_dispatcher_unhandled_message_matches_python(km):
    dispatcher = km.Dispatcher({})
    msg = _Msg("mystery", None)
    with pytest.raises(RuntimeError) as compiled_err:
        dispatcher(msg)
    # the pure-Python DsmEngine.on_message wording
    assert str(compiled_err.value) == f"unhandled message {msg!r}"


def test_dispatcher_sees_dict_mutations(km):
    """The Dispatcher wraps the live dict — handler swaps take effect."""
    table = {}
    dispatcher = km.Dispatcher(table)
    seen = []
    table["late"] = seen.append
    dispatcher(_Msg("late", "x"))
    assert seen == ["x"]


# --------------------------------------------------------------------------
# diff_arrays
# --------------------------------------------------------------------------


def _reference_scan(current, twin):
    """The pure-numpy scan ``compute_diff`` performs."""
    indices = np.flatnonzero(current != twin)
    if indices.size == 0:
        return None
    nruns = 1 + int(np.count_nonzero(np.diff(indices) != 1))
    return indices, current[indices], nruns


@pytest.mark.parametrize(
    "dtype", ["float64", "float32", "int64", "int32", "int16", "int8", "bool"]
)
def test_diff_arrays_matches_numpy(km, dtype):
    rng = np.random.default_rng(42)
    for _ in range(25):
        size = int(rng.integers(1, 200))
        twin = (rng.integers(0, 4, size) * 10).astype(dtype)
        current = twin.copy()
        flips = rng.random(size) < 0.2
        current[flips] = (rng.integers(1, 4, size) * 7).astype(dtype)[flips]
        got = km.diff_arrays(current, twin)
        want = _reference_scan(current, twin)
        if want is None:
            assert got is None
            continue
        indices, values, nruns = got
        np.testing.assert_array_equal(indices, want[0])
        np.testing.assert_array_equal(values, want[1])
        assert values.dtype == current.dtype
        assert nruns == want[2]


def test_diff_arrays_float_edge_semantics(km):
    """NaN and signed zero follow numpy ``!=``: NaN always differs,
    -0.0 vs 0.0 never does."""
    twin = np.array([0.0, np.nan, 1.0, np.nan], dtype=np.float64)
    current = np.array([-0.0, np.nan, 1.0, 2.0], dtype=np.float64)
    indices, values, nruns = km.diff_arrays(current, twin)
    np.testing.assert_array_equal(indices, [1, 3])
    assert np.isnan(values[0]) and values[1] == 2.0
    assert nruns == 2


def test_diff_arrays_unsupported_layouts_return_notimplemented(km):
    base = np.zeros(16, dtype=np.float64)
    assert km.diff_arrays(base[::2], base[1::2]) is NotImplemented
    two_d = np.zeros((4, 4))
    assert km.diff_arrays(two_d, two_d) is NotImplemented
    cplx = np.zeros(4, dtype=np.complex128)
    assert km.diff_arrays(cplx, cplx) is NotImplemented


def test_compute_diff_skips_ndarray_subclasses(km):
    """``compute_diff`` must keep the numpy path for subclasses (tests
    count ``__ne__`` calls on them)."""

    class Tagged(np.ndarray):
        pass

    from repro.memory.diff import compute_diff

    twin = np.arange(8, dtype=np.float64).view(Tagged)
    current = twin.copy()
    current[3] += 1.0
    diff = compute_diff(1, current, twin)
    np.testing.assert_array_equal(diff.indices, [3])


# --------------------------------------------------------------------------
# adaptive_threshold
# --------------------------------------------------------------------------


def test_adaptive_threshold_matches_expression(km):
    rng = np.random.default_rng(7)
    for _ in range(200):
        red, excl = rng.uniform(0, 50, 2)
        alpha, lam = rng.uniform(0.01, 3.0, 2)
        t_init = rng.uniform(0, 10)
        base = t_init + rng.uniform(0, 50)
        got = km.adaptive_threshold(base, red, excl, alpha, lam, t_init)
        want = base + lam * (red - alpha * excl)
        if want < t_init:
            want = t_init
        assert got == want  # bit-identical, not approx


def test_adaptive_threshold_error_messages_match(km):
    from repro.core import threshold

    cases = [
        {"base": -1.0},
        {"redirections": -1.0},
        {"exclusive_home_writes": -2.0},
        {"alpha": -0.5},
        {"alpha": 0.0},
        {"lam": -2.0},
    ]
    for overrides in cases:
        kwargs = dict(
            base=5.0, redirections=2.0, exclusive_home_writes=1.0,
            alpha=0.5, lam=1.0, t_init=1.0,
        )
        kwargs.update(overrides)
        with pytest.raises(ValueError) as compiled_err:
            km.adaptive_threshold(
                kwargs["base"], kwargs["redirections"],
                kwargs["exclusive_home_writes"], kwargs["alpha"],
                kwargs["lam"], kwargs["t_init"],
            )
        with pytest.raises(ValueError) as python_err:
            threshold._py_adaptive_threshold(**kwargs)
        assert str(compiled_err.value) == str(python_err.value)


# --------------------------------------------------------------------------
# Future: the C twin of repro.sim.future.Future
# --------------------------------------------------------------------------


def _future_transcript(cls):
    """Exercise one class through the full Future contract; return a
    comparable transcript (values, callback orders, error messages)."""
    from repro.sim.errors import SimulationError

    out = []
    fut = cls(label="t")
    out.append((fut.resolved, fut.exception, repr(fut)))
    calls = []
    fut.add_done_callback(lambda f: calls.append(("first", f.value)))
    fut.add_done_callback(lambda f: calls.append(("second", f.value)))
    fut.resolve(41)
    out.append((fut.resolved, fut.value, calls, repr(fut)))
    fut.add_done_callback(lambda f: calls.append(("late", f.value)))
    out.append(list(calls))
    for exc_case in ("resolve", "fail"):
        try:
            getattr(fut, exc_case)(RuntimeError("x") if exc_case == "fail" else 1)
        except SimulationError as exc:
            out.append(str(exc))
    unread = cls(label="u")
    try:
        unread.value
    except SimulationError as exc:
        out.append(str(exc))
    try:
        unread.peek()
    except SimulationError as exc:
        out.append(str(exc))
    failed = cls(label="f")
    error = ValueError("boom")
    failed.fail(error)
    value, exc = failed.peek()
    out.append((failed.resolved, failed.exception is error, value, exc is error))
    try:
        failed.value
    except ValueError as exc:
        out.append(("reraised", exc is error))
    return out


def test_future_twin_matches_python(km):
    from repro.sim.future import Future as PyFuture

    assert _future_transcript(PyFuture) == _future_transcript(km.Future)


def test_future_classes_cover_both_backends(km):
    from repro.sim.future import Future as PyFuture, future_class, future_classes

    classes = future_classes()
    assert PyFuture in classes and km.Future in classes
    assert future_class() is km.Future


def test_process_blocks_on_compiled_future(km, sim_classes):
    """A generator yielding a C Future suspends and resumes exactly like
    one yielding the Python Future."""
    from repro.sim.process import Process

    _, compiled_cls = sim_classes
    sim = compiled_cls()
    fut = km.Future(label="gate")
    trace = []

    def body():
        value = yield fut
        trace.append(value)
        return value * 2

    proc = Process(sim, body(), name="p")
    proc.start()
    sim.schedule(5.0, lambda: fut.resolve(21))
    sim.run()
    assert trace == [21]
    assert proc.finished.value == 42


# --------------------------------------------------------------------------
# Arena: the C twin of repro.memory.arena.Arena
# --------------------------------------------------------------------------


def _arena_transcript(cls):
    """One allocation workout; returns (stats dict, error messages)."""
    arena = cls(1024, "t")
    a = arena.zeros(10)
    b = arena.take_copy(np.arange(5, dtype=np.float64))
    arena.free(a)
    c = arena.alloc(10)  # exact-shape reuse of a
    assert c.base is not None
    scratch = arena.bool_scratch(100)
    assert scratch.dtype == np.bool_ and scratch.size == 100
    errors = []
    for thunk in (
        lambda: arena.alloc(0),
        lambda: arena.take_copy(np.zeros((2, 2))),
        lambda: cls(8),
    ):
        try:
            thunk()
        except ValueError as exc:
            errors.append(str(exc))
    np.testing.assert_array_equal(b, np.arange(5, dtype=np.float64))
    return arena.stats(), errors


def test_arena_twin_matches_python(km):
    from repro.memory.arena import Arena as PyArena

    py_stats, py_errors = _arena_transcript(PyArena)
    c_stats, c_errors = _arena_transcript(km.Arena)
    assert py_stats == c_stats
    assert py_errors == c_errors


def test_arena_twin_zeroes_and_isolates_reuse(km):
    """Pooled reuse can never leak stale bytes through ``zeros``."""
    arena = km.Arena(1024, "reuse")
    first = arena.zeros(16)
    first[:] = 7.5
    arena.free(first)
    again = arena.zeros(16)
    np.testing.assert_array_equal(again, np.zeros(16))


def test_new_arena_returns_backend_class(km):
    from repro.memory.arena import new_arena

    assert type(new_arena(label="x")).__module__ == "repro._kernel._kernelc"


# --------------------------------------------------------------------------
# Ready + Accessor: the fused local-access fast path
# --------------------------------------------------------------------------


def test_ready_is_single_use_yield_from_target(km):
    def consume(it):
        value = yield from it
        return value

    gen = consume(km.Ready({"k": 1}))
    with pytest.raises(StopIteration) as stop:
        next(gen)
    assert stop.value.value == {"k": 1}
    # a consumed Ready ends iteration immediately, with no value
    spent = km.Ready(5)
    assert list(spent) == []
    assert list(spent) == []


def test_accessor_hit_and_miss_paths(km):
    """ctx.read/ctx.write route through the C Accessor under the
    compiled backend: a home-copy write is a local hit, a remote read
    faults in through the protocol generator — and the run's result is
    what the Python wrapper would produce."""
    from repro.apps.base import DsmApplication
    from repro.bench.runner import make_comm_model
    from repro.gos.jvm import DistributedJVM

    class Probe(DsmApplication):
        name = "accessor-probe"

        def setup(self, gos, nthreads):
            self.arr = gos.alloc_array(8, home=0, label="arr")
            self.gate = gos.alloc_barrier(nthreads)

        def thread_body(self, ctx, tid):
            if tid == 0:
                payload = yield from ctx.write(self.arr)  # home hit
                payload[0] = 42.0
            yield from ctx.barrier(self.gate)
            got = yield from ctx.read(self.arr)  # tid 1: remote fault-in
            self.seen[tid] = float(got[0])

        def setup_run(self):
            self.seen = {}

        def finalize(self, gos):
            return dict(self.seen)

    app = Probe()
    app.setup_run()
    jvm = DistributedJVM(nodes=2, comm_model=make_comm_model("fast-ethernet"))
    result = jvm.run(app, nthreads=2)
    assert result.output == {0: 42.0, 1: 42.0}


def test_thread_context_binds_accessor_methods(km):
    """Under the compiled backend the context's read/write are the C
    Accessor's bound methods, not the Python wrappers."""
    from repro.bench.runner import make_comm_model
    from repro.gos.space import GlobalObjectSpace
    from repro.gos.thread import ThreadContext

    gos = GlobalObjectSpace(
        nnodes=2, comm_model=make_comm_model("fast-ethernet")
    )
    ctx = ThreadContext(gos, tid=0, node=0)
    assert type(ctx.read).__name__ == "builtin_function_or_method"
    assert type(ctx.read.__self__) is km.Accessor
    assert ctx.write.__self__ is ctx.read.__self__


# --------------------------------------------------------------------------
# Build / fallback machinery
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cacheless_src(tmp_path_factory):
    """A copy of ``src/`` with no build cache — a host that never built.

    Needed because ``import repro`` resolves the backend eagerly (the
    engine binds ``Simulator`` at import), so a cached ``.so`` next to
    the real source would satisfy even a broken compiler.
    """
    import shutil

    dest = tmp_path_factory.mktemp("cacheless") / "src"
    shutil.copytree(
        SRC, dest, ignore=shutil.ignore_patterns("_build", "__pycache__")
    )
    return dest


def _subprocess_check(src_dir: Path, backend: str, code: str) -> None:
    env = dict(
        os.environ,
        PYTHONPATH=str(src_dir),
        REPRO_BACKEND=backend,
        REPRO_KERNEL_CC="/nonexistent-compiler",
        XDG_CACHE_HOME="/nonexistent-cache",
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip().endswith("OK"), proc.stdout


def test_auto_falls_back_when_compiler_is_broken(cacheless_src):
    """No toolchain + no cache => ``import repro`` still succeeds, on the
    pure-Python backend, with one RuntimeWarning."""
    _subprocess_check(
        cacheless_src,
        "auto",
        """\
import warnings
with warnings.catch_warnings(record=True) as caught:
    warnings.simplefilter("always")
    import repro
    from repro import _kernel
    name = _kernel.backend_name()
assert name == "python", name
assert any(
    "falling back to the pure-Python backend" in str(w.message)
    for w in caught
), [str(w.message) for w in caught]
from repro.sim.engine import Simulator, PySimulator
assert Simulator is PySimulator
print("OK")
""",
    )


def test_compiled_request_raises_when_compiler_is_broken(cacheless_src):
    _subprocess_check(
        cacheless_src,
        "compiled",
        """\
try:
    # raises during import: the engine binds Simulator eagerly
    import repro
    repro.sim  # pragma: no cover - unreachable
except RuntimeError as exc:
    assert "compiled backend requested but unavailable" in str(exc), exc
    print("OK")
else:
    raise SystemExit("expected RuntimeError")
""",
    )


def test_fallback_warning_fires_once_per_process(cacheless_src):
    """The auto-mode fallback RuntimeWarning is latched per process:
    ``select_backend()`` re-resolutions on a compiler-less host must not
    re-fire it."""
    _subprocess_check(
        cacheless_src,
        "auto",
        """\
import warnings
with warnings.catch_warnings(record=True) as caught:
    warnings.simplefilter("always")
    import repro
    from repro import _kernel
    assert _kernel.backend_name() == "python"
    # two explicit re-resolutions: each re-attempts (and re-fails) the
    # compiled build, but the warning must stay a one-liner
    assert _kernel.select_backend("auto") == "python"
    assert _kernel.select_backend("auto") == "python"
fallbacks = [
    w for w in caught
    if "falling back to the pure-Python backend" in str(w.message)
]
assert len(fallbacks) == 1, [str(w.message) for w in caught]
assert issubclass(fallbacks[0].category, RuntimeWarning)
print("OK")
""",
    )


def test_backend_info_reports_extension(km):
    info = _kernel.backend_info()
    assert info["backend"] == "compiled"
    assert info["reason"] == "extension loaded"
    assert info.get("extension")
