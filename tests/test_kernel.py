"""Unit tests for the compiled kernel primitives (``repro._kernel``).

Each primitive is checked directly against its pure-Python ground truth
in the same process — ordering, results, and error *messages* (the
fallback contract promises byte-identical behaviour, which includes what
an exception says).  The build/fallback machinery is exercised in
subprocesses with a deliberately broken compiler.

Skips (with the reason) when the extension is unavailable, e.g. under
``REPRO_BACKEND=python`` CI legs or a host with no C toolchain.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import _kernel

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"


@pytest.fixture(scope="module")
def km():
    module = _kernel.kernel()
    if module is None:
        pytest.skip(
            f"compiled backend unavailable: {_kernel.backend_info()['reason']}"
        )
    return module


@pytest.fixture(scope="module")
def sim_classes(km):
    from repro.sim import engine

    compiled = engine.CompiledSimulator or engine._build_compiled_class(km)
    return engine.PySimulator, compiled


# --------------------------------------------------------------------------
# Engine: event ordering, time semantics, error messages
# --------------------------------------------------------------------------


def _drive(sim_cls, until=None):
    """Schedule a fixed mix of ties/out-of-order events; return the trace."""
    sim = sim_cls()
    order = []
    for label, delay in [
        ("a", 5.0), ("b", 1.0), ("c", 5.0), ("d", 0.0), ("e", 3.0),
    ]:
        sim.schedule(delay, lambda lb=label: order.append((lb, sim.now)))
    sim.call_soon(lambda: order.append(("soon", sim.now)))
    sim.schedule(2.0, lambda: sim.schedule(0.5, lambda: order.append(("nested", sim.now))))
    end = sim.run(until)
    return order, end, sim.events_processed


def test_engine_order_matches_python(sim_classes):
    py_cls, compiled_cls = sim_classes
    assert _drive(py_cls) == _drive(compiled_cls)
    assert _drive(py_cls, until=2.4) == _drive(compiled_cls, until=2.4)
    assert _drive(py_cls, until=100.0) == _drive(compiled_cls, until=100.0)


def test_engine_error_messages_match(sim_classes):
    from repro.sim.errors import SimulationError

    py_cls, compiled_cls = sim_classes
    messages = {}
    for name, cls in (("python", py_cls), ("compiled", compiled_cls)):
        sim = cls()
        with pytest.raises(SimulationError) as neg:
            sim.schedule(-1.5, lambda: None)
        sim.schedule(4.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError) as past:
            sim.at(1.0, lambda: None)
        messages[name] = (str(neg.value), str(past.value))
    assert messages["python"] == messages["compiled"]


def test_engine_counter_exact_on_raise(sim_classes):
    py_cls, compiled_cls = sim_classes

    def boom():
        raise RuntimeError("boom")

    counts = {}
    for name, cls in (("python", py_cls), ("compiled", compiled_cls)):
        sim = cls()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, boom)
        sim.schedule(3.0, lambda: None)
        with pytest.raises(RuntimeError):
            sim.run()
        counts[name] = sim.events_processed
    assert counts["python"] == counts["compiled"] == 2


# --------------------------------------------------------------------------
# Dispatcher
# --------------------------------------------------------------------------


class _Msg:
    def __init__(self, category, payload):
        self.category = category
        self.payload = payload


def test_dispatcher_routes_by_category(km):
    seen = []
    dispatcher = km.Dispatcher({"ping": seen.append, "pong": seen.append})
    dispatcher(_Msg("ping", 1))
    dispatcher(_Msg("pong", 2))
    assert seen == [1, 2]


def test_dispatcher_unhandled_message_matches_python(km):
    dispatcher = km.Dispatcher({})
    msg = _Msg("mystery", None)
    with pytest.raises(RuntimeError) as compiled_err:
        dispatcher(msg)
    # the pure-Python DsmEngine.on_message wording
    assert str(compiled_err.value) == f"unhandled message {msg!r}"


def test_dispatcher_sees_dict_mutations(km):
    """The Dispatcher wraps the live dict — handler swaps take effect."""
    table = {}
    dispatcher = km.Dispatcher(table)
    seen = []
    table["late"] = seen.append
    dispatcher(_Msg("late", "x"))
    assert seen == ["x"]


# --------------------------------------------------------------------------
# diff_arrays
# --------------------------------------------------------------------------


def _reference_scan(current, twin):
    """The pure-numpy scan ``compute_diff`` performs."""
    indices = np.flatnonzero(current != twin)
    if indices.size == 0:
        return None
    nruns = 1 + int(np.count_nonzero(np.diff(indices) != 1))
    return indices, current[indices], nruns


@pytest.mark.parametrize(
    "dtype", ["float64", "float32", "int64", "int32", "int16", "int8", "bool"]
)
def test_diff_arrays_matches_numpy(km, dtype):
    rng = np.random.default_rng(42)
    for _ in range(25):
        size = int(rng.integers(1, 200))
        twin = (rng.integers(0, 4, size) * 10).astype(dtype)
        current = twin.copy()
        flips = rng.random(size) < 0.2
        current[flips] = (rng.integers(1, 4, size) * 7).astype(dtype)[flips]
        got = km.diff_arrays(current, twin)
        want = _reference_scan(current, twin)
        if want is None:
            assert got is None
            continue
        indices, values, nruns = got
        np.testing.assert_array_equal(indices, want[0])
        np.testing.assert_array_equal(values, want[1])
        assert values.dtype == current.dtype
        assert nruns == want[2]


def test_diff_arrays_float_edge_semantics(km):
    """NaN and signed zero follow numpy ``!=``: NaN always differs,
    -0.0 vs 0.0 never does."""
    twin = np.array([0.0, np.nan, 1.0, np.nan], dtype=np.float64)
    current = np.array([-0.0, np.nan, 1.0, 2.0], dtype=np.float64)
    indices, values, nruns = km.diff_arrays(current, twin)
    np.testing.assert_array_equal(indices, [1, 3])
    assert np.isnan(values[0]) and values[1] == 2.0
    assert nruns == 2


def test_diff_arrays_unsupported_layouts_return_notimplemented(km):
    base = np.zeros(16, dtype=np.float64)
    assert km.diff_arrays(base[::2], base[1::2]) is NotImplemented
    two_d = np.zeros((4, 4))
    assert km.diff_arrays(two_d, two_d) is NotImplemented
    cplx = np.zeros(4, dtype=np.complex128)
    assert km.diff_arrays(cplx, cplx) is NotImplemented


def test_compute_diff_skips_ndarray_subclasses(km):
    """``compute_diff`` must keep the numpy path for subclasses (tests
    count ``__ne__`` calls on them)."""

    class Tagged(np.ndarray):
        pass

    from repro.memory.diff import compute_diff

    twin = np.arange(8, dtype=np.float64).view(Tagged)
    current = twin.copy()
    current[3] += 1.0
    diff = compute_diff(1, current, twin)
    np.testing.assert_array_equal(diff.indices, [3])


# --------------------------------------------------------------------------
# adaptive_threshold
# --------------------------------------------------------------------------


def test_adaptive_threshold_matches_expression(km):
    rng = np.random.default_rng(7)
    for _ in range(200):
        red, excl = rng.uniform(0, 50, 2)
        alpha, lam = rng.uniform(0.01, 3.0, 2)
        t_init = rng.uniform(0, 10)
        base = t_init + rng.uniform(0, 50)
        got = km.adaptive_threshold(base, red, excl, alpha, lam, t_init)
        want = base + lam * (red - alpha * excl)
        if want < t_init:
            want = t_init
        assert got == want  # bit-identical, not approx


def test_adaptive_threshold_error_messages_match(km):
    from repro.core import threshold

    cases = [
        {"base": -1.0},
        {"redirections": -1.0},
        {"exclusive_home_writes": -2.0},
        {"alpha": -0.5},
        {"alpha": 0.0},
        {"lam": -2.0},
    ]
    for overrides in cases:
        kwargs = dict(
            base=5.0, redirections=2.0, exclusive_home_writes=1.0,
            alpha=0.5, lam=1.0, t_init=1.0,
        )
        kwargs.update(overrides)
        with pytest.raises(ValueError) as compiled_err:
            km.adaptive_threshold(
                kwargs["base"], kwargs["redirections"],
                kwargs["exclusive_home_writes"], kwargs["alpha"],
                kwargs["lam"], kwargs["t_init"],
            )
        with pytest.raises(ValueError) as python_err:
            threshold._py_adaptive_threshold(**kwargs)
        assert str(compiled_err.value) == str(python_err.value)


# --------------------------------------------------------------------------
# Build / fallback machinery
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cacheless_src(tmp_path_factory):
    """A copy of ``src/`` with no build cache — a host that never built.

    Needed because ``import repro`` resolves the backend eagerly (the
    engine binds ``Simulator`` at import), so a cached ``.so`` next to
    the real source would satisfy even a broken compiler.
    """
    import shutil

    dest = tmp_path_factory.mktemp("cacheless") / "src"
    shutil.copytree(
        SRC, dest, ignore=shutil.ignore_patterns("_build", "__pycache__")
    )
    return dest


def _subprocess_check(src_dir: Path, backend: str, code: str) -> None:
    env = dict(
        os.environ,
        PYTHONPATH=str(src_dir),
        REPRO_BACKEND=backend,
        REPRO_KERNEL_CC="/nonexistent-compiler",
        XDG_CACHE_HOME="/nonexistent-cache",
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip().endswith("OK"), proc.stdout


def test_auto_falls_back_when_compiler_is_broken(cacheless_src):
    """No toolchain + no cache => ``import repro`` still succeeds, on the
    pure-Python backend, with one RuntimeWarning."""
    _subprocess_check(
        cacheless_src,
        "auto",
        """\
import warnings
with warnings.catch_warnings(record=True) as caught:
    warnings.simplefilter("always")
    import repro
    from repro import _kernel
    name = _kernel.backend_name()
assert name == "python", name
assert any(
    "falling back to the pure-Python backend" in str(w.message)
    for w in caught
), [str(w.message) for w in caught]
from repro.sim.engine import Simulator, PySimulator
assert Simulator is PySimulator
print("OK")
""",
    )


def test_compiled_request_raises_when_compiler_is_broken(cacheless_src):
    _subprocess_check(
        cacheless_src,
        "compiled",
        """\
try:
    # raises during import: the engine binds Simulator eagerly
    import repro
    repro.sim  # pragma: no cover - unreachable
except RuntimeError as exc:
    assert "compiled backend requested but unavailable" in str(exc), exc
    print("OK")
else:
    raise SystemExit("expected RuntimeError")
""",
    )


def test_backend_info_reports_extension(km):
    info = _kernel.backend_info()
    assert info["backend"] == "compiled"
    assert info["reason"] == "extension loaded"
    assert info.get("extension")
