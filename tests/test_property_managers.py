"""Property-based state-machine tests for the lock and barrier managers.

Hypothesis drives random operation sequences against a trivially correct
Python model; any divergence in holder, queue order, notice content, or
round completion is a bug.
"""

from collections import deque

from hypothesis import given, settings, strategies as st

from repro.dsm.barrier import BarrierHandle, BarrierState
from repro.dsm.locks import LockTable


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["acquire", "release"]),
            st.integers(min_value=0, max_value=3),  # node
            st.integers(min_value=1, max_value=2),  # lock id
        ),
        max_size=60,
    )
)
@settings(max_examples=200)
def test_lock_table_matches_fifo_model(ops):
    table = LockTable()
    model_holder: dict[int, int | None] = {1: None, 2: None}
    model_queue: dict[int, deque] = {1: deque(), 2: deque()}
    request_counter = [0]

    for op, node, lock_id in ops:
        if op == "acquire":
            # the model ignores duplicate waiters (a real node blocks),
            # so skip acquires by a node already holding or waiting
            if model_holder[lock_id] == node or node in model_queue[lock_id]:
                continue
            request_counter[0] += 1
            granted = table.try_acquire(
                lock_id, node, (node, request_counter[0])
            )
            if model_holder[lock_id] is None:
                assert granted
                model_holder[lock_id] = node
            else:
                assert not granted
                model_queue[lock_id].append(node)
        else:  # release
            if model_holder[lock_id] != node:
                continue  # a real node only releases what it holds
            waiter = table.release(lock_id, node, notices={})
            if model_queue[lock_id]:
                expected = model_queue[lock_id].popleft()
                assert waiter is not None and waiter.node == expected
                model_holder[lock_id] = expected
            else:
                assert waiter is None
                model_holder[lock_id] = None

    for lock_id in (1, 2):
        assert table.state(lock_id).holder == model_holder[lock_id]
        assert [w.node for w in table.state(lock_id).queue] == list(
            model_queue[lock_id]
        )


@given(
    updates=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=5),  # oid
            st.integers(min_value=1, max_value=50),  # version
        ),
        max_size=40,
    ),
    grant_points=st.sets(st.integers(min_value=0, max_value=39)),
)
@settings(max_examples=200)
def test_incremental_grants_deliver_every_notice_exactly_once_per_node(
    updates, grant_points
):
    """A node that receives every grant sees, cumulatively, exactly the
    max-version map — and never a stale regression."""
    table = LockTable()
    node = 7
    seen: dict[int, int] = {}
    model: dict[int, int] = {}
    for index, (oid, version) in enumerate(updates):
        table.add_notices(1, {oid: version})
        if model.get(oid, 0) < version:
            model[oid] = version
        if index in grant_points:
            grant = table.grant_notices(1, node)
            for g_oid, g_version in grant.items():
                assert g_version >= seen.get(g_oid, 0)
                seen[g_oid] = g_version
    final = table.grant_notices(1, node)
    for g_oid, g_version in final.items():
        seen[g_oid] = max(seen.get(g_oid, 0), g_version)
    assert seen == model


@given(
    parties=st.integers(min_value=1, max_value=5),
    rounds=st.integers(min_value=1, max_value=5),
    data=st.data(),
)
@settings(max_examples=100)
def test_barrier_rounds_merge_all_notices(parties, rounds, data):
    state = BarrierState(BarrierHandle(barrier_id=1, home=0, parties=parties))
    for round_no in range(rounds):
        expected: dict[int, int] = {}
        expected_writers: dict[int, set[int]] = {}
        for node in range(parties):
            notices = data.draw(
                st.dictionaries(
                    st.integers(min_value=1, max_value=4),
                    st.integers(min_value=1, max_value=30),
                    max_size=3,
                ),
                label=f"notices[{round_no}][{node}]",
            )
            complete = state.arrive(node, notices, round_no)
            assert complete == (node == parties - 1)
            for oid, version in notices.items():
                if expected.get(oid, 0) < version:
                    expected[oid] = version
                expected_writers.setdefault(oid, set()).add(node)
        finished_round, merged, writers = state.complete_round()
        assert finished_round == round_no
        assert merged == expected
        assert writers == expected_writers
