"""Tests for ASCII report rendering."""

import pytest

from repro.bench.report import format_bar_groups, format_table


def test_format_table_basic():
    out = format_table(
        ["name", "value"], [["a", 1.0], ["bb", 22.5]], title="T"
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5


def test_format_table_alignment():
    out = format_table(["col"], [["x"], ["longer"]])
    lines = out.splitlines()
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all lines padded to the same width


def test_format_table_wrong_arity_rejected():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_format_table_number_formatting():
    out = format_table(["v"], [[1234567.0], [0.123456], [0]])
    assert "1,234,567" in out
    assert "0.123" in out


def test_bar_groups_render():
    out = format_bar_groups(
        {"r=2": {"NM": 1.0, "AT": 0.5}}, width=10, title="demo"
    )
    assert "demo" in out
    assert "r=2:" in out
    assert "##########" in out  # full bar for NM
    assert "#####" in out
    assert "100.0%" in out and " 50.0%" in out


def test_bar_groups_out_of_range_rejected():
    with pytest.raises(ValueError):
        format_bar_groups({"g": {"x": 1.5}})
