"""Tests for the retry lock discipline (the paper's runtime randomness)."""

import pytest

from repro.apps import SingleWriterBenchmark
from repro.cluster.hockney import FAST_ETHERNET
from repro.core.policies import AdaptiveThreshold, FixedThreshold, NoMigration
from repro.gos.jvm import DistributedJVM
from repro.gos.space import GlobalObjectSpace
from repro.gos.thread import ThreadContext
from repro.trace import TraceRecorder

from tests.conftest import run_threads


def retry_jvm(nodes=5, policy=None, seed=0, tracer=None):
    return DistributedJVM(
        nodes=nodes,
        comm_model=FAST_ETHERNET,
        policy=policy if policy is not None else AdaptiveThreshold(),
        lock_discipline="retry",
        seed=seed,
        tracer=tracer,
    )


def test_discipline_validation():
    with pytest.raises(ValueError):
        GlobalObjectSpace(2, FAST_ETHERNET, lock_discipline="bogus")


def test_retry_locks_preserve_mutual_exclusion():
    gos = GlobalObjectSpace(
        4, FAST_ETHERNET, policy=NoMigration(), lock_discipline="retry"
    )
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)

    def incrementer(node, times):
        ctx = ThreadContext(gos, tid=node, node=node)
        for _ in range(times):
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[0] += 1.0
            yield from ctx.release(lock)

    run_threads(gos, incrementer(1, 20), incrementer(2, 20), incrementer(3, 20))
    assert gos.read_global(obj)[0] == 60.0


def test_retry_locks_work_with_local_manager():
    gos = GlobalObjectSpace(
        3, FAST_ETHERNET, policy=NoMigration(), lock_discipline="retry"
    )
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)

    def body(node, times):
        ctx = ThreadContext(gos, tid=node, node=node)
        for _ in range(times):
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[0] += 1.0
            yield from ctx.release(lock)

    # one contender runs on the manager node itself
    run_threads(gos, body(0, 10), body(1, 10))
    assert gos.read_global(obj)[0] == 20.0


def test_retry_runs_are_deterministic_per_seed():
    def one(seed):
        app = SingleWriterBenchmark(total_updates=128, repetition=4)
        result = retry_jvm(seed=seed).run(app)
        app.verify(result.output)
        return result.execution_time_us, result.stats.snapshot()

    assert one(1) == one(1)
    assert one(1) != one(2)


def test_retry_produces_consecutive_turn_repeats():
    """The paper: "the actual consecutive writing times could be a
    multiple of r".  Under FIFO round-robin that never happens; under the
    retry discipline the releasing thread sometimes wins again."""
    tracer = TraceRecorder(kinds=["decision"])
    app = SingleWriterBenchmark(
        total_updates=512, repetition=4, compute_us=400.0
    )
    result = retry_jvm(
        nodes=9, policy=FixedThreshold(10_000), seed=3, tracer=tracer
    ).run(app)
    app.verify(result.output)
    # FT(10000) never migrates, so consecutive counts accumulate at the
    # fixed home; a repeat tenure shows up as C > r at a decision point
    max_consecutive = max(
        event.detail["consecutive"] for event in tracer.of_kind("decision")
    )
    assert max_consecutive > 4


def test_synthetic_verifies_under_retry_for_all_policies():
    for policy_name in ("NM", "FT1", "FT2", "AT"):
        from repro.bench.runner import make_policy

        app = SingleWriterBenchmark(total_updates=128, repetition=4)
        result = retry_jvm(policy=make_policy(policy_name), seed=7).run(app)
        app.verify(result.output)


def test_ft2_migrates_on_random_repeats_at_r2():
    """The paper's 'individual cases': FT2 prohibits migration at r=2
    except when a thread randomly keeps the lock for consecutive turns."""
    migrations = []
    for seed in range(4):
        app = SingleWriterBenchmark(
            total_updates=256, repetition=2, compute_us=400.0
        )
        result = retry_jvm(
            nodes=9, policy=FixedThreshold(2), seed=seed
        ).run(app)
        app.verify(result.output)
        migrations.append(result.migrations)
    assert any(m > 0 for m in migrations)  # repeats do occur
    assert all(m < 40 for m in migrations)  # but migration stays rare
