"""Targeted tests for rarely-taken protocol branches."""

import numpy as np
import pytest

from repro.cluster.message import MsgCategory
from repro.core.policies import FixedThreshold, NoMigration
from repro.dsm.protocol import ObjRequest
from repro.dsm.redirection import HomeManagerMechanism
from repro.gos.thread import ThreadContext
from repro.sim.future import Future

from tests.conftest import make_gos, run_threads


def test_diff_forwarded_along_migration_chain():
    """A writer whose home hint went stale mid-interval has its diff
    forwarded by the obsolete home (diff_forward, not redirection)."""
    gos = make_gos(nnodes=4, policy=FixedThreshold(1))
    obj = gos.alloc_array(8, home=0)
    lock_a = gos.alloc_lock(home=0)
    lock_b = gos.alloc_lock(home=0)
    order = []

    def slow_writer():
        # writes under lock_a, holding its dirty copy while the home moves
        ctx = ThreadContext(gos, tid=0, node=1)
        yield from ctx.acquire(lock_a)
        payload = yield from ctx.write(obj)
        payload[1] = 1.0
        # park long enough for the other writer to trigger migration
        yield from ctx.compute(50_000.0)
        yield from ctx.release(lock_a)  # diff goes to the OLD home
        order.append("slow-released")

    def migrating_writer():
        ctx = ThreadContext(gos, tid=1, node=2)
        for _ in range(3):
            yield from ctx.acquire(lock_b)
            payload = yield from ctx.write(obj)
            payload[2] += 1.0
            yield from ctx.release(lock_b)
        order.append("migrator-done")

    run_threads(gos, slow_writer(), migrating_writer())
    assert gos.current_home(obj) == 2
    assert gos.stats.events.get("diff_forward", 0) >= 1
    # nothing was lost
    final = gos.read_global(obj)
    assert final[1] == 1.0 and final[2] == 3.0


def test_version_deferred_request_served_after_diff():
    """A request demanding a version the home has not reached yet parks
    in the home entry's pending list and is served when the diff lands."""
    gos = make_gos(nnodes=3, policy=NoMigration())
    obj = gos.alloc_array(4, home=0)
    engine = gos.engines[0]
    # fabricate a request from node 2 demanding version 1
    request = ObjRequest(
        oid=obj.oid,
        requester=2,
        request_id=(2, 999),
        min_version=1,
        hops=0,
        for_write=False,
    )
    waiter = Future(label="test-wait")
    gos.engines[2]._reply_waiters[(2, 999)] = waiter
    engine._handle_obj_request(request)
    assert gos.stats.events["deferred_request"] == 1
    assert engine.homes[obj.oid].pending

    # now a writer's diff bumps the home to version 1
    lock = gos.alloc_lock(home=0)

    def writer():
        ctx = ThreadContext(gos, tid=0, node=1)
        yield from ctx.acquire(lock)
        payload = yield from ctx.write(obj)
        payload[0] = 5.0
        yield from ctx.release(lock)

    run_threads(gos, writer())
    assert not engine.homes[obj.oid].pending
    assert waiter.resolved
    reply = waiter.value
    assert reply.version == 1
    assert reply.data[0] == 5.0


def test_home_manager_mechanism_with_manager_as_old_home():
    """Migration away from the manager node updates the map locally
    (no HOME_UPDATE message)."""
    gos = make_gos(
        nnodes=4,
        policy=FixedThreshold(1),
        mechanism=HomeManagerMechanism(manager_node=0),
    )
    obj = gos.alloc_fields(("v",), home=0)  # homed AT the manager
    lock = gos.alloc_lock(home=0)

    def writer():
        ctx = ThreadContext(gos, tid=0, node=2)
        for _ in range(3):
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[0] += 1.0
            yield from ctx.release(lock)

    run_threads(gos, writer())
    assert gos.current_home(obj) == 2
    assert gos.stats.msg_count.get(MsgCategory.HOME_UPDATE, 0) == 0
    assert gos.engines[0].manager_home_map[obj.oid] == 2


def test_batch_read_miss_falls_back_to_singular_path():
    """A batched request hitting an obsolete home returns the oid as
    missing; the requester then walks the forwarding chain."""
    gos = make_gos(nnodes=4, policy=FixedThreshold(1))
    obj = gos.alloc_array(8, home=0)
    other = gos.alloc_array(8, home=0)
    lock = gos.alloc_lock(home=0)

    def writer():
        ctx = ThreadContext(gos, tid=0, node=1)
        for i in range(3):
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[i] = float(i + 1)
            yield from ctx.release(lock)

    run_threads(gos, writer())
    assert gos.current_home(obj) == 1

    def batch_reader():
        ctx = ThreadContext(gos, tid=1, node=3)
        # node 3 still believes node 0 homes both objects
        yield from ctx.read_many([obj, other])
        payload = yield from ctx.read(obj)
        assert payload[0] == 1.0

    run_threads(gos, batch_reader())
    # the miss was resolved through the chain
    assert gos.stats.events.get("redir", 0) >= 1


def test_write_to_object_that_migrates_to_us_mid_fault():
    """for_write fault-in whose reply carries the home: the write lands
    as a home write with no further messages."""
    gos = make_gos(nnodes=3, policy=FixedThreshold(1))
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)

    def writer():
        ctx = ThreadContext(gos, tid=0, node=1)
        for _ in range(4):
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[0] += 1.0
            yield from ctx.release(lock)

    run_threads(gos, writer())
    entry = gos.engines[1].homes[obj.oid]
    assert entry.payload[0] == 4.0
    assert entry.state.home_writes >= 1


def test_read_of_own_former_home_follows_pointer():
    """A node that migrated a home away and then reads the object chases
    its own forwarding pointer."""
    gos = make_gos(nnodes=3, policy=FixedThreshold(1))
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)

    def writer():
        ctx = ThreadContext(gos, tid=0, node=1)
        for _ in range(3):
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[0] += 1.0
            yield from ctx.release(lock)

    run_threads(gos, writer())

    def old_home_reader():
        ctx = ThreadContext(gos, tid=1, node=0)
        yield from ctx.acquire(lock)
        payload = yield from ctx.read(obj)
        assert payload[0] == 3.0
        yield from ctx.release(lock)

    run_threads(gos, old_home_reader())


def test_zero_length_interval_release_is_harmless():
    gos = make_gos(nnodes=2)
    lock = gos.alloc_lock(home=0)

    def body():
        ctx = ThreadContext(gos, tid=0, node=1)
        yield from ctx.acquire(lock)
        yield from ctx.release(lock)  # nothing written

    run_threads(gos, body())
    assert gos.stats.msg_count.get(MsgCategory.DIFF, 0) == 0


def test_two_threads_on_one_node_share_the_cache():
    """Co-located threads hit the same node cache: the second reader of
    an interval pays nothing."""
    gos = make_gos(nnodes=2, policy=NoMigration())
    obj = gos.alloc_array(8, home=0)
    gos.write_global(obj, np.arange(8.0))
    hits = []

    def reader(tid):
        ctx = ThreadContext(gos, tid=tid, node=1)
        payload = yield from ctx.read(obj)
        hits.append(payload[3])

    run_threads(gos, reader(0), reader(1))
    assert hits == [3.0, 3.0]
    assert gos.stats.msg_count[MsgCategory.OBJ_REQUEST] == 1
