"""Further homeless-protocol tests: gossip transitivity, batching,
determinism."""

import numpy as np

from repro.cluster.hockney import FAST_ETHERNET
from repro.gos.homeless import HomelessObjectSpace
from repro.gos.thread import ThreadContext

from tests.conftest import run_threads


def test_notice_transitivity_across_lock_chains():
    """Regression: writes published under lock B must become visible to
    a reader synchronizing only via lock A, through the gossiped notice
    maps (TreadMarks achieves this with interval vector timestamps)."""
    gos = HomelessObjectSpace(4, FAST_ETHERNET)
    obj = gos.alloc_fields(("v",))
    lock_a = gos.alloc_lock(home=0)
    lock_b = gos.alloc_lock(home=0)
    seen = []

    def writer_then_a():
        ctx = ThreadContext(gos, tid=0, node=1)
        # write under lock B...
        yield from ctx.acquire(lock_b)
        payload = yield from ctx.write(obj)
        payload[0] = 7.0
        yield from ctx.release(lock_b)
        # ...then pass through lock A, gossiping the notice
        yield from ctx.acquire(lock_a)
        yield from ctx.release(lock_a)

    def reader_via_a():
        ctx = ThreadContext(gos, tid=1, node=2)
        # wait until the writer finished both phases
        yield from ctx.compute(100_000.0)
        yield from ctx.acquire(lock_a)
        payload = yield from ctx.read(obj)
        seen.append(float(payload[0]))
        yield from ctx.release(lock_a)

    run_threads(gos, writer_then_a(), reader_via_a())
    assert seen == [7.0]


def test_counter_through_alternating_locks():
    """The synthetic benchmark's lock0/lock1 chain, distilled: every
    update must be observed regardless of which lock flushed it."""
    gos = HomelessObjectSpace(3, FAST_ETHERNET)
    obj = gos.alloc_fields(("v",))
    locks = [gos.alloc_lock(home=0), gos.alloc_lock(home=0)]

    def body(tid, times):
        ctx = ThreadContext(gos, tid, tid + 1)
        for i in range(times):
            lock = locks[i % 2]
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[0] += 1.0
            yield from ctx.release(lock)

    run_threads(gos, body(0, 12), body(1, 12))
    assert gos.read_global(obj)[0] == 24.0


def test_homeless_read_many_is_sequential_but_correct():
    gos = HomelessObjectSpace(3, FAST_ETHERNET)
    objs = [gos.alloc_array(4) for _ in range(5)]
    for i, obj in enumerate(objs):
        gos.write_global(obj, np.full(4, float(i)))
    lock = gos.alloc_lock(home=0)

    def writer():
        ctx = ThreadContext(gos, tid=0, node=1)
        yield from ctx.acquire(lock)
        for obj in objs:
            payload = yield from ctx.write(obj)
            payload[0] += 100.0
        yield from ctx.release(lock)

    run_threads(gos, writer())

    def reader():
        ctx = ThreadContext(gos, tid=1, node=2)
        yield from ctx.acquire(lock)
        yield from ctx.read_many(objs)
        for i, obj in enumerate(objs):
            payload = yield from ctx.read(obj)
            assert payload[0] == 100.0 + i
        yield from ctx.release(lock)

    run_threads(gos, reader())


def test_homeless_runs_deterministic():
    def one():
        gos = HomelessObjectSpace(3, FAST_ETHERNET)
        obj = gos.alloc_fields(("v",))
        lock = gos.alloc_lock(home=0)

        def body(tid):
            ctx = ThreadContext(gos, tid, tid + 1)
            for _ in range(8):
                yield from ctx.acquire(lock)
                payload = yield from ctx.write(obj)
                payload[0] += 1.0
                yield from ctx.release(lock)

        end = run_threads(gos, body(0), body(1))
        return end, gos.stats.snapshot()

    assert one() == one()


def test_fetch_skips_up_to_date_writers():
    """Only writers the reader actually lags behind are contacted."""
    gos = HomelessObjectSpace(4, FAST_ETHERNET)
    obj = gos.alloc_fields(("v",))
    lock = gos.alloc_lock(home=0)

    def writer(node):
        ctx = ThreadContext(gos, tid=node, node=node)
        yield from ctx.acquire(lock)
        payload = yield from ctx.write(obj)
        payload[0] += 1.0
        yield from ctx.release(lock)

    run_threads(gos, writer(1))

    def reader_twice():
        ctx = ThreadContext(gos, tid=9, node=3)
        yield from ctx.acquire(lock)
        yield from ctx.read(obj)
        yield from ctx.release(lock)
        # second synchronization with no new writes: no new fetch
        yield from ctx.acquire(lock)
        yield from ctx.read(obj)
        yield from ctx.release(lock)

    run_threads(gos, reader_twice())
    assert gos.stats.events["homeless_fetch"] == 1
