"""Integration tests of home migration: policies, forwarding, feedback."""

import numpy as np
import pytest

from repro.cluster.message import MsgCategory
from repro.core.policies import (
    AdaptiveThreshold,
    FixedThreshold,
    LazyFlushing,
    MigratingHome,
    BarrierMigration,
)
from repro.dsm.redirection import (
    BroadcastMechanism,
    HomeManagerMechanism,
)
from repro.gos.thread import ThreadContext

from tests.conftest import make_gos, run_threads


def single_writer_turns(gos, obj, lock, node, turns):
    """One thread performing `turns` synchronized updates from `node`."""
    ctx = ThreadContext(gos, tid=node, node=node)
    for i in range(turns):
        yield from ctx.acquire(lock)
        payload = yield from ctx.write(obj)
        payload[0] += 1.0
        yield from ctx.release(lock)


def test_ft1_migrates_on_second_fault():
    gos = make_gos(nnodes=4, policy=FixedThreshold(1))
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)
    run_threads(gos, single_writer_turns(gos, obj, lock, node=2, turns=4))
    # the home moved to the writer
    assert obj.oid in gos.engines[2].homes
    assert obj.oid not in gos.engines[0].homes
    assert gos.engines[0].forwards[obj.oid] == 2
    assert gos.stats.events["migration"] == 1
    # later turns were free home writes
    state = gos.engines[2].homes[obj.oid].state
    assert state.home_writes >= 2
    assert gos.engines[0].homes == {}


def test_no_migration_policy_never_moves_home():
    gos = make_gos(nnodes=4)  # NoMigration default
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)
    run_threads(gos, single_writer_turns(gos, obj, lock, node=2, turns=6))
    assert obj.oid in gos.engines[0].homes
    assert gos.stats.events["migration"] == 0


def test_migration_preserves_data():
    gos = make_gos(nnodes=4, policy=FixedThreshold(1))
    obj = gos.alloc_array(16, home=0)
    gos.write_global(obj, np.arange(16.0))
    lock = gos.alloc_lock(home=0)

    def writer():
        ctx = ThreadContext(gos, tid=0, node=3)
        for i in range(3):
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[i] = 100.0 + i
            yield from ctx.release(lock)

    run_threads(gos, writer())
    final = gos.read_global(obj)
    expected = np.arange(16.0)
    expected[:3] = [100.0, 101.0, 102.0]
    assert np.array_equal(final, expected)


def test_forwarding_pointer_redirects_and_counts_hops():
    gos = make_gos(nnodes=5, policy=FixedThreshold(1))
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)
    # writer on node 2 attracts the home; then node 3 reads via node 0
    run_threads(gos, single_writer_turns(gos, obj, lock, node=2, turns=3))

    def reader():
        ctx = ThreadContext(gos, tid=9, node=3)
        payload = yield from ctx.read(obj)
        assert payload[0] == 3.0

    run_threads(gos, reader())
    assert gos.stats.events["redir"] == 1
    assert gos.stats.msg_count[MsgCategory.REDIRECT] == 1
    # the hop count reached the current home's feedback counter
    assert gos.engines[2].homes[obj.oid].state.redirections == 1


def test_redirection_chain_accumulates():
    """Home migrates 0->1->2->3; a reader with a stale hint pays 3 hops."""
    gos = make_gos(nnodes=5, policy=FixedThreshold(1))
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)

    def reader_then_wait(results):
        ctx = ThreadContext(gos, tid=8, node=4)
        payload = yield from ctx.read(obj)
        results.append(float(payload[0]))

    # walk the home along nodes 1, 2, 3
    for node in (1, 2, 3):
        run_threads(gos, single_writer_turns(gos, obj, lock, node=node, turns=3))
    results = []
    run_threads(gos, reader_then_wait(results))
    assert results == [9.0]
    # reader's request went 0 -> 1 -> 2 -> 3: three redirections
    assert gos.engines[3].homes[obj.oid].state.redirections == 3


def test_monitor_state_travels_with_home():
    gos = make_gos(nnodes=4, policy=FixedThreshold(1))
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)
    run_threads(gos, single_writer_turns(gos, obj, lock, node=1, turns=2))
    state = gos.engines[1].homes[obj.oid].state
    assert state.migrations == 1
    run_threads(gos, single_writer_turns(gos, obj, lock, node=2, turns=3))
    state2 = gos.engines[2].homes[obj.oid].state
    assert state2 is state  # the very same monitor object
    assert state2.migrations == 2


def test_adaptive_threshold_rises_with_redirections():
    gos = make_gos(nnodes=6, policy=AdaptiveThreshold())
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)
    # short two-update bursts rotating through the nodes: transient
    # single-writer patterns; with T=1 the first migrations fire, their
    # redirections then push the threshold up and inhibit later ones
    for turn in range(12):
        node = 1 + (turn % 5)
        run_threads(gos, single_writer_turns(gos, obj, lock, node=node, turns=2))
    migrations = gos.stats.events["migration"]
    assert 1 <= migrations <= 3  # fired, then the feedback inhibited it
    # negative feedback was observed and the live threshold sits above
    # the number of consecutive writes a 2-burst can accumulate
    assert gos.stats.events["redir"] >= 1
    current_home = gos.current_home(obj)
    state = gos.engines[current_home].homes[obj.oid].state
    policy = gos.policy
    live_threshold = policy.current_threshold(
        state, gos.engines[current_home].alpha(obj.oid, state)
    )
    assert live_threshold > 1.0


def test_broadcast_mechanism_informs_other_nodes():
    gos = make_gos(
        nnodes=5, policy=FixedThreshold(1), mechanism=BroadcastMechanism()
    )
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)
    run_threads(gos, single_writer_turns(gos, obj, lock, node=2, turns=3))
    assert gos.stats.msg_count[MsgCategory.HOME_BCAST] == 3  # nodes 1,3,4

    def reader():
        ctx = ThreadContext(gos, tid=9, node=4)
        yield from ctx.read(obj)

    run_threads(gos, reader())
    # reader knew the new home: no redirection
    assert gos.stats.events.get("redir", 0) == 0


def test_home_manager_mechanism_resolves_via_manager():
    gos = make_gos(
        nnodes=5,
        policy=FixedThreshold(1),
        mechanism=HomeManagerMechanism(manager_node=0),
    )
    obj = gos.alloc_fields(("v",), home=1)
    lock = gos.alloc_lock(home=0)
    run_threads(gos, single_writer_turns(gos, obj, lock, node=2, turns=3))
    assert gos.stats.msg_count[MsgCategory.HOME_UPDATE] == 1

    def reader():
        ctx = ThreadContext(gos, tid=9, node=4)
        payload = yield from ctx.read(obj)
        assert payload[0] == 3.0

    run_threads(gos, reader())
    assert gos.stats.msg_count[MsgCategory.HOME_QUERY] == 1
    assert gos.stats.msg_count[MsgCategory.HOME_ANSWER] == 1


def test_jump_policy_homes_follow_every_writer():
    gos = make_gos(nnodes=4, policy=MigratingHome())
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)
    for node in (1, 2, 3, 1, 2, 3):
        run_threads(gos, single_writer_turns(gos, obj, lock, node=node, turns=1))
    # every write fault migrated the home (sequential-writer pathology)
    assert gos.stats.events["migration"] >= 5
    assert gos.read_global(obj)[0] == 6.0


def test_lazy_flushing_respects_transition_cap():
    gos = make_gos(nnodes=4, policy=LazyFlushing(max_transitions=2))
    obj = gos.alloc_fields(("v",), home=0)
    lock = gos.alloc_lock(home=0)
    for node in (1, 2, 3, 1, 2, 3):
        run_threads(gos, single_writer_turns(gos, obj, lock, node=node, turns=1))
    assert gos.stats.events["migration"] == 2
    assert gos.read_global(obj)[0] == 6.0


def test_barrier_migration_moves_single_writer_objects_at_barrier():
    gos = make_gos(nnodes=3, policy=BarrierMigration())
    obj_a = gos.alloc_array(8, home=0)
    obj_b = gos.alloc_array(8, home=0)
    barrier = gos.alloc_barrier(parties=2, home=0)

    def writer(node, obj, value, reads_other):
        ctx = ThreadContext(gos, tid=node, node=node)
        for phase in range(3):
            payload = yield from ctx.write(obj)
            payload[phase] = value
            yield from ctx.barrier(barrier)
            other = yield from ctx.read(reads_other)
            assert other[phase] == 3.0 - value

    run_threads(
        gos,
        writer(1, obj_a, 1.0, obj_b),
        writer(2, obj_b, 2.0, obj_a),
    )
    # both single-writer objects migrated to their writers at a barrier
    assert gos.current_home(obj_a) == 1
    assert gos.current_home(obj_b) == 2
    assert gos.stats.events["migration"] == 2
    # and no redirection was paid (locations piggybacked on releases)
    assert gos.stats.events.get("redir", 0) == 0


def test_multiwriter_object_never_migrates_under_at():
    gos = make_gos(nnodes=4, policy=AdaptiveThreshold())
    obj = gos.alloc_array(8, home=0)
    barrier = gos.alloc_barrier(parties=2, home=0)

    def writer(node, index):
        ctx = ThreadContext(gos, tid=node, node=node)
        for phase in range(5):
            payload = yield from ctx.write(obj)
            payload[index] += 1.0
            yield from ctx.barrier(barrier)

    run_threads(gos, writer(1, 1), writer(2, 2))
    # Interleaved writers never build a chain longer than 1, so at most
    # the initial T=1 migration fires; afterwards the home stays with one
    # of the writers (the paper's point: in the multiple-writer case it
    # does not matter which writer is the home, §3.1) and the home never
    # thrashes between them.
    assert gos.stats.events["migration"] <= 1
    assert gos.current_home(obj) in (0, 1, 2)
    final = gos.read_global(obj)
    assert final[1] == 5.0 and final[2] == 5.0
