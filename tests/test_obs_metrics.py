"""Tests for the metrics registry (counters, gauges, histograms, merge)."""

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


def test_counter_accumulates_and_rejects_negative():
    reg = MetricsRegistry()
    counter = reg.counter("requests", node=0)
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_instruments_memoized_by_name_and_labels():
    reg = MetricsRegistry()
    assert reg.counter("c", node=0) is reg.counter("c", node=0)
    assert reg.counter("c", node=0) is not reg.counter("c", node=1)
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.histogram("h") is reg.histogram("h")


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    gauge = reg.gauge("threshold", oid=1)
    gauge.set(2.0)
    gauge.set(5.0)
    assert gauge.value == 5.0


def test_histogram_buckets_and_moments():
    reg = MetricsRegistry()
    hist = reg.histogram("lat", buckets=(10.0, 100.0))
    for value in (5.0, 50.0, 500.0):
        hist.observe(value)
    assert hist.count == 3
    assert hist.sum == 555.0
    assert hist.min == 5.0
    assert hist.max == 500.0
    assert hist.mean == pytest.approx(185.0)
    # one value per bucket plus one overflow
    assert hist.bucket_counts == [1, 1, 1]


def test_counter_value_and_total_helpers():
    reg = MetricsRegistry()
    reg.counter("msgs", category="diff").inc(3)
    reg.counter("msgs", category="lock_grant").inc(2)
    assert reg.counter_value("msgs", category="diff") == 3
    assert reg.counter_value("msgs", category="absent") == 0
    assert reg.counter_total("msgs") == 5


def test_snapshot_is_sorted_and_json_friendly():
    import json

    reg = MetricsRegistry()
    reg.counter("b").inc()
    reg.counter("a", node=1).inc()
    reg.counter("a", node=0).inc()
    reg.gauge("g").set(1.5)
    reg.histogram("h").observe(42.0)
    snap = reg.snapshot()
    names = [(c["name"], tuple(sorted(c["labels"].items())))
             for c in snap["counters"]]
    assert names == sorted(names)
    json.dumps(snap)  # round-trippable without default= hooks
    assert snap["histograms"][0]["buckets"] == list(DEFAULT_BUCKETS)


def test_merge_adds_counters_and_histograms():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.counter("c", node=0).inc(2)
    b.counter("c", node=0).inc(3)
    b.counter("c", node=1).inc(1)
    a.histogram("h").observe(10.0)
    b.histogram("h").observe(1000.0)
    a.gauge("g").set(1.0)
    b.gauge("g").set(2.0)
    a.merge(b)
    assert a.counter_value("c", node=0) == 5
    assert a.counter_value("c", node=1) == 1
    hist = a.histogram("h")
    assert hist.count == 2
    assert hist.sum == 1010.0
    assert hist.min == 10.0
    assert hist.max == 1000.0
    assert a.gauge("g").value == 2.0  # last write wins


def test_merge_accepts_snapshot_and_round_trips():
    reg = MetricsRegistry()
    reg.counter("c", node=0).inc(7)
    reg.histogram("h", node=0).observe(123.0)
    reg.gauge("g").set(9.0)
    wire = reg.snapshot()

    total = MetricsRegistry()
    total.merge(wire)
    total.merge(wire)
    assert total.counter_value("c", node=0) == 14
    assert total.histogram("h", node=0).count == 2

    rebuilt = MetricsRegistry.from_snapshot(wire)
    assert rebuilt.snapshot() == wire


def test_merge_rejects_bucket_mismatch():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
    b.histogram("h", buckets=(10.0, 20.0)).observe(15.0)
    with pytest.raises(ValueError):
        a.merge(b)


def test_empty_registry_snapshot():
    reg = MetricsRegistry()
    assert reg.snapshot() == {"counters": [], "gauges": [], "histograms": []}
    assert len(reg) == 0
