"""Tests for scaling analysis helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.scaling import (
    crossover_size,
    parallel_efficiency,
    speedup_curve,
)


def test_speedup_curve_baseline_is_one():
    curve = speedup_curve({2: 10.0, 4: 5.0, 8: 2.5})
    assert curve == {2: 1.0, 4: 2.0, 8: 4.0}


def test_speedup_curve_empty():
    assert speedup_curve({}) == {}


def test_speedup_curve_invalid_baseline():
    with pytest.raises(ValueError):
        speedup_curve({2: 0.0, 4: 1.0})


def test_parallel_efficiency_ideal_scaling():
    eff = parallel_efficiency({2: 8.0, 4: 4.0, 8: 2.0})
    assert eff == {2: pytest.approx(1.0), 4: pytest.approx(1.0),
                   8: pytest.approx(1.0)}


def test_parallel_efficiency_sublinear():
    eff = parallel_efficiency({2: 8.0, 8: 4.0})
    assert eff[8] == pytest.approx(0.5)


def test_crossover_size():
    assert crossover_size({32: -1.0, 64: 0.5, 128: 3.0}) == 64
    assert crossover_size({32: -1.0, 64: -0.5}) is None
    assert crossover_size({32: 5.0}, threshold=10.0) is None


@given(
    times=st.dictionaries(
        st.integers(min_value=1, max_value=64),
        st.floats(min_value=1e-3, max_value=1e6),
        min_size=1,
        max_size=8,
    )
)
def test_property_speedup_curve_baseline_normalized(times):
    curve = speedup_curve(times)
    assert curve[min(times)] == pytest.approx(1.0)
    assert set(curve) == set(times)


def test_integration_with_figure2_shapes():
    """The helpers digest real harness output."""
    from repro.apps import Sor
    from repro.bench.runner import run_once

    times = {
        p: run_once(Sor(size=48, iterations=4), policy="AT", nodes=p)
        .execution_time_s
        for p in (2, 4, 8)
    }
    curve = speedup_curve(times)
    assert curve[8] > curve[4] > curve[2] == pytest.approx(1.0)
    eff = parallel_efficiency(times)
    assert all(0 < e <= 1.5 for e in eff.values())
