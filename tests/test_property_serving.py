"""Properties of the serving-traffic generator (PROTOCOL.md §16).

The serving tier's value rests on three deterministic claims:

* the **Zipf sampler** is exact — the measure of uniform draws mapped
  to rank ``r`` equals the analytic Zipf weight, for every skew the
  workload exercises (s ∈ {0.6, 0.99, 1.2});
* **expansion is a pure function of the spec** — equal
  :class:`~repro.apps.serving.ServingSpec`\\ s compile to byte-identical
  ProgramSpec JSON, on either backend (generation never touches the
  simulator, so ``REPRO_BACKEND`` cannot leak in);
* **hot-set shifts and churn windows are exact at barriers** — phase
  ``p``'s ranking is phase 0's rotated by ``p * shift`` and the quiet
  window is the closed-form rotation, so SLO deltas across phases are
  attributable to the traffic, never to generator noise.

All generators are derandomized so CI failures replay exactly.
"""

import math
import os
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.serving import (
    REQUEST_CLASSES,
    ServingSpec,
    ZipfSampler,
    build_serving_program,
    generate_serving_program,
    hot_key,
    phase_hot_keys,
    quiet_nodes,
    zipf_weights,
)
from repro.check.fuzz import ProgramSpec, generate_program

#: The skews the serving workloads actually draw from.
SKEWS = (0.6, 0.99, 1.2)


# ---------------------------------------------------------------- Zipf

@pytest.mark.parametrize("s", SKEWS)
def test_zipf_weights_analytic(s):
    """weights[r] == (r+1)^-s / H(n, s), normalized to exactly ~1."""
    n = 32
    weights = zipf_weights(n, s)
    harmonic = math.fsum((r + 1) ** -s for r in range(n))
    for rank, w in enumerate(weights):
        assert w == pytest.approx((rank + 1) ** -s / harmonic, rel=1e-12)
    assert math.fsum(weights) == pytest.approx(1.0, abs=1e-12)
    # monotone: rank 0 is the hottest
    assert all(weights[r] >= weights[r + 1] for r in range(n - 1))


@pytest.mark.parametrize("s", SKEWS)
def test_zipf_inverse_cdf_boundaries_exact(s):
    """The measure of u mapped to rank r is exactly weights[r].

    rank_of is bisect over the cumulative weights, so the half-open
    interval [cdf[r-1], cdf[r]) maps to rank r: checking both endpoints
    of every interval proves the sampler exact up to RNG uniformity.
    """
    sampler = ZipfSampler(17, s)
    lo = 0.0
    for rank in range(sampler.nkeys):
        hi = sampler.cdf[rank]
        assert sampler.rank_of(lo) == rank
        below = math.nextafter(hi, 0.0)
        if below > lo:  # interval wide enough to probe from inside
            assert sampler.rank_of(below) == rank
        assert hi - lo == pytest.approx(sampler.weights[rank], abs=1e-12)
        lo = hi
    assert sampler.cdf[-1] == 1.0
    with pytest.raises(ValueError):
        sampler.rank_of(1.0)
    with pytest.raises(ValueError):
        sampler.rank_of(-0.1)


@pytest.mark.parametrize("s", SKEWS)
def test_zipf_empirical_matches_analytic_cdf(s):
    """20k seeded draws track the analytic CDF within a KS-style band."""
    n = 24
    draws = 20_000
    sampler = ZipfSampler(n, s)
    rng = random.Random(12345)
    counts = [0] * n
    for _ in range(draws):
        counts[sampler.sample(rng)] += 1
    acc = 0
    for rank in range(n):
        acc += counts[rank]
        expected = sampler.cdf[rank]
        # three-sigma binomial envelope around the analytic CDF
        sigma = math.sqrt(expected * (1 - expected) / draws)
        assert abs(acc / draws - expected) <= 3.5 * sigma + 1e-9


@settings(derandomize=True, max_examples=30)
@given(
    n=st.integers(min_value=1, max_value=64),
    s=st.sampled_from(SKEWS),
    u=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
)
def test_property_rank_of_total_and_in_range(n, s, u):
    """Every u in [0,1) maps to exactly one valid rank."""
    sampler = ZipfSampler(n, s)
    rank = sampler.rank_of(u)
    assert 0 <= rank < n


# ------------------------------------------------- deterministic expansion

def test_equal_specs_compile_byte_identical():
    """Two expansions of one spec produce byte-identical JSON."""
    spec = ServingSpec(seed=7, nodes=4, keys=12, phases=2, churn=0.25)
    first = build_serving_program(spec).to_json()
    second = build_serving_program(spec).to_json()
    assert first == second


def test_different_seeds_differ():
    """The seed actually reaches the traffic draws."""
    a = build_serving_program(ServingSpec(seed=0, nodes=3, keys=6))
    b = build_serving_program(ServingSpec(seed=1, nodes=3, keys=6))
    assert a.to_json() != b.to_json()


@pytest.mark.parametrize("backend", ["python", "compiled"])
def test_generation_identical_across_backends(backend):
    """Spec expansion is backend-independent, byte for byte.

    A subprocess pins ``REPRO_BACKEND`` and prints the JSON's sha256;
    both backends must print the hash computed in-process here.
    """
    import hashlib

    spec = ServingSpec(seed=3, nodes=4, keys=10, phases=2, churn=0.25)
    expected = hashlib.sha256(
        build_serving_program(spec).to_json().encode()
    ).hexdigest()
    code = (
        "import hashlib\n"
        "from repro.apps.serving import ServingSpec, build_serving_program\n"
        "spec = ServingSpec(seed=3, nodes=4, keys=10, phases=2, churn=0.25)\n"
        "text = build_serving_program(spec).to_json()\n"
        "print(hashlib.sha256(text.encode()).hexdigest())\n"
    )
    env = dict(os.environ, REPRO_BACKEND=backend)
    out = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    assert out.stdout.strip().splitlines()[-1] == expected


def test_request_field_round_trips():
    """SectionSpec.request survives to_dict/from_dict — replayable SLO."""
    spec = build_serving_program(ServingSpec(seed=2, nodes=3, keys=6))
    clone = ProgramSpec.from_dict(spec.to_dict())
    assert clone.to_json() == spec.to_json()
    classes = {
        s.request
        for phase in clone.phases
        for sections in phase
        for s in sections
        if s.request is not None
    }
    assert classes <= set(REQUEST_CLASSES)
    assert classes  # a serving episode always labels its requests


def test_fuzzer_serving_flavor_routes_to_generator():
    """generate_program(flavor='serving') is generate_serving_program."""
    for seed in (0, 5, 11):
        via_flavor = generate_program(seed, flavor="serving")
        direct = generate_serving_program(seed)
        assert via_flavor.to_json() == direct.to_json()
    # mixed: every 4th seed serves, others run the core fuzzer
    assert (
        generate_program(3, flavor="mixed").to_json()
        == generate_serving_program(3).to_json()
    )
    assert (
        generate_program(4, flavor="mixed").to_json()
        == generate_program(4, flavor="core").to_json()
    )


def test_open_loop_gaps_precede_requests():
    """Arrival gaps compile as zero-op sections before request sections,
    so think time never lands inside a measured request."""
    spec = build_serving_program(
        ServingSpec(seed=0, nodes=3, keys=6, arrival="open")
    )
    saw_gap = False
    for phase in spec.phases:
        for sections in phase:
            for prev, nxt in zip(sections, sections[1:]):
                if prev.ops == [] and prev.compute_us > 0:
                    saw_gap = True
                    assert prev.request is None
                    assert nxt.request in REQUEST_CLASSES
    assert saw_gap


def test_bad_spec_rejected():
    """Arrival mode and churn are validated at expansion time."""
    with pytest.raises(ValueError):
        build_serving_program(ServingSpec(arrival="bursty"))
    with pytest.raises(ValueError):
        build_serving_program(ServingSpec(churn=1.0))
    with pytest.raises(ValueError):
        zipf_weights(0, 0.99)


# -------------------------------------------------- hot sets and churn

@settings(derandomize=True, max_examples=40)
@given(
    nkeys=st.integers(min_value=1, max_value=64),
    shift=st.integers(min_value=1, max_value=16),
    phase=st.integers(min_value=0, max_value=8),
)
def test_property_hot_set_shift_exact_at_barriers(nkeys, shift, phase):
    """Phase p+1's ranking is phase p's rotated by exactly shift keys."""
    now = phase_hot_keys(nkeys, phase, shift)
    nxt = phase_hot_keys(nkeys, phase + 1, shift)
    assert nxt == [(k + shift) % nkeys for k in now]
    # ranking is a permutation of the key space
    assert sorted(now) == list(range(nkeys))
    # and phase p is phase 0 rotated p times
    assert now == [
        (k + phase * shift) % nkeys for k in phase_hot_keys(nkeys, 0, shift)
    ]


def test_hot_key_phase_zero_is_identity():
    """In phase 0, rank r lives on key r."""
    for rank in range(10):
        assert hot_key(rank, 0, 3, 10) == rank


@settings(derandomize=True, max_examples=40)
@given(
    nnodes=st.integers(min_value=1, max_value=64),
    phase=st.integers(min_value=0, max_value=8),
    churn=st.floats(min_value=0.0, max_value=0.99),
)
def test_property_churn_window_deterministic(nnodes, phase, churn):
    """Quiet windows are closed-form: right size, valid ids, never all."""
    quiet = quiet_nodes(nnodes, phase, churn)
    expected = min(int(churn * nnodes), nnodes - 1)
    assert len(quiet) == max(0, expected)
    assert all(0 <= n < nnodes for n in quiet)
    assert len(quiet) < nnodes  # at least one node keeps serving
    assert quiet == quiet_nodes(nnodes, phase, churn)  # pure


def test_churn_window_rotates():
    """Consecutive phases silence different (rotating) windows."""
    assert quiet_nodes(8, 0, 0.25) == {0, 1}
    assert quiet_nodes(8, 1, 0.25) == {2, 3}
    assert quiet_nodes(8, 4, 0.25) == {0, 1}  # wraps around


def test_churned_phase_routes_around_quiet_workers():
    """No request section lands on a thread placed on a quiet node."""
    spec = ServingSpec(seed=5, nodes=4, keys=8, phases=3, churn=0.25)
    program = build_serving_program(spec)
    for phase_no, phase in enumerate(program.phases):
        quiet = quiet_nodes(spec.nodes, phase_no, spec.churn)
        for tid, sections in enumerate(phase):
            if program.placement[tid] in quiet:
                assert sections == []


def test_generate_serving_program_deterministic():
    """The fuzz flavor is a pure function of its seed."""
    for seed in (0, 1, 2, 3):
        assert (
            generate_serving_program(seed).to_json()
            == generate_serving_program(seed).to_json()
        )
