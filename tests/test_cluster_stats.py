"""Tests for cluster statistics accounting."""

import pytest

from repro.cluster.message import Message, MsgCategory
from repro.cluster.stats import BREAKDOWN_EVENTS, ClusterStats


def _msg(category, size=64):
    return Message(src=0, dst=1, category=category, size_bytes=size)


def test_record_message_counts_and_bytes(stats):
    stats.record_message(_msg(MsgCategory.DIFF, 100))
    stats.record_message(_msg(MsgCategory.DIFF, 150))
    stats.record_message(_msg(MsgCategory.OBJ_REPLY, 1000))
    assert stats.msg_count[MsgCategory.DIFF] == 2
    assert stats.msg_bytes[MsgCategory.DIFF] == 250
    assert stats.total_messages() == 3
    assert stats.total_bytes() == 1250


def test_exclusion_filters(stats):
    stats.record_message(_msg(MsgCategory.DIFF))
    stats.record_message(_msg(MsgCategory.LOCK_GRANT))
    assert stats.total_messages(exclude=[MsgCategory.LOCK_GRANT]) == 1
    assert stats.data_messages() == 1


def test_data_bytes_excludes_sync(stats):
    stats.record_message(_msg(MsgCategory.BARRIER_ARRIVE, 500))
    stats.record_message(_msg(MsgCategory.OBJ_REPLY, 800))
    assert stats.data_bytes() == 800
    assert stats.total_bytes() == 1300


def test_event_counters(stats):
    stats.incr("obj")
    stats.incr("obj")
    stats.incr("redir", 3)
    assert stats.events["obj"] == 2
    assert stats.events["redir"] == 3


def test_negative_increment_rejected(stats):
    with pytest.raises(ValueError):
        stats.incr("obj", -1)


def test_breakdown_has_all_figure5_categories(stats):
    stats.incr("diff", 5)
    breakdown = stats.breakdown()
    assert set(breakdown) == set(BREAKDOWN_EVENTS)
    assert breakdown["diff"] == 5
    assert breakdown["mig"] == 0


def test_merge_accumulates_all_counters(stats):
    stats.record_message(_msg(MsgCategory.DIFF, 100))
    stats.incr("migration", 2)
    other = ClusterStats()
    other.record_message(_msg(MsgCategory.DIFF, 50))
    other.record_message(_msg(MsgCategory.OBJ_REPLY, 500))
    other.incr("migration")
    other.incr("redir", 4)
    returned = stats.merge(other)
    assert returned is stats
    assert stats.msg_count[MsgCategory.DIFF] == 2
    assert stats.msg_bytes[MsgCategory.DIFF] == 150
    assert stats.msg_count[MsgCategory.OBJ_REPLY] == 1
    assert stats.events["migration"] == 3
    assert stats.events["redir"] == 4
    # other is untouched
    assert other.msg_count[MsgCategory.DIFF] == 1
    assert other.events["migration"] == 1


def test_from_snapshot_round_trips(stats):
    stats.record_message(_msg(MsgCategory.DIFF, 100))
    stats.record_message(_msg(MsgCategory.LOCK_GRANT, 60))
    stats.incr("obj", 7)
    rebuilt = ClusterStats.from_snapshot(stats.snapshot())
    assert rebuilt.snapshot() == stats.snapshot()
    assert rebuilt.msg_count[MsgCategory.DIFF] == 1
    assert rebuilt.data_messages() == stats.data_messages()


def test_merge_of_snapshots_across_boundary(stats):
    """Snapshots shipped across processes aggregate via from_snapshot."""
    stats.record_message(_msg(MsgCategory.DIFF, 100))
    stats.incr("migration")
    wire = stats.snapshot()  # what crosses the process boundary
    total = ClusterStats()
    total.merge(ClusterStats.from_snapshot(wire))
    total.merge(ClusterStats.from_snapshot(wire))
    assert total.msg_count[MsgCategory.DIFF] == 2
    assert total.msg_bytes[MsgCategory.DIFF] == 200
    assert total.events["migration"] == 2


def test_snapshot_is_plain_and_stable(stats):
    stats.record_message(_msg(MsgCategory.DIFF, 100))
    stats.incr("migration")
    snap = stats.snapshot()
    assert snap["msg_count"] == {"diff": 1}
    assert snap["msg_bytes"] == {"diff": 100}
    assert snap["events"] == {"migration": 1}
    # mutating the snapshot does not touch the stats
    snap["events"]["migration"] = 99
    assert stats.events["migration"] == 1
