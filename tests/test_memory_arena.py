"""Arena allocator: carving, free-list reuse, scratch, and accounting."""

import numpy as np
import pytest

from repro.memory.arena import ALIGN_BYTES, Arena
from repro.memory.twin import make_twin


def test_alloc_returns_requested_shape_and_dtype():
    arena = Arena()
    buf = arena.alloc(100, "float64")
    assert buf.shape == (100,)
    assert buf.dtype == np.float64
    assert buf.ndim == 1


def test_zeros_is_fully_zeroed():
    arena = Arena()
    # dirty the pool first so zeros() must actually clear reused storage
    dirty = arena.alloc(64, "float64")
    dirty.fill(7.5)
    arena.free(dirty)
    buf = arena.zeros(64, "float64")
    assert np.all(buf == 0.0)


def test_take_copy_matches_source_and_is_independent():
    arena = Arena()
    src = np.arange(32, dtype="float64")
    copy = arena.take_copy(src)
    np.testing.assert_array_equal(copy, src)
    copy[0] = -1.0
    assert src[0] == 0.0


def test_take_copy_rejects_multidimensional():
    arena = Arena()
    with pytest.raises(ValueError):
        arena.take_copy(np.zeros((4, 4)))


def test_free_rejects_multidimensional():
    arena = Arena()
    with pytest.raises(ValueError):
        arena.free(np.zeros((2, 2)))


def test_alloc_rejects_nonpositive_length():
    arena = Arena()
    with pytest.raises(ValueError):
        arena.alloc(0)
    with pytest.raises(ValueError):
        arena.alloc(-3)


def test_free_then_alloc_reuses_exact_shape():
    arena = Arena()
    a = arena.alloc(128, "float64")
    arena.free(a)
    b = arena.alloc(128, "float64")
    # same underlying storage came back out of the pool
    assert b.__array_interface__["data"][0] == a.__array_interface__["data"][0]
    assert arena.reuse_count == 1
    assert arena.carve_count == 1


def test_free_list_is_keyed_by_length_and_dtype():
    arena = Arena()
    arena.free(arena.alloc(128, "float64"))
    # different length: no reuse
    c = arena.alloc(64, "float64")
    assert arena.reuse_count == 0
    arena.free(c)
    # same length, different dtype: no reuse either
    arena.alloc(64, "int64")
    assert arena.reuse_count == 0


def test_carves_are_aligned():
    arena = Arena()
    # odd byte sizes force padding between consecutive carves
    for _ in range(8):
        buf = arena.alloc(3, "int8")  # 3 bytes -> padded to ALIGN_BYTES
        addr = buf.__array_interface__["data"][0]
        assert addr % ALIGN_BYTES == 0


def test_oversized_allocation_gets_dedicated_slab():
    arena = Arena(slab_bytes=1024)
    big = arena.alloc(4096, "float64")  # 32 KiB >> 1 KiB slab
    assert big.size == 4096
    assert arena.slabs_allocated == 1
    assert arena.slab_bytes_total >= big.nbytes


def test_slab_rollover_allocates_new_slab():
    arena = Arena(slab_bytes=1024)
    arena.alloc(100, "float64")  # 800 B
    arena.alloc(100, "float64")  # does not fit the 1 KiB remainder
    assert arena.slabs_allocated == 2


def test_rejects_tiny_slab_bytes():
    with pytest.raises(ValueError):
        Arena(slab_bytes=ALIGN_BYTES - 1)


def test_foreign_buffer_may_be_freed_and_reused():
    # ownership travels with the data: a plain numpy array (or another
    # arena's view) can enter the pool and be handed back out
    arena = Arena()
    foreign = np.arange(16, dtype="float64")
    arena.free(foreign)
    out = arena.alloc(16, "float64")
    assert out.__array_interface__["data"][0] == (
        foreign.__array_interface__["data"][0]
    )


def test_bool_scratch_grows_and_is_reused():
    arena = Arena()
    small = arena.bool_scratch(10)
    assert small.size == 10
    assert small.dtype == np.bool_
    big = arena.bool_scratch(100)
    assert big.size == 100
    # asking for a smaller view again must not shrink the backing buffer
    again = arena.bool_scratch(10)
    assert again.__array_interface__["data"][0] == (
        big.__array_interface__["data"][0]
    )
    assert arena.stats()["scratch_bytes"] >= 100


def test_stats_accounting_balances():
    arena = Arena(label="t")
    a = arena.alloc(64, "float64")
    b = arena.alloc(64, "float64")
    assert arena.live_bytes == a.nbytes + b.nbytes
    arena.free(a)
    stats = arena.stats()
    assert stats["label"] == "t"
    assert stats["carves"] == 2
    assert stats["frees"] == 1
    assert stats["pooled_buffers"] == 1
    assert stats["pooled_bytes"] == a.nbytes
    assert stats["live_bytes"] == b.nbytes
    arena.alloc(64, "float64")
    assert arena.stats()["pooled_buffers"] == 0
    assert arena.reuse_count == 1


def test_zero_length_requests_rejected_everywhere():
    # zero-length carves would alias: two size-0 views at the same slab
    # offset compare equal to everything; the arena refuses them on every
    # entry point rather than handing out degenerate buffers
    arena = Arena()
    with pytest.raises(ValueError):
        arena.zeros(0)
    with pytest.raises(ValueError):
        arena.take_copy(np.empty(0, dtype="float64"))


def test_mixed_dtype_free_list_reuse_is_exact():
    # interleave frees of equal-length, different-dtype buffers: each
    # alloc must get back storage of its own dtype, never a reinterpreted
    # view of the other's
    arena = Arena()
    f = arena.alloc(32, "float64")
    i = arena.alloc(32, "int64")
    b = arena.alloc(32, "int8")  # same *byte* count as nothing above
    f_addr = f.__array_interface__["data"][0]
    i_addr = i.__array_interface__["data"][0]
    arena.free(f)
    arena.free(i)
    arena.free(b)
    i2 = arena.alloc(32, "int64")
    f2 = arena.alloc(32, "float64")
    assert i2.dtype == np.int64
    assert f2.dtype == np.float64
    assert i2.__array_interface__["data"][0] == i_addr
    assert f2.__array_interface__["data"][0] == f_addr
    assert arena.reuse_count == 2
    # int8 pool untouched by the 8-byte-dtype traffic
    assert arena.stats()["pooled_buffers"] == 1


def test_scratch_survives_pool_churn():
    # the bool scratch is never pooled: heavy free/alloc cycles (what a
    # barrier-epoch GC pass looks like to the arena) must neither free
    # nor shrink it, and growth is geometric from whatever size it had
    arena = Arena()
    first = arena.bool_scratch(64)
    first_addr = first.__array_interface__["data"][0]
    for _ in range(50):
        arena.free(arena.alloc(64, "float64"))
    again = arena.bool_scratch(64)
    assert again.__array_interface__["data"][0] == first_addr
    grown = arena.bool_scratch(65)  # just past: doubles, not +1
    assert grown.size == 65
    assert arena.stats()["scratch_bytes"] == 128
    assert arena.stats()["pooled_buffers"] == 1


def test_make_twin_draws_from_pool_when_given():
    arena = Arena()
    payload = np.arange(32, dtype="float64")
    seeded = arena.alloc(32, "float64")
    arena.free(seeded)
    twin = make_twin(payload, arena)
    np.testing.assert_array_equal(twin, payload)
    assert arena.reuse_count == 1
    # without a pool, plain copy still works
    plain = make_twin(payload)
    np.testing.assert_array_equal(plain, payload)
