"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.hockney import FAST_ETHERNET
from repro.cluster.network import Network
from repro.cluster.stats import ClusterStats
from repro.core.policies import AdaptiveThreshold, NoMigration
from repro.gos.jvm import DistributedJVM
from repro.gos.space import GlobalObjectSpace
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def stats() -> ClusterStats:
    return ClusterStats()


@pytest.fixture
def network(sim, stats) -> Network:
    return Network(sim, FAST_ETHERNET, nnodes=4, stats=stats)


def make_gos(nnodes: int = 4, policy=None, mechanism=None) -> GlobalObjectSpace:
    """A small cluster with the given policy (NoMigration by default)."""
    return GlobalObjectSpace(
        nnodes=nnodes,
        comm_model=FAST_ETHERNET,
        policy=policy if policy is not None else NoMigration(),
        mechanism=mechanism,
    )


def make_jvm(nodes: int = 4, policy=None, mechanism=None) -> DistributedJVM:
    """A small DistributedJVM with AT by default."""
    return DistributedJVM(
        nodes=nodes,
        comm_model=FAST_ETHERNET,
        policy=policy if policy is not None else AdaptiveThreshold(),
        mechanism=mechanism,
    )


@pytest.fixture
def gos() -> GlobalObjectSpace:
    return make_gos()


def run_threads(gos: GlobalObjectSpace, *bodies) -> float:
    """Spawn generator thread bodies, drain the simulation, surface errors."""
    processes = [
        gos.sim.spawn(body, name=f"test-thread-{i}")
        for i, body in enumerate(bodies)
    ]
    try:
        end = gos.sim.run()
    except Exception:
        # prefer a thread's root-cause failure over the induced deadlock
        for process in processes:
            if process.done and process.finished.exception is not None:
                raise process.finished.exception from None
        raise
    for process in processes:
        if process.finished.exception is not None:
            raise process.finished.exception
    return end
