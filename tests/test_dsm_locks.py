"""Tests for the lock manager table."""

import pytest

from repro.dsm.locks import LockHandle, LockTable


def test_handle_validation():
    LockHandle(lock_id=1, home=0)
    with pytest.raises(ValueError):
        LockHandle(lock_id=-1, home=0)
    with pytest.raises(ValueError):
        LockHandle(lock_id=1, home=-2)


def test_acquire_free_lock():
    table = LockTable()
    assert table.try_acquire(1, node=2, request_id=(2, 1))
    assert table.state(1).holder == 2


def test_contention_queues_fifo():
    table = LockTable()
    assert table.try_acquire(1, 2, (2, 1))
    assert not table.try_acquire(1, 3, (3, 1))
    assert not table.try_acquire(1, 4, (4, 1))
    waiter = table.release(1, 2, notices={})
    assert waiter.node == 3
    assert table.state(1).holder == 3
    waiter = table.release(1, 3, notices={})
    assert waiter.node == 4


def test_release_empty_queue_frees_lock():
    table = LockTable()
    table.try_acquire(1, 2, (2, 1))
    assert table.release(1, 2, notices={}) is None
    assert table.state(1).holder is None
    assert table.try_acquire(1, 5, (5, 1))


def test_release_by_non_holder_rejected():
    table = LockTable()
    table.try_acquire(1, 2, (2, 1))
    with pytest.raises(RuntimeError):
        table.release(1, 3, notices={})


def test_notices_accumulate_max_version():
    table = LockTable()
    table.add_notices(1, {10: 2})
    table.add_notices(1, {10: 1, 11: 4})
    assert table.state(1).notices == {10: 2, 11: 4}


def test_grant_notices_incremental():
    table = LockTable()
    table.add_notices(1, {10: 1})
    first = table.grant_notices(1, node=5)
    assert first == {10: 1}
    # nothing new: next grant to the same node is empty
    assert table.grant_notices(1, node=5) == {}
    table.add_notices(1, {10: 3, 12: 1})
    assert table.grant_notices(1, node=5) == {10: 3, 12: 1}


def test_grant_notices_fresh_node_sees_history():
    table = LockTable()
    table.add_notices(1, {10: 1})
    table.add_notices(1, {11: 2})
    assert table.grant_notices(1, node=9) == {10: 1, 11: 2}


def test_locks_are_independent():
    table = LockTable()
    table.add_notices(1, {10: 1})
    assert table.grant_notices(2, node=5) == {}
    assert table.try_acquire(1, 2, (2, 1))
    assert table.try_acquire(2, 3, (3, 1))
