"""Ablations beyond the paper's figures.

* **Notification mechanisms** (§3.2): forwarding pointer vs broadcast vs
  home manager under migration churn — the trade-off the paper discusses
  qualitatively but does not measure;
* **Related-work policies**: the paper's AT against JUMP's migrating-home,
  Jackal's lazy flushing and JiaJia's barrier migration;
* **Threshold parameters**: sensitivity of AT to the feedback coefficient
  ``lambda`` and the initial threshold.
"""

from __future__ import annotations

from repro.apps import SingleWriterBenchmark, Sor
from repro.bench.report import format_table
from repro.bench.runner import MECHANISMS, run_once
from repro.core.policies import AdaptiveThreshold

NODES = 9


def run_notification_ablation(
    repetition: int = 8, total_updates: int = 512, verify: bool = True
) -> dict:
    """AT under each §3.2 notification mechanism on the synthetic load."""
    rows: dict[str, dict] = {}
    for name in MECHANISMS:
        result = run_once(
            SingleWriterBenchmark(
                total_updates=total_updates, repetition=repetition
            ),
            policy="AT",
            nodes=NODES,
            mechanism=name,
            verify=verify,
        )
        from repro.cluster.message import MsgCategory

        notify_msgs = sum(
            result.stats.msg_count.get(cat, 0)
            for cat in (
                MsgCategory.HOME_BCAST,
                MsgCategory.HOME_UPDATE,
                MsgCategory.HOME_QUERY,
                MsgCategory.HOME_ANSWER,
            )
        )
        rows[name] = {
            "time_s": result.execution_time_s,
            "messages": result.stats.total_messages(),
            "bytes": result.stats.total_bytes(),
            "redir": result.stats.events.get("redir", 0),
            "notify_msgs": notify_msgs,
            "migrations": result.migrations,
        }
    return rows


def run_policy_ablation(
    repetition: int = 8, total_updates: int = 512, verify: bool = True
) -> dict:
    """All implemented policies (paper + related work) on the synthetic
    workload, plus SOR for the barrier-driven JiaJia protocol."""
    rows: dict[str, dict] = {}
    for policy in ("NM", "FT1", "FT2", "AT", "JUMP", "LF"):
        result = run_once(
            SingleWriterBenchmark(
                total_updates=total_updates, repetition=repetition
            ),
            policy=policy,
            nodes=NODES,
            verify=verify,
        )
        rows[policy] = {
            "time_s": result.execution_time_s,
            "messages": result.stats.total_messages(),
            "migrations": result.migrations,
            "redir": result.stats.events.get("redir", 0),
        }
    return rows


def run_barrier_policy_ablation(
    size: int = 64, iterations: int = 6, verify: bool = True
) -> dict:
    """Barrier-driven comparison on SOR: NM / AT / JiaJia / JUMP / LF."""
    rows: dict[str, dict] = {}
    for policy in ("NM", "AT", "JIAJIA", "JUMP", "LF"):
        result = run_once(
            Sor(size=size, iterations=iterations),
            policy=policy,
            nodes=8,
            verify=verify,
        )
        rows[policy] = {
            "time_s": result.execution_time_s,
            "messages": result.stats.total_messages(),
            "migrations": result.migrations,
            "redir": result.stats.events.get("redir", 0),
        }
    return rows


def run_homeless_ablation(
    repetition: int = 4, total_updates: int = 512, verify: bool = True
) -> dict:
    """Home-based (NM / AT) vs homeless (TreadMarks-style) LRC — the §1
    motivation.  Homeless-specific columns: on-demand fetch round trips
    and cumulative diff bytes retained at writers (never GC'd)."""
    from repro.cluster.hockney import FAST_ETHERNET
    from repro.gos.jvm import DistributedJVM

    rows: dict[str, dict] = {}
    for label, kwargs in (
        ("home-based NM", {"policy": make_dsm_policy("NM")}),
        ("home-based AT", {"policy": make_dsm_policy("AT")}),
        ("homeless", {"protocol": "homeless"}),
    ):
        app = SingleWriterBenchmark(
            total_updates=total_updates, repetition=repetition
        )
        jvm = DistributedJVM(nodes=NODES, comm_model=FAST_ETHERNET, **kwargs)
        result = jvm.run(app)
        if verify:
            app.verify(result.output)
        rows[label] = {
            "time_s": result.execution_time_s,
            "messages": result.stats.total_messages(),
            "bytes": result.stats.total_bytes(),
            "fetch_rtts": result.stats.events.get("homeless_fetch", 0),
            "stored_diff_bytes": result.stats.events.get(
                "homeless_diff_bytes", 0
            ),
        }
    return rows


def make_dsm_policy(name: str):
    """Late-bound policy factory (avoids an import cycle with runner)."""
    from repro.bench.runner import make_policy

    return make_policy(name)


def run_lock_discipline_ablation(
    repetition: int = 2,
    total_updates: int = 512,
    seed: int = 3,
    verify: bool = True,
) -> dict:
    """FIFO vs retry lock grants on the synthetic benchmark.

    The paper's runtime had no FIFO queue: a releasing thread could win
    the lock again, making the consecutive writing times "a multiple of
    r ... randomly".  This measures how that randomness changes the
    Figure-5 picture for FT2 and AT at a transient repetition.
    """
    from repro.cluster.hockney import FAST_ETHERNET
    from repro.gos.jvm import DistributedJVM

    rows: dict[str, dict] = {}
    for policy_name in ("FT2", "AT"):
        for discipline in ("fifo", "retry"):
            app = SingleWriterBenchmark(
                total_updates=total_updates,
                repetition=repetition,
            )
            jvm = DistributedJVM(
                nodes=NODES,
                comm_model=FAST_ETHERNET,
                policy=make_dsm_policy(policy_name),
                lock_discipline=discipline,
                seed=seed,
            )
            result = jvm.run(app)
            if verify:
                app.verify(result.output)
            rows[f"{policy_name}/{discipline}"] = {
                "time_s": result.execution_time_s,
                "migrations": result.migrations,
                "redir": result.stats.events.get("redir", 0),
            }
    return rows


def run_network_ablation(
    size: int = 64, iterations: int = 8, verify: bool = True
) -> dict:
    """AT's benefit across interconnects (Fast Ethernet / GigE / Myrinet).

    The home access coefficient alpha = 3/2 + (o+d)/(2*m_half) follows
    the network's half-peak length, so each interconnect gets its own
    migration eagerness — and the absolute benefit of migration shrinks
    along with all communication, while remaining a win everywhere.
    """
    from repro.cluster.hockney import FAST_ETHERNET, GIGABIT, MYRINET
    from repro.gos.jvm import DistributedJVM

    rows: dict[str, dict] = {}
    for model in (FAST_ETHERNET, GIGABIT, MYRINET):
        per_policy = {}
        for policy_name in ("NM", "AT"):
            app = Sor(size=size, iterations=iterations)
            jvm = DistributedJVM(
                nodes=8, comm_model=model, policy=make_dsm_policy(policy_name)
            )
            result = jvm.run(app)
            if verify:
                app.verify(result.output)
            per_policy[policy_name] = result
        at = per_policy["AT"]
        nm = per_policy["NM"]
        rows[model.name] = {
            "m_half_B": model.half_peak_bytes,
            "nm_time_s": nm.execution_time_s,
            "at_time_s": at.execution_time_s,
            "at_speedup": nm.execution_time_us / at.execution_time_us,
            "migrations": at.migrations,
        }
    return rows


def run_decay_ablation(
    phase_updates: int = 512, seedless: bool = True, verify: bool = True
) -> dict:
    """Future-work heuristic (§6): feedback decay, on a phase change.

    Workload: a transient phase (r=2) followed by a lasting phase (r=16)
    on the same object.  Finding (a negative result, kept honestly): the
    paper's cumulative feedback already re-sensitizes quickly — the
    positive feedback E grows within a single lasting turn — so decaying
    the memory only erodes transient-phase robustness.
    """
    from repro.cluster.hockney import FAST_ETHERNET
    from repro.core.policies import AdaptiveThresholdDecay
    from repro.gos.jvm import DistributedJVM

    schedule = [(phase_updates, 2), (phase_updates, 16)]
    rows: dict[str, dict] = {}
    policies = [
        ("FT1", make_dsm_policy("FT1")),
        ("AT", make_dsm_policy("AT")),
        ("ATD g=0.9", AdaptiveThresholdDecay(gamma=0.9)),
        ("ATD g=0.5", AdaptiveThresholdDecay(gamma=0.5)),
    ]
    for label, policy in policies:
        app = SingleWriterBenchmark(schedule=schedule)
        jvm = DistributedJVM(
            nodes=NODES, comm_model=FAST_ETHERNET, policy=policy
        )
        result = jvm.run(app)
        if verify:
            app.verify(result.output)
        rows[label] = {
            "time_s": result.execution_time_s,
            "migrations": result.migrations,
            "redir": result.stats.events.get("redir", 0),
        }
    return rows


def run_lambda_ablation(
    repetition: int = 4,
    total_updates: int = 512,
    lambdas: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
    verify: bool = True,
) -> dict:
    """Sensitivity of AT to the feedback coefficient ``lambda`` (§4.2
    fixes it at 1; this measures how much that choice matters)."""
    rows: dict[float, dict] = {}
    for lam in lambdas:
        result = run_once(
            SingleWriterBenchmark(
                total_updates=total_updates, repetition=repetition
            ),
            policy=AdaptiveThreshold(lam=lam),
            nodes=NODES,
            verify=verify,
        )
        rows[lam] = {
            "time_s": result.execution_time_s,
            "migrations": result.migrations,
            "redir": result.stats.events.get("redir", 0),
        }
    return rows


def render_ablation(rows: dict, title: str) -> str:
    """Generic ASCII table for the ablation dicts above."""
    if not rows:
        raise ValueError("no ablation rows to render")
    first = next(iter(rows.values()))
    headers = ["variant"] + list(first)
    table_rows = [[str(k)] + [v[c] for c in first] for k, v in rows.items()]
    return format_table(headers, table_rows, title=title)
