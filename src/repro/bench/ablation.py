"""Ablations beyond the paper's figures.

* **Notification mechanisms** (§3.2): forwarding pointer vs broadcast vs
  home manager under migration churn — the trade-off the paper discusses
  qualitatively but does not measure;
* **Related-work policies**: the paper's AT against JUMP's migrating-home,
  Jackal's lazy flushing and JiaJia's barrier migration;
* **Threshold parameters**: sensitivity of AT to the feedback coefficient
  ``lambda`` and the initial threshold.

Every ablation enumerates picklable :class:`~repro.bench.executor.RunSpec`
configurations and delegates to :func:`~repro.bench.executor.execute`, so
each sweep accepts a ``jobs`` argument and parallelizes across processes
without changing its results.
"""

from __future__ import annotations

from repro.bench.executor import (
    ObsSpec,
    ProgressCallback,
    RunSpec,
    execute,
)
from repro.bench.report import format_table
from repro.bench.runner import MECHANISMS
from repro.cluster.message import MsgCategory

NODES = 9

#: §3.2 new-home notification traffic, by message category name.
NOTIFY_CATEGORIES = (
    MsgCategory.HOME_BCAST,
    MsgCategory.HOME_UPDATE,
    MsgCategory.HOME_QUERY,
    MsgCategory.HOME_ANSWER,
)


def run_notification_ablation(
    repetition: int = 8,
    total_updates: int = 512,
    verify: bool = True,
    jobs: int | None = 1,
    obs: ObsSpec | None = None,
    progress: ProgressCallback | None = None,
) -> dict:
    """AT under each §3.2 notification mechanism on the synthetic load."""
    specs = [
        RunSpec(
            app="synthetic",
            app_kwargs={
                "total_updates": total_updates, "repetition": repetition,
            },
            policy="AT",
            nodes=NODES,
            mechanism=name,
            verify=verify,
            tag=name,
        )
        for name in MECHANISMS
    ]
    rows: dict[str, dict] = {}
    for outcome in execute(specs, jobs=jobs, obs=obs, progress=progress):
        notify_msgs = sum(
            outcome.msg_count.get(cat.value, 0) for cat in NOTIFY_CATEGORIES
        )
        rows[outcome.tag] = {
            "time_s": outcome.time_s,
            "messages": outcome.messages,
            "bytes": outcome.bytes_total,
            "redir": outcome.events.get("redir", 0),
            "notify_msgs": notify_msgs,
            "migrations": outcome.migrations,
        }
    return rows


def run_policy_ablation(
    repetition: int = 8,
    total_updates: int = 512,
    verify: bool = True,
    jobs: int | None = 1,
    obs: ObsSpec | None = None,
    progress: ProgressCallback | None = None,
) -> dict:
    """All implemented policies (paper + related work) on the synthetic
    workload, plus SOR for the barrier-driven JiaJia protocol."""
    specs = [
        RunSpec(
            app="synthetic",
            app_kwargs={
                "total_updates": total_updates, "repetition": repetition,
            },
            policy=policy,
            nodes=NODES,
            verify=verify,
            tag=policy,
        )
        for policy in ("NM", "FT1", "FT2", "AT", "JUMP", "LF")
    ]
    return _policy_rows(execute(specs, jobs=jobs, obs=obs, progress=progress))


def run_barrier_policy_ablation(
    size: int = 64,
    iterations: int = 6,
    verify: bool = True,
    jobs: int | None = 1,
    obs: ObsSpec | None = None,
    progress: ProgressCallback | None = None,
) -> dict:
    """Barrier-driven comparison on SOR: NM / AT / JiaJia / JUMP / LF."""
    specs = [
        RunSpec(
            app="sor",
            app_kwargs={"size": size, "iterations": iterations},
            policy=policy,
            nodes=8,
            verify=verify,
            tag=policy,
        )
        for policy in ("NM", "AT", "JIAJIA", "JUMP", "LF")
    ]
    return _policy_rows(execute(specs, jobs=jobs, obs=obs, progress=progress))


def _policy_rows(outcomes) -> dict:
    rows: dict[str, dict] = {}
    for outcome in outcomes:
        rows[outcome.tag] = {
            "time_s": outcome.time_s,
            "messages": outcome.messages,
            "migrations": outcome.migrations,
            "redir": outcome.events.get("redir", 0),
        }
    return rows


def run_homeless_ablation(
    repetition: int = 4,
    total_updates: int = 512,
    verify: bool = True,
    jobs: int | None = 1,
    obs: ObsSpec | None = None,
    progress: ProgressCallback | None = None,
) -> dict:
    """Home-based (NM / AT) vs homeless (TreadMarks-style) LRC — the §1
    motivation.  Homeless-specific columns: on-demand fetch round trips
    and cumulative diff bytes retained at writers (never GC'd)."""
    app_kwargs = {"total_updates": total_updates, "repetition": repetition}
    specs = [
        RunSpec(
            app="synthetic", app_kwargs=app_kwargs, policy="NM",
            nodes=NODES, verify=verify, tag="home-based NM",
        ),
        RunSpec(
            app="synthetic", app_kwargs=app_kwargs, policy="AT",
            nodes=NODES, verify=verify, tag="home-based AT",
        ),
        RunSpec(
            app="synthetic", app_kwargs=app_kwargs, protocol="homeless",
            nodes=NODES, verify=verify, tag="homeless",
        ),
    ]
    rows: dict[str, dict] = {}
    for outcome in execute(specs, jobs=jobs, obs=obs, progress=progress):
        rows[outcome.tag] = {
            "time_s": outcome.time_s,
            "messages": outcome.messages,
            "bytes": outcome.bytes_total,
            "fetch_rtts": outcome.events.get("homeless_fetch", 0),
            "stored_diff_bytes": outcome.events.get(
                "homeless_diff_bytes", 0
            ),
        }
    return rows


def make_dsm_policy(name: str):
    """Late-bound policy factory (avoids an import cycle with runner)."""
    from repro.bench.runner import make_policy

    return make_policy(name)


def run_lock_discipline_ablation(
    repetition: int = 2,
    total_updates: int = 512,
    seed: int = 3,
    verify: bool = True,
    jobs: int | None = 1,
    obs: ObsSpec | None = None,
    progress: ProgressCallback | None = None,
) -> dict:
    """FIFO vs retry lock grants on the synthetic benchmark.

    The paper's runtime had no FIFO queue: a releasing thread could win
    the lock again, making the consecutive writing times "a multiple of
    r ... randomly".  This measures how that randomness changes the
    Figure-5 picture for FT2 and AT at a transient repetition.
    """
    specs = [
        RunSpec(
            app="synthetic",
            app_kwargs={
                "total_updates": total_updates, "repetition": repetition,
            },
            policy=policy_name,
            nodes=NODES,
            lock_discipline=discipline,
            seed=seed,
            verify=verify,
            tag=f"{policy_name}/{discipline}",
        )
        for policy_name in ("FT2", "AT")
        for discipline in ("fifo", "retry")
    ]
    rows: dict[str, dict] = {}
    for outcome in execute(specs, jobs=jobs, obs=obs, progress=progress):
        rows[outcome.tag] = {
            "time_s": outcome.time_s,
            "migrations": outcome.migrations,
            "redir": outcome.events.get("redir", 0),
        }
    return rows


def run_network_ablation(
    size: int = 64,
    iterations: int = 8,
    verify: bool = True,
    jobs: int | None = 1,
    obs: ObsSpec | None = None,
    progress: ProgressCallback | None = None,
) -> dict:
    """AT's benefit across interconnects (Fast Ethernet / GigE / Myrinet).

    The home access coefficient alpha = 3/2 + (o+d)/(2*m_half) follows
    the network's half-peak length, so each interconnect gets its own
    migration eagerness — and the absolute benefit of migration shrinks
    along with all communication, while remaining a win everywhere.
    """
    from repro.cluster.hockney import FAST_ETHERNET, GIGABIT, MYRINET

    models = (FAST_ETHERNET, GIGABIT, MYRINET)
    specs = [
        RunSpec(
            app="sor",
            app_kwargs={"size": size, "iterations": iterations},
            policy=policy_name,
            nodes=8,
            comm_model=model.name,
            verify=verify,
            tag=(model.name, policy_name),
        )
        for model in models
        for policy_name in ("NM", "AT")
    ]
    per_model: dict[str, dict] = {}
    for outcome in execute(specs, jobs=jobs, obs=obs, progress=progress):
        model_name, policy_name = outcome.tag
        per_model.setdefault(model_name, {})[policy_name] = outcome
    rows: dict[str, dict] = {}
    for model in models:
        nm = per_model[model.name]["NM"]
        at = per_model[model.name]["AT"]
        rows[model.name] = {
            "m_half_B": model.half_peak_bytes,
            "nm_time_s": nm.time_s,
            "at_time_s": at.time_s,
            "at_speedup": nm.time_us / at.time_us,
            "migrations": at.migrations,
        }
    return rows


def run_decay_ablation(
    phase_updates: int = 512,
    seedless: bool = True,
    verify: bool = True,
    jobs: int | None = 1,
    obs: ObsSpec | None = None,
    progress: ProgressCallback | None = None,
) -> dict:
    """Future-work heuristic (§6): feedback decay, on a phase change.

    Workload: a transient phase (r=2) followed by a lasting phase (r=16)
    on the same object.  Finding (a negative result, kept honestly): the
    paper's cumulative feedback already re-sensitizes quickly — the
    positive feedback E grows within a single lasting turn — so decaying
    the memory only erodes transient-phase robustness.
    """
    schedule = [(phase_updates, 2), (phase_updates, 16)]
    app_kwargs = {"schedule": schedule}
    specs = [
        RunSpec(
            app="synthetic", app_kwargs=app_kwargs, policy="FT1",
            nodes=NODES, verify=verify, tag="FT1",
        ),
        RunSpec(
            app="synthetic", app_kwargs=app_kwargs, policy="AT",
            nodes=NODES, verify=verify, tag="AT",
        ),
        RunSpec(
            app="synthetic", app_kwargs=app_kwargs, policy="ATD",
            policy_kwargs={"gamma": 0.9},
            nodes=NODES, verify=verify, tag="ATD g=0.9",
        ),
        RunSpec(
            app="synthetic", app_kwargs=app_kwargs, policy="ATD",
            policy_kwargs={"gamma": 0.5},
            nodes=NODES, verify=verify, tag="ATD g=0.5",
        ),
    ]
    rows: dict[str, dict] = {}
    for outcome in execute(specs, jobs=jobs, obs=obs, progress=progress):
        rows[outcome.tag] = {
            "time_s": outcome.time_s,
            "migrations": outcome.migrations,
            "redir": outcome.events.get("redir", 0),
        }
    return rows


def run_lambda_ablation(
    repetition: int = 4,
    total_updates: int = 512,
    lambdas: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
    verify: bool = True,
    jobs: int | None = 1,
    obs: ObsSpec | None = None,
    progress: ProgressCallback | None = None,
) -> dict:
    """Sensitivity of AT to the feedback coefficient ``lambda`` (§4.2
    fixes it at 1; this measures how much that choice matters)."""
    specs = [
        RunSpec(
            app="synthetic",
            app_kwargs={
                "total_updates": total_updates, "repetition": repetition,
            },
            policy="AT",
            policy_kwargs={"lam": lam},
            nodes=NODES,
            verify=verify,
            tag=lam,
        )
        for lam in lambdas
    ]
    rows: dict[float, dict] = {}
    for outcome in execute(specs, jobs=jobs, obs=obs, progress=progress):
        rows[outcome.tag] = {
            "time_s": outcome.time_s,
            "migrations": outcome.migrations,
            "redir": outcome.events.get("redir", 0),
        }
    return rows


def render_ablation(rows: dict, title: str) -> str:
    """Generic ASCII table for the ablation dicts above."""
    if not rows:
        raise ValueError("no ablation rows to render")
    first = next(iter(rows.values()))
    headers = ["variant"] + list(first)
    table_rows = [[str(k)] + [v[c] for c in first] for k, v in rows.items()]
    return format_table(headers, table_rows, title=title)
