"""SLO measurement over serving episodes (``repro-bench serve``).

Runs a :class:`~repro.apps.serving.ServingSpec` episode with request
spans captured *online* — an in-process trace subscriber folds every
``request`` span into per-class
:class:`~repro.obs.hist.LatencyHistogram` instances and a per-epoch
:class:`~repro.obs.hist.EpochSeries` as it streams by, so a 256-node
run never materializes a JSONL trace — and renders a deterministic SLO
report: per-epoch request throughput and p50/p99/p999 request latency
per request class.

The report is a plain dict of JSON types containing **only virtual-time
quantities** (no wall clock, no backend name, no paths), so the same
spec produces a byte-identical report under the python and compiled
backends; :func:`report_digest` pins that equality, and the CI serving
smoke byte-diffs the rendered markdown across backends.  Saturated tail
quantiles (too few samples to resolve p999 below the max — see
:meth:`~repro.obs.hist.LatencyHistogram.quantile_at`) are rendered with
a ``~`` marker instead of masquerading as resolved percentiles.

:func:`run_serving_race` runs the same traffic under several migration
policies (NM/AT/ATD/JUMP/LF/JIAJIA, any of
:data:`repro.check.fuzz.POLICY_NAMES`) and tabulates them side by side
— racing policies on SLO terms rather than wall clock alone.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, replace

from repro.apps.fromspec import SpecProgram
from repro.apps.serving import ServingSpec, build_serving_program
from repro.bench.report import format_table
from repro.check.fuzz import build_mechanism, build_policy
from repro.cluster.hockney import FAST_ETHERNET
from repro.gos.jvm import DistributedJVM
from repro.obs.hist import EpochSeries, LatencyHistogram
from repro.trace.recorder import TraceRecorder

__all__ = [
    "SERVE_POLICIES",
    "SERVE_SCHEMA",
    "render_race",
    "render_serving",
    "report_digest",
    "run_serving",
    "run_serving_race",
]

#: Schema tag stamped on every serve report dict.
SERVE_SCHEMA = "repro-serve-report-v1"

#: Policies the serve CLI can race: every family that instantiates
#: without mandatory parameters (FT needs an explicit threshold, so it
#: stays a library-level option via ``ServingSpec.policy_params``).
SERVE_POLICIES = ("NM", "AT", "ATD", "JUMP", "LF", "JIAJIA")


class _RequestCollector:
    """Online span-stream folder: request latency + epoch throughput.

    Subscribed to the run's :class:`~repro.trace.recorder.TraceRecorder`;
    holds per-class histograms, per-epoch request counts, and the close
    time of each barrier round (the epoch windows).  Everything it
    accumulates is a deterministic function of the span stream.
    """

    def __init__(self) -> None:
        self.hists: dict[str, LatencyHistogram] = {}
        self.epoch_requests = EpochSeries()
        self.barrier_close: dict[int, float] = {}
        self.opened = 0
        self.closed = 0
        self._open: dict[int, tuple[float, str, int]] = {}
        self._open_barriers: dict[int, int] = {}

    def on_event(self, event) -> None:
        """TraceRecorder subscriber: fold one span event."""
        d = event.detail
        if event.kind == "span_open":
            kind = d.get("op_kind")
            if kind == "request":
                self.opened += 1
                self._open[d["op"]] = (
                    event.time_us, d.get("cls", "?"), d.get("epoch", 0)
                )
            elif kind == "barrier_wait" and d.get("round") is not None:
                self._open_barriers[d["op"]] = d["round"]
        elif event.kind == "span_close":
            op = d.get("op")
            if op in self._open:
                open_us, cls, epoch = self._open.pop(op)
                self.closed += 1
                self.hists.setdefault(cls, LatencyHistogram()).record(
                    event.time_us - open_us
                )
                self.epoch_requests.note(epoch)
            elif op in self._open_barriers:
                round_no = self._open_barriers.pop(op)
                prev = self.barrier_close.get(round_no)
                if prev is None or event.time_us > prev:
                    self.barrier_close[round_no] = event.time_us


def run_serving(spec: ServingSpec) -> dict:
    """Run one serving episode and return its deterministic SLO report.

    The episode expands to a ProgramSpec, runs on a fresh simulated
    cluster with only span events captured, and the report is assembled
    from the online collector plus the run's deterministic counters —
    per request class latency (p50/p99/p999 with saturation flags) and
    per-epoch throughput in simulated time.
    """
    pspec = build_serving_program(spec)
    program = SpecProgram(pspec)
    tracer = TraceRecorder(kinds=("span_open", "span_close"))
    collector = _RequestCollector()
    tracer.subscribe(collector.on_event)
    jvm = DistributedJVM(
        nodes=pspec.nnodes,
        comm_model=FAST_ETHERNET,
        policy=build_policy(spec.policy, dict(spec.policy_params)),
        mechanism=build_mechanism(spec.mechanism, pspec.manager_node),
        tracer=tracer,
        lock_discipline=spec.lock_discipline,
        seed=spec.seed,
        topology=spec.topology,
        release_fanout=spec.release_fanout,
    )
    result = jvm.run(program, nthreads=pspec.nthreads)

    latency: dict[str, dict] = {
        cls: collector.hists[cls].summary()
        for cls in sorted(collector.hists)
    }
    if collector.hists:
        latency["all"] = LatencyHistogram.merged(
            collector.hists[cls] for cls in sorted(collector.hists)
        ).summary()

    epochs: list[dict] = []
    start = 0.0
    counts = collector.epoch_requests.counts
    for epoch in range(spec.phases):
        end = collector.barrier_close.get(epoch)
        n = counts.get(epoch, 0)
        window = (end - start) if end is not None else None
        epochs.append(
            {
                "epoch": epoch,
                "requests": n,
                "end_us": end,
                "window_us": window,
                "req_per_s": (
                    n / (window / 1e6) if window else None
                ),
            }
        )
        if end is not None:
            start = end

    stats = result.stats
    return {
        "schema": SERVE_SCHEMA,
        "config": asdict(spec),
        "nodes": pspec.nnodes,
        "threads": pspec.nthreads,
        "policy": spec.policy,
        "requests": collector.closed,
        "spans": {"opened": collector.opened, "closed": collector.closed},
        "sim_time_us": result.execution_time_us,
        "migrations": result.migrations,
        "messages": stats.total_messages(),
        "bytes_total": stats.total_bytes(),
        "latency_us": latency,
        "epoch_throughput": epochs,
        "epoch_requests": collector.epoch_requests.to_dict(),
    }


def report_digest(report: dict) -> str:
    """sha256 over the canonical JSON of a serve report.

    The cross-backend identity pin: python and compiled backends must
    produce this exact digest for the same :class:`ServingSpec`.
    """
    blob = json.dumps(report, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _fmt(value, precision: int = 1) -> str:
    """Format one table cell (``-`` for missing values)."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def _quantile_cell(summary: dict, name: str) -> str:
    """One quantile cell, ``~``-prefixed when saturated at the max."""
    value = summary.get(name)
    if value is None:
        return "-"
    marker = "~" if name in summary.get("estimated", ()) else ""
    return f"{marker}{value:.1f}"


def render_serving(report: dict) -> str:
    """Render one serve report as markdown-flavoured plain text.

    Deterministic and backend-independent — contains only virtual-time
    values from the report dict.
    """
    cfg = report["config"]
    blocks = [
        f"# Serving SLO report — policy {report['policy']}, "
        f"{report['nodes']} nodes, {report['requests']} requests",
        (
            f"traffic: {cfg['keys']} keys, zipf_s={cfg['zipf_s']}, "
            f"{cfg['arrival']}-loop arrivals, "
            f"read_fraction={cfg['read_fraction']}, "
            f"churn={cfg['churn']}, {cfg['phases']} phases, "
            f"seed={cfg['seed']}"
            + (f", topology={cfg['topology']}" if cfg["topology"] else "")
        ),
        (
            f"run: sim_time={report['sim_time_us'] / 1e6:.4f}s, "
            f"migrations={report['migrations']}, "
            f"messages={report['messages']}"
        ),
    ]

    rows = []
    for cls, summary in report["latency_us"].items():
        rows.append(
            [
                cls,
                summary["count"],
                _fmt(summary["mean"]),
                _quantile_cell(summary, "p50"),
                _quantile_cell(summary, "p99"),
                _quantile_cell(summary, "p999"),
                _fmt(summary["max"]),
            ]
        )
    if rows:
        blocks.append(
            format_table(
                ["class", "count", "mean_us", "p50_us", "p99_us",
                 "p999_us", "max_us"],
                rows,
                title="Request latency by class (virtual us; ~ = "
                "saturated estimate, too few samples)",
            )
        )

    rows = [
        [
            e["epoch"],
            e["requests"],
            _fmt(e["end_us"]),
            _fmt(e["req_per_s"]),
        ]
        for e in report["epoch_throughput"]
    ]
    if rows:
        blocks.append(
            format_table(
                ["epoch", "requests", "end_us", "req_per_s"],
                rows,
                title="Per-epoch request throughput (simulated time)",
            )
        )
    return "\n\n".join(blocks) + "\n"


def run_serving_race(spec: ServingSpec, policies: list[str]) -> dict:
    """Run identical traffic under several policies; report side by side.

    Every leg reuses the same :class:`ServingSpec` with only the policy
    swapped, so the request sequence, key popularity and arrivals are
    identical — the SLO deltas isolate the migration policy.
    """
    legs = {}
    for policy in policies:
        legs[policy] = run_serving(
            replace(spec, policy=policy, policy_params={})
        )
    return {"schema": SERVE_SCHEMA + "-race", "policies": legs}


def render_race(race: dict) -> str:
    """Tabulate a policy race: one row per policy, SLO columns."""
    rows = []
    for policy, report in race["policies"].items():
        summary = report["latency_us"].get("all", {})
        rows.append(
            [
                policy,
                report["requests"],
                f"{report['sim_time_us'] / 1e6:.4f}",
                report["migrations"],
                report["messages"],
                _quantile_cell(summary, "p50"),
                _quantile_cell(summary, "p99"),
                _quantile_cell(summary, "p999"),
            ]
        )
    return format_table(
        ["policy", "requests", "sim_s", "migrations", "messages",
         "p50_us", "p99_us", "p999_us"],
        rows,
        title="Policy race — same traffic, SLO terms",
    ) + "\n"
