"""ASCII table rendering for benchmark results."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Render a plain-text table with right-aligned numeric cells."""
    rendered_rows = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.3g}" if abs(cell) < 10 else f"{cell:.1f}"
    return str(cell)


def format_bar_groups(
    groups: dict[str, dict[str, float]], width: int = 40, title: str = ""
) -> str:
    """Horizontal bar chart of normalized groups (Figure-5-style).

    ``groups`` maps a group label (e.g. "r=4") to label->value bars in
    [0, 1].
    """
    lines = [title] if title else []
    for group, bars in groups.items():
        lines.append(f"{group}:")
        for label, value in bars.items():
            if not 0 <= value <= 1.0 + 1e-9:
                raise ValueError(
                    f"bar {group}/{label} value {value} outside [0, 1]"
                )
            filled = int(round(value * width))
            lines.append(
                f"  {label:>6s} |{'#' * filled}{' ' * (width - filled)}| "
                f"{value * 100:5.1f}%"
            )
    return "\n".join(lines)
