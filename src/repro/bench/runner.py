"""Single-run driver and the policy registry used by all figures."""

from __future__ import annotations

from typing import Callable

from repro.apps.base import DsmApplication
from repro.cluster.hockney import FAST_ETHERNET, GIGABIT, MYRINET, HockneyModel
from repro.core.policies import (
    AdaptiveThreshold,
    BarrierMigration,
    FixedThreshold,
    LazyFlushing,
    MigratingHome,
    MigrationPolicy,
    NoMigration,
)
from repro.dsm.redirection import (
    BroadcastMechanism,
    ForwardingPointerMechanism,
    HomeManagerMechanism,
    NotificationMechanism,
)
from repro.gos.jvm import DistributedJVM, RunResult

#: Policy factories by report name.
POLICIES: dict[str, Callable[[], MigrationPolicy]] = {
    "NM": NoMigration,
    "FT1": lambda: FixedThreshold(1),
    "FT2": lambda: FixedThreshold(2),
    "AT": AdaptiveThreshold,
    "JUMP": MigratingHome,
    "LF": LazyFlushing,
    "JIAJIA": BarrierMigration,
}

#: Notification mechanism factories by report name.
MECHANISMS: dict[str, Callable[[], NotificationMechanism]] = {
    "forwarding-pointer": ForwardingPointerMechanism,
    "broadcast": BroadcastMechanism,
    "home-manager": HomeManagerMechanism,
}


#: Communication models by report name (used by picklable run specs,
#: which cannot carry the module-level singletons by identity).
COMM_MODELS: dict[str, HockneyModel] = {
    model.name: model for model in (FAST_ETHERNET, GIGABIT, MYRINET)
}


def make_comm_model(name: str) -> HockneyModel:
    """Look up a communication model from its report name."""
    try:
        return COMM_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown comm model {name!r}; choose from {sorted(COMM_MODELS)}"
        ) from None


def make_policy(name: str) -> MigrationPolicy:
    """Instantiate a migration policy from its report name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None


#: Integer parameters accepted after the mechanism name
#: (``"home-manager:shards=4"``, ``"broadcast:fanout=4"``,
#: ``"home-manager:manager=3:shards=2"``).
_MECHANISM_PARAMS: dict[str, dict[str, str]] = {
    "broadcast": {"fanout": "fanout"},
    "home-manager": {"manager": "manager_node", "shards": "shards"},
}


def make_mechanism(name: str) -> NotificationMechanism:
    """Instantiate a notification mechanism from its report name.

    The name may carry colon-separated integer parameters —
    ``"broadcast:fanout=4"`` or ``"home-manager:shards=8"`` — mapping
    onto the mechanism's constructor; a bare name keeps the defaults.
    """
    base, _, rest = name.partition(":")
    try:
        factory = MECHANISMS[base]
    except KeyError:
        raise ValueError(
            f"unknown mechanism {name!r}; choose from {sorted(MECHANISMS)}"
        ) from None
    if not rest:
        return factory()
    accepted = _MECHANISM_PARAMS.get(base, {})
    kwargs: dict[str, int] = {}
    for part in rest.split(":"):
        key, sep, value = part.partition("=")
        if not sep or key not in accepted:
            raise ValueError(
                f"bad mechanism parameter {part!r} in {name!r}; "
                f"{base} accepts {sorted(accepted)}"
            )
        try:
            kwargs[accepted[key]] = int(value)
        except ValueError:
            raise ValueError(
                f"mechanism parameter {key}={value!r} in {name!r} "
                f"is not an integer"
            ) from None
    return factory(**kwargs)


def run_once(
    app: DsmApplication,
    policy: str | MigrationPolicy = "AT",
    nodes: int = 8,
    mechanism: str | NotificationMechanism = "forwarding-pointer",
    comm_model: HockneyModel = FAST_ETHERNET,
    nthreads: int | None = None,
    verify: bool = True,
) -> RunResult:
    """Run one application once under one configuration; verify by default."""
    policy_obj = make_policy(policy) if isinstance(policy, str) else policy
    mech_obj = (
        make_mechanism(mechanism) if isinstance(mechanism, str) else mechanism
    )
    jvm = DistributedJVM(
        nodes=nodes, comm_model=comm_model, policy=policy_obj, mechanism=mech_obj
    )
    result = jvm.run(app, nthreads=nthreads)
    if verify:
        app.verify(result.output)
    return result
