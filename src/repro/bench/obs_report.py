"""Offline reports over saved JSONL traces (``repro-bench report``).

A saved trace (``--trace-out`` on any sweep, or
:func:`~repro.obs.export.dump_trace`) contains everything needed to
reconstruct an object's migration story after the fact:
:func:`render_trace_report` loads the file through
:func:`~repro.obs.export.load_trace` and renders

* per-kind event counts (what the trace captured),
* the migration timeline of one object — each hop with its simulated
  timestamp and the threshold frozen at migration time — plus the
  resulting home path,
* the adaptive-threshold series at that object's migration decisions
  (start/end/min/max and evenly sampled points).

The object defaults to the one with the most migrations (the "hot"
object every synthetic sweep revolves around); pass ``oid`` to inspect
another.
"""

from __future__ import annotations

from collections import Counter

from repro.bench.report import format_table
from repro.obs.export import load_trace, read_trace_meta
from repro.trace.recorder import TraceRecorder

#: Threshold-series sample rows rendered before eliding the middle.
MAX_SERIES_ROWS = 12


def _pick_oid(recorder: TraceRecorder) -> int | None:
    """The object with the most migrations (ties: lowest oid), else the
    most-traced object, else ``None`` for an empty trace."""
    migrated = Counter(e.oid for e in recorder.migrations())
    if migrated:
        return min(
            migrated, key=lambda oid: (-migrated[oid], oid)
        )
    touched = Counter(e.oid for e in recorder.events)
    if touched:
        return min(touched, key=lambda oid: (-touched[oid], oid))
    return None


def _sample(rows: list, limit: int) -> list:
    """At most ``limit`` evenly spaced rows, always keeping first/last."""
    if len(rows) <= limit:
        return rows
    step = (len(rows) - 1) / (limit - 1)
    picked = [rows[round(i * step)] for i in range(limit)]
    picked[-1] = rows[-1]
    return picked


def render_trace_report(path: str, oid: int | None = None) -> str:
    """Render the migration/threshold report for one saved trace file."""
    recorder = load_trace(path)
    meta = read_trace_meta(path)
    backend = meta.get("backend", "unrecorded")
    # Build provenance: which compiled kernel produced this trace (None
    # under the pure-Python backend, absent in pre-PR7 traces).
    build_hash = meta.get("kernel_build_hash")
    provenance = f"backend: {backend}"
    if build_hash:
        provenance += f", kernel build {build_hash}"
    blocks = []

    kind_counts = Counter(e.kind for e in recorder.events)
    blocks.append(
        format_table(
            ["kind", "events"],
            [[kind, n] for kind, n in sorted(kind_counts.items())],
            title=(
                f"Trace {path} — {len(recorder.events)} events "
                f"({provenance})"
            ),
        )
    )

    if oid is None:
        oid = _pick_oid(recorder)
    if oid is None:
        blocks.append("(empty trace: no events to report on)")
        return "\n\n".join(blocks)

    migrations = recorder.migrations(oid)
    if migrations:
        rows = [
            [
                f"{e.time_us:,.1f}",
                e.detail.get("old_home", e.node),
                e.detail["new_home"],
                e.detail.get("frozen_threshold", ""),
            ]
            for e in migrations
        ]
        path_nodes = [migrations[0].detail.get("old_home", migrations[0].node)]
        path_nodes += [e.detail["new_home"] for e in migrations]
        if len(path_nodes) > MAX_SERIES_ROWS:
            shown = " -> ".join(map(str, path_nodes[:MAX_SERIES_ROWS]))
            path_text = f"{shown} -> ... ({len(path_nodes) - 1} hops)"
        else:
            path_text = " -> ".join(map(str, path_nodes))
        blocks.append(
            format_table(
                ["time_us", "old_home", "new_home", "frozen_T"],
                _sample(rows, MAX_SERIES_ROWS),
                title=f"Object {oid} — {len(migrations)} migrations "
                f"(home path {path_text})",
            )
        )
    else:
        blocks.append(f"Object {oid}: no migration events in this trace")

    series = recorder.threshold_series(oid)
    if series:
        values = [t for _, t in series]
        summary = format_table(
            ["points", "first", "last", "min", "max"],
            [[len(series), values[0], values[-1], min(values), max(values)]],
            title=f"Object {oid} — adaptive threshold at migration decisions",
        )
        samples = format_table(
            ["time_us", "threshold"],
            [[f"{t:,.1f}", thr] for t, thr in _sample(series, MAX_SERIES_ROWS)],
        )
        blocks.append(summary + "\n" + samples)
    else:
        blocks.append(
            f"Object {oid}: no threshold series (decision events absent "
            "or kind-filtered)"
        )
    return "\n\n".join(blocks)
