"""Command-line entry point: ``python -m repro.bench <target> [--full]``
(also installed as the ``repro-bench`` console script).

Targets: ``figure2``, ``figure3``, ``figure5``, ``ablation``, ``all``.
``--full`` uses the paper's problem sizes (slow); the default quick sizes
preserve every qualitative shape.  ``--jobs N`` fans each sweep's
independent runs out over N worker processes (default: all usable cores;
results are bit-identical for any value).  ``--json PATH`` additionally
dumps the raw result dictionaries to a JSON file.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.ablation import (
    render_ablation,
    run_barrier_policy_ablation,
    run_decay_ablation,
    run_homeless_ablation,
    run_lambda_ablation,
    run_lock_discipline_ablation,
    run_network_ablation,
    run_notification_ablation,
    run_policy_ablation,
)
from repro.bench.executor import default_jobs
from repro.bench.figure2 import render_figure2, run_figure2
from repro.bench.figure3 import render_figure3, run_figure3
from repro.bench.figure5 import render_figure5, run_figure5

TARGETS = ("figure2", "figure3", "figure5", "ablation", "all")


def _run_ablations(jobs: int | None = 1) -> dict:
    return {
        "notification": run_notification_ablation(jobs=jobs),
        "policies": run_policy_ablation(jobs=jobs),
        "barrier_policies": run_barrier_policy_ablation(jobs=jobs),
        "homeless": run_homeless_ablation(jobs=jobs),
        "lambda": run_lambda_ablation(jobs=jobs),
        "lock_discipline": run_lock_discipline_ablation(jobs=jobs),
        "network": run_network_ablation(jobs=jobs),
        "decay": run_decay_ablation(jobs=jobs),
    }


def _render_ablations(data: dict) -> str:
    titles = {
        "notification": "Ablation — notification mechanisms (AT, synthetic r=8)",
        "policies": "Ablation — migration policies (synthetic r=8)",
        "barrier_policies": "Ablation — barrier-driven policies (SOR)",
        "homeless": "Ablation — home-based vs homeless LRC (synthetic r=4)",
        "lambda": "Ablation — AT feedback coefficient lambda (synthetic r=4)",
        "lock_discipline": "Ablation — FIFO vs retry lock grants (synthetic r=2)",
        "network": "Ablation — interconnect sweep (SOR, NM vs AT)",
        "decay": "Ablation — feedback decay heuristic (phase change r=2 -> r=16)",
    }
    return "\n\n".join(
        render_ablation(rows, titles[key]) for key, rows in data.items()
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the figures of Fang et al., CLUSTER 2004.",
    )
    parser.add_argument("target", choices=TARGETS)
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's problem sizes (slow) instead of quick ones",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also dump the raw result dictionaries as JSON",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes per sweep (default: all usable cores; "
        "results are identical for any value)",
    )
    args = parser.parse_args(argv)
    mode = "full" if args.full else "quick"
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        parser.error(f"--jobs must be >= 1, got {jobs}")

    collected: dict = {}
    targets = TARGETS[:-1] if args.target == "all" else (args.target,)
    for target in targets:
        if target == "figure2":
            collected["figure2"] = run_figure2(mode=mode, jobs=jobs)
            print(render_figure2(collected["figure2"]))
        elif target == "figure3":
            collected["figure3"] = run_figure3(mode=mode, jobs=jobs)
            print(render_figure3(collected["figure3"]))
        elif target == "figure5":
            collected["figure5"] = run_figure5(mode=mode, jobs=jobs)
            print(render_figure5(collected["figure5"]))
        elif target == "ablation":
            collected["ablation"] = _run_ablations(jobs=jobs)
            print(_render_ablations(collected["ablation"]))
        print()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(collected, handle, indent=2, default=str)
        print(f"raw results written to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
