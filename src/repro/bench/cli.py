"""Command-line entry point: ``python -m repro.bench <target> [--full]``
(also installed as the ``repro-bench`` console script).

Targets: ``figure2``, ``figure3``, ``figure5``, ``ablation``, ``all``,
``report``, ``check``, ``analyze``.  ``--full`` uses the paper's problem
sizes (slow); the
default quick sizes preserve every qualitative shape.  ``--jobs N``
fans each sweep's independent runs out over N worker processes
(default: all usable cores; results are bit-identical for any value).
``--json PATH`` additionally dumps the raw result dictionaries to a
JSON file.

Observability flags (sweep targets): ``--trace-out PATH`` streams every
run's trace to per-run JSONL files; ``--metrics-out PATH`` writes the
merged cross-run metrics snapshot as JSON; ``--log-level LEVEL``
enables structured run logging on stderr; ``--progress`` prints a
heartbeat line as each run completes.  The ``report`` target renders a
saved trace offline: ``repro-bench report --trace PATH [--oid N]``.

The ``check`` target runs the protocol conformance harness
(:mod:`repro.check`): ``repro-bench check --episodes N --seed S``
fuzzes N seeded episodes through the coherence oracle and the runtime
invariant checker, runs the mutation self-test, and exits non-zero on
any violation.  ``--corpus-out DIR`` saves every episode's program and
verdict as a replayable JSON corpus; ``--no-self-test`` skips the
mutation leg.

The ``sweep`` target runs the mechanism crossover lab
(:mod:`repro.bench.scale`): a ``nodes x mechanism x policy`` grid over
the migration-churn synthetic workload reporting, per policy, the
smallest N at which broadcast / multicast broadcast / the (sharded)
home manager beat the forwarding pointer on simulated time.
``--full`` extends the node grid to 256; ``--md PATH`` writes the
markdown table and ``--json PATH`` the raw grid (the CI scale-smoke
artifacts).

The ``analyze`` target runs the causal SLO analytics engine
(:mod:`repro.bench.analyze`) over a span-enabled trace:
``repro-bench analyze trace.jsonl [--json slo.json]`` prints the
markdown report (per-kind latency percentiles, read-miss critical
paths, redirection chain lengths, migration-decision timelines,
per-barrier-epoch throughput); ``--json`` additionally writes the raw
report dict.  Record a suitable trace with
``scripts/record_trace.py`` or any ``--trace-out`` sweep.

The ``serve`` target runs the serving-traffic workload tier
(:mod:`repro.bench.serving`): ``repro-bench serve --nodes 16
--policy AT --seed 0`` runs one deterministic Zipfian request episode
(PROTOCOL.md §16) and prints per-epoch request throughput plus
p50/p99/p999 request latency per class, ending with the report's
cross-backend digest.  ``--policy NM,AT,JUMP`` races several migration
policies over identical traffic; traffic knobs: ``--keys``,
``--requests`` (per thread per phase), ``--phases``, ``--zipf-s``,
``--read-fraction``, ``--churn``, ``--arrival {open,closed}``,
``--topology``, ``--release-fanout``.  ``check`` additionally takes
``--flavor {core,serving,mixed}`` to pick the episode generator family.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.ablation import (
    render_ablation,
    run_barrier_policy_ablation,
    run_decay_ablation,
    run_homeless_ablation,
    run_lambda_ablation,
    run_lock_discipline_ablation,
    run_network_ablation,
    run_notification_ablation,
    run_policy_ablation,
)
from repro.bench.executor import ObsSpec, RunOutcome, default_jobs
from repro.bench.figure2 import render_figure2, run_figure2
from repro.bench.figure3 import render_figure3, run_figure3
from repro.bench.figure5 import render_figure5, run_figure5
from repro.obs.logging import LEVELS
from repro.obs.metrics import MetricsRegistry

TARGETS = (
    "figure2", "figure3", "figure5", "ablation", "all", "report", "check",
    "analyze", "sweep", "serve",
)


def _derive_obs(obs: ObsSpec | None, label: str) -> ObsSpec | None:
    """Give each sweep of one CLI invocation its own trace-file base.

    ``run.jsonl`` becomes ``run-figure2.jsonl`` etc., so per-run files
    from different sweeps (``all``, or the eight ablations) never
    collide; non-trace instruments pass through unchanged.
    """
    import os
    from dataclasses import replace

    if obs is None or obs.trace_path is None:
        return obs
    root, ext = os.path.splitext(obs.trace_path)
    return replace(obs, trace_path=f"{root}-{label}{ext}")


def _run_ablations(jobs=None, obs=None, progress=None) -> dict:
    runners = {
        "notification": run_notification_ablation,
        "policies": run_policy_ablation,
        "barrier_policies": run_barrier_policy_ablation,
        "homeless": run_homeless_ablation,
        "lambda": run_lambda_ablation,
        "lock_discipline": run_lock_discipline_ablation,
        "network": run_network_ablation,
        "decay": run_decay_ablation,
    }
    return {
        key: runner(
            jobs=jobs, obs=_derive_obs(obs, key), progress=progress
        )
        for key, runner in runners.items()
    }


class _TelemetryHarvest:
    """Progress hook shared by all sweeps of one CLI invocation.

    Merges every run's metrics snapshot into one registry (counters and
    histograms add; see :meth:`~repro.obs.metrics.MetricsRegistry.merge`)
    and optionally prints a per-run completion heartbeat.
    """

    def __init__(self, show_progress: bool, collect_metrics: bool) -> None:
        self.show_progress = show_progress
        self.metrics = MetricsRegistry() if collect_metrics else None
        self.runs = 0

    def __call__(self, done: int, total: int, outcome: RunOutcome) -> None:
        """The executor's ``progress(done, total, outcome)`` callback."""
        self.runs += 1
        telemetry = outcome.telemetry
        if (
            self.metrics is not None
            and telemetry is not None
            and telemetry.get("metrics") is not None
        ):
            self.metrics.merge(telemetry["metrics"])
        if self.show_progress:
            print(
                f"[{done}/{total}] {outcome.app} policy={outcome.policy} "
                f"nodes={outcome.nodes} sim={outcome.time_s:.3f}s "
                f"wall={outcome.wall_clock_s:.2f}s "
                f"migrations={outcome.migrations}",
                file=sys.stderr,
                flush=True,
            )


def _render_ablations(data: dict) -> str:
    titles = {
        "notification": "Ablation — notification mechanisms (AT, synthetic r=8)",
        "policies": "Ablation — migration policies (synthetic r=8)",
        "barrier_policies": "Ablation — barrier-driven policies (SOR)",
        "homeless": "Ablation — home-based vs homeless LRC (synthetic r=4)",
        "lambda": "Ablation — AT feedback coefficient lambda (synthetic r=4)",
        "lock_discipline": "Ablation — FIFO vs retry lock grants (synthetic r=2)",
        "network": "Ablation — interconnect sweep (SOR, NM vs AT)",
        "decay": "Ablation — feedback decay heuristic (phase change r=2 -> r=16)",
    }
    return "\n\n".join(
        render_ablation(rows, titles[key]) for key, rows in data.items()
    )


def _run_check_target(args, parser) -> int:
    """Drive a `repro check` conformance session from parsed CLI args."""
    from repro.check.runner import run_check

    if args.episodes < 1:
        parser.error(f"--episodes must be >= 1, got {args.episodes}")

    def progress(result):
        status = "ok" if result.ok else "FAIL"
        print(
            f"episode seed={result.seed} {status} ops={result.ops} "
            f"migrations={result.migrations} events={result.events}",
            file=sys.stderr,
            flush=True,
        )

    report = run_check(
        episodes=args.episodes,
        base_seed=args.seed,
        corpus_dir=args.corpus_out,
        self_test=not args.no_self_test,
        progress=progress if args.progress else None,
        flavor=args.flavor,
    )
    failures = [e for e in report.episodes if not e.ok]
    print(
        f"conformance: {len(report.episodes)} episodes from seed "
        f"{args.seed}, {len(failures)} with violations"
    )
    for episode in failures:
        print(f"  seed {episode.seed}:")
        for line in (
            episode.oracle_violations + episode.invariant_violations
        ):
            print(f"    {line}")
        if episode.run_error:
            print(f"    run error: {episode.run_error}")
    if report.self_test:
        caught = sum(
            1 for clean, flagged in report.self_test.values()
            if clean and flagged
        )
        print(
            f"self-test: {caught}/{len(report.self_test)} mutations "
            f"detected"
        )
        for name, (clean, flagged) in sorted(report.self_test.items()):
            verdict = "ok" if (clean and flagged) else "FAIL"
            print(
                f"  {name}: unmutated clean={clean} "
                f"mutated flagged={flagged} -> {verdict}"
            )
    if args.corpus_out:
        print(f"episode corpus written to {args.corpus_out}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
        print(f"raw report written to {args.json}")
    return 0 if report.ok else 1


def _run_serve_target(args, parser) -> int:
    """Drive a `repro serve` SLO session from parsed CLI args."""
    from repro.apps.serving import ServingSpec
    from repro.bench.serving import (
        render_race,
        render_serving,
        report_digest,
        run_serving,
        run_serving_race,
    )
    from repro.bench.serving import SERVE_POLICIES

    policies = [p.strip() for p in args.policy.split(",") if p.strip()]
    unknown = [p for p in policies if p not in SERVE_POLICIES]
    if not policies or unknown:
        parser.error(
            f"--policy must name policies from {SERVE_POLICIES} "
            f"(comma-separated), got {args.policy!r}"
        )
    if args.arrival not in ("open", "closed"):
        parser.error(f"--arrival must be open or closed, got {args.arrival}")
    spec = ServingSpec(
        seed=args.seed,
        nodes=args.nodes,
        keys=args.keys,
        requests_per_thread=args.requests,
        phases=args.phases,
        zipf_s=args.zipf_s,
        read_fraction=args.read_fraction,
        churn=args.churn,
        arrival=args.arrival,
        policy=policies[0],
        topology=args.topology,
        release_fanout=args.release_fanout,
    )
    if len(policies) == 1:
        payload = run_serving(spec)
        rendered = render_serving(payload)
        digest = report_digest(payload)
    else:
        payload = run_serving_race(spec, policies)
        rendered = render_race(payload)
        digest = report_digest(payload)
    print(rendered)
    print(f"report digest: {digest}")
    # path notices go to stderr so stdout stays byte-diffable across
    # backends (the CI serving smoke diffs the rendered reports)
    if args.md:
        with open(args.md, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"markdown report written to {args.md}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"raw report written to {args.json}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the figures of Fang et al., CLUSTER 2004.",
    )
    parser.add_argument("target", choices=TARGETS)
    parser.add_argument(
        "path",
        nargs="?",
        help="(analyze target) span-enabled JSONL trace to analyze "
        "(equivalent to --trace PATH)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's problem sizes (slow) instead of quick ones",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also dump the raw result dictionaries as JSON",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes per sweep (default: all usable cores; "
        "results are identical for any value)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="stream each run's trace events to per-run JSONL files "
        "derived from PATH (run.jsonl -> run-000.jsonl, ...)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the merged cross-run metrics snapshot as JSON",
    )
    parser.add_argument(
        "--log-level",
        choices=sorted(LEVELS),
        help="enable structured run logging on stderr at this level",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a heartbeat line on stderr as each run completes",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="(report target) saved JSONL trace file to render",
    )
    parser.add_argument(
        "--oid",
        type=int,
        metavar="N",
        help="(report target) object id to report on "
        "(default: the most-migrated object)",
    )
    parser.add_argument(
        "--episodes",
        type=int,
        metavar="N",
        default=25,
        help="(check target) number of fuzzed episodes to run (default 25)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        metavar="S",
        default=0,
        help="(check target) base seed the episode sequence derives from",
    )
    parser.add_argument(
        "--corpus-out",
        metavar="DIR",
        help="(check target) write each episode's program + verdict as "
        "JSON into DIR (plus a report.json summary)",
    )
    parser.add_argument(
        "--no-self-test",
        action="store_true",
        help="(check target) skip the mutation self-test leg",
    )
    parser.add_argument(
        "--flavor",
        choices=("core", "serving", "mixed"),
        default="core",
        help="(check target) episode generator family: the core random "
        "access-pattern fuzzer, serving-traffic episodes, or a "
        "deterministic mix of both",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        metavar="N",
        default=8,
        help="(serve target) cluster size (one worker thread per node)",
    )
    parser.add_argument(
        "--policy",
        metavar="P[,P...]",
        default="AT",
        help="(serve target) migration policy, or a comma-separated "
        "list to race several policies over identical traffic",
    )
    parser.add_argument(
        "--keys",
        type=int,
        metavar="K",
        default=48,
        help="(serve target) size of the keyed object store",
    )
    parser.add_argument(
        "--requests",
        type=int,
        metavar="R",
        default=8,
        help="(serve target) requests per worker thread per phase",
    )
    parser.add_argument(
        "--phases",
        type=int,
        metavar="P",
        default=3,
        help="(serve target) barrier-separated phases (hot-set epochs)",
    )
    parser.add_argument(
        "--zipf-s",
        type=float,
        metavar="S",
        default=0.99,
        help="(serve target) Zipf skew of key popularity",
    )
    parser.add_argument(
        "--read-fraction",
        type=float,
        metavar="F",
        default=0.7,
        help="(serve target) probability a request is a get (vs put)",
    )
    parser.add_argument(
        "--churn",
        type=float,
        metavar="F",
        default=0.0,
        help="(serve target) fraction of nodes whose workers go quiet "
        "each phase (rejoining at the next barrier)",
    )
    parser.add_argument(
        "--arrival",
        choices=("open", "closed"),
        default="open",
        help="(serve target) arrival process: open-loop Poisson gaps or "
        "closed-loop fixed think time",
    )
    parser.add_argument(
        "--topology",
        metavar="SPEC",
        default=None,
        help="(serve target) interconnect topology spec string "
        "(PROTOCOL.md §15), e.g. fat-tree:edge=16:pod=4:oversub=2",
    )
    parser.add_argument(
        "--release-fanout",
        type=int,
        metavar="K",
        default=None,
        help="(serve target) k-ary multicast relay for barrier releases",
    )
    parser.add_argument(
        "--md",
        metavar="PATH",
        help="(sweep target) also write the rendered markdown table to PATH",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "python", "compiled"),
        default="auto",
        help="simulation backend: auto (default) uses the compiled kernel "
        "when it builds, python forces the pure-Python fallback, compiled "
        "fails fast when the extension is unavailable",
    )
    args = parser.parse_args(argv)

    if args.backend != "auto":
        from repro import _kernel

        try:
            _kernel.select_backend(args.backend)
        except RuntimeError as exc:
            parser.error(str(exc))

    if args.target == "check":
        return _run_check_target(args, parser)

    if args.target == "serve":
        return _run_serve_target(args, parser)

    if args.target == "report":
        if not args.trace:
            parser.error("the report target requires --trace PATH")
        from repro.bench.obs_report import render_trace_report

        print(render_trace_report(args.trace, oid=args.oid))
        return 0

    if args.target == "analyze":
        trace_path = args.path or args.trace
        if not trace_path:
            parser.error(
                "the analyze target requires a trace path "
                "(positional or --trace PATH)"
            )
        from repro.bench.analyze import (
            analyze_trace,
            render_analysis,
            write_json_report,
        )

        slo = analyze_trace(trace_path)
        if slo["spans"]["opened"] == 0:
            # Not an error: the trace is valid, it just wasn't recorded
            # with span kinds.  Say exactly how to get an analyzable one
            # instead of printing a report full of empty sections.
            print(
                f"{trace_path}: no spans in this trace — re-record it "
                f"with span kinds enabled (the default for repro-bench "
                f"--trace-out and scripts/record_trace.py) to get causal "
                f"analytics"
            )
            return 0
        print(render_analysis(slo), end="")
        if args.json:
            write_json_report(slo, args.json)
            print(f"raw SLO report written to {args.json}", file=sys.stderr)
        return 0

    mode = "full" if args.full else "quick"
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        parser.error(f"--jobs must be >= 1, got {jobs}")

    if args.target == "sweep":
        from repro.bench.scale import (
            FULL_NODES,
            QUICK_NODES,
            render_crossover,
            run_crossover,
        )

        def heartbeat(done, total, outcome):
            print(
                f"[{done}/{total}] {outcome.mechanism} policy="
                f"{outcome.policy} nodes={outcome.nodes} "
                f"sim={outcome.time_s:.3f}s "
                f"migrations={outcome.migrations}",
                file=sys.stderr,
                flush=True,
            )

        data = run_crossover(
            nodes=FULL_NODES if args.full else QUICK_NODES,
            jobs=jobs,
            progress=heartbeat if args.progress else None,
        )
        rendered = render_crossover(data)
        print(rendered)
        if args.md:
            with open(args.md, "w", encoding="utf-8") as handle:
                handle.write(rendered)
            print(f"markdown table written to {args.md}")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(data, handle, indent=2)
            print(f"raw crossover grid written to {args.json}")
        return 0

    obs = ObsSpec(
        trace_path=args.trace_out,
        metrics=args.metrics_out is not None,
        log_level=args.log_level,
    )
    harvest = _TelemetryHarvest(
        show_progress=args.progress,
        collect_metrics=args.metrics_out is not None,
    )
    obs_arg = obs if obs.enabled else None
    progress_arg = harvest if (args.progress or obs.enabled) else None

    collected: dict = {}
    targets = (
        ("figure2", "figure3", "figure5", "ablation")
        if args.target == "all"
        else (args.target,)
    )
    for target in targets:
        target_obs = _derive_obs(obs_arg, target)
        if target == "figure2":
            collected["figure2"] = run_figure2(
                mode=mode, jobs=jobs, obs=target_obs, progress=progress_arg
            )
            print(render_figure2(collected["figure2"]))
        elif target == "figure3":
            collected["figure3"] = run_figure3(
                mode=mode, jobs=jobs, obs=target_obs, progress=progress_arg
            )
            print(render_figure3(collected["figure3"]))
        elif target == "figure5":
            collected["figure5"] = run_figure5(
                mode=mode, jobs=jobs, obs=target_obs, progress=progress_arg
            )
            print(render_figure5(collected["figure5"]))
        elif target == "ablation":
            collected["ablation"] = _run_ablations(
                jobs=jobs, obs=target_obs, progress=progress_arg
            )
            print(_render_ablations(collected["ablation"]))
        print()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(collected, handle, indent=2, default=str)
        print(f"raw results written to {args.json}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(
                {"runs": harvest.runs, **harvest.metrics.snapshot()},
                handle,
                indent=2,
            )
        print(f"merged metrics ({harvest.runs} runs) written to "
              f"{args.metrics_out}")
    if args.trace_out:
        print(f"per-run traces written alongside {args.trace_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
