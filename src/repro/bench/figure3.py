"""Figure 3: AT improvement over FT against problem size (§5.1).

The paper compares the adaptive-threshold protocol (AT) with the earlier
fixed-threshold protocol at threshold 2 (FT) on eight nodes, scaling the
ASP graph and the SOR matrix through {128, 256, 512, 1024}, and reports
the improvement of AT over FT in execution time, number of messages and
network traffic.  Expected shape: AT never loses; SOR's improvement grows
with the problem size; ASP's stays roughly constant (amortized over its
``n`` iterations).
"""

from __future__ import annotations

from repro.analysis.metrics import improvement_percent
from repro.apps import Asp, Sor
from repro.bench.report import format_table
from repro.bench.runner import run_once

PROBLEM_SIZES = {
    "quick": (32, 64, 128, 256),
    "full": (128, 256, 512, 1024),
}

NODES = 8
BASELINE_POLICY = "FT2"
IMPROVED_POLICY = "AT"

#: SOR iteration count (fixed while the matrix scales, as in the paper).
SOR_ITERATIONS = 10


def _make_app(app_name: str, size: int):
    if app_name == "ASP":
        return Asp(size=size)
    if app_name == "SOR":
        return Sor(size=size, iterations=SOR_ITERATIONS)
    raise ValueError(f"Figure 3 covers ASP and SOR, not {app_name!r}")


def run_figure3(
    mode: str = "quick",
    sizes: tuple[int, ...] | None = None,
    verify: bool = True,
) -> dict:
    """Run the Figure-3 sweep.

    Returns ``{app: {size: {"time": %, "messages": %, "traffic": %}}}`` —
    improvement percentages of AT over FT2 — plus the raw numbers under
    ``"raw"``.
    """
    sweep = sizes if sizes is not None else PROBLEM_SIZES[mode]
    improvements: dict[str, dict[int, dict[str, float]]] = {}
    raw: dict[str, dict[int, dict[str, dict[str, float]]]] = {}
    for app_name in ("ASP", "SOR"):
        improvements[app_name] = {}
        raw[app_name] = {}
        for size in sweep:
            per_policy = {}
            for policy in (BASELINE_POLICY, IMPROVED_POLICY):
                result = run_once(
                    _make_app(app_name, size),
                    policy=policy,
                    nodes=NODES,
                    verify=verify,
                )
                per_policy[policy] = {
                    "time": result.execution_time_us,
                    "messages": float(result.stats.total_messages()),
                    "traffic": float(result.stats.total_bytes()),
                }
            raw[app_name][size] = per_policy
            improvements[app_name][size] = {
                metric: improvement_percent(
                    per_policy[BASELINE_POLICY][metric],
                    per_policy[IMPROVED_POLICY][metric],
                )
                for metric in ("time", "messages", "traffic")
            }
    return {"improvements": improvements, "raw": raw, "mode": mode}


def render_figure3(data: dict) -> str:
    """ASCII rendition of Figure 3."""
    blocks = []
    for app_name, per_size in data["improvements"].items():
        headers = ["size", "exec time", "messages", "traffic"]
        rows = [
            [
                str(size),
                f"{vals['time']:+.1f}%",
                f"{vals['messages']:+.1f}%",
                f"{vals['traffic']:+.1f}%",
            ]
            for size, vals in sorted(per_size.items())
        ]
        blocks.append(
            format_table(
                headers,
                rows,
                title=(
                    f"Figure 3 — {app_name}: improvement of AT over FT2 on "
                    f"{NODES} nodes ({data['mode']} sizes)"
                ),
            )
        )
    return "\n\n".join(blocks)
