"""Figure 3: AT improvement over FT against problem size (§5.1).

The paper compares the adaptive-threshold protocol (AT) with the earlier
fixed-threshold protocol at threshold 2 (FT) on eight nodes, scaling the
ASP graph and the SOR matrix through {128, 256, 512, 1024}, and reports
the improvement of AT over FT in execution time, number of messages and
network traffic.  Expected shape: AT never loses; SOR's improvement grows
with the problem size; ASP's stays roughly constant (amortized over its
``n`` iterations).
"""

from __future__ import annotations

from repro.analysis.metrics import improvement_percent
from repro.bench.executor import (
    ObsSpec,
    ProgressCallback,
    RunSpec,
    execute,
)
from repro.bench.report import format_table

PROBLEM_SIZES = {
    "quick": (32, 64, 128, 256),
    "full": (128, 256, 512, 1024),
}

NODES = 8
BASELINE_POLICY = "FT2"
IMPROVED_POLICY = "AT"

#: SOR iteration count (fixed while the matrix scales, as in the paper).
SOR_ITERATIONS = 10


def _app_spec(app_name: str, size: int) -> tuple[str, dict]:
    if app_name == "ASP":
        return "asp", {"size": size}
    if app_name == "SOR":
        return "sor", {"size": size, "iterations": SOR_ITERATIONS}
    raise ValueError(f"Figure 3 covers ASP and SOR, not {app_name!r}")


def run_figure3(
    mode: str = "quick",
    sizes: tuple[int, ...] | None = None,
    verify: bool = True,
    jobs: int | None = 1,
    obs: ObsSpec | None = None,
    progress: ProgressCallback | None = None,
) -> dict:
    """Run the Figure-3 sweep.

    Returns ``{app: {size: {"time": %, "messages": %, "traffic": %}}}`` —
    improvement percentages of AT over FT2 — plus the raw numbers under
    ``"raw"``.  ``jobs`` fans the runs out over worker processes.
    """
    sweep = sizes if sizes is not None else PROBLEM_SIZES[mode]
    specs = []
    for app_name in ("ASP", "SOR"):
        for size in sweep:
            app, kwargs = _app_spec(app_name, size)
            for policy in (BASELINE_POLICY, IMPROVED_POLICY):
                specs.append(
                    RunSpec(
                        app=app,
                        app_kwargs=kwargs,
                        policy=policy,
                        nodes=NODES,
                        verify=verify,
                        tag=(app_name, size, policy),
                    )
                )
    improvements: dict[str, dict[int, dict[str, float]]] = {}
    raw: dict[str, dict[int, dict[str, dict[str, float]]]] = {}
    for outcome in execute(specs, jobs=jobs, obs=obs, progress=progress):
        app_name, size, policy = outcome.tag
        raw.setdefault(app_name, {}).setdefault(size, {})[policy] = {
            "time": outcome.time_us,
            "messages": float(outcome.messages),
            "traffic": float(outcome.bytes_total),
        }
    for app_name, per_size in raw.items():
        improvements[app_name] = {
            size: {
                metric: improvement_percent(
                    per_policy[BASELINE_POLICY][metric],
                    per_policy[IMPROVED_POLICY][metric],
                )
                for metric in ("time", "messages", "traffic")
            }
            for size, per_policy in per_size.items()
        }
    return {"improvements": improvements, "raw": raw, "mode": mode}


def render_figure3(data: dict) -> str:
    """ASCII rendition of Figure 3."""
    blocks = []
    for app_name, per_size in data["improvements"].items():
        headers = ["size", "exec time", "messages", "traffic"]
        rows = [
            [
                str(size),
                f"{vals['time']:+.1f}%",
                f"{vals['messages']:+.1f}%",
                f"{vals['traffic']:+.1f}%",
            ]
            for size, vals in sorted(per_size.items())
        ]
        blocks.append(
            format_table(
                headers,
                rows,
                title=(
                    f"Figure 3 — {app_name}: improvement of AT over FT2 on "
                    f"{NODES} nodes ({data['mode']} sizes)"
                ),
            )
        )
    return "\n\n".join(blocks)
