"""Record a span-enabled trace of one run — the analyze pipeline's input.

Thin convenience over the bench executor: build a :class:`RunSpec` whose
:class:`ObsSpec` streams every trace kind (spans included) to a JSONL
file, run it in-process, and hand back the outcome.  Used by the CI
analyze-smoke job (via ``scripts/record_trace.py``) and by tests that
need a real trace file without spelling out the executor plumbing.
"""

from __future__ import annotations

from repro.bench.executor import ObsSpec, RunOutcome, RunSpec, run_spec

__all__ = ["record_trace"]


def record_trace(
    out: str,
    app: str = "asp",
    app_kwargs: dict | None = None,
    policy: str = "AT",
    policy_kwargs: dict | None = None,
    nodes: int = 8,
    seed: int = 0,
    mechanism: str = "forwarding-pointer",
    comm_model: str = "fast-ethernet",
    verify: bool = True,
) -> RunOutcome:
    """Run one workload with full tracing on, writing the trace to ``out``.

    All trace kinds are captured (``trace_kinds=None``), so the file
    contains the span layer plus the decision/migration events the
    analyzer correlates against.  The run itself is deterministic; only
    the trace meta line (backend name, kernel build hash) varies with
    the execution environment.
    """
    spec = RunSpec(
        app=app,
        app_kwargs=app_kwargs or {},
        policy=policy,
        policy_kwargs=policy_kwargs or {},
        nodes=nodes,
        mechanism=mechanism,
        comm_model=comm_model,
        seed=seed,
        verify=verify,
        obs=ObsSpec(trace_path=out, trace_kinds=None),
    )
    return run_spec(spec)
