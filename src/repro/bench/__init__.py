"""Benchmark harness: regenerates every figure of the paper's evaluation.

* :mod:`repro.bench.figure2` — execution time vs processors, HM vs NoHM,
  four applications (paper Figure 2);
* :mod:`repro.bench.figure3` — AT-over-FT improvement vs problem size on
  8 nodes for ASP and SOR (paper Figure 3);
* :mod:`repro.bench.figure5` — normalized execution time and message
  breakdown vs single-writer repetition for NM/FT1/FT2/AT (paper
  Figure 5a/5b);
* :mod:`repro.bench.ablation` — extensions beyond the paper: notification
  mechanisms, related-work policies, threshold-parameter sensitivity;
* :mod:`repro.bench.executor` — declarative :class:`RunSpec` sweeps fanned
  out over a process pool (every driver takes ``jobs=N`` and optional
  ``obs=``/``progress=`` telemetry hooks);
* :mod:`repro.bench.obs_report` — offline reports over saved JSONL traces
  (the CLI's ``report`` target);
* :mod:`repro.bench.cli` — ``python -m repro.bench <figure> [--full]
  [--jobs N] [--trace-out PATH] [--metrics-out PATH] [--log-level L]
  [--progress]`` (installed as ``repro-bench``).

Every driver returns plain dicts (JSON-friendly) and can render an ASCII
table via :mod:`repro.bench.report`.
"""

from repro.bench.executor import (
    ObsSpec,
    RunOutcome,
    RunSpec,
    default_jobs,
    execute,
)
from repro.bench.obs_report import render_trace_report
from repro.bench.runner import POLICIES, make_policy, run_once

__all__ = [
    "POLICIES",
    "ObsSpec",
    "RunOutcome",
    "RunSpec",
    "default_jobs",
    "execute",
    "make_policy",
    "render_trace_report",
    "run_once",
]
