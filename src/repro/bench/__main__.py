"""``python -m repro.bench`` dispatches to :mod:`repro.bench.cli`."""

import sys

from repro.bench.cli import main

sys.exit(main())
