"""Figure 2: execution time vs number of processors, HM vs NoHM (§5.1).

The paper runs ASP (1024-node graph), SOR (2048x2048), NBody (2048
bodies) and TSP (12 cities) on 2..16 processors with the adaptive home
migration protocol enabled (HM) and disabled (NoHM).  Expected shape:

* ASP and SOR improve substantially under HM (their row objects exhibit
  a lasting single-writer pattern but start round-robin-homed);
* NBody and TSP are essentially unchanged (no exploitable single-writer
  pattern), demonstrating the protocol's low overhead;
* execution time decreases with processors for every app.
"""

from __future__ import annotations

from typing import Callable

from repro.apps import Asp, NBody, Sor, Tsp
from repro.apps.base import DsmApplication
from repro.bench.report import format_table
from repro.bench.runner import run_once

#: Paper problem sizes (``full``) and scaled-down defaults (``quick``).
SIZES = {
    "quick": {
        "ASP": lambda: Asp(size=192),
        "SOR": lambda: Sor(size=192, iterations=10),
        "NBody": lambda: NBody(bodies=192, steps=3),
        "TSP": lambda: Tsp(cities=11),
    },
    "full": {
        "ASP": lambda: Asp(size=1024),
        "SOR": lambda: Sor(size=2048, iterations=10),
        "NBody": lambda: NBody(bodies=2048, steps=4),
        "TSP": lambda: Tsp(cities=12),
    },
}

PROCESSOR_COUNTS = (2, 4, 8, 16)
VARIANTS = {"NoHM": "NM", "HM": "AT"}


def run_figure2(
    mode: str = "quick",
    processor_counts: tuple[int, ...] = PROCESSOR_COUNTS,
    apps: dict[str, Callable[[], DsmApplication]] | None = None,
    verify: bool = True,
) -> dict:
    """Run the Figure-2 sweep; returns ``{app: {variant: {P: seconds}}}``
    plus message counts under ``"messages"``."""
    factories = apps if apps is not None else SIZES[mode]
    times: dict[str, dict[str, dict[int, float]]] = {}
    messages: dict[str, dict[str, dict[int, int]]] = {}
    for app_name, factory in factories.items():
        times[app_name] = {v: {} for v in VARIANTS}
        messages[app_name] = {v: {} for v in VARIANTS}
        for variant, policy in VARIANTS.items():
            for nodes in processor_counts:
                result = run_once(
                    factory(), policy=policy, nodes=nodes, verify=verify
                )
                times[app_name][variant][nodes] = result.execution_time_s
                messages[app_name][variant][nodes] = (
                    result.stats.total_messages()
                )
    return {"times": times, "messages": messages, "mode": mode}


def render_figure2(data: dict) -> str:
    """ASCII rendition of Figure 2 (one table per application)."""
    from repro.analysis.scaling import speedup_curve

    blocks = []
    for app_name, variants in data["times"].items():
        processor_counts = sorted(next(iter(variants.values())))
        headers = ["variant"] + [f"P={p}" for p in processor_counts]
        rows = []
        for variant, series in variants.items():
            rows.append(
                [variant] + [f"{series[p]:.3f}s" for p in processor_counts]
            )
        ratio_row = ["HM/NoHM"]
        for p in processor_counts:
            ratio = variants["HM"][p] / variants["NoHM"][p]
            ratio_row.append(f"{ratio:.2f}x")
        rows.append(ratio_row)
        curve = speedup_curve(variants["HM"])
        rows.append(
            ["HM speedup"] + [f"{curve[p]:.2f}x" for p in processor_counts]
        )
        messages = data.get("messages", {}).get(app_name)
        if messages:
            for variant in ("NoHM", "HM"):
                rows.append(
                    [f"{variant} msgs"]
                    + [f"{messages[variant][p]:,}" for p in processor_counts]
                )
        blocks.append(
            format_table(
                headers,
                rows,
                title=f"Figure 2 — {app_name} execution time "
                f"({data['mode']} sizes)",
            )
        )
    return "\n\n".join(blocks)
