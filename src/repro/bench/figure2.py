"""Figure 2: execution time vs number of processors, HM vs NoHM (§5.1).

The paper runs ASP (1024-node graph), SOR (2048x2048), NBody (2048
bodies) and TSP (12 cities) on 2..16 processors with the adaptive home
migration protocol enabled (HM) and disabled (NoHM).  Expected shape:

* ASP and SOR improve substantially under HM (their row objects exhibit
  a lasting single-writer pattern but start round-robin-homed);
* NBody and TSP are essentially unchanged (no exploitable single-writer
  pattern), demonstrating the protocol's low overhead;
* execution time decreases with processors for every app.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.base import DsmApplication
from repro.bench.executor import (
    ObsSpec,
    ProgressCallback,
    RunSpec,
    execute,
)
from repro.bench.report import format_table

#: Paper problem sizes (``full``) and scaled-down defaults (``quick``),
#: as picklable ``(app registry name, constructor kwargs)`` pairs.
SIZES = {
    "quick": {
        "ASP": ("asp", {"size": 192}),
        "SOR": ("sor", {"size": 192, "iterations": 10}),
        "NBody": ("nbody", {"bodies": 192, "steps": 3}),
        "TSP": ("tsp", {"cities": 11}),
    },
    "full": {
        "ASP": ("asp", {"size": 1024}),
        "SOR": ("sor", {"size": 2048, "iterations": 10}),
        "NBody": ("nbody", {"bodies": 2048, "steps": 4}),
        "TSP": ("tsp", {"cities": 12}),
    },
}

PROCESSOR_COUNTS = (2, 4, 8, 16)
VARIANTS = {"NoHM": "NM", "HM": "AT"}


def run_figure2(
    mode: str = "quick",
    processor_counts: tuple[int, ...] = PROCESSOR_COUNTS,
    apps: dict[str, Callable[[], DsmApplication]] | None = None,
    verify: bool = True,
    jobs: int | None = 1,
    obs: ObsSpec | None = None,
    progress: ProgressCallback | None = None,
) -> dict:
    """Run the Figure-2 sweep; returns ``{app: {variant: {P: seconds}}}``
    plus message counts under ``"messages"``.

    ``jobs`` fans the independent runs out over worker processes
    (``None`` = all cores); results are identical for any value.
    """
    if apps is not None:
        entries = {name: (factory, {}) for name, factory in apps.items()}
    else:
        entries = SIZES[mode]
    specs = [
        RunSpec(
            app=app,
            app_kwargs=kwargs,
            policy=policy,
            nodes=nodes,
            verify=verify,
            tag=(app_name, variant, nodes),
        )
        for app_name, (app, kwargs) in entries.items()
        for variant, policy in VARIANTS.items()
        for nodes in processor_counts
    ]
    times: dict[str, dict[str, dict[int, float]]] = {
        name: {v: {} for v in VARIANTS} for name in entries
    }
    messages: dict[str, dict[str, dict[int, int]]] = {
        name: {v: {} for v in VARIANTS} for name in entries
    }
    for outcome in execute(specs, jobs=jobs, obs=obs, progress=progress):
        app_name, variant, nodes = outcome.tag
        times[app_name][variant][nodes] = outcome.time_s
        messages[app_name][variant][nodes] = outcome.messages
    return {"times": times, "messages": messages, "mode": mode}


def render_figure2(data: dict) -> str:
    """ASCII rendition of Figure 2 (one table per application)."""
    from repro.analysis.scaling import speedup_curve

    blocks = []
    for app_name, variants in data["times"].items():
        processor_counts = sorted(next(iter(variants.values())))
        headers = ["variant"] + [f"P={p}" for p in processor_counts]
        rows = []
        for variant, series in variants.items():
            rows.append(
                [variant] + [f"{series[p]:.3f}s" for p in processor_counts]
            )
        ratio_row = ["HM/NoHM"]
        for p in processor_counts:
            ratio = variants["HM"][p] / variants["NoHM"][p]
            ratio_row.append(f"{ratio:.2f}x")
        rows.append(ratio_row)
        curve = speedup_curve(variants["HM"])
        rows.append(
            ["HM speedup"] + [f"{curve[p]:.2f}x" for p in processor_counts]
        )
        messages = data.get("messages", {}).get(app_name)
        if messages:
            for variant in ("NoHM", "HM"):
                rows.append(
                    [f"{variant} msgs"]
                    + [f"{messages[variant][p]:,}" for p in processor_counts]
                )
        blocks.append(
            format_table(
                headers,
                rows,
                title=f"Figure 2 — {app_name} execution time "
                f"({data['mode']} sizes)",
            )
        )
    return "\n\n".join(blocks)
