"""Parallel sweep execution: declarative run specs fanned out over processes.

Every figure and ablation sweep is a list of *independent, deterministic*
single-run configurations.  This module gives them one shared execution
layer:

* :class:`RunSpec` — a picklable, declarative description of one run
  (application registry name + constructor kwargs, policy, node count,
  notification mechanism, communication model, lock discipline, seed);
* :class:`RunOutcome` — the plain-data measurements one run produced
  (simulated time, message/byte counters, protocol events, per-run
  wall-clock), safe to ship across process boundaries;
* :func:`execute` — run a list of specs either in-process (``jobs=1``)
  or fanned out over a :class:`concurrent.futures.ProcessPoolExecutor`
  (``jobs>1``), always returning outcomes in spec order.

Determinism: each run builds a fresh simulated cluster from its spec, so
an outcome is a pure function of its spec — results are keyed by spec
index regardless of completion order, and ``execute(specs, jobs=1)`` is
bit-identical to ``execute(specs, jobs=N)`` (only the wall-clock fields
differ).  Specs whose application is given as an in-line callable (e.g.
a test lambda) may not survive pickling; :func:`execute` detects that and
falls back to sequential in-process execution, as it does when a worker
pool cannot be started at all.
"""

from __future__ import annotations

import os
import pickle
import time
from contextlib import nullcontext as _null_context
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Mapping

from repro.apps import (
    Asp,
    Lu,
    NBody,
    SingleWriterBenchmark,
    Sor,
    TokenRing,
    Tsp,
)
from repro.cluster.hockney import HockneyModel
from repro.core.policies import (
    AdaptiveThreshold,
    AdaptiveThresholdDecay,
    FixedThreshold,
)

#: Application factories by registry name (the picklable way to say
#: "an ``Asp(size=192)``" without capturing a closure).
APP_FACTORIES: dict[str, Callable[..., Any]] = {
    "asp": Asp,
    "sor": Sor,
    "nbody": NBody,
    "tsp": Tsp,
    "lu": Lu,
    "tokenring": TokenRing,
    "synthetic": SingleWriterBenchmark,
}

#: Parameterizable policy classes, for specs that carry ``policy_kwargs``
#: (e.g. ``AT`` with a non-default ``lam``, or the §6 decay heuristic).
POLICY_CLASSES: dict[str, Callable[..., Any]] = {
    "AT": AdaptiveThreshold,
    "ATD": AdaptiveThresholdDecay,
    "FT": FixedThreshold,
}


@dataclass(frozen=True)
class ObsSpec:
    """Declarative, picklable observability configuration for one run.

    All fields default to "off", so ``ObsSpec()`` is an explicit no-op.
    ``trace_path`` streams the run's trace events to a JSONL file via
    :class:`~repro.obs.export.JsonlTraceWriter` (``trace_kinds`` filters
    which event kinds, ``None`` = all); ``metrics`` builds a
    :class:`~repro.obs.metrics.MetricsRegistry` whose snapshot lands on
    the outcome; ``log_level`` enables a stderr
    :class:`~repro.obs.logging.RunLogger`; ``heartbeat_events`` installs
    a simulator heartbeat logging progress every N events (implies an
    info-level logger when ``log_level`` is unset).
    """

    trace_path: str | None = None
    trace_kinds: tuple[str, ...] | None = None
    metrics: bool = False
    log_level: str | None = None
    heartbeat_events: int | None = None

    @property
    def enabled(self) -> bool:
        """True when any instrument is switched on."""
        return (
            self.trace_path is not None
            or self.metrics
            or self.log_level is not None
            or self.heartbeat_events is not None
        )

    def for_run(self, index: int, total: int) -> "ObsSpec":
        """Derive the per-run variant for run ``index`` of ``total``.

        With more than one run sharing a ``trace_path``, each run's
        stream gets its own file: ``trace.jsonl`` becomes
        ``trace-000.jsonl``, ``trace-001.jsonl``, ...  (suffix inserted
        before the extension).  Single-run sweeps keep the path as-is.
        """
        if self.trace_path is None or total <= 1:
            return self
        root, ext = os.path.splitext(self.trace_path)
        return replace(self, trace_path=f"{root}-{index:03d}{ext}")


@dataclass(frozen=True)
class RunSpec:
    """Declarative description of one simulated run.

    ``app`` is either a key of :data:`APP_FACTORIES` (the picklable form,
    required for multi-process execution) or a zero-argument callable
    returning a :class:`~repro.apps.base.DsmApplication` (convenient in
    tests; forces the sequential fallback when it cannot be pickled).
    ``comm_model`` is either a registry name understood by
    :func:`repro.bench.runner.make_comm_model` or a
    :class:`~repro.cluster.hockney.HockneyModel` instance.  ``tag`` is an
    arbitrary picklable label the sweep uses to map outcomes back to its
    own result structure.
    """

    app: str | Callable[..., Any]
    app_kwargs: Mapping[str, Any] = field(default_factory=dict)
    policy: str = "AT"
    policy_kwargs: Mapping[str, Any] = field(default_factory=dict)
    nodes: int = 8
    mechanism: str = "forwarding-pointer"
    comm_model: str | HockneyModel = "fast-ethernet"
    protocol: str = "home-based"
    lock_discipline: str = "fifo"
    seed: int = 0
    nthreads: int | None = None
    verify: bool = True
    tag: Any = None
    obs: ObsSpec | None = None
    #: Barrier-epoch memory GC in the engines (results are identical
    #: either way; ``False`` is the memory-ablation leg).
    gc_enabled: bool = True
    #: Opt-in interconnect topology spec string (PROTOCOL.md §15), e.g.
    #: ``"hier:leaf=16:oversub=4"``; ``None`` keeps the ideal switch.
    topology: str | None = None
    #: Opt-in k-ary multicast relay for barrier releases.
    release_fanout: int | None = None


@dataclass(frozen=True)
class RunOutcome:
    """Plain-data measurements of one completed run.

    Everything here is JSON-friendly and picklable: the figure drivers
    assemble their result dictionaries from these fields instead of
    holding on to live :class:`~repro.gos.jvm.RunResult` objects (which
    carry the whole simulated cluster and cannot cross processes).
    ``wall_clock_s`` and ``telemetry`` are the only nondeterministic
    fields; everything else is a pure function of the spec.

    ``telemetry`` is populated when the spec carried an enabled
    :class:`ObsSpec`: ``{"phases": <PhaseTimer report>, "metrics":
    <MetricsRegistry snapshot> | None, "trace": {"path", "events"} |
    None}``.  It stays JSON-friendly and picklable, but the phase wall
    times (and the trace path) vary run to run, so
    :meth:`deterministic` strips it along with the wall clock.
    """

    tag: Any
    app: str
    policy: str
    mechanism: str
    nodes: int
    threads: int
    time_us: float
    wall_clock_s: float
    events_processed: int
    messages: int
    data_messages: int
    bytes_total: int
    data_bytes: int
    migrations: int
    breakdown: dict[str, int]
    events: dict[str, int]
    msg_count: dict[str, int]
    msg_bytes: dict[str, int]
    telemetry: dict | None = None
    #: Which simulation backend produced this outcome ("python" or
    #: "compiled") — diagnostic provenance, stripped from the
    #: deterministic view because both backends are bit-identical.
    backend: str = "python"

    @property
    def time_s(self) -> float:
        """Simulated execution time in seconds."""
        return self.time_us / 1e6

    def deterministic(self) -> dict:
        """All fields except the wall-clock, telemetry and backend — the
        bit-stable view two executions of the same spec must agree on
        exactly (whichever backend ran them)."""
        payload = self.__dict__.copy()
        payload.pop("wall_clock_s")
        payload.pop("telemetry")
        payload.pop("backend")
        return payload


def _make_app(spec: RunSpec) -> Any:
    """Instantiate the spec's application (registry name or callable)."""
    kwargs = dict(spec.app_kwargs)
    if callable(spec.app):
        return spec.app(**kwargs)
    try:
        factory = APP_FACTORIES[spec.app]
    except KeyError:
        raise ValueError(
            f"unknown application {spec.app!r}; "
            f"choose from {sorted(APP_FACTORIES)}"
        ) from None
    return factory(**kwargs)


def _make_policy(spec: RunSpec) -> Any:
    """Instantiate the spec's migration policy, honouring kwargs."""
    from repro.bench.runner import POLICIES, make_policy

    if spec.policy_kwargs:
        try:
            cls = POLICY_CLASSES[spec.policy]
        except KeyError:
            raise ValueError(
                f"policy {spec.policy!r} does not accept kwargs; "
                f"parameterizable policies: {sorted(POLICY_CLASSES)}"
            ) from None
        return cls(**dict(spec.policy_kwargs))
    if spec.policy in POLICIES:
        return make_policy(spec.policy)
    if spec.policy in POLICY_CLASSES:
        return POLICY_CLASSES[spec.policy]()
    raise ValueError(
        f"unknown policy {spec.policy!r}; choose from "
        f"{sorted(set(POLICIES) | set(POLICY_CLASSES))}"
    )


def _build_obs(obs: ObsSpec):
    """Realize an :class:`ObsSpec` into live instruments.

    Returns ``(metrics, writer, logger, timer)``; any of the first three
    may be ``None`` when the corresponding instrument is off.
    """
    from repro.obs.export import JsonlTraceWriter
    from repro.obs.logging import RunLogger
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.timers import PhaseTimer

    metrics = MetricsRegistry() if obs.metrics else None
    writer = (
        JsonlTraceWriter(obs.trace_path, kinds=obs.trace_kinds)
        if obs.trace_path is not None
        else None
    )
    level = obs.log_level
    if level is None and obs.heartbeat_events is not None:
        level = "info"  # a heartbeat without a logger would be silent
    logger = RunLogger(level=level) if level is not None else None
    return metrics, writer, logger, PhaseTimer()


def run_spec(spec: RunSpec) -> RunOutcome:
    """Realize and run one :class:`RunSpec` in the current process.

    This is the worker function :func:`execute` fans out; it is also the
    entire sequential path, so both modes share one code path per run.
    When ``spec.obs`` is enabled, the run is instrumented and the
    resulting :attr:`RunOutcome.telemetry` carries phase timings, the
    metrics snapshot and the trace-file summary.
    """
    from repro import _kernel
    from repro.bench.runner import make_comm_model, make_mechanism
    from repro.gos.jvm import DistributedJVM

    obs = spec.obs if spec.obs is not None and spec.obs.enabled else None
    if obs is None:
        metrics = writer = logger = timer = None
    else:
        metrics, writer, logger, timer = _build_obs(obs)
    if metrics is not None:
        # Backend provenance in the metrics snapshot: 1.0 when the
        # compiled kernel ran this spec, 0.0 for pure Python.
        metrics.gauge("run_backend_compiled").set(
            1.0 if _kernel.backend_name() == "compiled" else 0.0
        )

    start = time.perf_counter()
    telemetry: dict | None = None
    try:
        with timer.phase("build") if timer else _null_context():
            app = _make_app(spec)
            comm_model = (
                make_comm_model(spec.comm_model)
                if isinstance(spec.comm_model, str)
                else spec.comm_model
            )
            jvm = DistributedJVM(
                nodes=spec.nodes,
                comm_model=comm_model,
                policy=(
                    None if spec.protocol == "homeless" else _make_policy(spec)
                ),
                mechanism=make_mechanism(spec.mechanism),
                protocol=spec.protocol,
                lock_discipline=spec.lock_discipline,
                seed=spec.seed,
                tracer=writer,
                metrics=metrics,
                logger=logger,
                heartbeat_events=obs.heartbeat_events if obs else None,
                gc_enabled=spec.gc_enabled,
                topology=spec.topology,
                release_fanout=spec.release_fanout,
            )
        with timer.phase("simulate") if timer else _null_context():
            result = jvm.run(app, nthreads=spec.nthreads)
        if spec.verify:
            with timer.phase("verify") if timer else _null_context():
                app.verify(result.output)
    finally:
        if writer is not None:
            writer.close()
    if obs is not None:
        telemetry = {
            "backend": _kernel.backend_name(),
            "phases": timer.report(),
            "metrics": metrics.snapshot() if metrics is not None else None,
            "trace": (
                {"path": obs.trace_path, "events": writer.events_written}
                if writer is not None
                else None
            ),
        }
    stats = result.stats
    return RunOutcome(
        tag=spec.tag,
        app=result.app_name,
        policy=result.policy_name,
        mechanism=result.mechanism_name,
        nodes=result.nnodes,
        threads=result.nthreads,
        time_us=result.execution_time_us,
        wall_clock_s=time.perf_counter() - start,
        events_processed=result.gos.sim.events_processed,
        messages=stats.total_messages(),
        data_messages=stats.data_messages(),
        bytes_total=stats.total_bytes(),
        data_bytes=stats.data_bytes(),
        migrations=result.migrations,
        breakdown=stats.breakdown(),
        events=dict(stats.events),
        msg_count={cat.value: n for cat, n in stats.msg_count.items()},
        msg_bytes={cat.value: n for cat, n in stats.msg_bytes.items()},
        telemetry=telemetry,
        backend=_kernel.backend_name(),
    )


def default_jobs() -> int:
    """CPU-count-aware default worker count (respects CPU affinity)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


#: Signature of :func:`execute`'s ``progress`` callback:
#: ``progress(done, total, outcome)`` after each run completes.
ProgressCallback = Callable[[int, int, RunOutcome], None]


def _execute_sequential(
    specs: list[RunSpec], progress: ProgressCallback | None = None
) -> list[RunOutcome]:
    """In-process execution, in order — the ``jobs=1`` / fallback path."""
    outcomes = []
    total = len(specs)
    for spec in specs:
        outcome = run_spec(spec)
        outcomes.append(outcome)
        if progress is not None:
            progress(len(outcomes), total, outcome)
    return outcomes


def execute(
    specs: Iterable[RunSpec],
    jobs: int | None = None,
    obs: ObsSpec | None = None,
    progress: ProgressCallback | None = None,
) -> list[RunOutcome]:
    """Run every spec; return outcomes in spec order.

    ``jobs=None`` means :func:`default_jobs` (all usable cores);
    ``jobs=1`` runs sequentially in-process.  For ``jobs>1`` the specs
    are fanned out over a process pool; completion order does not matter
    because results are collected by spec index.  If the specs cannot be
    pickled (in-line application callables) or the pool cannot be
    started (restricted environments), execution silently falls back to
    the sequential path — the results are identical either way.

    ``obs`` applies one observability configuration to every spec that
    does not already carry its own (per-run trace files are derived via
    :meth:`ObsSpec.for_run`).  ``progress`` is called as
    ``progress(done, total, outcome)`` after each run finishes, in
    completion order — use it for live heartbeats and for harvesting
    telemetry incrementally.  Neither affects the deterministic fields
    of the outcomes.
    """
    spec_list = list(specs)
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if obs is not None and obs.enabled:
        total = len(spec_list)
        spec_list = [
            spec if spec.obs is not None
            else replace(spec, obs=obs.for_run(i, total))
            for i, spec in enumerate(spec_list)
        ]
    jobs = min(jobs, len(spec_list))
    if jobs <= 1:
        return _execute_sequential(spec_list, progress)
    try:
        pickle.dumps(spec_list)
    except Exception:
        return _execute_sequential(spec_list, progress)
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(run_spec, spec): i
                for i, spec in enumerate(spec_list)
            }
            results: list[RunOutcome | None] = [None] * len(spec_list)
            done = 0
            for future in as_completed(futures):
                outcome = future.result()
                results[futures[future]] = outcome
                done += 1
                if progress is not None:
                    progress(done, len(spec_list), outcome)
            return results  # type: ignore[return-value]
    except (OSError, BrokenProcessPool):
        return _execute_sequential(spec_list, progress)
