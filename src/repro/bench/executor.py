"""Parallel sweep execution: declarative run specs fanned out over processes.

Every figure and ablation sweep is a list of *independent, deterministic*
single-run configurations.  This module gives them one shared execution
layer:

* :class:`RunSpec` — a picklable, declarative description of one run
  (application registry name + constructor kwargs, policy, node count,
  notification mechanism, communication model, lock discipline, seed);
* :class:`RunOutcome` — the plain-data measurements one run produced
  (simulated time, message/byte counters, protocol events, per-run
  wall-clock), safe to ship across process boundaries;
* :func:`execute` — run a list of specs either in-process (``jobs=1``)
  or fanned out over a :class:`concurrent.futures.ProcessPoolExecutor`
  (``jobs>1``), always returning outcomes in spec order.

Determinism: each run builds a fresh simulated cluster from its spec, so
an outcome is a pure function of its spec — results are keyed by spec
index regardless of completion order, and ``execute(specs, jobs=1)`` is
bit-identical to ``execute(specs, jobs=N)`` (only the wall-clock fields
differ).  Specs whose application is given as an in-line callable (e.g.
a test lambda) may not survive pickling; :func:`execute` detects that and
falls back to sequential in-process execution, as it does when a worker
pool cannot be started at all.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.apps import (
    Asp,
    Lu,
    NBody,
    SingleWriterBenchmark,
    Sor,
    TokenRing,
    Tsp,
)
from repro.cluster.hockney import HockneyModel
from repro.core.policies import (
    AdaptiveThreshold,
    AdaptiveThresholdDecay,
    FixedThreshold,
)

#: Application factories by registry name (the picklable way to say
#: "an ``Asp(size=192)``" without capturing a closure).
APP_FACTORIES: dict[str, Callable[..., Any]] = {
    "asp": Asp,
    "sor": Sor,
    "nbody": NBody,
    "tsp": Tsp,
    "lu": Lu,
    "tokenring": TokenRing,
    "synthetic": SingleWriterBenchmark,
}

#: Parameterizable policy classes, for specs that carry ``policy_kwargs``
#: (e.g. ``AT`` with a non-default ``lam``, or the §6 decay heuristic).
POLICY_CLASSES: dict[str, Callable[..., Any]] = {
    "AT": AdaptiveThreshold,
    "ATD": AdaptiveThresholdDecay,
    "FT": FixedThreshold,
}


@dataclass(frozen=True)
class RunSpec:
    """Declarative description of one simulated run.

    ``app`` is either a key of :data:`APP_FACTORIES` (the picklable form,
    required for multi-process execution) or a zero-argument callable
    returning a :class:`~repro.apps.base.DsmApplication` (convenient in
    tests; forces the sequential fallback when it cannot be pickled).
    ``comm_model`` is either a registry name understood by
    :func:`repro.bench.runner.make_comm_model` or a
    :class:`~repro.cluster.hockney.HockneyModel` instance.  ``tag`` is an
    arbitrary picklable label the sweep uses to map outcomes back to its
    own result structure.
    """

    app: str | Callable[..., Any]
    app_kwargs: Mapping[str, Any] = field(default_factory=dict)
    policy: str = "AT"
    policy_kwargs: Mapping[str, Any] = field(default_factory=dict)
    nodes: int = 8
    mechanism: str = "forwarding-pointer"
    comm_model: str | HockneyModel = "fast-ethernet"
    protocol: str = "home-based"
    lock_discipline: str = "fifo"
    seed: int = 0
    nthreads: int | None = None
    verify: bool = True
    tag: Any = None


@dataclass(frozen=True)
class RunOutcome:
    """Plain-data measurements of one completed run.

    Everything here is JSON-friendly and picklable: the figure drivers
    assemble their result dictionaries from these fields instead of
    holding on to live :class:`~repro.gos.jvm.RunResult` objects (which
    carry the whole simulated cluster and cannot cross processes).
    ``wall_clock_s`` is the only nondeterministic field; everything else
    is a pure function of the spec.
    """

    tag: Any
    app: str
    policy: str
    mechanism: str
    nodes: int
    threads: int
    time_us: float
    wall_clock_s: float
    events_processed: int
    messages: int
    data_messages: int
    bytes_total: int
    data_bytes: int
    migrations: int
    breakdown: dict[str, int]
    events: dict[str, int]
    msg_count: dict[str, int]
    msg_bytes: dict[str, int]

    @property
    def time_s(self) -> float:
        """Simulated execution time in seconds."""
        return self.time_us / 1e6

    def deterministic(self) -> dict:
        """All fields except the wall-clock — the bit-stable view two
        executions of the same spec must agree on exactly."""
        payload = self.__dict__.copy()
        payload.pop("wall_clock_s")
        return payload


def _make_app(spec: RunSpec) -> Any:
    """Instantiate the spec's application (registry name or callable)."""
    kwargs = dict(spec.app_kwargs)
    if callable(spec.app):
        return spec.app(**kwargs)
    try:
        factory = APP_FACTORIES[spec.app]
    except KeyError:
        raise ValueError(
            f"unknown application {spec.app!r}; "
            f"choose from {sorted(APP_FACTORIES)}"
        ) from None
    return factory(**kwargs)


def _make_policy(spec: RunSpec) -> Any:
    """Instantiate the spec's migration policy, honouring kwargs."""
    from repro.bench.runner import POLICIES, make_policy

    if spec.policy_kwargs:
        try:
            cls = POLICY_CLASSES[spec.policy]
        except KeyError:
            raise ValueError(
                f"policy {spec.policy!r} does not accept kwargs; "
                f"parameterizable policies: {sorted(POLICY_CLASSES)}"
            ) from None
        return cls(**dict(spec.policy_kwargs))
    if spec.policy in POLICIES:
        return make_policy(spec.policy)
    if spec.policy in POLICY_CLASSES:
        return POLICY_CLASSES[spec.policy]()
    raise ValueError(
        f"unknown policy {spec.policy!r}; choose from "
        f"{sorted(set(POLICIES) | set(POLICY_CLASSES))}"
    )


def run_spec(spec: RunSpec) -> RunOutcome:
    """Realize and run one :class:`RunSpec` in the current process.

    This is the worker function :func:`execute` fans out; it is also the
    entire sequential path, so both modes share one code path per run.
    """
    from repro.bench.runner import make_comm_model, make_mechanism
    from repro.gos.jvm import DistributedJVM

    start = time.perf_counter()
    app = _make_app(spec)
    comm_model = (
        make_comm_model(spec.comm_model)
        if isinstance(spec.comm_model, str)
        else spec.comm_model
    )
    jvm = DistributedJVM(
        nodes=spec.nodes,
        comm_model=comm_model,
        policy=None if spec.protocol == "homeless" else _make_policy(spec),
        mechanism=make_mechanism(spec.mechanism),
        protocol=spec.protocol,
        lock_discipline=spec.lock_discipline,
        seed=spec.seed,
    )
    result = jvm.run(app, nthreads=spec.nthreads)
    if spec.verify:
        app.verify(result.output)
    stats = result.stats
    return RunOutcome(
        tag=spec.tag,
        app=result.app_name,
        policy=result.policy_name,
        mechanism=result.mechanism_name,
        nodes=result.nnodes,
        threads=result.nthreads,
        time_us=result.execution_time_us,
        wall_clock_s=time.perf_counter() - start,
        events_processed=result.gos.sim.events_processed,
        messages=stats.total_messages(),
        data_messages=stats.data_messages(),
        bytes_total=stats.total_bytes(),
        data_bytes=stats.data_bytes(),
        migrations=result.migrations,
        breakdown=stats.breakdown(),
        events=dict(stats.events),
        msg_count={cat.value: n for cat, n in stats.msg_count.items()},
        msg_bytes={cat.value: n for cat, n in stats.msg_bytes.items()},
    )


def default_jobs() -> int:
    """CPU-count-aware default worker count (respects CPU affinity)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _execute_sequential(specs: list[RunSpec]) -> list[RunOutcome]:
    """In-process execution, in order — the ``jobs=1`` / fallback path."""
    return [run_spec(spec) for spec in specs]


def execute(
    specs: Iterable[RunSpec], jobs: int | None = None
) -> list[RunOutcome]:
    """Run every spec; return outcomes in spec order.

    ``jobs=None`` means :func:`default_jobs` (all usable cores);
    ``jobs=1`` runs sequentially in-process.  For ``jobs>1`` the specs
    are fanned out over a process pool; completion order does not matter
    because results are collected by spec index.  If the specs cannot be
    pickled (in-line application callables) or the pool cannot be
    started (restricted environments), execution silently falls back to
    the sequential path — the results are identical either way.
    """
    spec_list = list(specs)
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    jobs = min(jobs, len(spec_list))
    if jobs <= 1:
        return _execute_sequential(spec_list)
    try:
        pickle.dumps(spec_list)
    except Exception:
        return _execute_sequential(spec_list)
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(run_spec, spec) for spec in spec_list]
            return [future.result() for future in futures]
    except (OSError, BrokenProcessPool):
        return _execute_sequential(spec_list)
