"""Figure 5: sensitivity/robustness of NM, FT1, FT2 and AT (§5.2).

The synthetic single-writer benchmark runs with eight working threads on
the nodes other than node 0 (all synchronization remote, §5.2) while the
repetition ``r`` of the single-writer pattern sweeps {2, 4, 8, 16}.

* Figure 5a: execution time per repetition, normalized to the largest
  protocol's time at that repetition;
* Figure 5b: data message counts broken into ``obj`` (fault-in without
  migration), ``mig`` (fault-in with migration), ``diff`` (diff
  propagation) and ``redir`` (home redirection), normalized per
  repetition; synchronization messages excluded, as in the paper.
"""

from __future__ import annotations

from repro.analysis.metrics import normalize_map
from repro.bench.executor import (
    ObsSpec,
    ProgressCallback,
    RunSpec,
    execute,
)
from repro.bench.report import format_bar_groups, format_table

REPETITIONS = (2, 4, 8, 16)
PROTOCOLS = ("NM", "FT1", "FT2", "AT")

#: 8 working threads on non-master nodes => 9-node cluster (§5.2).
NODES = 9
TOTAL_UPDATES = {"quick": 512, "full": 4096}


def run_figure5(
    mode: str = "quick",
    repetitions: tuple[int, ...] = REPETITIONS,
    total_updates: int | None = None,
    verify: bool = True,
    jobs: int | None = 1,
    obs: ObsSpec | None = None,
    progress: ProgressCallback | None = None,
) -> dict:
    """Run the Figure-5 sweep.

    Returns::

        {
          "times": {r: {protocol: seconds}},
          "normalized_times": {r: {protocol: 0..1}},
          "breakdowns": {r: {protocol: {obj, mig, diff, redir}}},
          "normalized_messages": {r: {protocol: 0..1}},
        }

    ``jobs`` fans the runs out over worker processes.
    """
    updates = (
        total_updates if total_updates is not None else TOTAL_UPDATES[mode]
    )
    specs = [
        RunSpec(
            app="synthetic",
            app_kwargs={"total_updates": updates, "repetition": repetition},
            policy=protocol,
            nodes=NODES,
            verify=verify,
            tag=(repetition, protocol),
        )
        for repetition in repetitions
        for protocol in PROTOCOLS
    ]
    times: dict[int, dict[str, float]] = {r: {} for r in repetitions}
    breakdowns: dict[int, dict[str, dict[str, int]]] = {
        r: {} for r in repetitions
    }
    for outcome in execute(specs, jobs=jobs, obs=obs, progress=progress):
        repetition, protocol = outcome.tag
        times[repetition][protocol] = outcome.time_s
        breakdowns[repetition][protocol] = outcome.breakdown
    normalized_times = {r: normalize_map(ts) for r, ts in times.items()}
    message_totals = {
        r: {p: float(sum(b.values())) for p, b in per_proto.items()}
        for r, per_proto in breakdowns.items()
    }
    normalized_messages = {
        r: normalize_map(totals) for r, totals in message_totals.items()
    }
    return {
        "times": times,
        "normalized_times": normalized_times,
        "breakdowns": breakdowns,
        "normalized_messages": normalized_messages,
        "mode": mode,
    }


def render_figure5(data: dict) -> str:
    """ASCII rendition of Figures 5a and 5b."""
    groups_5a = {
        f"r={r}": bars for r, bars in data["normalized_times"].items()
    }
    part_a = format_bar_groups(
        groups_5a,
        title="Figure 5a — normalized execution time per repetition",
    )
    headers = ["r", "protocol", "obj", "mig", "diff", "redir", "total",
               "normalized"]
    rows = []
    for r, per_proto in data["breakdowns"].items():
        for protocol, b in per_proto.items():
            total = sum(b.values())
            rows.append(
                [
                    str(r),
                    protocol,
                    b["obj"],
                    b["mig"],
                    b["diff"],
                    b["redir"],
                    total,
                    f"{data['normalized_messages'][r][protocol] * 100:.1f}%",
                ]
            )
    part_b = format_table(
        headers,
        rows,
        title="Figure 5b — message breakdown per repetition "
        "(sync messages excluded)",
    )
    return part_a + "\n\n" + part_b
