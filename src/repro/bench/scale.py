"""Scale-tier crossover lab: where do the §3.2 mechanisms trade places?

The paper adopts the forwarding pointer after a qualitative argument —
broadcast is "too expensive" and the home manager "a bottleneck" — at
the 16-node scale of its cluster.  Both costs are *functions of N*: the
flat broadcast burst is O(N) serialized messages per migration, the
single manager concentrates every update and query at one NIC, and the
forwarding chain's redirect tax is roughly scale-free.  This lab sweeps
``nodes x mechanism x policy`` over the migration-churn synthetic
workload (fixed per-worker updates, so the offered load per node is
constant) and reports, per policy, the smallest N at which each
alternative beats the forwarding pointer on simulated time — the
*crossover point* — alongside the message and redirect counts that
explain it.

``run_crossover`` produces the raw grid; ``render_crossover`` the
markdown table checked into CI artifacts; the ``repro-bench sweep``
target drives both.
"""

from __future__ import annotations

from repro.bench.executor import ObsSpec, ProgressCallback, RunSpec, execute

#: Node counts of the quick grid (CI artifact) and the full grid.
QUICK_NODES = (8, 16, 32, 64)
FULL_NODES = (8, 16, 32, 64, 128, 256)

#: Per-worker update count: total_updates scales as workers * this, so
#: every N offers the same per-node load and times are comparable.
UPDATES_PER_WORKER = 8

#: The §3.2 repetition knob, churn-heavy so migrations (and therefore
#: notification traffic) actually happen under migrating policies.
REPETITION = 8

#: Baseline mechanism the crossover is measured against.
BASELINE = "forwarding-pointer"


def _mechanisms(nodes: int) -> list[str]:
    """Mechanism spec strings meaningful at ``nodes`` nodes.

    The parameterised variants (multicast relay, sharded directory) are
    the large-N designs; they are skipped where the cluster is too small
    for their parameters to be distinct from the flat variants.
    """
    mechs = [BASELINE, "broadcast", "home-manager"]
    if nodes > 4:
        mechs.append("broadcast:fanout=4")
        mechs.append("home-manager:shards=4")
    return mechs


def run_crossover(
    nodes: tuple[int, ...] = QUICK_NODES,
    policies: tuple[str, ...] = ("NM", "AT"),
    jobs: int | None = None,
    obs: ObsSpec | None = None,
    progress: ProgressCallback | None = None,
) -> dict:
    """The full ``nodes x mechanism x policy`` grid plus crossover points.

    NM is the no-migration control: with zero migrations every mechanism
    must coincide (their costs are all migration-triggered), so any NM
    spread is a harness bug, not a finding.  The migrating policies are
    where the mechanisms separate.
    """
    specs = []
    for policy in policies:
        for n in nodes:
            workers = n - 1 if n > 1 else 1
            for mech in _mechanisms(n):
                specs.append(
                    RunSpec(
                        app="synthetic",
                        app_kwargs={
                            "total_updates": UPDATES_PER_WORKER * workers,
                            "repetition": REPETITION,
                        },
                        policy=policy,
                        nodes=n,
                        mechanism=mech,
                        tag=(policy, n, mech),
                    )
                )
    grid: dict[str, dict[str, dict[int, dict]]] = {p: {} for p in policies}
    for outcome in execute(specs, jobs=jobs, obs=obs, progress=progress):
        policy, n, mech = outcome.tag
        grid[policy].setdefault(mech, {})[n] = {
            "time_us": outcome.time_us,
            "messages": outcome.messages,
            "bytes": outcome.bytes_total,
            "migrations": outcome.migrations,
            "redirections": outcome.events.get("redir", 0),
        }
    crossover: dict[str, dict[str, int | None]] = {}
    for policy in policies:
        crossover[policy] = {}
        base_rows = grid[policy][BASELINE]
        for mech, rows in grid[policy].items():
            if mech == BASELINE:
                continue
            winning = [
                n for n in sorted(rows)
                if rows[n]["time_us"] < base_rows[n]["time_us"]
            ]
            crossover[policy][mech] = winning[0] if winning else None
    return {
        "workload": {
            "app": "synthetic",
            "updates_per_worker": UPDATES_PER_WORKER,
            "repetition": REPETITION,
        },
        "nodes": list(nodes),
        "policies": list(policies),
        "baseline": BASELINE,
        "grid": grid,
        "crossover": crossover,
    }


def render_crossover(data: dict) -> str:
    """Markdown report: one time table per policy + the crossover verdict."""
    lines = ["# Mechanism crossover study", ""]
    lines.append(
        f"Workload: synthetic single-writer, "
        f"{data['workload']['updates_per_worker']} updates/worker, "
        f"r={data['workload']['repetition']}; baseline "
        f"{data['baseline']}."
    )
    nodes = data["nodes"]
    for policy in data["policies"]:
        grid = data["grid"][policy]
        lines.append("")
        lines.append(f"## Policy {policy}")
        lines.append("")
        header = "| mechanism | " + " | ".join(f"N={n}" for n in nodes) + " |"
        lines.append(header)
        lines.append("|" + "---|" * (len(nodes) + 1))
        for mech in sorted(grid, key=lambda m: (m != data["baseline"], m)):
            cells = []
            for n in nodes:
                row = grid[mech].get(n)
                if row is None:
                    cells.append("—")
                    continue
                cell = f"{row['time_us'] / 1e6:.4f}s"
                if row["migrations"]:
                    cell += f" ({row['migrations']}m"
                    if row["redirections"]:
                        cell += f", {row['redirections']}r"
                    cell += ")"
                cells.append(cell)
            lines.append(f"| {mech} | " + " | ".join(cells) + " |")
        lines.append("")
        for mech, n in sorted(data["crossover"][policy].items()):
            if n is None:
                lines.append(
                    f"- {mech}: never beats {data['baseline']} "
                    f"on this grid"
                )
            else:
                lines.append(
                    f"- {mech}: beats {data['baseline']} from N={n}"
                )
    lines.append("")
    return "\n".join(lines)
