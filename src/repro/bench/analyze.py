"""Offline SLO analytics over causal span traces (``repro-bench analyze``).

Consumes a JSONL trace recorded with span kinds enabled
(``repro.obs.spans``) and reconstructs, in virtual time:

* **Per-kind latency** — a deterministic
  :class:`~repro.obs.hist.LatencyHistogram` per operation kind with
  exact-rank p50/p95/p99/p999;
* **Critical paths** — which component dominates the slowest read
  misses: the forwarding chain (summed ``redirect_hop`` child spans) or
  the residual home-queue + network time;
* **Chain lengths** — redirection hops per fault, the paper's ``R``
  signal seen end-to-end;
* **Migration timelines** — per object, the Eq-2 threshold trajectory
  at every decision vs. the migrations that actually fired;
* **Epoch throughput** — spans closed per barrier epoch and ops/sec of
  simulated time.

The report is a plain dict of JSON types and is **backend-independent**
by construction: nothing from the trace meta line (backend name, kernel
build hash, file path) enters it, so the CI parity job can diff the
markdown of a python-backend run against a compiled-backend run
byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.obs.export import iter_trace
from repro.obs.hist import EpochSeries, LatencyHistogram
from repro.bench.report import format_table

__all__ = ["analyze_trace", "render_analysis", "REPORT_SCHEMA"]

REPORT_SCHEMA = "repro-slo-report-v1"

#: Stable display/report order for span kinds.
KIND_ORDER = (
    "request",
    "read_miss",
    "write_miss",
    "migration",
    "redirect_hop",
    "diff_flush",
    "ship",
    "lock_acquire",
    "lock_release",
    "barrier_wait",
)

#: Kinds counted as application-facing operations for epoch throughput
#: (system-internal children — hops, migrations — are excluded).
THROUGHPUT_KINDS = frozenset(
    {"request", "read_miss", "write_miss", "diff_flush", "ship",
     "lock_acquire", "lock_release"}
)

#: Exemplar critical paths listed for the slowest read misses.
MAX_CRITICAL_PATHS = 5
#: Objects listed in the migration-timeline section.
MAX_MIGRATION_OBJECTS = 8
#: Rows in the hottest object's decision timeline.
MAX_TIMELINE_ROWS = 12


@dataclass
class _Span:
    op: int
    op_kind: str
    oid: int
    node: int
    open_us: float
    parent: int | None
    close_us: float | None = None
    round_no: int | None = None  # barrier_wait spans only
    children: list[int] = field(default_factory=list)

    @property
    def duration(self) -> float | None:
        if self.close_us is None:
            return None
        return self.close_us - self.open_us


def _load(path: str):
    """One streaming pass: spans, decision/migration events, counts."""
    spans: dict[int, _Span] = {}
    double_close = 0
    unmatched_close = 0
    decisions: dict[int, list[dict]] = {}
    migrations: dict[int, list[dict]] = {}
    total_events = 0
    for event in iter_trace(path):
        total_events += 1
        kind = event.kind
        if kind == "span_open":
            d = event.detail
            op = d["op"]
            span = _Span(
                op=op,
                op_kind=d.get("op_kind", "?"),
                oid=event.oid,
                node=event.node,
                open_us=event.time_us,
                parent=d.get("parent"),
                round_no=d.get("round"),
            )
            spans[op] = span
            parent = spans.get(span.parent) if span.parent is not None else None
            if parent is not None:
                parent.children.append(op)
        elif kind == "span_close":
            span = spans.get(event.detail["op"])
            if span is None:
                unmatched_close += 1
            elif span.close_us is not None:
                double_close += 1
            else:
                span.close_us = event.time_us
        elif kind == "decision":
            d = event.detail
            decisions.setdefault(event.oid, []).append(
                {
                    "t": event.time_us,
                    "threshold": d.get("threshold"),
                    "consecutive": d.get("consecutive"),
                    "requester": d.get("requester"),
                    "migrated": bool(d.get("migrated")),
                }
            )
        elif kind == "migration":
            d = event.detail
            migrations.setdefault(event.oid, []).append(
                {
                    "t": event.time_us,
                    "old_home": d.get("old_home"),
                    "new_home": d.get("new_home"),
                    "frozen_threshold": d.get("frozen_threshold"),
                }
            )
    return spans, decisions, migrations, total_events, double_close, unmatched_close


def _critical_path(span: _Span, spans: dict[int, _Span]) -> dict:
    """Decompose one fault span: forwarding chain vs. everything else."""
    redirect_us = 0.0
    hops = 0
    migration_us = None
    for child_op in span.children:
        child = spans.get(child_op)
        if child is None or child.duration is None:
            continue
        if child.op_kind == "redirect_hop":
            redirect_us += child.duration
            hops += 1
        elif child.op_kind == "migration":
            migration_us = child.duration
    total = span.duration or 0.0
    residual = max(0.0, total - redirect_us)
    return {
        "oid": span.oid,
        "node": span.node,
        "open_us": span.open_us,
        "total_us": total,
        "hops": hops,
        "redirect_us": redirect_us,
        "residual_us": residual,
        "migration_us": migration_us,
        "dominant": "forwarding-chain" if redirect_us > residual
        else "home+network",
    }


def analyze_trace(path: str) -> dict:
    """Build the SLO report dict for one span-enabled trace file."""
    (spans, decisions, migrations, total_events,
     double_close, unmatched_close) = _load(path)

    completed = [s for s in spans.values() if s.close_us is not None]
    unclosed = [s for s in spans.values() if s.close_us is None]
    orphans = sum(
        1 for s in spans.values()
        if s.parent is not None and s.parent not in spans
    )

    # -- per-kind latency ---------------------------------------------------
    hists: dict[str, LatencyHistogram] = {}
    for span in completed:
        hists.setdefault(span.op_kind, LatencyHistogram()).record(
            span.duration
        )
    latency = {
        kind: hists[kind].summary()
        for kind in KIND_ORDER
        if kind in hists
    }
    for kind in sorted(hists):  # kinds outside the canonical order
        if kind not in latency:
            latency[kind] = hists[kind].summary()

    # -- chain lengths ------------------------------------------------------
    chain_counts: dict[int, int] = {}
    faults = [
        s for s in completed if s.op_kind in ("read_miss", "write_miss")
    ]
    fault_chains: list[tuple[float, int]] = []  # (close_us, hops)
    for span in faults:
        hops = sum(
            1
            for child_op in span.children
            if spans.get(child_op) is not None
            and spans[child_op].op_kind == "redirect_hop"
        )
        chain_counts[hops] = chain_counts.get(hops, 0) + 1
        fault_chains.append((span.close_us, hops))
    fault_chains.sort()

    # -- critical paths of the slowest read misses --------------------------
    read_misses = [s for s in completed if s.op_kind == "read_miss"]
    read_hist = hists.get("read_miss")
    p99_value = read_hist.quantile(0.99) if read_hist is not None else None
    slowest = sorted(
        read_misses, key=lambda s: (-s.duration, s.open_us, s.op)
    )[:MAX_CRITICAL_PATHS]
    critical_paths = [_critical_path(s, spans) for s in slowest]

    # -- migration timelines ------------------------------------------------
    hot_oids = sorted(
        migrations, key=lambda oid: (-len(migrations[oid]), oid)
    )[:MAX_MIGRATION_OBJECTS]
    migration_objects = []
    for oid in hot_oids:
        migs = migrations[oid]
        decs = decisions.get(oid, [])
        thresholds = [
            d["threshold"] for d in decs if d["threshold"] is not None
        ]
        migration_objects.append(
            {
                "oid": oid,
                "migrations": len(migs),
                "decisions": len(decs),
                "threshold_first": thresholds[0] if thresholds else None,
                "threshold_last": thresholds[-1] if thresholds else None,
                "threshold_min": min(thresholds) if thresholds else None,
                "threshold_max": max(thresholds) if thresholds else None,
                "path": [migs[0]["old_home"]] + [m["new_home"] for m in migs]
                if migs else [],
            }
        )
    hottest_timeline = []
    if hot_oids:
        for dec in decisions.get(hot_oids[0], []):
            hottest_timeline.append(dec)

    # -- epoch throughput ---------------------------------------------------
    # Epoch i ends when every thread's barrier_wait span for round i has
    # closed; ops are app-facing spans closed within the epoch window.
    epoch_series = EpochSeries()
    epochs: list[dict] = []
    barrier_rounds: dict[int, float] = {}
    for span in completed:
        if span.op_kind == "barrier_wait" and span.round_no is not None:
            prev = barrier_rounds.get(span.round_no)
            if prev is None or span.close_us > prev:
                barrier_rounds[span.round_no] = span.close_us
    if barrier_rounds:
        op_closes = sorted(
            s.close_us for s in completed if s.op_kind in THROUGHPUT_KINDS
        )
        boundaries = sorted(barrier_rounds.items())
        start = 0.0
        idx = 0
        for round_no, end in boundaries:
            n = 0
            while idx < len(op_closes) and op_closes[idx] <= end:
                n += 1
                idx += 1
            window = end - start
            epoch_series.note(round_no, n)
            epochs.append(
                {
                    "epoch": round_no,
                    "end_us": end,
                    "ops": n,
                    "ops_per_s": (n / (window / 1e6)) if window > 0 else None,
                }
            )
            start = end
        tail = len(op_closes) - idx
        if tail:
            epochs.append(
                {"epoch": None, "end_us": None, "ops": tail,
                 "ops_per_s": None}
            )

    # -- per-epoch fan-out --------------------------------------------------
    # The release burst depth is visible as the spread between the first
    # and last barrier_wait close of one round: every waiter is released
    # by the same barrier manager, so the spread is exactly how deep the
    # release fan-out serialized (O(N) at one NIC for the flat burst,
    # O(log_k N) under the multicast relay).  Redirect chain lengths are
    # bucketed into the same epoch windows, giving chain growth over the
    # run instead of one aggregate.
    fanout_epochs: list[dict] = []
    rounds: dict[int, list[float]] = {}
    for span in completed:
        if span.op_kind == "barrier_wait" and span.round_no is not None:
            rounds.setdefault(span.round_no, []).append(span.close_us)
    chain_idx = 0
    for round_no in sorted(rounds):
        closes = sorted(rounds[round_no])
        end = closes[-1]
        hops_in_epoch: list[int] = []
        while chain_idx < len(fault_chains) and fault_chains[chain_idx][0] <= end:
            hops_in_epoch.append(fault_chains[chain_idx][1])
            chain_idx += 1
        fanout_epochs.append(
            {
                "epoch": round_no,
                "parties": len(closes),
                "release_first_us": closes[0],
                "release_last_us": end,
                "release_spread_us": end - closes[0],
                "faults": len(hops_in_epoch),
                "mean_chain": (
                    sum(hops_in_epoch) / len(hops_in_epoch)
                    if hops_in_epoch else None
                ),
                "max_chain": max(hops_in_epoch) if hops_in_epoch else None,
            }
        )

    return {
        "schema": REPORT_SCHEMA,
        "events": total_events,
        "spans": {
            "opened": len(spans),
            "closed": len(completed),
            "unclosed": len(unclosed),
            "orphans": orphans,
            "double_close": double_close,
            "unmatched_close": unmatched_close,
        },
        "latency_us": latency,
        "read_miss_p99_us": p99_value,
        "chain_lengths": {
            str(hops): chain_counts[hops] for hops in sorted(chain_counts)
        },
        "critical_paths": critical_paths,
        "migration_objects": migration_objects,
        "hottest_decision_timeline": hottest_timeline,
        "epoch_throughput": epochs,
        "epoch_ops": epoch_series.to_dict(),
        "epoch_fanout": fanout_epochs,
    }


def _fmt(value: Any, precision: int = 1) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_analysis(report: dict) -> str:
    """Render the SLO report as markdown-flavoured plain text.

    Deterministic and backend-independent: contains only values from
    the report dict (no paths, no backend names, no wall time).
    """
    blocks: list[str] = []
    sp = report["spans"]
    blocks.append(
        f"# SLO report — {report['events']} events, "
        f"{sp['opened']} spans"
    )
    health = (
        f"span health: {sp['closed']} closed, {sp['unclosed']} unclosed, "
        f"{sp['orphans']} orphans, {sp['double_close']} double-closes, "
        f"{sp['unmatched_close']} unmatched closes"
    )
    blocks.append(health)

    rows = []
    for kind, summary in report["latency_us"].items():
        rows.append(
            [
                kind,
                summary["count"],
                _fmt(summary["p50"]),
                _fmt(summary["p95"]),
                _fmt(summary["p99"]),
                _fmt(summary["p999"]),
                _fmt(summary["max"]),
            ]
        )
    if rows:
        blocks.append(
            format_table(
                ["kind", "count", "p50_us", "p95_us", "p99_us",
                 "p999_us", "max_us"],
                rows,
                title="Latency by operation kind (virtual us)",
            )
        )

    if report["chain_lengths"]:
        blocks.append(
            format_table(
                ["hops", "faults"],
                [[h, n] for h, n in report["chain_lengths"].items()],
                title="Redirection chain length distribution",
            )
        )

    if report["critical_paths"]:
        rows = [
            [
                _fmt(cp["total_us"]),
                cp["oid"],
                cp["node"],
                cp["hops"],
                _fmt(cp["redirect_us"]),
                _fmt(cp["residual_us"]),
                _fmt(cp["migration_us"]),
                cp["dominant"],
            ]
            for cp in report["critical_paths"]
        ]
        title = "Critical paths — slowest read misses"
        p99 = report.get("read_miss_p99_us")
        if p99 is not None:
            title += f" (p99 = {p99:.1f} us)"
        blocks.append(
            format_table(
                ["total_us", "oid", "node", "hops", "redirect_us",
                 "residual_us", "migration_us", "dominant"],
                rows,
                title=title,
            )
        )

    if report["migration_objects"]:
        rows = [
            [
                m["oid"],
                m["migrations"],
                m["decisions"],
                _fmt(m["threshold_first"], 3),
                _fmt(m["threshold_last"], 3),
                _fmt(m["threshold_min"], 3),
                _fmt(m["threshold_max"], 3),
                "->".join(str(n) for n in m["path"][:10]),
            ]
            for m in report["migration_objects"]
        ]
        blocks.append(
            format_table(
                ["oid", "migs", "decisions", "T_first", "T_last",
                 "T_min", "T_max", "home_path"],
                rows,
                title="Migration-decision timelines (hottest objects)",
            )
        )

    timeline = report["hottest_decision_timeline"]
    if timeline:
        shown = _sample_rows(timeline, MAX_TIMELINE_ROWS)
        rows = [
            [
                _fmt(d["t"]),
                _fmt(d["threshold"], 3),
                d["consecutive"],
                d["requester"],
                "migrate" if d["migrated"] else "stay",
            ]
            for d in shown
        ]
        oid = report["migration_objects"][0]["oid"]
        blocks.append(
            format_table(
                ["t_us", "threshold", "C", "requester", "decision"],
                rows,
                title=(
                    f"Threshold trajectory vs Eq-2 decisions — oid {oid} "
                    f"({len(timeline)} decisions, sampled)"
                ),
            )
        )

    if report.get("epoch_fanout"):
        rows = [
            [
                e["epoch"],
                e["parties"],
                _fmt(e["release_spread_us"]),
                e["faults"],
                _fmt(e["mean_chain"], 2),
                _fmt(e["max_chain"]),
            ]
            for e in _sample_rows(report["epoch_fanout"], MAX_TIMELINE_ROWS)
        ]
        blocks.append(
            format_table(
                ["epoch", "parties", "release_spread_us", "faults",
                 "mean_chain", "max_chain"],
                rows,
                title=(
                    "Per-epoch fan-out — release burst depth and "
                    "redirect chains"
                ),
            )
        )

    if report["epoch_throughput"]:
        rows = [
            [
                e["epoch"] if e["epoch"] is not None else "tail",
                _fmt(e["end_us"]),
                e["ops"],
                _fmt(e["ops_per_s"]),
            ]
            for e in _sample_rows(report["epoch_throughput"],
                                  MAX_TIMELINE_ROWS)
        ]
        blocks.append(
            format_table(
                ["epoch", "end_us", "ops", "ops_per_s"],
                rows,
                title="Per-barrier-epoch throughput (simulated time)",
            )
        )

    if sp["opened"] == 0:
        blocks.append(
            "no spans in this trace — record with span kinds enabled "
            "(the default) to get causal analytics"
        )
    return "\n\n".join(blocks) + "\n"


def _sample_rows(rows: list, limit: int) -> list:
    """At most ``limit`` evenly spaced rows, always keeping first/last."""
    if len(rows) <= limit:
        return rows
    step = (len(rows) - 1) / (limit - 1)
    picked = [rows[round(i * step)] for i in range(limit)]
    picked[-1] = rows[-1]
    return picked


def write_json_report(report: dict, path: str) -> None:
    """Write the report dict as stable, sorted JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, sort_keys=True, indent=2)
        handle.write("\n")
