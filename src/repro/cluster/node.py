"""Cluster node: a message endpoint with a per-message service overhead."""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from repro.cluster.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

#: Fixed CPU overhead charged at the receiver per handled message
#: (interrupt + protocol dispatch), in microseconds.
DEFAULT_SERVICE_US = 5.0


class Node:
    """One cluster node.

    A node owns a single message handler (installed by the DSM protocol
    engine).  Message delivery charges :attr:`service_us` of receiver CPU
    time before the handler runs, modelling interrupt/dispatch overhead.
    """

    def __init__(
        self, node_id: int, sim: "Simulator", service_us: float = DEFAULT_SERVICE_US
    ):
        if node_id < 0:
            raise ValueError(f"node id must be non-negative, got {node_id}")
        if service_us < 0:
            raise ValueError(f"service_us must be non-negative, got {service_us}")
        self.node_id = node_id
        self.sim = sim
        self.service_us = service_us
        self._handler: Callable[[Message], None] | None = None

    def install_handler(self, handler: Callable[[Message], None]) -> None:
        """Install the protocol engine's message handler (exactly once)."""
        if self._handler is not None:
            raise RuntimeError(f"node {self.node_id} already has a handler")
        self._handler = handler

    def deliver(self, message: Message) -> None:
        """Called by the network at wire-arrival time; runs the handler
        after the service overhead."""
        if self._handler is None:
            raise RuntimeError(
                f"node {self.node_id} received {message!r} with no handler"
            )
        self.sim.schedule(self.service_us, self._handler, message)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.node_id}>"
