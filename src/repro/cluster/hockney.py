"""Hockney point-to-point communication model.

Hockney [8] characterises point-to-point communication time (microseconds)
as a linear function of message length ``m`` (bytes)::

    t(m) = t0 + m / r_inf

where ``t0`` is the start-up time (us) and ``r_inf`` the asymptotic
bandwidth (MB/s).  Note 1 MB/s == 1 byte/us, so ``r_inf`` is used directly
as bytes-per-microsecond.

The *half-peak length* ``m_half = t0 * r_inf`` is the message length at
which half the asymptotic bandwidth is achieved; the paper's home access
coefficient (Appendix A, reimplemented in :mod:`repro.core.coefficient`)
is expressed in terms of it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HockneyModel:
    """Linear latency/bandwidth model for one point-to-point message.

    Parameters
    ----------
    startup_us:
        ``t0`` — per-message start-up time in microseconds.
    bandwidth_mb_s:
        ``r_inf`` — asymptotic bandwidth in MB/s (== bytes/us).
    name:
        Human-readable label used in reports.
    """

    startup_us: float
    bandwidth_mb_s: float
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.startup_us <= 0:
            raise ValueError(f"startup_us must be positive, got {self.startup_us}")
        if self.bandwidth_mb_s <= 0:
            raise ValueError(
                f"bandwidth_mb_s must be positive, got {self.bandwidth_mb_s}"
            )

    def latency_us(self, nbytes: float) -> float:
        """``t(m) = t0 + m / r_inf`` for an ``nbytes``-byte message."""
        if nbytes < 0:
            raise ValueError(f"message size must be non-negative, got {nbytes}")
        return self.startup_us + nbytes / self.bandwidth_mb_s

    def transfer_us(self, nbytes: float) -> float:
        """Wire-occupancy component only: ``m / r_inf``."""
        if nbytes < 0:
            raise ValueError(f"message size must be non-negative, got {nbytes}")
        return nbytes / self.bandwidth_mb_s

    @property
    def half_peak_bytes(self) -> float:
        """``m_half = t0 * r_inf`` — the half-peak message length in bytes."""
        return self.startup_us * self.bandwidth_mb_s

    def bandwidth_at(self, nbytes: float) -> float:
        """Effective bandwidth (MB/s) achieved by an ``nbytes`` message."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.latency_us(nbytes)


#: Fast Ethernet with a 2004-era TCP stack — the paper's testbed
#: (2 GHz P4 cluster, Foundry Fast-Ethernet switch).  t0 ~ 100 us and
#: r_inf ~ 11.5 MB/s give m_half ~ 1150 bytes, consistent with measured
#: half-peak lengths for 100 Mb/s TCP of the period.
FAST_ETHERNET = HockneyModel(startup_us=100.0, bandwidth_mb_s=11.5, name="fast-ethernet")

#: Gigabit Ethernet with a tuned stack (for sensitivity studies).
GIGABIT = HockneyModel(startup_us=30.0, bandwidth_mb_s=110.0, name="gigabit")

#: Myrinet/GM-class user-level network (for sensitivity studies).
MYRINET = HockneyModel(startup_us=8.0, bandwidth_mb_s=240.0, name="myrinet")
