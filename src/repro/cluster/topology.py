"""Cluster interconnect topology models (opt-in; PROTOCOL.md §15).

The base :class:`~repro.cluster.network.Network` models one ideal
non-blocking switch: every (src, dst) pair pays the same Hockney cost.
Real 256–1024-node clusters are built from *hierarchies* of switches —
leaf switches wired into spines (2-tier) or edge/aggregation/core tiers
(3-tier folded-Clos, "fat-tree") — whose uplinks are usually
*oversubscribed*: the bandwidth leaving a leaf is a fraction of the
bandwidth below it.

A topology assigns every ordered pair a **per-pair cost triple**::

    (hop_us, bw_penalty, link)

* ``hop_us`` — fixed extra latency for the additional switch hops the
  path crosses beyond the ideal single switch (``extra_hops * hop_us``);
* ``bw_penalty`` — extra transfer time as a multiple of the base wire
  time: crossing an ``S:1`` oversubscribed uplink stretches the
  transfer by ``S``, so the *extra* time is ``total * (S-1) / r_inf``;
* ``link`` — the id of the shared uplink the path ascends through
  (``-1`` when the path stays under one switch).  With ``contention``
  enabled the uplink is a serialized resource like the per-node NIC:
  messages from the same leaf queue behind each other (store-and-
  forward at the oversubscribed tier); without it, oversubscription is
  charged as latency only.

The triple is a pure function of the (src, dst) *equivalence class*
(same leaf / same pod / cross pod), so per-message cost is O(1): the
Python path does two small-list lookups, and the compiled kernel reads
precomputed N×N float tables (:meth:`ClusterTopology.tables`) built
from the same ``pair`` function — bit-identical by construction.

Everything here is strictly opt-in: a ``Network`` built without a
topology (or with :class:`FlatTopology`) keeps the seed's single-switch
behaviour bit for bit.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "ClusterTopology",
    "FlatTopology",
    "HierarchicalTopology",
    "FatTreeTopology",
    "make_topology",
]


class ClusterTopology:
    """Base class: per-pair cost model over a fixed node count."""

    #: Report name of the topology family.
    kind: str = "topology"

    def __init__(self, nnodes: int, contention: bool = False):
        if nnodes < 1:
            raise ValueError(f"need at least one node, got {nnodes}")
        self.nnodes = nnodes
        #: Number of distinct shared uplinks (contention resources).
        self.nlinks = 0
        self.contention = bool(contention)
        self._tables: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def pair(self, src: int, dst: int) -> tuple[float, float, int]:
        """``(hop_us, bw_penalty, link)`` for one ordered pair."""
        raise NotImplementedError

    def tables(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Precomputed N×N per-pair tables ``(hop_us, bw_penalty, link)``.

        Built once (lazily — only the compiled fast path needs the dense
        form) from :meth:`pair`, so both backends read the same values.
        ``hop_us``/``bw_penalty`` are float64, ``link`` is int64.
        """
        if self._tables is None:
            n = self.nnodes
            hop = np.zeros((n, n), dtype=np.float64)
            pen = np.zeros((n, n), dtype=np.float64)
            link = np.full((n, n), -1, dtype=np.int64)
            for src in range(n):
                for dst in range(n):
                    if src == dst:
                        continue
                    h, p, l = self.pair(src, dst)
                    hop[src, dst] = h
                    pen[src, dst] = p
                    link[src, dst] = l
            self._tables = (hop, pen, link)
        return self._tables

    def describe(self) -> dict[str, Any]:
        """JSON-friendly parameter summary for bench/report metadata."""
        return {
            "kind": self.kind,
            "nnodes": self.nnodes,
            "nlinks": self.nlinks,
            "contention": self.contention,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.describe()}>"


class FlatTopology(ClusterTopology):
    """The ideal single switch: zero extra cost for every pair.

    Exists so sweeps can treat "no topology" uniformly; a ``Network``
    built with it is bit-identical to one built with ``topology=None``
    (the extra terms are exactly ``+0.0``).
    """

    kind = "flat"

    def pair(self, src: int, dst: int) -> tuple[float, float, int]:
        return (0.0, 0.0, -1)


class HierarchicalTopology(ClusterTopology):
    """Two-tier hierarchy: leaf switches under one non-blocking spine.

    Nodes ``[i*leaf_size, (i+1)*leaf_size)`` share leaf switch ``i``.
    Pairs under one leaf pay nothing extra; pairs crossing the spine pay
    two extra switch hops (up + down) and the leaf-uplink
    oversubscription penalty.  The shared uplink of the *source* leaf is
    the contention resource.
    """

    kind = "hier"

    def __init__(
        self,
        nnodes: int,
        leaf_size: int = 16,
        hop_us: float = 5.0,
        oversubscription: float = 1.0,
        contention: bool = False,
    ):
        super().__init__(nnodes, contention)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        if hop_us < 0:
            raise ValueError(f"hop_us must be >= 0, got {hop_us}")
        if oversubscription < 1.0:
            raise ValueError(
                f"oversubscription must be >= 1, got {oversubscription}"
            )
        self.leaf_size = leaf_size
        self.hop_us = float(hop_us)
        self.oversubscription = float(oversubscription)
        self._leaf = [node // leaf_size for node in range(nnodes)]
        self.nlinks = self._leaf[-1] + 1 if nnodes else 0
        self._cross_hop = 2.0 * self.hop_us
        self._cross_pen = self.oversubscription - 1.0

    def pair(self, src: int, dst: int) -> tuple[float, float, int]:
        leaf = self._leaf
        src_leaf = leaf[src]
        if src_leaf == leaf[dst]:
            return (0.0, 0.0, -1)
        return (self._cross_hop, self._cross_pen, src_leaf)

    def describe(self) -> dict[str, Any]:
        out = super().describe()
        out.update(
            leaf_size=self.leaf_size,
            hop_us=self.hop_us,
            oversubscription=self.oversubscription,
        )
        return out


class FatTreeTopology(ClusterTopology):
    """Three-tier folded Clos (edge / aggregation / core).

    ``edge_size`` hosts share an edge switch; ``pod_size`` edge switches
    form a pod under shared aggregation switches; pods meet at the core.
    Extra switch hops beyond the ideal single switch:

    * same edge switch — 0;
    * same pod (edge → agg → edge) — 2;
    * cross pod (edge → agg → core → agg → edge) — 4.

    ``oversubscription`` is the edge-uplink ratio (paid by every
    inter-edge pair); ``core_oversubscription`` compounds on top for
    cross-pod pairs (aggregate ratio ``edge * core``).  The contention
    resource is the source's edge uplink — the first (and with the edge
    tier oversubscribed, the thinnest) shared ascent of the path.
    """

    kind = "fat-tree"

    def __init__(
        self,
        nnodes: int,
        edge_size: int = 16,
        pod_size: int = 4,
        hop_us: float = 5.0,
        oversubscription: float = 1.0,
        core_oversubscription: float = 1.0,
        contention: bool = False,
    ):
        super().__init__(nnodes, contention)
        if edge_size < 1:
            raise ValueError(f"edge_size must be >= 1, got {edge_size}")
        if pod_size < 1:
            raise ValueError(f"pod_size must be >= 1, got {pod_size}")
        if hop_us < 0:
            raise ValueError(f"hop_us must be >= 0, got {hop_us}")
        if oversubscription < 1.0 or core_oversubscription < 1.0:
            raise ValueError(
                "oversubscription ratios must be >= 1, got "
                f"{oversubscription} / {core_oversubscription}"
            )
        self.edge_size = edge_size
        self.pod_size = pod_size
        self.hop_us = float(hop_us)
        self.oversubscription = float(oversubscription)
        self.core_oversubscription = float(core_oversubscription)
        self._edge = [node // edge_size for node in range(nnodes)]
        self._pod = [edge // pod_size for edge in self._edge]
        self.nlinks = self._edge[-1] + 1 if nnodes else 0
        self._pod_hop = 2.0 * self.hop_us
        self._core_hop = 4.0 * self.hop_us
        self._pod_pen = self.oversubscription - 1.0
        self._core_pen = (
            self.oversubscription * self.core_oversubscription - 1.0
        )

    def pair(self, src: int, dst: int) -> tuple[float, float, int]:
        src_edge = self._edge[src]
        if src_edge == self._edge[dst]:
            return (0.0, 0.0, -1)
        if self._pod[src] == self._pod[dst]:
            return (self._pod_hop, self._pod_pen, src_edge)
        return (self._core_hop, self._core_pen, src_edge)

    def describe(self) -> dict[str, Any]:
        out = super().describe()
        out.update(
            edge_size=self.edge_size,
            pod_size=self.pod_size,
            hop_us=self.hop_us,
            oversubscription=self.oversubscription,
            core_oversubscription=self.core_oversubscription,
        )
        return out


#: Spec-string parameter names -> (constructor kwarg, converter).
_PARAM_KEYS = {
    "leaf": ("leaf_size", int),
    "edge": ("edge_size", int),
    "pod": ("pod_size", int),
    "hop": ("hop_us", float),
    "oversub": ("oversubscription", float),
    "core-oversub": ("core_oversubscription", float),
    "contention": ("contention", lambda v: bool(int(v))),
}

_TOPOLOGY_KINDS = {
    "flat": FlatTopology,
    "hier": HierarchicalTopology,
    "fat-tree": FatTreeTopology,
}


def make_topology(
    spec: "str | dict | ClusterTopology | None", nnodes: int
) -> ClusterTopology | None:
    """Build a topology from a picklable spec.

    Accepts ``None`` (no topology — the seed's flat switch), an already
    constructed :class:`ClusterTopology` (whose ``nnodes`` must match),
    a dict ``{"kind": ..., **kwargs}``, or a compact colon string usable
    in :class:`~repro.bench.executor.RunSpec` fields and CLI flags::

        "flat"
        "hier:leaf=16:oversub=4:hop=2.5"
        "fat-tree:edge=8:pod=4:oversub=2:contention=1"
    """
    if spec is None:
        return None
    if isinstance(spec, ClusterTopology):
        if spec.nnodes != nnodes:
            raise ValueError(
                f"topology built for {spec.nnodes} nodes used on a "
                f"{nnodes}-node cluster"
            )
        return spec
    if isinstance(spec, dict):
        params = dict(spec)
        kind = params.pop("kind", "flat")
        cls = _TOPOLOGY_KINDS.get(kind)
        if cls is None:
            raise ValueError(
                f"unknown topology kind {kind!r}; "
                f"choose from {sorted(_TOPOLOGY_KINDS)}"
            )
        return cls(nnodes, **params)
    kind, _, rest = spec.partition(":")
    cls = _TOPOLOGY_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown topology kind {kind!r}; "
            f"choose from {sorted(_TOPOLOGY_KINDS)}"
        )
    kwargs: dict[str, Any] = {}
    if rest:
        for item in rest.split(":"):
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(
                    f"malformed topology parameter {item!r} in {spec!r}"
                )
            try:
                kwarg, convert = _PARAM_KEYS[key]
            except KeyError:
                raise ValueError(
                    f"unknown topology parameter {key!r}; "
                    f"choose from {sorted(_PARAM_KEYS)}"
                ) from None
            kwargs[kwarg] = convert(value)
    return cls(nnodes, **kwargs)
