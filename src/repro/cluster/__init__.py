"""Cluster substrate: nodes, the network, and the Hockney cost model.

This package models the physical platform of the paper's evaluation — a
PC cluster connected by a Fast-Ethernet switch — at the level the home
migration protocol actually observes: *messages*, their *sizes*, their
*latencies* (Hockney point-to-point model) and per-NIC serialization.
"""

from repro.cluster.hockney import FAST_ETHERNET, GIGABIT, MYRINET, HockneyModel
from repro.cluster.message import Message, MsgCategory
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.stats import ClusterStats

__all__ = [
    "ClusterStats",
    "FAST_ETHERNET",
    "GIGABIT",
    "HockneyModel",
    "Message",
    "MsgCategory",
    "MYRINET",
    "Network",
    "Node",
]
