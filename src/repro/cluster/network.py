"""Switched cluster network with Hockney latency and per-NIC serialization.

Timing model for a message of ``m`` bytes from ``src`` to ``dst``:

* the sender's NIC is busy injecting for ``transfer_us(m) = m / r_inf``;
  injections from one node serialize (``nic_free`` bookkeeping), modelling
  a single full-duplex link into the switch;
* the wire+stack latency adds the start-up term, so arrival is
  ``injection_end + t0``;
* the receiving :class:`~repro.cluster.node.Node` charges its service
  overhead before the protocol handler runs.

End-to-end latency of an isolated message is therefore exactly the Hockney
``t(m) = t0 + m/r_inf`` (plus receiver service time), while bursts of
messages from one node back-pressure each other — enough fidelity for the
message-count/traffic/ordering behaviour the protocol depends on.

Local messages (``src == dst``) are not allowed: the DSM layer handles
node-local operations without the network, as the real system does.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.cluster.hockney import HockneyModel
from repro.cluster.message import HEADER_BYTES, Message, MsgCategory
from repro.cluster.node import Node
from repro.cluster.stats import ClusterStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Network:
    """The cluster interconnect: owns the nodes and delivers messages."""

    def __init__(
        self,
        sim: "Simulator",
        comm_model: HockneyModel,
        nnodes: int,
        stats: ClusterStats | None = None,
        service_us: float | None = None,
        metrics=None,
    ):
        if nnodes < 1:
            raise ValueError(f"need at least one node, got {nnodes}")
        self.sim = sim
        self.comm_model = comm_model
        self.stats = stats if stats is not None else ClusterStats()
        node_kwargs = {} if service_us is None else {"service_us": service_us}
        self.nodes = [Node(i, sim, **node_kwargs) for i in range(nnodes)]
        self._nic_free = [0.0] * nnodes
        #: Pre-bound per-node delivery table: ``send`` schedules
        #: ``_deliver[dst]`` with the message as an event-tuple argument,
        #: so the hot path allocates no closure and does no list+attribute
        #: re-resolution per message.
        self._deliver = [node.deliver for node in self.nodes]
        # Hot-path pre-binds: one attribute resolution at construction
        # instead of three per message.
        self._transfer_us = comm_model.transfer_us
        self._startup_us = comm_model.startup_us
        self._sim_at = sim.at
        self._record = self.stats.record_message
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry`; when set,
        #: per-category message/byte counters accrue on every send.
        self.metrics = metrics

    @property
    def nnodes(self) -> int:
        return len(self.nodes)

    def send(
        self,
        src: int,
        dst: int,
        category: MsgCategory,
        size_bytes: int,
        payload: Any = None,
    ) -> Message:
        """Inject a message; schedules its delivery and returns it.

        ``size_bytes`` is the payload size; the fixed header is added here.
        """
        if src == dst:
            raise ValueError(
                f"local message {category.value} on node {src}; node-local "
                "operations must bypass the network"
            )
        if not (0 <= src < self.nnodes and 0 <= dst < self.nnodes):
            raise ValueError(f"endpoints {src}->{dst} outside cluster")
        message = Message(
            src=src,
            dst=dst,
            category=category,
            size_bytes=size_bytes + HEADER_BYTES,
            payload=payload,
        )
        self._record(message)
        if self.metrics is not None:
            label = category.value
            self.metrics.counter("net_messages_total", category=label).inc()
            self.metrics.counter("net_bytes_total", category=label).inc(
                message.size_bytes
            )

        now = self.sim._now  # direct read; the property is hot-path overhead
        nic_free = self._nic_free[src]
        injection_start = now if now >= nic_free else nic_free
        injection_end = injection_start + self._transfer_us(message.size_bytes)
        self._nic_free[src] = injection_end
        self._sim_at(injection_end + self._startup_us, self._deliver[dst], message)
        return message

    def broadcast(
        self,
        src: int,
        category: MsgCategory,
        size_bytes: int,
        payload: Any = None,
    ) -> list[Message]:
        """Send one copy to every other node (switch has no multicast here)."""
        return [
            self.send(src, dst, category, size_bytes, payload)
            for dst in range(self.nnodes)
            if dst != src
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Network {self.nnodes} nodes, {self.comm_model.name}>"
