"""Switched cluster network with Hockney latency and per-NIC serialization.

Timing model for a message of ``m`` bytes from ``src`` to ``dst``:

* the sender's NIC is busy injecting for ``transfer_us(m) = m / r_inf``;
  injections from one node serialize (``nic_free`` bookkeeping), modelling
  a single full-duplex link into the switch;
* the wire+stack latency adds the start-up term, so arrival is
  ``injection_end + t0``;
* the receiving :class:`~repro.cluster.node.Node` charges its service
  overhead before the protocol handler runs.

End-to-end latency of an isolated message is therefore exactly the Hockney
``t(m) = t0 + m/r_inf`` (plus receiver service time), while bursts of
messages from one node back-pressure each other — enough fidelity for the
message-count/traffic/ordering behaviour the protocol depends on.

Local messages (``src == dst``) are not allowed: the DSM layer handles
node-local operations without the network, as the real system does.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, TYPE_CHECKING

from repro.cluster.hockney import HockneyModel
from repro.cluster.message import HEADER_BYTES, Message, MsgCategory
from repro.cluster.node import Node
from repro.cluster.stats import ClusterStats
from repro.cluster.topology import ClusterTopology, make_topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class _PyDeliveryPort:
    """Pure-Python twin of the kernel's ``DeliveryPort``.

    Batching rule (identical in C): an arrival coalesces into the open
    batch iff it flushes at the same instant *and* the engine's sequence
    counter still equals the watermark recorded right after the batch's
    flush event was scheduled.  Any interleaved event — another port's
    flush, a handler-scheduled callback — advances the counter and
    breaks coalescing, so the degenerate case is exactly the legacy
    one-event-per-message delivery order.
    """

    __slots__ = ("_sim", "_dispatch", "_service", "_batch", "_batch_time",
                 "_watermark")

    def __init__(self, sim: "Simulator", dispatch: dict, service_us: float):
        self._sim = sim
        self._dispatch = dispatch
        self._service = service_us
        self._batch: list | None = None
        self._batch_time = 0.0
        self._watermark = -1

    def arrive(self, category: MsgCategory, payload: Any) -> None:
        sim = self._sim
        time = sim._now + self._service
        batch = self._batch
        if (batch is not None and self._batch_time == time
                and sim._seq == self._watermark):
            batch.append((category, payload))
            return
        batch = [(category, payload)]
        sim.schedule(self._service, self.flush, batch)
        self._batch = batch
        self._batch_time = time
        self._watermark = sim._seq

    def flush(self, batch: list) -> None:
        if batch is self._batch:
            self._batch = None
        dispatch = self._dispatch
        for category, payload in batch:
            handler = dispatch.get(category)
            if handler is None:
                raise RuntimeError(
                    f"unhandled message category {category!r}"
                )
            handler(payload)


class Network:
    """The cluster interconnect: owns the nodes and delivers messages."""

    def __init__(
        self,
        sim: "Simulator",
        comm_model: HockneyModel,
        nnodes: int,
        stats: ClusterStats | None = None,
        service_us: float | None = None,
        metrics=None,
        topology: "ClusterTopology | str | dict | None" = None,
    ):
        if nnodes < 1:
            raise ValueError(f"need at least one node, got {nnodes}")
        self.sim = sim
        self.comm_model = comm_model
        self.stats = stats if stats is not None else ClusterStats()
        node_kwargs = {} if service_us is None else {"service_us": service_us}
        self.nodes = [Node(i, sim, **node_kwargs) for i in range(nnodes)]
        self._nic_free = [0.0] * nnodes
        #: Pre-bound per-node delivery table: ``send`` schedules
        #: ``_deliver[dst]`` with the message as an event-tuple argument,
        #: so the hot path allocates no closure and does no list+attribute
        #: re-resolution per message.
        self._deliver = [node.deliver for node in self.nodes]
        # Hot-path pre-binds: one attribute resolution at construction
        # instead of three per message.
        self._transfer_us = comm_model.transfer_us
        self._startup_us = comm_model.startup_us
        self._sim_at = sim.at
        self._record = self.stats.record_message
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry`; when set,
        #: per-category message/byte counters accrue on every send.
        self.metrics = metrics
        #: Fast-path state (PR 8): once every node's protocol engine has
        #: registered its dispatch dict, sends route through a single
        #: Message-free path with batched delivery, in C when the
        #: simulator is the compiled Engine.  ``None`` until activated.
        self._fast_send: Callable | None = None
        self._fast_dispatch: dict[int, dict] = {}
        self._fast_bind: dict[int, Callable] = {}
        self._fast_ports: list[_PyDeliveryPort] | None = None
        self._fabric = None
        #: Optional interconnect topology (PROTOCOL.md §15).  ``None``
        #: keeps the seed's ideal single switch bit for bit; a topology
        #: adds per-pair hop latency, an oversubscription transfer
        #: penalty and (optionally) serialized uplink contention on top
        #: of the Hockney NIC model — identical math on all three send
        #: paths (legacy, Python fast, compiled fabric).
        self.topology = make_topology(topology, nnodes)
        if self.topology is not None:
            self._topo_pair = self.topology.pair
            self._topo_contention = self.topology.contention
            self._topo_link_free = [0.0] * self.topology.nlinks
            self._bandwidth = comm_model.bandwidth_mb_s
        else:
            self._topo_pair = None

    @property
    def nnodes(self) -> int:
        return len(self.nodes)

    def register_fast_dispatch(
        self, node_id: int, dispatch: dict, bind_sender: Callable
    ) -> None:
        """Opt one node into fast delivery.

        ``dispatch`` is the engine's shared category -> handler dict (the
        same object its kernel Dispatcher reads, so later handler swaps
        stay visible); ``bind_sender`` is called with a per-node send
        callable once *every* node has registered.  Activation is
        all-or-nothing: a cluster with any non-registering endpoint
        (e.g. the homeless engines) keeps the legacy per-message path,
        so NIC state never splits across two send paths.
        """
        if not 0 <= node_id < self.nnodes:
            raise ValueError(f"node {node_id} outside cluster")
        self._fast_dispatch[node_id] = dispatch
        self._fast_bind[node_id] = bind_sender
        if len(self._fast_dispatch) == self.nnodes:
            self._activate_fast_delivery()

    def _activate_fast_delivery(self) -> None:
        from repro import _kernel

        kernel_module = _kernel.kernel()
        sim = self.sim
        # With a metrics registry attached every send must also feed the
        # observability counters, which the C fabric cannot do — use the
        # Python fast path there.  Event structure (and so every
        # deterministic field) is identical either way; only the send
        # body's speed differs.
        if (
            self.metrics is None
            and kernel_module is not None
            and isinstance(sim, kernel_module.Engine)
        ):
            fabric = kernel_module.NetFabric(
                sim,
                self.stats.msg_count,
                self.stats.msg_bytes,
                self._startup_us,
                self.comm_model.bandwidth_mb_s,
                HEADER_BYTES,
                self._nic_free,
            )
            if self.topology is not None:
                # Per-pair cost tables precomputed from the same pair()
                # the Python paths call — the kernel branch reads the
                # identical float64 values.
                hop, pen, link = self.topology.tables()
                fabric.set_topology(
                    hop,
                    pen,
                    link,
                    self.topology.nlinks,
                    1 if self.topology.contention else 0,
                )
            for i in range(self.nnodes):
                fabric.add_port(self._fast_dispatch[i], self.nodes[i].service_us)
            senders = [fabric.sender(i) for i in range(self.nnodes)]
            self._fabric = fabric
            self._fast_send = fabric.send
        else:
            self._fast_ports = [
                _PyDeliveryPort(sim, self._fast_dispatch[i], self.nodes[i].service_us)
                for i in range(self.nnodes)
            ]
            senders = [
                partial(self._py_fast_send, i) for i in range(self.nnodes)
            ]
            self._fast_send = self._py_fast_send
        for i in range(self.nnodes):
            self._fast_bind[i](senders[i])

    def _py_fast_send(
        self,
        src: int,
        dst: int,
        category: MsgCategory,
        size_bytes: int,
        payload: Any = None,
    ) -> None:
        """Pure-Python twin of the kernel ``NetFabric.send`` body: the
        legacy :meth:`send` semantics without the Message allocation."""
        if src == dst:
            raise ValueError(
                f"local message {category.value} on node {src}; node-local "
                "operations must bypass the network"
            )
        nnodes = len(self.nodes)
        if not (0 <= src < nnodes and 0 <= dst < nnodes):
            raise ValueError(f"endpoints {src}->{dst} outside cluster")
        total = size_bytes + HEADER_BYTES
        if total < HEADER_BYTES:
            raise ValueError(
                f"message size {total} smaller than header "
                f"({HEADER_BYTES} bytes)"
            )
        stats = self.stats
        stats.msg_count[category] += 1
        stats.msg_bytes[category] += total
        if self.metrics is not None:
            label = category.value
            self.metrics.counter("net_messages_total", category=label).inc()
            self.metrics.counter("net_bytes_total", category=label).inc(total)

        now = self.sim._now
        nic_free = self._nic_free[src]
        injection_start = now if now >= nic_free else nic_free
        injection_end = injection_start + self._transfer_us(total)
        self._nic_free[src] = injection_end
        if self._topo_pair is None:
            arrival = injection_end + self._startup_us
        else:
            arrival = self._topo_arrival(src, dst, total, injection_end)
        self._sim_at(
            arrival,
            self._fast_ports[dst].arrive,
            category,
            payload,
        )

    def _topo_arrival(
        self, src: int, dst: int, total: int, injection_end: float
    ) -> float:
        """Arrival time under the attached topology (PROTOCOL.md §15).

        Bit-for-bit the same IEEE-754 sequence as the compiled fabric's
        topology branch.  Without contention the oversubscription
        penalty is pure latency; with it the source leaf's uplink is a
        serialized store-and-forward resource, queued like the NIC.
        """
        hop, pen, link = self._topo_pair(src, dst)
        if self._topo_contention and link >= 0:
            occupancy = total * (1.0 + pen) / self._bandwidth
            link_free = self._topo_link_free[link]
            start = injection_end if injection_end >= link_free else link_free
            link_end = start + occupancy
            self._topo_link_free[link] = link_end
            return link_end + self._startup_us + hop
        return injection_end + self._startup_us + hop + total * pen / self._bandwidth

    def send(
        self,
        src: int,
        dst: int,
        category: MsgCategory,
        size_bytes: int,
        payload: Any = None,
    ) -> Message | None:
        """Inject a message; schedules its delivery and returns it.

        ``size_bytes`` is the payload size; the fixed header is added here.
        On the activated fast path no :class:`Message` is materialized
        and ``None`` is returned (no protocol caller reads the value).
        """
        if self._fast_send is not None:
            self._fast_send(src, dst, category, size_bytes, payload)
            return None
        if src == dst:
            raise ValueError(
                f"local message {category.value} on node {src}; node-local "
                "operations must bypass the network"
            )
        if not (0 <= src < self.nnodes and 0 <= dst < self.nnodes):
            raise ValueError(f"endpoints {src}->{dst} outside cluster")
        message = Message(
            src=src,
            dst=dst,
            category=category,
            size_bytes=size_bytes + HEADER_BYTES,
            payload=payload,
        )
        self._record(message)
        if self.metrics is not None:
            label = category.value
            self.metrics.counter("net_messages_total", category=label).inc()
            self.metrics.counter("net_bytes_total", category=label).inc(
                message.size_bytes
            )

        now = self.sim._now  # direct read; the property is hot-path overhead
        nic_free = self._nic_free[src]
        injection_start = now if now >= nic_free else nic_free
        injection_end = injection_start + self._transfer_us(message.size_bytes)
        self._nic_free[src] = injection_end
        if self._topo_pair is None:
            arrival = injection_end + self._startup_us
        else:
            arrival = self._topo_arrival(
                src, dst, message.size_bytes, injection_end
            )
        self._sim_at(arrival, self._deliver[dst], message)
        return message

    def broadcast(
        self,
        src: int,
        category: MsgCategory,
        size_bytes: int,
        payload: Any = None,
    ) -> list[Message]:
        """Send one copy to every other node (switch has no multicast here)."""
        return [
            self.send(src, dst, category, size_bytes, payload)
            for dst in range(self.nnodes)
            if dst != src
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Network {self.nnodes} nodes, {self.comm_model.name}>"
