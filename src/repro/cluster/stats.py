"""Cluster-wide statistics: raw message traffic and protocol events.

Two layers of accounting, matching what the paper reports:

* **raw traffic** — message count and byte count per
  :class:`~repro.cluster.message.MsgCategory` (Figure 3's "message number"
  and "network traffic");
* **protocol events** — named counters maintained by the DSM layer:
  Figure 5b's ``obj`` (fault-in without migration), ``mig`` (fault-in with
  migration), ``diff`` (diff propagation) and ``redir`` (home redirection,
  counted with accumulation), plus monitor-level events (home reads/writes,
  exclusive home writes, migrations, ...).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.cluster.message import SYNC_CATEGORIES, Message, MsgCategory

#: Figure 5b's four message-breakdown event names.
BREAKDOWN_EVENTS = ("obj", "mig", "diff", "redir")


class ClusterStats:
    """Mutable statistics sink shared by the network and the DSM layer."""

    def __init__(self) -> None:
        self.msg_count: Counter[MsgCategory] = Counter()
        self.msg_bytes: Counter[MsgCategory] = Counter()
        self.events: Counter[str] = Counter()
        #: High-water marks of protocol memory state (``name -> max``).
        #: A side channel deliberately *excluded* from :meth:`snapshot`
        #: — the determinism digest hashes the snapshot, and peaks are
        #: memory telemetry, not protocol behaviour.
        self.peaks: dict[str, int] = {}

    # -- raw traffic ------------------------------------------------------

    def record_message(self, message: Message) -> None:
        """Account one sent message (called by the network on injection)."""
        self.msg_count[message.category] += 1
        self.msg_bytes[message.category] += message.size_bytes

    def total_messages(
        self, exclude: Iterable[MsgCategory] = ()
    ) -> int:
        """Total number of messages, optionally excluding some categories."""
        excluded = frozenset(exclude)
        return sum(n for cat, n in self.msg_count.items() if cat not in excluded)

    def total_bytes(self, exclude: Iterable[MsgCategory] = ()) -> int:
        """Total wire bytes, optionally excluding some categories."""
        excluded = frozenset(exclude)
        return sum(n for cat, n in self.msg_bytes.items() if cat not in excluded)

    def data_messages(self) -> int:
        """Message count excluding synchronization traffic (paper's Fig. 5)."""
        return self.total_messages(exclude=SYNC_CATEGORIES)

    def data_bytes(self) -> int:
        """Byte count excluding synchronization traffic."""
        return self.total_bytes(exclude=SYNC_CATEGORIES)

    # -- protocol events --------------------------------------------------

    def incr(self, event: str, n: int = 1) -> None:
        """Increment a named protocol event counter."""
        if n < 0:
            raise ValueError(f"cannot decrement event {event!r} by {n}")
        self.events[event] += n

    def breakdown(self) -> dict[str, int]:
        """Figure 5b's message breakdown: obj / mig / diff / redir counts."""
        return {name: self.events.get(name, 0) for name in BREAKDOWN_EVENTS}

    # -- memory telemetry --------------------------------------------------

    def record_peak(self, name: str, value: int) -> None:
        """Track the high-water mark of a memory-state quantity."""
        if self.peaks.get(name, 0) < value:
            self.peaks[name] = value

    def memory_snapshot(self) -> dict[str, int]:
        """Sorted copy of the peak telemetry (reports only, never hashed)."""
        return dict(sorted(self.peaks.items()))

    # -- reporting --------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict copy of all counters (stable keys, for reports/tests)."""
        return {
            "msg_count": {cat.value: n for cat, n in sorted(
                self.msg_count.items(), key=lambda kv: kv[0].value)},
            "msg_bytes": {cat.value: n for cat, n in sorted(
                self.msg_bytes.items(), key=lambda kv: kv[0].value)},
            "events": dict(sorted(self.events.items())),
        }

    # -- aggregation ------------------------------------------------------

    def merge(self, other: "ClusterStats") -> "ClusterStats":
        """Accumulate another stats object's counters into this one.

        Lets the parallel sweep executor's per-run outcomes reduce to one
        cluster-wide (or sweep-wide) view.  Returns ``self`` for
        chaining; ``other`` is not modified.
        """
        self.msg_count.update(other.msg_count)
        self.msg_bytes.update(other.msg_bytes)
        self.events.update(other.events)
        for name, value in other.peaks.items():
            if self.peaks.get(name, 0) < value:
                self.peaks[name] = value
        return self

    @classmethod
    def from_snapshot(cls, snap: dict) -> "ClusterStats":
        """Rebuild a stats object from a :meth:`snapshot` dict.

        Inverse of :meth:`snapshot`: category keys are restored from
        their wire names, so ``ClusterStats.from_snapshot(s.snapshot())``
        round-trips exactly.  Combined with :meth:`merge`, this aggregates
        snapshots shipped across process boundaries.
        """
        stats = cls()
        for name, n in snap.get("msg_count", {}).items():
            stats.msg_count[MsgCategory(name)] = n
        for name, n in snap.get("msg_bytes", {}).items():
            stats.msg_bytes[MsgCategory(name)] = n
        for event, n in snap.get("events", {}).items():
            stats.events[event] = n
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ClusterStats msgs={self.total_messages()} "
            f"bytes={self.total_bytes()} events={sum(self.events.values())}>"
        )
