"""Message taxonomy of the DSM protocol.

Sizes follow a simple wire model: every message pays a fixed
:data:`HEADER_BYTES` header; payload sizes are supplied by the protocol
layer (object image bytes, encoded diff bytes, write-notice entries, ...).

The categories matter because the paper's evaluation reports *message
breakdowns* (Figure 5b: ``obj`` / ``mig`` / ``diff`` / ``redir``) and
excludes synchronization messages from them; :mod:`repro.cluster.stats`
keeps per-category counters so the harness can reproduce exactly that
accounting.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

#: Fixed per-message header (source, destination, category, object id,
#: version stamp) — also the size of the paper's "unit-sized message".
HEADER_BYTES = 40

#: Wire cost of one write-notice entry (object id + version).
NOTICE_ENTRY_BYTES = 12


class MsgCategory(enum.Enum):
    """Protocol-level category of a message (for statistics)."""

    # Identity hash instead of Enum's Python-level ``hash(self._name_)``:
    # members are singletons compared by identity, so hashing by id is
    # consistent — and it turns the per-message stats-counter updates
    # (four hashes per send) into C-speed slot calls.
    __hash__ = object.__hash__

    OBJ_REQUEST = "obj_request"  # fault-in request to a (presumed) home
    OBJ_REPLY = "obj_reply"  # object image reply, no migration
    OBJ_REPLY_MIG = "obj_reply_mig"  # object image reply carrying home migration
    REDIRECT = "redirect"  # obsolete home replies with current home hint
    DIFF = "diff"  # diff propagation to the home
    DIFF_ACK = "diff_ack"  # home's ack carrying the post-apply version
    LOCK_ACQUIRE = "lock_acquire"
    LOCK_GRANT = "lock_grant"
    LOCK_RELEASE = "lock_release"
    BARRIER_ARRIVE = "barrier_arrive"
    BARRIER_RELEASE = "barrier_release"
    HOME_UPDATE = "home_update"  # home-manager mechanism: post new home
    HOME_QUERY = "home_query"  # home-manager mechanism: where is the home?
    HOME_ANSWER = "home_answer"
    HOME_BCAST = "home_bcast"  # broadcast mechanism: new home announcement
    SHIP_REQUEST = "ship_request"  # synchronized method shipping: run at home
    SHIP_REPLY = "ship_reply"
    CONTROL = "control"  # anything else (thread start/finish, ...)


#: Categories the paper counts as synchronization traffic; Figure 5 excludes
#: them ("we do not consider synchronization messages because they are
#: invariable in all cases").
SYNC_CATEGORIES = frozenset(
    {
        MsgCategory.LOCK_ACQUIRE,
        MsgCategory.LOCK_GRANT,
        MsgCategory.LOCK_RELEASE,
        MsgCategory.BARRIER_ARRIVE,
        MsgCategory.BARRIER_RELEASE,
    }
)


# C-level sequence source: one slot call per message instead of a Python
# frame with a global load/store (tens of thousands of messages per run).
_next_seq = itertools.count(1).__next__


@dataclass(slots=True)
class Message:
    """One message in flight.

    ``size_bytes`` is the total wire size including the header.  ``payload``
    is an arbitrary protocol-defined object (never serialized; the simulator
    charges only ``size_bytes``).
    """

    src: int
    dst: int
    category: MsgCategory
    size_bytes: int
    payload: Any = None
    seq: int = field(default_factory=_next_seq)

    def __post_init__(self) -> None:
        if self.size_bytes < HEADER_BYTES:
            raise ValueError(
                f"message size {self.size_bytes} smaller than header "
                f"({HEADER_BYTES} bytes)"
            )
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"invalid endpoints {self.src}->{self.dst}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Msg#{self.seq} {self.category.value} {self.src}->{self.dst} "
            f"{self.size_bytes}B>"
        )
