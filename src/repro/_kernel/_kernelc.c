/* Compiled hot kernels for the repro package.
 *
 * Four kernels, chosen from profile data (see PROTOCOL.md §11):
 *
 *   Engine            -- the event-heap core of repro.sim.engine (push +
 *                        drain/dispatch).  repro.sim.engine.CompiledSimulator
 *                        subclasses it from Python and layers the process /
 *                        deadlock bookkeeping on top.
 *   Dispatcher        -- the per-message dispatch point of the DSM protocol
 *                        layer (category -> bound handler dict lookup).
 *   diff_arrays       -- the element-wise scan behind
 *                        repro.memory.diff.compute_diff.
 *   adaptive_threshold -- Equation 2 of the paper (repro.core.threshold).
 *
 * Determinism contract: every kernel reproduces the pure-Python semantics
 * bit for bit.  The event heap orders by (time, seq) with seq unique, so
 * any conforming priority queue pops the identical sequence heapq does.
 * Float comparisons in diff_arrays use the C `!=` operator, which matches
 * numpy's element-wise `!=` (NaN != NaN is true, -0.0 != 0.0 is false).
 * The threshold update applies the same IEEE-754 operations in the same
 * order as the Python expression.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#define NPY_NO_DEPRECATED_API NPY_1_7_API_VERSION
#include <numpy/arrayobject.h>

#include <string.h>

/* Set by _install(); the simulator raises this instead of RuntimeError. */
static PyObject *SimError = NULL;

static PyObject *str_category = NULL;
static PyObject *str_payload = NULL;

static PyObject *
sim_error_class(void)
{
    return SimError != NULL ? SimError : PyExc_RuntimeError;
}

/* ====================================================================== */
/* Engine: the event-heap simulator core                                   */
/* ====================================================================== */

typedef struct {
    double time;
    long long seq;
    PyObject *cb;   /* callback, owned */
    PyObject *args; /* argument tuple, owned; NULL for the no-arg fast path */
} Ev;

typedef struct {
    PyObject_HEAD
    Ev *ev;
    Py_ssize_t n;
    Py_ssize_t cap;
    double now;
    long long seq;
    long long processed;
} EngineObject;

/* Strict weak order matching the (time, seq, ...) tuples of the Python
 * heap: seq is unique, so callbacks are never compared. */
static inline int
ev_lt(const Ev *a, const Ev *b)
{
    if (a->time != b->time) {
        return a->time < b->time;
    }
    return a->seq < b->seq;
}

static int
heap_ensure(EngineObject *self, Py_ssize_t need)
{
    Py_ssize_t newcap;
    Ev *grown;

    if (need <= self->cap) {
        return 0;
    }
    newcap = self->cap > 0 ? self->cap * 2 : 64;
    while (newcap < need) {
        newcap *= 2;
    }
    grown = PyMem_Realloc(self->ev, (size_t)newcap * sizeof(Ev));
    if (grown == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->ev = grown;
    self->cap = newcap;
    return 0;
}

static void
heap_push(EngineObject *self, Ev ev)
{
    Ev *h = self->ev;
    Py_ssize_t i = self->n++;

    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (!ev_lt(&ev, &h[parent])) {
            break;
        }
        h[i] = h[parent];
        i = parent;
    }
    h[i] = ev;
}

static Ev
heap_pop(EngineObject *self)
{
    Ev *h = self->ev;
    Ev top = h[0];
    Py_ssize_t n = --self->n;

    if (n > 0) {
        Ev last = h[n];
        Py_ssize_t i = 0;
        for (;;) {
            Py_ssize_t child = 2 * i + 1;
            if (child >= n) {
                break;
            }
            if (child + 1 < n && ev_lt(&h[child + 1], &h[child])) {
                child++;
            }
            if (!ev_lt(&h[child], &last)) {
                break;
            }
            h[i] = h[child];
            i = child;
        }
        h[i] = last;
    }
    return top;
}

/* argv[0] is the callback, argv[1:] its arguments. */
static PyObject *
engine_push_common(EngineObject *self, double time, PyObject *const *argv,
                   Py_ssize_t argc)
{
    PyObject *args = NULL;
    Ev ev;

    if (argc > 1) {
        args = PyTuple_New(argc - 1);
        if (args == NULL) {
            return NULL;
        }
        for (Py_ssize_t i = 1; i < argc; i++) {
            PyObject *item = argv[i];
            Py_INCREF(item);
            PyTuple_SET_ITEM(args, i - 1, item);
        }
    }
    if (heap_ensure(self, self->n + 1) < 0) {
        Py_XDECREF(args);
        return NULL;
    }
    ev.time = time;
    ev.seq = self->seq++;
    Py_INCREF(argv[0]);
    ev.cb = argv[0];
    ev.args = args;
    heap_push(self, ev);
    Py_RETURN_NONE;
}

static PyObject *
Engine_schedule(EngineObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    double delay;

    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule() requires (delay, callback, *args)");
        return NULL;
    }
    delay = PyFloat_AsDouble(args[0]);
    if (delay == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    if (delay < 0.0) {
        PyErr_Format(sim_error_class(), "negative delay %R", args[0]);
        return NULL;
    }
    return engine_push_common(self, self->now + delay, args + 1, nargs - 1);
}

static PyObject *
Engine_at(EngineObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    double time;

    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "at() requires (time, callback, *args)");
        return NULL;
    }
    time = PyFloat_AsDouble(args[0]);
    if (time == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    if (time < self->now) {
        PyObject *now_obj = PyFloat_FromDouble(self->now);
        if (now_obj == NULL) {
            return NULL;
        }
        PyErr_Format(sim_error_class(),
                     "cannot schedule at %S before current time %S",
                     args[0], now_obj);
        Py_DECREF(now_obj);
        return NULL;
    }
    return engine_push_common(self, time, args + 1, nargs - 1);
}

static PyObject *
Engine_call_soon(EngineObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 1) {
        PyErr_SetString(PyExc_TypeError,
                        "call_soon() requires (callback, *args)");
        return NULL;
    }
    return engine_push_common(self, self->now, args, nargs);
}

/* _drain(until_or_None, heartbeat_every, heartbeat_cb_or_None)
 *
 * Returns True when stopped early at `until` (clock set to `until`,
 * remaining events left queued), False when the heap drained completely.
 * `processed` is incremented before each callback so the count stays
 * exact when a callback raises, mirroring the Python try/finally. */
static PyObject *
Engine_drain(EngineObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    int has_until = 0;
    double until = 0.0;
    long long every, countdown;
    PyObject *beat;

    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "_drain() requires (until, every, beat)");
        return NULL;
    }
    if (args[0] != Py_None) {
        until = PyFloat_AsDouble(args[0]);
        if (until == -1.0 && PyErr_Occurred()) {
            return NULL;
        }
        has_until = 1;
    }
    every = PyLong_AsLongLong(args[1]);
    if (every == -1 && PyErr_Occurred()) {
        return NULL;
    }
    beat = args[2];
    countdown = every;

    while (self->n > 0) {
        double time = self->ev[0].time;
        PyObject *res;
        Ev ev;

        if (has_until && time > until) {
            self->now = until;
            Py_RETURN_TRUE;
        }
        ev = heap_pop(self);
        self->now = ev.time;
        self->processed++;
        if (ev.args != NULL) {
            res = PyObject_Call(ev.cb, ev.args, NULL);
        }
        else {
            res = PyObject_CallNoArgs(ev.cb);
        }
        Py_DECREF(ev.cb);
        Py_XDECREF(ev.args);
        if (res == NULL) {
            return NULL;
        }
        Py_DECREF(res);
        if (every > 0 && --countdown == 0) {
            countdown = every;
            res = PyObject_CallOneArg(beat, (PyObject *)self);
            if (res == NULL) {
                return NULL;
            }
            Py_DECREF(res);
        }
    }
    Py_RETURN_FALSE;
}

static PyObject *
Engine_get_now(EngineObject *self, void *closure)
{
    return PyFloat_FromDouble(self->now);
}

static int
Engine_set_now(EngineObject *self, PyObject *value, void *closure)
{
    double now;

    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete _now");
        return -1;
    }
    now = PyFloat_AsDouble(value);
    if (now == -1.0 && PyErr_Occurred()) {
        return -1;
    }
    self->now = now;
    return 0;
}

static PyObject *
Engine_get_processed(EngineObject *self, void *closure)
{
    return PyLong_FromLongLong(self->processed);
}

static int
Engine_set_processed(EngineObject *self, PyObject *value, void *closure)
{
    long long processed;

    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete events_processed");
        return -1;
    }
    processed = PyLong_AsLongLong(value);
    if (processed == -1 && PyErr_Occurred()) {
        return -1;
    }
    self->processed = processed;
    return 0;
}

static PyObject *
Engine_get_seq(EngineObject *self, void *closure)
{
    return PyLong_FromLongLong(self->seq);
}

static PyObject *
Engine_get_pending(EngineObject *self, void *closure)
{
    return PyLong_FromSsize_t(self->n);
}

static int
Engine_traverse(EngineObject *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->n; i++) {
        Py_VISIT(self->ev[i].cb);
        Py_VISIT(self->ev[i].args);
    }
    return 0;
}

static int
Engine_clear(EngineObject *self)
{
    Py_ssize_t n = self->n;

    self->n = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        Py_CLEAR(self->ev[i].cb);
        Py_CLEAR(self->ev[i].args);
    }
    return 0;
}

static void
Engine_dealloc(EngineObject *self)
{
    PyObject_GC_UnTrack(self);
    Engine_clear(self);
    PyMem_Free(self->ev);
    self->ev = NULL;
    self->cap = 0;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
Engine_init(EngineObject *self, PyObject *args, PyObject *kwds)
{
    if ((args != NULL && PyTuple_GET_SIZE(args) > 0) ||
        (kwds != NULL && PyDict_GET_SIZE(kwds) > 0)) {
        PyErr_SetString(PyExc_TypeError, "Engine() takes no arguments");
        return -1;
    }
    Engine_clear(self);
    self->now = 0.0;
    self->seq = 0;
    self->processed = 0;
    return 0;
}

static PyMethodDef Engine_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))Engine_schedule,
     METH_FASTCALL,
     "schedule(delay, callback, *args)\n--\n\n"
     "Run callback(*args) delay microseconds from now."},
    {"at", (PyCFunction)(void (*)(void))Engine_at, METH_FASTCALL,
     "at(time, callback, *args)\n--\n\n"
     "Run callback(*args) at absolute simulated time."},
    {"call_soon", (PyCFunction)(void (*)(void))Engine_call_soon,
     METH_FASTCALL,
     "call_soon(callback, *args)\n--\n\n"
     "Schedule callback(*args) at the current instant (after pending ties)."},
    {"_drain", (PyCFunction)(void (*)(void))Engine_drain, METH_FASTCALL,
     "_drain(until, every, beat)\n--\n\n"
     "Drain the heap; True when stopped early at `until`, False when empty."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef Engine_getset[] = {
    {"_now", (getter)Engine_get_now, (setter)Engine_set_now,
     "Current simulated time in microseconds.", NULL},
    {"now", (getter)Engine_get_now, NULL,
     "Current simulated time in microseconds.", NULL},
    {"events_processed", (getter)Engine_get_processed,
     (setter)Engine_set_processed,
     "Total events dispatched by this simulator.", NULL},
    {"_seq", (getter)Engine_get_seq, NULL,
     "Monotone tie-breaking sequence counter.", NULL},
    {"_pending", (getter)Engine_get_pending, NULL,
     "Number of events currently queued.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject EngineType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernel._kernelc.Engine",
    .tp_doc = "Compiled event-heap simulator core (time, seq)-ordered, "
              "subclassed by repro.sim.engine.CompiledSimulator.",
    .tp_basicsize = sizeof(EngineObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC | Py_TPFLAGS_BASETYPE,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Engine_init,
    .tp_dealloc = (destructor)Engine_dealloc,
    .tp_traverse = (traverseproc)Engine_traverse,
    .tp_clear = (inquiry)Engine_clear,
    .tp_methods = Engine_methods,
    .tp_getset = Engine_getset,
};

/* ====================================================================== */
/* Dispatcher: protocol message dispatch                                   */
/* ====================================================================== */

typedef struct {
    PyObject_HEAD
    PyObject *dispatch; /* category -> bound handler dict (shared, owned ref) */
} DispatcherObject;

static int
Dispatcher_init(DispatcherObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *dispatch;

    if (kwds != NULL && PyDict_GET_SIZE(kwds) > 0) {
        PyErr_SetString(PyExc_TypeError,
                        "Dispatcher() takes no keyword arguments");
        return -1;
    }
    if (!PyArg_ParseTuple(args, "O!:Dispatcher", &PyDict_Type, &dispatch)) {
        return -1;
    }
    Py_INCREF(dispatch);
    Py_XSETREF(self->dispatch, dispatch);
    return 0;
}

static PyObject *
Dispatcher_call(DispatcherObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *msg, *category, *handler, *payload, *res;

    if (kwds != NULL && PyDict_GET_SIZE(kwds) > 0) {
        PyErr_SetString(PyExc_TypeError,
                        "Dispatcher takes no keyword arguments");
        return NULL;
    }
    if (PyTuple_GET_SIZE(args) != 1) {
        PyErr_SetString(PyExc_TypeError,
                        "Dispatcher expects exactly one message");
        return NULL;
    }
    msg = PyTuple_GET_ITEM(args, 0);
    category = PyObject_GetAttr(msg, str_category);
    if (category == NULL) {
        return NULL;
    }
    handler = PyDict_GetItemWithError(self->dispatch, category);
    Py_DECREF(category);
    if (handler == NULL) {
        if (PyErr_Occurred()) {
            return NULL;
        }
        PyErr_Format(PyExc_RuntimeError, "unhandled message %R", msg);
        return NULL;
    }
    Py_INCREF(handler);
    payload = PyObject_GetAttr(msg, str_payload);
    if (payload == NULL) {
        Py_DECREF(handler);
        return NULL;
    }
    res = PyObject_CallOneArg(handler, payload);
    Py_DECREF(handler);
    Py_DECREF(payload);
    if (res == NULL) {
        return NULL;
    }
    Py_DECREF(res);
    Py_RETURN_NONE;
}

static PyObject *
Dispatcher_get_dispatch(DispatcherObject *self, void *closure)
{
    if (self->dispatch == NULL) {
        Py_RETURN_NONE;
    }
    Py_INCREF(self->dispatch);
    return self->dispatch;
}

static int
Dispatcher_traverse(DispatcherObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->dispatch);
    return 0;
}

static int
Dispatcher_clear_gc(DispatcherObject *self)
{
    Py_CLEAR(self->dispatch);
    return 0;
}

static void
Dispatcher_dealloc(DispatcherObject *self)
{
    PyObject_GC_UnTrack(self);
    Py_CLEAR(self->dispatch);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyGetSetDef Dispatcher_getset[] = {
    {"dispatch", (getter)Dispatcher_get_dispatch, NULL,
     "The category -> handler dict this dispatcher reads (shared with the "
     "engine, so mutations are visible immediately).", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject DispatcherType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernel._kernelc.Dispatcher",
    .tp_doc = "Compiled per-message dispatch point: looks the message "
              "category up in a shared handler dict and invokes the bound "
              "handler with the payload.",
    .tp_basicsize = sizeof(DispatcherObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Dispatcher_init,
    .tp_call = (ternaryfunc)Dispatcher_call,
    .tp_dealloc = (destructor)Dispatcher_dealloc,
    .tp_traverse = (traverseproc)Dispatcher_traverse,
    .tp_clear = (inquiry)Dispatcher_clear_gc,
    .tp_getset = Dispatcher_getset,
};

/* ====================================================================== */
/* diff_arrays: the compute_diff scan                                      */
/* ====================================================================== */

/* Count pass + fill pass per element width.  Integer (and bool) dtypes
 * compare bitwise; float dtypes use the C != operator so NaN/-0.0
 * semantics match numpy's element-wise comparison exactly. */
#define DIFF_COUNT(CTYPE)                                                  \
    do {                                                                   \
        const CTYPE *ca = (const CTYPE *)a;                                \
        const CTYPE *cb = (const CTYPE *)b;                                \
        for (npy_intp i = 0; i < n; i++) {                                 \
            if (ca[i] != cb[i]) {                                          \
                nchanged++;                                                \
            }                                                              \
        }                                                                  \
    } while (0)

#define DIFF_FILL(CTYPE)                                                   \
    do {                                                                   \
        const CTYPE *ca = (const CTYPE *)a;                                \
        const CTYPE *cb = (const CTYPE *)b;                                \
        CTYPE *cv = (CTYPE *)values_data;                                  \
        npy_intp k = 0;                                                    \
        for (npy_intp i = 0; i < n; i++) {                                 \
            if (ca[i] != cb[i]) {                                          \
                if (k == 0 || indices_data[k - 1] + 1 != i) {              \
                    nruns++;                                               \
                }                                                          \
                indices_data[k] = i;                                       \
                cv[k] = ca[i];                                             \
                k++;                                                       \
            }                                                              \
        }                                                                  \
    } while (0)

enum diff_mode {
    DIFF_UNSUPPORTED = 0,
    DIFF_I8,
    DIFF_I16,
    DIFF_I32,
    DIFF_I64,
    DIFF_F32,
    DIFF_F64,
};

static enum diff_mode
diff_mode_for(int typenum, int itemsize)
{
    if (PyTypeNum_ISBOOL(typenum) || PyTypeNum_ISINTEGER(typenum)) {
        switch (itemsize) {
        case 1:
            return DIFF_I8;
        case 2:
            return DIFF_I16;
        case 4:
            return DIFF_I32;
        case 8:
            return DIFF_I64;
        default:
            return DIFF_UNSUPPORTED;
        }
    }
    if (typenum == NPY_FLOAT32) {
        return DIFF_F32;
    }
    if (typenum == NPY_FLOAT64) {
        return DIFF_F64;
    }
    return DIFF_UNSUPPORTED;
}

static PyObject *
diff_arrays(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    PyArrayObject *cur, *twin;
    const char *a, *b;
    npy_intp n, nchanged = 0, nruns = 0;
    npy_intp *indices_data;
    char *values_data;
    int typenum, itemsize;
    enum diff_mode mode;
    PyObject *indices = NULL, *values = NULL, *result;

    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "diff_arrays() requires (current, twin)");
        return NULL;
    }
    if (!PyArray_Check(args[0]) || !PyArray_Check(args[1])) {
        Py_RETURN_NOTIMPLEMENTED;
    }
    cur = (PyArrayObject *)args[0];
    twin = (PyArrayObject *)args[1];
    if (PyArray_NDIM(cur) != 1 || PyArray_NDIM(twin) != 1) {
        Py_RETURN_NOTIMPLEMENTED;
    }
    typenum = PyArray_TYPE(cur);
    if (PyArray_TYPE(twin) != typenum) {
        Py_RETURN_NOTIMPLEMENTED;
    }
    n = PyArray_DIM(cur, 0);
    if (PyArray_DIM(twin, 0) != n) {
        Py_RETURN_NOTIMPLEMENTED;
    }
    if (!PyArray_ISCARRAY_RO(cur) || !PyArray_ISCARRAY_RO(twin) ||
        !PyArray_ISNOTSWAPPED(cur) || !PyArray_ISNOTSWAPPED(twin)) {
        Py_RETURN_NOTIMPLEMENTED;
    }
    itemsize = (int)PyArray_ITEMSIZE(cur);
    mode = diff_mode_for(typenum, itemsize);
    if (mode == DIFF_UNSUPPORTED) {
        Py_RETURN_NOTIMPLEMENTED;
    }
    a = PyArray_BYTES(cur);
    b = PyArray_BYTES(twin);

    switch (mode) {
    case DIFF_I8:
        DIFF_COUNT(npy_uint8);
        break;
    case DIFF_I16:
        DIFF_COUNT(npy_uint16);
        break;
    case DIFF_I32:
        DIFF_COUNT(npy_uint32);
        break;
    case DIFF_I64:
        DIFF_COUNT(npy_uint64);
        break;
    case DIFF_F32:
        DIFF_COUNT(npy_float);
        break;
    case DIFF_F64:
        DIFF_COUNT(npy_double);
        break;
    default:
        Py_RETURN_NOTIMPLEMENTED;
    }

    if (nchanged == 0) {
        Py_RETURN_NONE;
    }

    indices = PyArray_SimpleNew(1, &nchanged, NPY_INTP);
    if (indices == NULL) {
        return NULL;
    }
    values = PyArray_SimpleNew(1, &nchanged, typenum);
    if (values == NULL) {
        Py_DECREF(indices);
        return NULL;
    }
    indices_data = (npy_intp *)PyArray_BYTES((PyArrayObject *)indices);
    values_data = PyArray_BYTES((PyArrayObject *)values);

    switch (mode) {
    case DIFF_I8:
        DIFF_FILL(npy_uint8);
        break;
    case DIFF_I16:
        DIFF_FILL(npy_uint16);
        break;
    case DIFF_I32:
        DIFF_FILL(npy_uint32);
        break;
    case DIFF_I64:
        DIFF_FILL(npy_uint64);
        break;
    case DIFF_F32:
        DIFF_FILL(npy_float);
        break;
    case DIFF_F64:
        DIFF_FILL(npy_double);
        break;
    default:
        break;
    }

    result = Py_BuildValue("(NNn)", indices, values, (Py_ssize_t)nruns);
    return result;
}

/* ====================================================================== */
/* adaptive_threshold: Equation 2                                          */
/* ====================================================================== */

static PyObject *
kernel_adaptive_threshold(PyObject *mod, PyObject *const *args,
                          Py_ssize_t nargs)
{
    double base, redirections, exclusive, alpha, lam, t_init, result;

    if (nargs != 6) {
        PyErr_SetString(
            PyExc_TypeError,
            "adaptive_threshold() requires (base, redirections, "
            "exclusive_home_writes, alpha, lam, t_init)");
        return NULL;
    }
    base = PyFloat_AsDouble(args[0]);
    if (base == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    redirections = PyFloat_AsDouble(args[1]);
    if (redirections == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    exclusive = PyFloat_AsDouble(args[2]);
    if (exclusive == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    alpha = PyFloat_AsDouble(args[3]);
    if (alpha == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    lam = PyFloat_AsDouble(args[4]);
    if (lam == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    t_init = PyFloat_AsDouble(args[5]);
    if (t_init == -1.0 && PyErr_Occurred()) {
        return NULL;
    }

    if (base < t_init) {
        PyErr_Format(PyExc_ValueError, "threshold base %S below floor %S",
                     args[0], args[5]);
        return NULL;
    }
    if (redirections < 0.0 || exclusive < 0.0) {
        PyErr_Format(PyExc_ValueError,
                     "feedback counters must be non-negative, got R=%S, E=%S",
                     args[1], args[2]);
        return NULL;
    }
    if (alpha <= 0.0) {
        PyErr_Format(PyExc_ValueError, "alpha must be positive, got %S",
                     args[3]);
        return NULL;
    }
    if (lam < 0.0) {
        PyErr_Format(PyExc_ValueError, "lambda must be non-negative, got %S",
                     args[4]);
        return NULL;
    }

    /* Same IEEE-754 operation order as the Python expression:
     * base + lam * (R - alpha * E), floored at t_init. */
    result = base + lam * (redirections - alpha * exclusive);
    if (result < t_init) {
        result = t_init;
    }
    return PyFloat_FromDouble(result);
}

/* ====================================================================== */
/* module                                                                  */
/* ====================================================================== */

static PyObject *
kernel_install(PyObject *mod, PyObject *exc)
{
    Py_INCREF(exc);
    Py_XSETREF(SimError, exc);
    Py_RETURN_NONE;
}

static PyMethodDef kernel_methods[] = {
    {"_install", kernel_install, METH_O,
     "_install(exc_type)\n--\n\n"
     "Register the SimulationError class the Engine raises."},
    {"diff_arrays", (PyCFunction)(void (*)(void))diff_arrays, METH_FASTCALL,
     "diff_arrays(current, twin)\n--\n\n"
     "Single-scan diff of two matching 1-D arrays.  Returns None when "
     "equal, (indices, values, nruns) when changed, or NotImplemented "
     "for layouts/dtypes the kernel does not handle."},
    {"adaptive_threshold",
     (PyCFunction)(void (*)(void))kernel_adaptive_threshold, METH_FASTCALL,
     "adaptive_threshold(base, redirections, exclusive_home_writes, alpha, "
     "lam, t_init)\n--\n\n"
     "Equation 2: max(base + lam * (R - alpha * E), t_init), with the "
     "pure-Python function's validation."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._kernel._kernelc",
    .m_doc = "Compiled hot kernels: event-heap engine, message dispatcher, "
             "diff scan, threshold update.",
    .m_size = -1,
    .m_methods = kernel_methods,
};

PyMODINIT_FUNC
PyInit__kernelc(void)
{
    PyObject *mod;

    import_array();

    str_category = PyUnicode_InternFromString("category");
    if (str_category == NULL) {
        return NULL;
    }
    str_payload = PyUnicode_InternFromString("payload");
    if (str_payload == NULL) {
        return NULL;
    }

    if (PyType_Ready(&EngineType) < 0 || PyType_Ready(&DispatcherType) < 0) {
        return NULL;
    }

    mod = PyModule_Create(&kernel_module);
    if (mod == NULL) {
        return NULL;
    }
    if (PyModule_AddObjectRef(mod, "Engine", (PyObject *)&EngineType) < 0 ||
        PyModule_AddObjectRef(mod, "Dispatcher",
                              (PyObject *)&DispatcherType) < 0 ||
        PyModule_AddIntConstant(mod, "KERNEL_API", 1) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
