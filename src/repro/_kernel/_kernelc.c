/* Compiled hot kernels for the repro package.
 *
 * Four kernels, chosen from profile data (see PROTOCOL.md §11):
 *
 *   Engine            -- the event-heap core of repro.sim.engine (push +
 *                        drain/dispatch).  repro.sim.engine.CompiledSimulator
 *                        subclasses it from Python and layers the process /
 *                        deadlock bookkeeping on top.
 *   Dispatcher        -- the per-message dispatch point of the DSM protocol
 *                        layer (category -> bound handler dict lookup).
 *   diff_arrays       -- the element-wise scan behind
 *                        repro.memory.diff.compute_diff.
 *   adaptive_threshold -- Equation 2 of the paper (repro.core.threshold).
 *
 * Determinism contract: every kernel reproduces the pure-Python semantics
 * bit for bit.  The event heap orders by (time, seq) with seq unique, so
 * any conforming priority queue pops the identical sequence heapq does.
 * Float comparisons in diff_arrays use the C `!=` operator, which matches
 * numpy's element-wise `!=` (NaN != NaN is true, -0.0 != 0.0 is false).
 * The threshold update applies the same IEEE-754 operations in the same
 * order as the Python expression.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#define NPY_NO_DEPRECATED_API NPY_1_7_API_VERSION
#include <numpy/arrayobject.h>

#include <stddef.h>
#include <string.h>
#include <structmember.h>

/* Set by _install(); the simulator raises this instead of RuntimeError. */
static PyObject *SimError = NULL;

static PyObject *str_category = NULL;
static PyObject *str_payload = NULL;
static PyObject *str_value = NULL;
static PyObject *str_mode = NULL;
static PyObject *str_interval = NULL;
static PyObject *str_read_interval = NULL;
static PyObject *str_write_interval = NULL;
static PyObject *str_homes = NULL;
static PyObject *str_cache = NULL;
static PyObject *str_index = NULL;
static PyObject *str_slots = NULL;
static PyObject *str_dirty = NULL;
static PyObject *str_home_dirty = NULL;
static PyObject *str_try_read_local = NULL;
static PyObject *str_try_write_local = NULL;
static PyObject *str_state = NULL;
static PyObject *str_home_reads = NULL;
static PyObject *str_home_writes = NULL;
static PyObject *str_exclusive_home_writes = NULL;
static PyObject *str_last_writer = NULL;
static PyObject *str_consecutive_writes = NULL;
static PyObject *str_consecutive_writer = NULL;
static PyObject *str_remote_reads = NULL;
static PyObject *str_sharers = NULL;
static PyObject *str_redirections = NULL;
static PyObject *str_upgrade_to_write = NULL;
static PyObject *str_twin = NULL;
static PyObject *str_request_id = NULL;
static PyObject *str_resolve = NULL;
static PyObject *str_arena = NULL;
static PyObject *str_stats = NULL;
static PyObject *str_events = NULL;
static PyObject *str_live = NULL;
static PyObject *str_oid = NULL;

/* ClusterStats.events keys (identical to the Python literals). */
static PyObject *ev_home_write = NULL;
static PyObject *ev_exclusive_home_write = NULL;
static PyObject *ev_remote_read = NULL;

static PyObject *zero_long = NULL;
static PyObject *one_long = NULL;
static PyObject *minus_one_long = NULL;

static PyObject *
sim_error_class(void)
{
    return SimError != NULL ? SimError : PyExc_RuntimeError;
}

/* ====================================================================== */
/* Engine: the event-heap simulator core                                   */
/* ====================================================================== */

typedef struct {
    double time;
    long long seq;
    PyObject *cb;   /* callback, owned */
    PyObject *args; /* argument tuple, owned; NULL for the no-arg fast path */
} Ev;

typedef struct {
    PyObject_HEAD
    Ev *ev;
    Py_ssize_t n;
    Py_ssize_t cap;
    double now;
    long long seq;
    long long processed;
} EngineObject;

/* Strict weak order matching the (time, seq, ...) tuples of the Python
 * heap: seq is unique, so callbacks are never compared. */
static inline int
ev_lt(const Ev *a, const Ev *b)
{
    if (a->time != b->time) {
        return a->time < b->time;
    }
    return a->seq < b->seq;
}

static int
heap_ensure(EngineObject *self, Py_ssize_t need)
{
    Py_ssize_t newcap;
    Ev *grown;

    if (need <= self->cap) {
        return 0;
    }
    newcap = self->cap > 0 ? self->cap * 2 : 64;
    while (newcap < need) {
        newcap *= 2;
    }
    grown = PyMem_Realloc(self->ev, (size_t)newcap * sizeof(Ev));
    if (grown == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->ev = grown;
    self->cap = newcap;
    return 0;
}

static void
heap_push(EngineObject *self, Ev ev)
{
    Ev *h = self->ev;
    Py_ssize_t i = self->n++;

    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (!ev_lt(&ev, &h[parent])) {
            break;
        }
        h[i] = h[parent];
        i = parent;
    }
    h[i] = ev;
}

static Ev
heap_pop(EngineObject *self)
{
    Ev *h = self->ev;
    Ev top = h[0];
    Py_ssize_t n = --self->n;

    if (n > 0) {
        Ev last = h[n];
        Py_ssize_t i = 0;
        for (;;) {
            Py_ssize_t child = 2 * i + 1;
            if (child >= n) {
                break;
            }
            if (child + 1 < n && ev_lt(&h[child + 1], &h[child])) {
                child++;
            }
            if (!ev_lt(&h[child], &last)) {
                break;
            }
            h[i] = h[child];
            i = child;
        }
        h[i] = last;
    }
    return top;
}

/* argv[0] is the callback, argv[1:] its arguments. */
static PyObject *
engine_push_common(EngineObject *self, double time, PyObject *const *argv,
                   Py_ssize_t argc)
{
    PyObject *args = NULL;
    Ev ev;

    if (argc > 1) {
        args = PyTuple_New(argc - 1);
        if (args == NULL) {
            return NULL;
        }
        for (Py_ssize_t i = 1; i < argc; i++) {
            PyObject *item = argv[i];
            Py_INCREF(item);
            PyTuple_SET_ITEM(args, i - 1, item);
        }
    }
    if (heap_ensure(self, self->n + 1) < 0) {
        Py_XDECREF(args);
        return NULL;
    }
    ev.time = time;
    ev.seq = self->seq++;
    Py_INCREF(argv[0]);
    ev.cb = argv[0];
    ev.args = args;
    heap_push(self, ev);
    Py_RETURN_NONE;
}

static PyObject *
Engine_schedule(EngineObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    double delay;

    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule() requires (delay, callback, *args)");
        return NULL;
    }
    delay = PyFloat_AsDouble(args[0]);
    if (delay == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    if (delay < 0.0) {
        PyErr_Format(sim_error_class(), "negative delay %R", args[0]);
        return NULL;
    }
    return engine_push_common(self, self->now + delay, args + 1, nargs - 1);
}

static PyObject *
Engine_at(EngineObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    double time;

    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "at() requires (time, callback, *args)");
        return NULL;
    }
    time = PyFloat_AsDouble(args[0]);
    if (time == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    if (time < self->now) {
        PyObject *now_obj = PyFloat_FromDouble(self->now);
        if (now_obj == NULL) {
            return NULL;
        }
        PyErr_Format(sim_error_class(),
                     "cannot schedule at %S before current time %S",
                     args[0], now_obj);
        Py_DECREF(now_obj);
        return NULL;
    }
    return engine_push_common(self, time, args + 1, nargs - 1);
}

static PyObject *
Engine_call_soon(EngineObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 1) {
        PyErr_SetString(PyExc_TypeError,
                        "call_soon() requires (callback, *args)");
        return NULL;
    }
    return engine_push_common(self, self->now, args, nargs);
}

/* _drain(until_or_None, heartbeat_every, heartbeat_cb_or_None)
 *
 * Returns True when stopped early at `until` (clock set to `until`,
 * remaining events left queued), False when the heap drained completely.
 * `processed` is incremented before each callback so the count stays
 * exact when a callback raises, mirroring the Python try/finally. */
static PyObject *
Engine_drain(EngineObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    int has_until = 0;
    double until = 0.0;
    long long every, countdown;
    PyObject *beat;

    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "_drain() requires (until, every, beat)");
        return NULL;
    }
    if (args[0] != Py_None) {
        until = PyFloat_AsDouble(args[0]);
        if (until == -1.0 && PyErr_Occurred()) {
            return NULL;
        }
        has_until = 1;
    }
    every = PyLong_AsLongLong(args[1]);
    if (every == -1 && PyErr_Occurred()) {
        return NULL;
    }
    beat = args[2];
    countdown = every;

    while (self->n > 0) {
        double time = self->ev[0].time;
        PyObject *res;
        Ev ev;

        if (has_until && time > until) {
            self->now = until;
            Py_RETURN_TRUE;
        }
        ev = heap_pop(self);
        self->now = ev.time;
        self->processed++;
        if (ev.args != NULL) {
            res = PyObject_Call(ev.cb, ev.args, NULL);
        }
        else {
            res = PyObject_CallNoArgs(ev.cb);
        }
        Py_DECREF(ev.cb);
        Py_XDECREF(ev.args);
        if (res == NULL) {
            return NULL;
        }
        Py_DECREF(res);
        if (every > 0 && --countdown == 0) {
            countdown = every;
            res = PyObject_CallOneArg(beat, (PyObject *)self);
            if (res == NULL) {
                return NULL;
            }
            Py_DECREF(res);
        }
    }
    Py_RETURN_FALSE;
}

static PyObject *
Engine_get_now(EngineObject *self, void *closure)
{
    return PyFloat_FromDouble(self->now);
}

static int
Engine_set_now(EngineObject *self, PyObject *value, void *closure)
{
    double now;

    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete _now");
        return -1;
    }
    now = PyFloat_AsDouble(value);
    if (now == -1.0 && PyErr_Occurred()) {
        return -1;
    }
    self->now = now;
    return 0;
}

static PyObject *
Engine_get_processed(EngineObject *self, void *closure)
{
    return PyLong_FromLongLong(self->processed);
}

static int
Engine_set_processed(EngineObject *self, PyObject *value, void *closure)
{
    long long processed;

    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete events_processed");
        return -1;
    }
    processed = PyLong_AsLongLong(value);
    if (processed == -1 && PyErr_Occurred()) {
        return -1;
    }
    self->processed = processed;
    return 0;
}

static PyObject *
Engine_get_seq(EngineObject *self, void *closure)
{
    return PyLong_FromLongLong(self->seq);
}

static PyObject *
Engine_get_pending(EngineObject *self, void *closure)
{
    return PyLong_FromSsize_t(self->n);
}

static int
Engine_traverse(EngineObject *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->n; i++) {
        Py_VISIT(self->ev[i].cb);
        Py_VISIT(self->ev[i].args);
    }
    return 0;
}

static int
Engine_clear(EngineObject *self)
{
    Py_ssize_t n = self->n;

    self->n = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        Py_CLEAR(self->ev[i].cb);
        Py_CLEAR(self->ev[i].args);
    }
    return 0;
}

static void
Engine_dealloc(EngineObject *self)
{
    PyObject_GC_UnTrack(self);
    Engine_clear(self);
    PyMem_Free(self->ev);
    self->ev = NULL;
    self->cap = 0;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
Engine_init(EngineObject *self, PyObject *args, PyObject *kwds)
{
    if ((args != NULL && PyTuple_GET_SIZE(args) > 0) ||
        (kwds != NULL && PyDict_GET_SIZE(kwds) > 0)) {
        PyErr_SetString(PyExc_TypeError, "Engine() takes no arguments");
        return -1;
    }
    Engine_clear(self);
    self->now = 0.0;
    self->seq = 0;
    self->processed = 0;
    return 0;
}

static PyMethodDef Engine_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))Engine_schedule,
     METH_FASTCALL,
     "schedule(delay, callback, *args)\n--\n\n"
     "Run callback(*args) delay microseconds from now."},
    {"at", (PyCFunction)(void (*)(void))Engine_at, METH_FASTCALL,
     "at(time, callback, *args)\n--\n\n"
     "Run callback(*args) at absolute simulated time."},
    {"call_soon", (PyCFunction)(void (*)(void))Engine_call_soon,
     METH_FASTCALL,
     "call_soon(callback, *args)\n--\n\n"
     "Schedule callback(*args) at the current instant (after pending ties)."},
    {"_drain", (PyCFunction)(void (*)(void))Engine_drain, METH_FASTCALL,
     "_drain(until, every, beat)\n--\n\n"
     "Drain the heap; True when stopped early at `until`, False when empty."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef Engine_getset[] = {
    {"_now", (getter)Engine_get_now, (setter)Engine_set_now,
     "Current simulated time in microseconds.", NULL},
    {"now", (getter)Engine_get_now, NULL,
     "Current simulated time in microseconds.", NULL},
    {"events_processed", (getter)Engine_get_processed,
     (setter)Engine_set_processed,
     "Total events dispatched by this simulator.", NULL},
    {"_seq", (getter)Engine_get_seq, NULL,
     "Monotone tie-breaking sequence counter.", NULL},
    {"_pending", (getter)Engine_get_pending, NULL,
     "Number of events currently queued.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject EngineType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernel._kernelc.Engine",
    .tp_doc = "Compiled event-heap simulator core (time, seq)-ordered, "
              "subclassed by repro.sim.engine.CompiledSimulator.",
    .tp_basicsize = sizeof(EngineObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC | Py_TPFLAGS_BASETYPE,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Engine_init,
    .tp_dealloc = (destructor)Engine_dealloc,
    .tp_traverse = (traverseproc)Engine_traverse,
    .tp_clear = (inquiry)Engine_clear,
    .tp_methods = Engine_methods,
    .tp_getset = Engine_getset,
};

/* ====================================================================== */
/* Dispatcher: protocol message dispatch                                   */
/* ====================================================================== */

typedef struct {
    PyObject_HEAD
    PyObject *dispatch; /* category -> bound handler dict (shared, owned ref) */
} DispatcherObject;

static int
Dispatcher_init(DispatcherObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *dispatch;

    if (kwds != NULL && PyDict_GET_SIZE(kwds) > 0) {
        PyErr_SetString(PyExc_TypeError,
                        "Dispatcher() takes no keyword arguments");
        return -1;
    }
    if (!PyArg_ParseTuple(args, "O!:Dispatcher", &PyDict_Type, &dispatch)) {
        return -1;
    }
    Py_INCREF(dispatch);
    Py_XSETREF(self->dispatch, dispatch);
    return 0;
}

static PyObject *
Dispatcher_call(DispatcherObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *msg, *category, *handler, *payload, *res;

    if (kwds != NULL && PyDict_GET_SIZE(kwds) > 0) {
        PyErr_SetString(PyExc_TypeError,
                        "Dispatcher takes no keyword arguments");
        return NULL;
    }
    if (PyTuple_GET_SIZE(args) != 1) {
        PyErr_SetString(PyExc_TypeError,
                        "Dispatcher expects exactly one message");
        return NULL;
    }
    msg = PyTuple_GET_ITEM(args, 0);
    category = PyObject_GetAttr(msg, str_category);
    if (category == NULL) {
        return NULL;
    }
    handler = PyDict_GetItemWithError(self->dispatch, category);
    Py_DECREF(category);
    if (handler == NULL) {
        if (PyErr_Occurred()) {
            return NULL;
        }
        PyErr_Format(PyExc_RuntimeError, "unhandled message %R", msg);
        return NULL;
    }
    Py_INCREF(handler);
    payload = PyObject_GetAttr(msg, str_payload);
    if (payload == NULL) {
        Py_DECREF(handler);
        return NULL;
    }
    res = PyObject_CallOneArg(handler, payload);
    Py_DECREF(handler);
    Py_DECREF(payload);
    if (res == NULL) {
        return NULL;
    }
    Py_DECREF(res);
    Py_RETURN_NONE;
}

static PyObject *
Dispatcher_get_dispatch(DispatcherObject *self, void *closure)
{
    if (self->dispatch == NULL) {
        Py_RETURN_NONE;
    }
    Py_INCREF(self->dispatch);
    return self->dispatch;
}

static int
Dispatcher_traverse(DispatcherObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->dispatch);
    return 0;
}

static int
Dispatcher_clear_gc(DispatcherObject *self)
{
    Py_CLEAR(self->dispatch);
    return 0;
}

static void
Dispatcher_dealloc(DispatcherObject *self)
{
    PyObject_GC_UnTrack(self);
    Py_CLEAR(self->dispatch);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyGetSetDef Dispatcher_getset[] = {
    {"dispatch", (getter)Dispatcher_get_dispatch, NULL,
     "The category -> handler dict this dispatcher reads (shared with the "
     "engine, so mutations are visible immediately).", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject DispatcherType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernel._kernelc.Dispatcher",
    .tp_doc = "Compiled per-message dispatch point: looks the message "
              "category up in a shared handler dict and invokes the bound "
              "handler with the payload.",
    .tp_basicsize = sizeof(DispatcherObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Dispatcher_init,
    .tp_call = (ternaryfunc)Dispatcher_call,
    .tp_dealloc = (destructor)Dispatcher_dealloc,
    .tp_traverse = (traverseproc)Dispatcher_traverse,
    .tp_clear = (inquiry)Dispatcher_clear_gc,
    .tp_getset = Dispatcher_getset,
};

/* ====================================================================== */
/* diff_arrays: the compute_diff scan                                      */
/* ====================================================================== */

/* Count pass + fill pass per element width.  Integer (and bool) dtypes
 * compare bitwise; float dtypes use the C != operator so NaN/-0.0
 * semantics match numpy's element-wise comparison exactly. */
#define DIFF_COUNT(CTYPE)                                                  \
    do {                                                                   \
        const CTYPE *ca = (const CTYPE *)a;                                \
        const CTYPE *cb = (const CTYPE *)b;                                \
        for (npy_intp i = 0; i < n; i++) {                                 \
            if (ca[i] != cb[i]) {                                          \
                nchanged++;                                                \
            }                                                              \
        }                                                                  \
    } while (0)

#define DIFF_FILL(CTYPE)                                                   \
    do {                                                                   \
        const CTYPE *ca = (const CTYPE *)a;                                \
        const CTYPE *cb = (const CTYPE *)b;                                \
        CTYPE *cv = (CTYPE *)values_data;                                  \
        npy_intp k = 0;                                                    \
        for (npy_intp i = 0; i < n; i++) {                                 \
            if (ca[i] != cb[i]) {                                          \
                if (k == 0 || indices_data[k - 1] + 1 != i) {              \
                    nruns++;                                               \
                }                                                          \
                indices_data[k] = i;                                       \
                cv[k] = ca[i];                                             \
                k++;                                                       \
            }                                                              \
        }                                                                  \
    } while (0)

enum diff_mode {
    DIFF_UNSUPPORTED = 0,
    DIFF_I8,
    DIFF_I16,
    DIFF_I32,
    DIFF_I64,
    DIFF_F32,
    DIFF_F64,
};

static enum diff_mode
diff_mode_for(int typenum, int itemsize)
{
    if (PyTypeNum_ISBOOL(typenum) || PyTypeNum_ISINTEGER(typenum)) {
        switch (itemsize) {
        case 1:
            return DIFF_I8;
        case 2:
            return DIFF_I16;
        case 4:
            return DIFF_I32;
        case 8:
            return DIFF_I64;
        default:
            return DIFF_UNSUPPORTED;
        }
    }
    if (typenum == NPY_FLOAT32) {
        return DIFF_F32;
    }
    if (typenum == NPY_FLOAT64) {
        return DIFF_F64;
    }
    return DIFF_UNSUPPORTED;
}

static PyObject *
diff_arrays(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    PyArrayObject *cur, *twin;
    const char *a, *b;
    npy_intp n, nchanged = 0, nruns = 0;
    npy_intp *indices_data;
    char *values_data;
    int typenum, itemsize;
    enum diff_mode mode;
    PyObject *indices = NULL, *values = NULL, *result;

    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "diff_arrays() requires (current, twin)");
        return NULL;
    }
    if (!PyArray_Check(args[0]) || !PyArray_Check(args[1])) {
        Py_RETURN_NOTIMPLEMENTED;
    }
    cur = (PyArrayObject *)args[0];
    twin = (PyArrayObject *)args[1];
    if (PyArray_NDIM(cur) != 1 || PyArray_NDIM(twin) != 1) {
        Py_RETURN_NOTIMPLEMENTED;
    }
    typenum = PyArray_TYPE(cur);
    if (PyArray_TYPE(twin) != typenum) {
        Py_RETURN_NOTIMPLEMENTED;
    }
    n = PyArray_DIM(cur, 0);
    if (PyArray_DIM(twin, 0) != n) {
        Py_RETURN_NOTIMPLEMENTED;
    }
    if (!PyArray_ISCARRAY_RO(cur) || !PyArray_ISCARRAY_RO(twin) ||
        !PyArray_ISNOTSWAPPED(cur) || !PyArray_ISNOTSWAPPED(twin)) {
        Py_RETURN_NOTIMPLEMENTED;
    }
    itemsize = (int)PyArray_ITEMSIZE(cur);
    mode = diff_mode_for(typenum, itemsize);
    if (mode == DIFF_UNSUPPORTED) {
        Py_RETURN_NOTIMPLEMENTED;
    }
    a = PyArray_BYTES(cur);
    b = PyArray_BYTES(twin);

    switch (mode) {
    case DIFF_I8:
        DIFF_COUNT(npy_uint8);
        break;
    case DIFF_I16:
        DIFF_COUNT(npy_uint16);
        break;
    case DIFF_I32:
        DIFF_COUNT(npy_uint32);
        break;
    case DIFF_I64:
        DIFF_COUNT(npy_uint64);
        break;
    case DIFF_F32:
        DIFF_COUNT(npy_float);
        break;
    case DIFF_F64:
        DIFF_COUNT(npy_double);
        break;
    default:
        Py_RETURN_NOTIMPLEMENTED;
    }

    if (nchanged == 0) {
        Py_RETURN_NONE;
    }

    indices = PyArray_SimpleNew(1, &nchanged, NPY_INTP);
    if (indices == NULL) {
        return NULL;
    }
    values = PyArray_SimpleNew(1, &nchanged, typenum);
    if (values == NULL) {
        Py_DECREF(indices);
        return NULL;
    }
    indices_data = (npy_intp *)PyArray_BYTES((PyArrayObject *)indices);
    values_data = PyArray_BYTES((PyArrayObject *)values);

    switch (mode) {
    case DIFF_I8:
        DIFF_FILL(npy_uint8);
        break;
    case DIFF_I16:
        DIFF_FILL(npy_uint16);
        break;
    case DIFF_I32:
        DIFF_FILL(npy_uint32);
        break;
    case DIFF_I64:
        DIFF_FILL(npy_uint64);
        break;
    case DIFF_F32:
        DIFF_FILL(npy_float);
        break;
    case DIFF_F64:
        DIFF_FILL(npy_double);
        break;
    default:
        break;
    }

    result = Py_BuildValue("(NNn)", indices, values, (Py_ssize_t)nruns);
    return result;
}

/* ====================================================================== */
/* adaptive_threshold: Equation 2                                          */
/* ====================================================================== */

static PyObject *
kernel_adaptive_threshold(PyObject *mod, PyObject *const *args,
                          Py_ssize_t nargs)
{
    double base, redirections, exclusive, alpha, lam, t_init, result;

    if (nargs != 6) {
        PyErr_SetString(
            PyExc_TypeError,
            "adaptive_threshold() requires (base, redirections, "
            "exclusive_home_writes, alpha, lam, t_init)");
        return NULL;
    }
    base = PyFloat_AsDouble(args[0]);
    if (base == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    redirections = PyFloat_AsDouble(args[1]);
    if (redirections == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    exclusive = PyFloat_AsDouble(args[2]);
    if (exclusive == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    alpha = PyFloat_AsDouble(args[3]);
    if (alpha == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    lam = PyFloat_AsDouble(args[4]);
    if (lam == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    t_init = PyFloat_AsDouble(args[5]);
    if (t_init == -1.0 && PyErr_Occurred()) {
        return NULL;
    }

    if (base < t_init) {
        PyErr_Format(PyExc_ValueError, "threshold base %S below floor %S",
                     args[0], args[5]);
        return NULL;
    }
    if (redirections < 0.0 || exclusive < 0.0) {
        PyErr_Format(PyExc_ValueError,
                     "feedback counters must be non-negative, got R=%S, E=%S",
                     args[1], args[2]);
        return NULL;
    }
    if (alpha <= 0.0) {
        PyErr_Format(PyExc_ValueError, "alpha must be positive, got %S",
                     args[3]);
        return NULL;
    }
    if (lam < 0.0) {
        PyErr_Format(PyExc_ValueError, "lambda must be non-negative, got %S",
                     args[4]);
        return NULL;
    }

    /* Same IEEE-754 operation order as the Python expression:
     * base + lam * (R - alpha * E), floored at t_init. */
    result = base + lam * (redirections - alpha * exclusive);
    if (result < t_init) {
        result = t_init;
    }
    return PyFloat_FromDouble(result);
}

/* ====================================================================== */
/* Protocol fast paths (PR 8)                                              */
/*                                                                         */
/* C twins of the highest-frequency handler bodies from the PR-6 profile:  */
/* the pending-queue containers of repro.dsm.pending, write-notice         */
/* merging, the try_read_local / try_write_local hit paths (LocalAccess,   */
/* reading the flat CacheIndex slots directly), and the network send +     */
/* batched delivery boundary (NetFabric / DeliveryPort / FabricSender).    */
/* Each reproduces the pure-Python semantics bit for bit; cold paths       */
/* fall back to the bound Python methods.                                  */
/* ====================================================================== */

/* obj.name += 1 through the attribute protocol (plain-int counters on
 * dataclass monitors). */
static int
attr_incr(PyObject *obj, PyObject *name)
{
    PyObject *cur = PyObject_GetAttr(obj, name);
    PyObject *next;
    int rc;

    if (cur == NULL) {
        return -1;
    }
    next = PyNumber_Add(cur, one_long);
    Py_DECREF(cur);
    if (next == NULL) {
        return -1;
    }
    rc = PyObject_SetAttr(obj, name, next);
    Py_DECREF(next);
    return rc;
}

/* counter[key] += delta with collections.Counter semantics: a missing key
 * reads as 0 (__missing__ does not insert), and the sum is computed with
 * PyNumber_Add so numpy integer operands keep their dtype exactly as in
 * the Python `+=`. */
static int
counter_add(PyObject *counter, PyObject *key, PyObject *delta)
{
    PyObject *cur = PyDict_GetItemWithError(counter, key);
    PyObject *sum;
    int rc;

    if (cur == NULL) {
        if (PyErr_Occurred()) {
            return -1;
        }
        sum = PyNumber_Add(zero_long, delta);
    }
    else {
        Py_INCREF(cur);
        sum = PyNumber_Add(cur, delta);
        Py_DECREF(cur);
    }
    if (sum == NULL) {
        return -1;
    }
    rc = PyDict_SetItem(counter, key, sum);
    Py_DECREF(sum);
    return rc;
}

/* ---------------------------------------------------------------------- */
/* VersionIndexedQueue: min-heap keyed on (min_version, arrival_seq)       */
/* ---------------------------------------------------------------------- */

typedef struct {
    long long minv;
    long long seq;
    PyObject *item; /* owned */
} VqEnt;

typedef struct {
    PyObject_HEAD
    VqEnt *ent;
    Py_ssize_t n;
    Py_ssize_t cap;
    long long seq;
} VqObject;

/* (min_version, seq) is a total order (seq unique), so extraction order
 * is identical to the Python heapq twin. */
static inline int
vq_lt(const VqEnt *a, const VqEnt *b)
{
    if (a->minv != b->minv) {
        return a->minv < b->minv;
    }
    return a->seq < b->seq;
}

static int
vq_ensure(VqObject *self, Py_ssize_t need)
{
    Py_ssize_t newcap;
    VqEnt *grown;

    if (need <= self->cap) {
        return 0;
    }
    newcap = self->cap > 0 ? self->cap * 2 : 8;
    while (newcap < need) {
        newcap *= 2;
    }
    grown = PyMem_Realloc(self->ent, (size_t)newcap * sizeof(VqEnt));
    if (grown == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->ent = grown;
    self->cap = newcap;
    return 0;
}

static void
vq_heap_push(VqObject *self, VqEnt ent)
{
    VqEnt *h = self->ent;
    Py_ssize_t i = self->n++;

    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (!vq_lt(&ent, &h[parent])) {
            break;
        }
        h[i] = h[parent];
        i = parent;
    }
    h[i] = ent;
}

static VqEnt
vq_heap_pop(VqObject *self)
{
    VqEnt *h = self->ent;
    VqEnt top = h[0];
    Py_ssize_t n = --self->n;

    if (n > 0) {
        VqEnt last = h[n];
        Py_ssize_t i = 0;
        for (;;) {
            Py_ssize_t child = 2 * i + 1;
            if (child >= n) {
                break;
            }
            if (child + 1 < n && vq_lt(&h[child + 1], &h[child])) {
                child++;
            }
            if (!vq_lt(&h[child], &last)) {
                break;
            }
            h[i] = h[child];
            i = child;
        }
        h[i] = last;
    }
    return top;
}

static int
vq_seq_cmp(const void *pa, const void *pb)
{
    const VqEnt *a = (const VqEnt *)pa;
    const VqEnt *b = (const VqEnt *)pb;

    return (a->seq > b->seq) - (a->seq < b->seq);
}

/* Move `count` entries (item refs transferred) into a new list sorted by
 * arrival seq. */
static PyObject *
vq_entries_to_list(VqEnt *ent, Py_ssize_t count)
{
    PyObject *out = PyList_New(count);

    if (out == NULL) {
        for (Py_ssize_t i = 0; i < count; i++) {
            Py_DECREF(ent[i].item);
        }
        return NULL;
    }
    qsort(ent, (size_t)count, sizeof(VqEnt), vq_seq_cmp);
    for (Py_ssize_t i = 0; i < count; i++) {
        PyList_SET_ITEM(out, i, ent[i].item);
        ent[i].item = NULL;
    }
    return out;
}

static PyObject *
Vq_push(VqObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    long long minv;
    VqEnt ent;

    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "push() requires (min_version, item)");
        return NULL;
    }
    minv = PyLong_AsLongLong(args[0]);
    if (minv == -1 && PyErr_Occurred()) {
        return NULL;
    }
    if (vq_ensure(self, self->n + 1) < 0) {
        return NULL;
    }
    ent.minv = minv;
    ent.seq = self->seq++;
    Py_INCREF(args[1]);
    ent.item = args[1];
    vq_heap_push(self, ent);
    Py_RETURN_NONE;
}

static PyObject *
Vq_pop_ready(VqObject *self, PyObject *arg)
{
    long long version;
    VqEnt *ready;
    Py_ssize_t count = 0;
    PyObject *out;

    version = PyLong_AsLongLong(arg);
    if (version == -1 && PyErr_Occurred()) {
        return NULL;
    }
    if (self->n == 0 || self->ent[0].minv > version) {
        return PyList_New(0);
    }
    ready = PyMem_Malloc((size_t)self->n * sizeof(VqEnt));
    if (ready == NULL) {
        return PyErr_NoMemory();
    }
    while (self->n > 0 && self->ent[0].minv <= version) {
        ready[count++] = vq_heap_pop(self);
    }
    out = vq_entries_to_list(ready, count);
    PyMem_Free(ready);
    return out;
}

static PyObject *
Vq_drain(VqObject *self, PyObject *ignored)
{
    PyObject *out;
    Py_ssize_t count = self->n;

    /* The heap array is reused as the scratch buffer: all entries leave,
     * and vq_entries_to_list hands their item refs to the list. */
    self->n = 0;
    out = vq_entries_to_list(self->ent, count);
    return out;
}

static Py_ssize_t
Vq_len(VqObject *self)
{
    return self->n;
}

static PyObject *
Vq_iter(VqObject *self)
{
    /* Arrival-order snapshot (inspection/tests only, like the Python
     * twin's __iter__). */
    PyObject *snap = PyList_New(self->n);
    PyObject *it;
    VqEnt *copy;

    if (snap == NULL) {
        return NULL;
    }
    copy = PyMem_Malloc((size_t)(self->n > 0 ? self->n : 1) * sizeof(VqEnt));
    if (copy == NULL) {
        Py_DECREF(snap);
        return PyErr_NoMemory();
    }
    memcpy(copy, self->ent, (size_t)self->n * sizeof(VqEnt));
    qsort(copy, (size_t)self->n, sizeof(VqEnt), vq_seq_cmp);
    for (Py_ssize_t i = 0; i < self->n; i++) {
        Py_INCREF(copy[i].item);
        PyList_SET_ITEM(snap, i, copy[i].item);
    }
    PyMem_Free(copy);
    it = PyObject_GetIter(snap);
    Py_DECREF(snap);
    return it;
}

static PyObject *
Vq_repr(VqObject *self)
{
    return PyUnicode_FromFormat("<VersionIndexedQueue pending=%zd>", self->n);
}

static int
Vq_traverse(VqObject *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->n; i++) {
        Py_VISIT(self->ent[i].item);
    }
    return 0;
}

static int
Vq_clear_gc(VqObject *self)
{
    Py_ssize_t n = self->n;

    self->n = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        Py_CLEAR(self->ent[i].item);
    }
    return 0;
}

static void
Vq_dealloc(VqObject *self)
{
    PyObject_GC_UnTrack(self);
    Vq_clear_gc(self);
    PyMem_Free(self->ent);
    self->ent = NULL;
    self->cap = 0;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
Vq_init(VqObject *self, PyObject *args, PyObject *kwds)
{
    if ((args != NULL && PyTuple_GET_SIZE(args) > 0) ||
        (kwds != NULL && PyDict_GET_SIZE(kwds) > 0)) {
        PyErr_SetString(PyExc_TypeError,
                        "VersionIndexedQueue() takes no arguments");
        return -1;
    }
    Vq_clear_gc(self);
    self->seq = 0;
    return 0;
}

static PyMethodDef Vq_methods[] = {
    {"push", (PyCFunction)(void (*)(void))Vq_push, METH_FASTCALL,
     "push(min_version, item)\n--\n\n"
     "Defer item until the version reaches min_version."},
    {"pop_ready", (PyCFunction)Vq_pop_ready, METH_O,
     "pop_ready(version)\n--\n\n"
     "Remove and return every item with min_version <= version, in "
     "arrival order."},
    {"drain", (PyCFunction)Vq_drain, METH_NOARGS,
     "drain()\n--\n\nRemove and return everything, in arrival order."},
    {NULL, NULL, 0, NULL},
};

static PySequenceMethods Vq_as_sequence = {
    .sq_length = (lenfunc)Vq_len,
};

static PyTypeObject VqType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernel._kernelc.VersionIndexedQueue",
    .tp_doc = "Compiled twin of repro.dsm.pending.VersionIndexedQueue.",
    .tp_basicsize = sizeof(VqObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Vq_init,
    .tp_dealloc = (destructor)Vq_dealloc,
    .tp_traverse = (traverseproc)Vq_traverse,
    .tp_clear = (inquiry)Vq_clear_gc,
    .tp_methods = Vq_methods,
    .tp_as_sequence = &Vq_as_sequence,
    .tp_iter = (getiterfunc)Vq_iter,
    .tp_repr = (reprfunc)Vq_repr,
};

/* ---------------------------------------------------------------------- */
/* KeyedFifo: per-key FIFO queues                                          */
/* ---------------------------------------------------------------------- */

typedef struct {
    PyObject_HEAD
    PyObject *by_key; /* dict key -> list, owned */
} KfObject;

static PyObject *
Kf_add(KfObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *queue;

    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "add() requires (key, item)");
        return NULL;
    }
    queue = PyDict_GetItemWithError(self->by_key, args[0]);
    if (queue == NULL) {
        if (PyErr_Occurred()) {
            return NULL;
        }
        queue = PyList_New(0);
        if (queue == NULL) {
            return NULL;
        }
        if (PyDict_SetItem(self->by_key, args[0], queue) < 0) {
            Py_DECREF(queue);
            return NULL;
        }
        Py_DECREF(queue); /* dict holds it; borrowed ref stays valid */
    }
    if (PyList_Append(queue, args[1]) < 0) {
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
Kf_pop_all(KfObject *self, PyObject *key)
{
    PyObject *queue, *out;

    queue = PyDict_GetItemWithError(self->by_key, key);
    if (queue == NULL) {
        if (PyErr_Occurred()) {
            return NULL;
        }
        return PyList_New(0);
    }
    /* Like the Python twin's `list(queue)`: hand back a copy, so stale
     * references to the stored queue cannot alias the result. */
    Py_INCREF(queue);
    out = PySequence_List(queue);
    if (out != NULL && PyDict_DelItem(self->by_key, key) < 0) {
        Py_CLEAR(out);
    }
    Py_DECREF(queue);
    return out;
}

static PyObject *
Kf_prune_empty(KfObject *self, PyObject *ignored)
{
    PyObject *key, *queue, *empty;
    Py_ssize_t pos = 0, count;

    empty = PyList_New(0);
    if (empty == NULL) {
        return NULL;
    }
    while (PyDict_Next(self->by_key, &pos, &key, &queue)) {
        int truth = PyObject_IsTrue(queue);
        if (truth < 0) {
            Py_DECREF(empty);
            return NULL;
        }
        if (!truth && PyList_Append(empty, key) < 0) {
            Py_DECREF(empty);
            return NULL;
        }
    }
    count = PyList_GET_SIZE(empty);
    for (Py_ssize_t i = 0; i < count; i++) {
        if (PyDict_DelItem(self->by_key, PyList_GET_ITEM(empty, i)) < 0) {
            Py_DECREF(empty);
            return NULL;
        }
    }
    Py_DECREF(empty);
    return PyLong_FromSsize_t(count);
}

static Py_ssize_t
kf_total_items(KfObject *self)
{
    PyObject *key, *queue;
    Py_ssize_t pos = 0, total = 0;

    while (PyDict_Next(self->by_key, &pos, &key, &queue)) {
        Py_ssize_t n = PyObject_Length(queue);
        if (n < 0) {
            return -1;
        }
        total += n;
    }
    return total;
}

static Py_ssize_t
Kf_len(KfObject *self)
{
    return kf_total_items(self);
}

static int
Kf_bool(KfObject *self)
{
    /* Truthiness tracks the key map, like the Python twin: a queue
     * drained in place by a stale reference still counts until
     * prune_empty() runs. */
    return PyDict_GET_SIZE(self->by_key) > 0;
}

static int
Kf_contains(KfObject *self, PyObject *key)
{
    return PyDict_Contains(self->by_key, key);
}

static PyObject *
Kf_repr(KfObject *self)
{
    Py_ssize_t total = kf_total_items(self);

    if (total < 0) {
        return NULL;
    }
    return PyUnicode_FromFormat("<KeyedFifo keys=%zd items=%zd>",
                                PyDict_GET_SIZE(self->by_key), total);
}

static PyObject *
Kf_get_by_key(KfObject *self, void *closure)
{
    Py_INCREF(self->by_key);
    return self->by_key;
}

static int
Kf_traverse(KfObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->by_key);
    return 0;
}

static int
Kf_clear_gc(KfObject *self)
{
    Py_CLEAR(self->by_key);
    return 0;
}

static void
Kf_dealloc(KfObject *self)
{
    PyObject_GC_UnTrack(self);
    Kf_clear_gc(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
Kf_init(KfObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *by_key;

    if ((args != NULL && PyTuple_GET_SIZE(args) > 0) ||
        (kwds != NULL && PyDict_GET_SIZE(kwds) > 0)) {
        PyErr_SetString(PyExc_TypeError, "KeyedFifo() takes no arguments");
        return -1;
    }
    by_key = PyDict_New();
    if (by_key == NULL) {
        return -1;
    }
    Py_XSETREF(self->by_key, by_key);
    return 0;
}

static PyMethodDef Kf_methods[] = {
    {"add", (PyCFunction)(void (*)(void))Kf_add, METH_FASTCALL,
     "add(key, item)\n--\n\nPark item under key (FIFO within the key)."},
    {"pop_all", (PyCFunction)Kf_pop_all, METH_O,
     "pop_all(key)\n--\n\n"
     "Remove and return everything parked under key, in order."},
    {"prune_empty", (PyCFunction)Kf_prune_empty, METH_NOARGS,
     "prune_empty()\n--\n\n"
     "Drop keys whose queue is empty; return how many were dropped."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef Kf_getset[] = {
    {"_by_key", (getter)Kf_get_by_key, NULL,
     "The key -> queue dict (inspection/tests, like the Python twin's "
     "slot).", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyNumberMethods Kf_as_number = {
    .nb_bool = (inquiry)Kf_bool,
};

static PySequenceMethods Kf_as_sequence = {
    .sq_length = (lenfunc)Kf_len,
    .sq_contains = (objobjproc)Kf_contains,
};

static PyTypeObject KfType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernel._kernelc.KeyedFifo",
    .tp_doc = "Compiled twin of repro.dsm.pending.KeyedFifo.",
    .tp_basicsize = sizeof(KfObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Kf_init,
    .tp_dealloc = (destructor)Kf_dealloc,
    .tp_traverse = (traverseproc)Kf_traverse,
    .tp_clear = (inquiry)Kf_clear_gc,
    .tp_methods = Kf_methods,
    .tp_getset = Kf_getset,
    .tp_as_number = &Kf_as_number,
    .tp_as_sequence = &Kf_as_sequence,
    .tp_repr = (reprfunc)Kf_repr,
};

/* ---------------------------------------------------------------------- */
/* merge_notices: oid -> max(version) fold                                 */
/* ---------------------------------------------------------------------- */

static PyObject *
kernel_merge_notices(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *dst, *src, *key, *value, *cur;
    Py_ssize_t pos = 0;

    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "merge_notices() requires (accumulated, incoming)");
        return NULL;
    }
    dst = args[0];
    src = args[1];
    if (!PyDict_Check(dst) || !PyDict_Check(src)) {
        PyErr_SetString(PyExc_TypeError,
                        "merge_notices() requires two dicts");
        return NULL;
    }
    if (dst == src) {
        /* v > v is false for every entry; nothing to do. */
        Py_RETURN_NONE;
    }
    while (PyDict_Next(src, &pos, &key, &value)) {
        int gt;

        cur = PyDict_GetItemWithError(dst, key);
        if (cur == NULL && PyErr_Occurred()) {
            return NULL;
        }
        gt = PyObject_RichCompareBool(value, cur != NULL ? cur : zero_long,
                                      Py_GT);
        if (gt < 0) {
            return NULL;
        }
        if (gt && PyDict_SetItem(dst, key, value) < 0) {
            return NULL;
        }
    }
    Py_RETURN_NONE;
}

/* ---------------------------------------------------------------------- */
/* LocalAccess: try_read_local / try_write_local hit paths                 */
/* ---------------------------------------------------------------------- */

typedef struct {
    PyObject_HEAD
    PyObject *engine;       /* protocol engine, owned */
    PyObject *homes;        /* engine.homes dict */
    PyObject *index;        /* engine.cache._index dict (never rebound) */
    PyObject *slots;        /* engine.cache._slots list (never rebound) */
    PyObject *dirty;        /* engine.dirty set */
    PyObject *home_dirty;   /* engine.home_dirty set */
    PyObject *events;       /* engine.stats.events Counter (dict subclass) */
    PyObject *arena;        /* engine.arena (twin pool) */
    PyObject *py_read;      /* bound pure-Python try_read_local */
    PyObject *py_write;     /* bound pure-Python try_write_local */
    PyObject *invalid_mode; /* AccessMode.INVALID (identity-compared) */
    PyObject *write_mode;   /* AccessMode.WRITE */
    int fast_cache_write;
} LocalAccessObject;

static int
LocalAccess_init(LocalAccessObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *engine, *invalid_mode, *write_mode, *cache;
    int fast_cache_write;

    if (kwds != NULL && PyDict_GET_SIZE(kwds) > 0) {
        PyErr_SetString(PyExc_TypeError,
                        "LocalAccess() takes no keyword arguments");
        return -1;
    }
    if (!PyArg_ParseTuple(args, "OOOp:LocalAccess", &engine, &invalid_mode,
                          &write_mode, &fast_cache_write)) {
        return -1;
    }
    Py_INCREF(engine);
    Py_XSETREF(self->engine, engine);
    Py_INCREF(invalid_mode);
    Py_XSETREF(self->invalid_mode, invalid_mode);
    Py_INCREF(write_mode);
    Py_XSETREF(self->write_mode, write_mode);
    self->fast_cache_write = fast_cache_write;

    Py_XSETREF(self->homes, PyObject_GetAttr(engine, str_homes));
    if (self->homes == NULL || !PyDict_Check(self->homes)) {
        goto bad_engine;
    }
    cache = PyObject_GetAttr(engine, str_cache);
    if (cache == NULL) {
        return -1;
    }
    Py_XSETREF(self->index, PyObject_GetAttr(cache, str_index));
    Py_XSETREF(self->slots, PyObject_GetAttr(cache, str_slots));
    Py_DECREF(cache);
    if (self->index == NULL || !PyDict_Check(self->index) ||
        self->slots == NULL || !PyList_Check(self->slots)) {
        goto bad_engine;
    }
    Py_XSETREF(self->dirty, PyObject_GetAttr(engine, str_dirty));
    Py_XSETREF(self->home_dirty, PyObject_GetAttr(engine, str_home_dirty));
    if (self->dirty == NULL || !PyAnySet_Check(self->dirty) ||
        self->home_dirty == NULL || !PyAnySet_Check(self->home_dirty)) {
        goto bad_engine;
    }
    {
        PyObject *stats = PyObject_GetAttr(engine, str_stats);
        if (stats == NULL) {
            return -1;
        }
        Py_XSETREF(self->events, PyObject_GetAttr(stats, str_events));
        Py_DECREF(stats);
    }
    if (self->events == NULL || !PyDict_Check(self->events)) {
        goto bad_engine;
    }
    Py_XSETREF(self->arena, PyObject_GetAttr(engine, str_arena));
    if (self->arena == NULL) {
        return -1;
    }
    /* The bound class methods, captured before the engine shadows them
     * with this object's fast entry points. */
    Py_XSETREF(self->py_read, PyObject_GetAttr(engine, str_try_read_local));
    Py_XSETREF(self->py_write, PyObject_GetAttr(engine, str_try_write_local));
    if (self->py_read == NULL || self->py_write == NULL) {
        return -1;
    }
    return 0;

bad_engine:
    if (!PyErr_Occurred()) {
        PyErr_SetString(PyExc_TypeError,
                        "LocalAccess() requires a protocol engine with dict "
                        "homes, a CacheIndex cache, and set dirty tracking");
    }
    return -1;
}

static PyObject *
local_cache_entry(LocalAccessObject *self, PyObject *oid)
{
    /* Borrowed live CacheEntry, Py_None for a dead/absent slot, NULL on
     * error. */
    PyObject *slot = PyDict_GetItemWithError(self->index, oid);
    Py_ssize_t i;

    if (slot == NULL) {
        if (PyErr_Occurred()) {
            return NULL;
        }
        return Py_None;
    }
    i = PyLong_AsSsize_t(slot);
    if (i == -1 && PyErr_Occurred()) {
        return NULL;
    }
    if (i < 0 || i >= PyList_GET_SIZE(self->slots)) {
        PyErr_Format(PyExc_IndexError,
                     "cache index slot %zd out of range", i);
        return NULL;
    }
    return PyList_GET_ITEM(self->slots, i);
}

/* Home-copy read hit, including the once-per-interval read trap
 * (trap_home_read + record_home_read inlined).  `home` is borrowed and
 * kept alive by the caller; returns a new payload reference. */
static PyObject *
la_home_read(LocalAccessObject *self, PyObject *home)
{
    PyObject *iv, *ri, *state;
    int hit;

    iv = PyObject_GetAttr(self->engine, str_interval);
    if (iv == NULL) {
        return NULL;
    }
    ri = PyObject_GetAttr(home, str_read_interval);
    if (ri == NULL) {
        goto fail;
    }
    hit = PyObject_RichCompareBool(ri, iv, Py_EQ);
    Py_DECREF(ri);
    if (hit < 0) {
        goto fail;
    }
    if (!hit) {
        /* trap_home_read: mark this interval, bump the monitor count. */
        if (PyObject_SetAttr(home, str_read_interval, iv) < 0) {
            goto fail;
        }
        state = PyObject_GetAttr(home, str_state);
        if (state == NULL) {
            goto fail;
        }
        if (attr_incr(state, str_home_reads) < 0) {
            Py_DECREF(state);
            goto fail;
        }
        Py_DECREF(state);
    }
    Py_DECREF(iv);
    return PyObject_GetAttr(home, str_payload);

fail:
    Py_DECREF(iv);
    return NULL;
}

/* Home-copy write hit, including the once-per-interval write trap
 * (trap_home_write + record_home_write + the home_write /
 * exclusive_home_write stats, all inlined). */
static PyObject *
la_home_write(LocalAccessObject *self, PyObject *oid, PyObject *home)
{
    PyObject *iv, *wi, *state, *last;
    int hit, exclusive;

    iv = PyObject_GetAttr(self->engine, str_interval);
    if (iv == NULL) {
        return NULL;
    }
    wi = PyObject_GetAttr(home, str_write_interval);
    if (wi == NULL) {
        goto fail;
    }
    hit = PyObject_RichCompareBool(wi, iv, Py_EQ);
    Py_DECREF(wi);
    if (hit < 0) {
        goto fail;
    }
    if (!hit) {
        if (PyObject_SetAttr(home, str_write_interval, iv) < 0) {
            goto fail;
        }
        state = PyObject_GetAttr(home, str_state);
        if (state == NULL) {
            goto fail;
        }
        /* record_home_write: E bumps only when no remote write broke the
         * home-write chain (last_writer still HOME_WRITER == -1). */
        if (attr_incr(state, str_home_writes) < 0) {
            goto fail_state;
        }
        last = PyObject_GetAttr(state, str_last_writer);
        if (last == NULL) {
            goto fail_state;
        }
        exclusive = PyObject_RichCompareBool(last, minus_one_long, Py_EQ);
        Py_DECREF(last);
        if (exclusive < 0) {
            goto fail_state;
        }
        if (exclusive &&
            attr_incr(state, str_exclusive_home_writes) < 0) {
            goto fail_state;
        }
        if (PyObject_SetAttr(state, str_last_writer, minus_one_long) < 0 ||
            PyObject_SetAttr(state, str_consecutive_writes, zero_long) < 0 ||
            PyObject_SetAttr(state, str_consecutive_writer, Py_None) < 0) {
            goto fail_state;
        }
        Py_DECREF(state);
        if (counter_add(self->events, ev_home_write, one_long) < 0) {
            goto fail;
        }
        if (exclusive &&
            counter_add(self->events, ev_exclusive_home_write,
                        one_long) < 0) {
            goto fail;
        }
    }
    Py_DECREF(iv);
    if (PySet_Add(self->home_dirty, oid) < 0) {
        return NULL;
    }
    return PyObject_GetAttr(home, str_payload);

fail_state:
    Py_DECREF(state);
fail:
    Py_DECREF(iv);
    return NULL;
}

static PyObject *
LocalAccess_try_read(LocalAccessObject *self, PyObject *oid)
{
    PyObject *home, *entry, *mode, *payload;

    home = PyDict_GetItemWithError(self->homes, oid);
    if (home == NULL && PyErr_Occurred()) {
        return NULL;
    }
    if (home != NULL) {
        Py_INCREF(home);
        payload = la_home_read(self, home);
        Py_DECREF(home);
        return payload;
    }
    entry = local_cache_entry(self, oid);
    if (entry == NULL) {
        return NULL;
    }
    if (entry == Py_None) {
        Py_RETURN_NONE;
    }
    mode = PyObject_GetAttr(entry, str_mode);
    if (mode == NULL) {
        return NULL;
    }
    if (mode == self->invalid_mode) {
        Py_DECREF(mode);
        Py_RETURN_NONE;
    }
    Py_DECREF(mode);
    payload = PyObject_GetAttr(entry, str_payload);
    return payload;
}

static PyObject *
LocalAccess_try_write(LocalAccessObject *self, PyObject *oid)
{
    PyObject *home, *entry, *mode, *payload;

    home = PyDict_GetItemWithError(self->homes, oid);
    if (home == NULL && PyErr_Occurred()) {
        return NULL;
    }
    if (home != NULL) {
        Py_INCREF(home);
        payload = la_home_write(self, oid, home);
        Py_DECREF(home);
        return payload;
    }
    entry = local_cache_entry(self, oid);
    if (entry == NULL) {
        return NULL;
    }
    if (entry == Py_None) {
        Py_RETURN_NONE;
    }
    Py_INCREF(entry);
    mode = PyObject_GetAttr(entry, str_mode);
    if (mode == NULL) {
        Py_DECREF(entry);
        return NULL;
    }
    if (mode == self->invalid_mode) {
        Py_DECREF(mode);
        Py_DECREF(entry);
        Py_RETURN_NONE;
    }
    if (!self->fast_cache_write) {
        /* Tracer armed: twin-create tracing needs the Python body. */
        Py_DECREF(mode);
        Py_DECREF(entry);
        return PyObject_CallOneArg(self->py_write, oid);
    }
    if (mode != self->write_mode) {
        /* READ copy: snapshot the twin and upgrade (arena-pooled), then
         * continue on the common dirty-mark path below. */
        PyObject *r = PyObject_CallMethodObjArgs(
            entry, str_upgrade_to_write, self->arena, NULL);
        if (r == NULL) {
            Py_DECREF(mode);
            Py_DECREF(entry);
            return NULL;
        }
        Py_DECREF(r);
    }
    Py_DECREF(mode);
    if (PySet_Add(self->dirty, oid) < 0) {
        Py_DECREF(entry);
        return NULL;
    }
    payload = PyObject_GetAttr(entry, str_payload);
    Py_DECREF(entry);
    return payload;
}

static int
LocalAccess_traverse(LocalAccessObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->engine);
    Py_VISIT(self->homes);
    Py_VISIT(self->index);
    Py_VISIT(self->slots);
    Py_VISIT(self->dirty);
    Py_VISIT(self->home_dirty);
    Py_VISIT(self->events);
    Py_VISIT(self->arena);
    Py_VISIT(self->py_read);
    Py_VISIT(self->py_write);
    Py_VISIT(self->invalid_mode);
    Py_VISIT(self->write_mode);
    return 0;
}

static int
LocalAccess_clear_gc(LocalAccessObject *self)
{
    Py_CLEAR(self->engine);
    Py_CLEAR(self->homes);
    Py_CLEAR(self->index);
    Py_CLEAR(self->slots);
    Py_CLEAR(self->dirty);
    Py_CLEAR(self->home_dirty);
    Py_CLEAR(self->events);
    Py_CLEAR(self->arena);
    Py_CLEAR(self->py_read);
    Py_CLEAR(self->py_write);
    Py_CLEAR(self->invalid_mode);
    Py_CLEAR(self->write_mode);
    return 0;
}

static void
LocalAccess_dealloc(LocalAccessObject *self)
{
    PyObject_GC_UnTrack(self);
    LocalAccess_clear_gc(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef LocalAccess_methods[] = {
    {"try_read", (PyCFunction)LocalAccess_try_read, METH_O,
     "try_read(oid)\n--\n\n"
     "Serve a local read hit (home or valid cached copy); None on miss. "
     "Cold paths (trap bookkeeping) fall back to the Python body."},
    {"try_write", (PyCFunction)LocalAccess_try_write, METH_O,
     "try_write(oid)\n--\n\n"
     "Serve a local write hit; None on miss.  Twin creation and trap "
     "bookkeeping fall back to the Python body."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject LocalAccessType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernel._kernelc.LocalAccess",
    .tp_doc = "Compiled try_read_local/try_write_local hit paths over the "
              "flat CacheIndex of one protocol engine.",
    .tp_basicsize = sizeof(LocalAccessObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)LocalAccess_init,
    .tp_dealloc = (destructor)LocalAccess_dealloc,
    .tp_traverse = (traverseproc)LocalAccess_traverse,
    .tp_clear = (inquiry)LocalAccess_clear_gc,
    .tp_methods = LocalAccess_methods,
};

/* ---------------------------------------------------------------------- */
/* Ready: an already-resolved ``yield from`` target                        */
/* ---------------------------------------------------------------------- */

typedef struct {
    PyObject_HEAD
    PyObject *value; /* owned; NULL once consumed */
} ReadyObject;

static int
Ready_init(ReadyObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *value;

    if (kwds != NULL && PyDict_GET_SIZE(kwds) > 0) {
        PyErr_SetString(PyExc_TypeError,
                        "Ready() takes no keyword arguments");
        return -1;
    }
    if (!PyArg_ParseTuple(args, "O:Ready", &value)) {
        return -1;
    }
    Py_INCREF(value);
    Py_XSETREF(self->value, value);
    return 0;
}

static PyObject *
Ready_iter(PyObject *self)
{
    Py_INCREF(self);
    return self;
}

static PyObject *
Ready_iternext(ReadyObject *self)
{
    PyObject *value = self->value;

    if (value != NULL) {
        self->value = NULL;
        if (value != Py_None) {
            /* Build the StopIteration instance explicitly: raw
             * PyErr_SetObject would unpack tuple values into separate
             * exception args. */
            PyObject *exc = PyObject_CallOneArg(PyExc_StopIteration, value);
            if (exc != NULL) {
                PyErr_SetObject(PyExc_StopIteration, exc);
                Py_DECREF(exc);
            }
        }
        Py_DECREF(value);
    }
    return NULL;
}

static int
Ready_traverse(ReadyObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->value);
    return 0;
}

static int
Ready_clear_gc(ReadyObject *self)
{
    Py_CLEAR(self->value);
    return 0;
}

static void
Ready_dealloc(ReadyObject *self)
{
    PyObject_GC_UnTrack(self);
    Ready_clear_gc(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject ReadyType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernel._kernelc.Ready",
    .tp_doc = "Single-use iterator that immediately raises "
              "StopIteration(value): the zero-event ``yield from`` target "
              "for local access hits, sparing a generator per call.",
    .tp_basicsize = sizeof(ReadyObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Ready_init,
    .tp_dealloc = (destructor)Ready_dealloc,
    .tp_traverse = (traverseproc)Ready_traverse,
    .tp_clear = (inquiry)Ready_clear_gc,
    .tp_iter = Ready_iter,
    .tp_iternext = (iternextfunc)Ready_iternext,
};

/* ---------------------------------------------------------------------- */
/* Accessor: fused ThreadContext.read / ThreadContext.write fast path      */
/* ---------------------------------------------------------------------- */

/* One C call replaces the whole Python access wrapper: fetch ``obj.oid``,
 * probe the LocalAccess hit path, and either wrap the payload in a Ready
 * (hit) or delegate to the engine's miss generator.  Side effects are the
 * wrapper's exactly — same probe, same miss call, same iterator type. */
typedef struct {
    PyObject_HEAD
    PyObject *la;         /* kernel LocalAccess, owned */
    PyObject *miss_read;  /* bound engine.read (miss generator) */
    PyObject *miss_write; /* bound engine.write (miss generator) */
} AccessorObject;

static PyTypeObject AccessorType; /* forward */

static int
Accessor_init(AccessorObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *la, *miss_read, *miss_write;

    if (kwds != NULL && PyDict_GET_SIZE(kwds) > 0) {
        PyErr_SetString(PyExc_TypeError,
                        "Accessor() takes no keyword arguments");
        return -1;
    }
    if (!PyArg_ParseTuple(args, "O!OO:Accessor", &LocalAccessType, &la,
                          &miss_read, &miss_write)) {
        return -1;
    }
    Py_INCREF(la);
    Py_XSETREF(self->la, la);
    Py_INCREF(miss_read);
    Py_XSETREF(self->miss_read, miss_read);
    Py_INCREF(miss_write);
    Py_XSETREF(self->miss_write, miss_write);
    return 0;
}

/* Steal ``payload`` into a fresh Ready iterator. */
static PyObject *
accessor_ready(PyObject *payload)
{
    ReadyObject *ready = PyObject_GC_New(ReadyObject, &ReadyType);

    if (ready == NULL) {
        Py_DECREF(payload);
        return NULL;
    }
    ready->value = payload;
    PyObject_GC_Track((PyObject *)ready);
    return (PyObject *)ready;
}

static PyObject *
Accessor_read(AccessorObject *self, PyObject *obj)
{
    PyObject *oid, *payload, *gen;

    oid = PyObject_GetAttr(obj, str_oid);
    if (oid == NULL) {
        return NULL;
    }
    payload = LocalAccess_try_read((LocalAccessObject *)self->la, oid);
    if (payload == NULL) {
        Py_DECREF(oid);
        return NULL;
    }
    if (payload == Py_None) {
        Py_DECREF(payload);
        gen = PyObject_CallOneArg(self->miss_read, oid);
        Py_DECREF(oid);
        return gen;
    }
    Py_DECREF(oid);
    return accessor_ready(payload);
}

static PyObject *
Accessor_write(AccessorObject *self, PyObject *obj)
{
    PyObject *oid, *payload, *gen;

    oid = PyObject_GetAttr(obj, str_oid);
    if (oid == NULL) {
        return NULL;
    }
    payload = LocalAccess_try_write((LocalAccessObject *)self->la, oid);
    if (payload == NULL) {
        Py_DECREF(oid);
        return NULL;
    }
    if (payload == Py_None) {
        Py_DECREF(payload);
        gen = PyObject_CallOneArg(self->miss_write, oid);
        Py_DECREF(oid);
        return gen;
    }
    Py_DECREF(oid);
    return accessor_ready(payload);
}

static int
Accessor_traverse(AccessorObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->la);
    Py_VISIT(self->miss_read);
    Py_VISIT(self->miss_write);
    return 0;
}

static int
Accessor_clear_gc(AccessorObject *self)
{
    Py_CLEAR(self->la);
    Py_CLEAR(self->miss_read);
    Py_CLEAR(self->miss_write);
    return 0;
}

static void
Accessor_dealloc(AccessorObject *self)
{
    PyObject_GC_UnTrack(self);
    Accessor_clear_gc(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef Accessor_methods[] = {
    {"read", (PyCFunction)Accessor_read, METH_O,
     "read(obj) -> Ready | miss generator.  The ThreadContext.read body "
     "in one C call."},
    {"write", (PyCFunction)Accessor_write, METH_O,
     "write(obj) -> Ready | miss generator.  The ThreadContext.write body "
     "in one C call."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject AccessorType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernel._kernelc.Accessor",
    .tp_doc = "Fused ThreadContext access fast path: oid fetch + local "
              "probe + Ready wrap (hit) or miss-generator delegation, "
              "without a Python frame.",
    .tp_basicsize = sizeof(AccessorObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Accessor_init,
    .tp_dealloc = (destructor)Accessor_dealloc,
    .tp_traverse = (traverseproc)Accessor_traverse,
    .tp_clear = (inquiry)Accessor_clear_gc,
    .tp_methods = Accessor_methods,
};

/* ---------------------------------------------------------------------- */
/* ReplyRouter: pop-and-resolve reply dispatch                             */
/* ---------------------------------------------------------------------- */

typedef struct {
    PyObject_HEAD
    vectorcallfunc vectorcall;
    PyObject *waiters; /* request_id -> Future dict, owned, never rebound */
} RouterObject;

static PyObject *
Router_vectorcall(PyObject *op, PyObject *const *args, size_t nargsf,
                  PyObject *kwnames)
{
    RouterObject *self = (RouterObject *)op;
    PyObject *payload, *rid, *fut, *res;

    if (kwnames != NULL && PyTuple_GET_SIZE(kwnames) > 0) {
        PyErr_SetString(PyExc_TypeError,
                        "ReplyRouter takes no keyword arguments");
        return NULL;
    }
    if (PyVectorcall_NARGS(nargsf) != 1) {
        PyErr_Format(PyExc_TypeError,
                     "ReplyRouter expects exactly one payload, got %zd",
                     PyVectorcall_NARGS(nargsf));
        return NULL;
    }
    payload = args[0];
    rid = PyObject_GetAttr(payload, str_request_id);
    if (rid == NULL) {
        return NULL;
    }
    fut = PyDict_GetItemWithError(self->waiters, rid);
    if (fut == NULL) {
        if (!PyErr_Occurred()) {
            /* identical failure to dict.pop without default */
            PyErr_SetObject(PyExc_KeyError, rid);
        }
        Py_DECREF(rid);
        return NULL;
    }
    Py_INCREF(fut);
    if (PyDict_DelItem(self->waiters, rid) < 0) {
        Py_DECREF(fut);
        Py_DECREF(rid);
        return NULL;
    }
    Py_DECREF(rid);
    res = PyObject_CallMethodObjArgs(fut, str_resolve, payload, NULL);
    Py_DECREF(fut);
    return res;
}

static int
Router_init(RouterObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *waiters;

    if (kwds != NULL && PyDict_GET_SIZE(kwds) > 0) {
        PyErr_SetString(PyExc_TypeError,
                        "ReplyRouter() takes no keyword arguments");
        return -1;
    }
    if (!PyArg_ParseTuple(args, "O!:ReplyRouter", &PyDict_Type, &waiters)) {
        return -1;
    }
    Py_INCREF(waiters);
    Py_XSETREF(self->waiters, waiters);
    self->vectorcall = Router_vectorcall;
    return 0;
}

static int
Router_traverse(RouterObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->waiters);
    return 0;
}

static int
Router_clear_gc(RouterObject *self)
{
    Py_CLEAR(self->waiters);
    return 0;
}

static void
Router_dealloc(RouterObject *self)
{
    PyObject_GC_UnTrack(self);
    Router_clear_gc(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject RouterType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernel._kernelc.ReplyRouter",
    .tp_doc = "Callable reply handler: pops the waiter future keyed by "
              "payload.request_id and resolves it with the payload "
              "(the C twin of _resolve_reply).",
    .tp_basicsize = sizeof(RouterObject),
    .tp_vectorcall_offset = offsetof(RouterObject, vectorcall),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_HAVE_VECTORCALL,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Router_init,
    .tp_call = PyVectorcall_Call,
    .tp_dealloc = (destructor)Router_dealloc,
    .tp_traverse = (traverseproc)Router_traverse,
    .tp_clear = (inquiry)Router_clear_gc,
};

/* ---------------------------------------------------------------------- */
/* DeliveryPort: batched per-node message delivery                         */
/* ---------------------------------------------------------------------- */

typedef struct {
    PyObject_HEAD
    EngineObject *engine;  /* owned */
    PyObject *dispatch;    /* category -> handler dict */
    double service;
    PyObject *batch;       /* open batch list, or NULL */
    double batch_time;
    long long watermark;   /* engine seq right after the flush was pushed */
    PyObject *flush_cb;    /* bound self.flush */
    PyObject *arrive_cb;   /* bound self.arrive (event callback) */
} PortObject;

static int
Port_init(PortObject *self, PyObject *args, PyObject *kwds);

/* arrive(category, payload): coalesce into the open batch iff it still
 * flushes at the same instant AND no other event was scheduled since the
 * flush event was pushed (the seq watermark).  Any interleaved schedule
 * breaks coalescing and this degrades to one flush per message, which
 * reproduces the legacy one-event-per-message order exactly. */
static PyObject *
Port_arrive(PortObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    EngineObject *eng = self->engine;
    double time;
    PyObject *pair, *batch, *evargs;
    Ev ev;

    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "arrive() requires (category, payload)");
        return NULL;
    }
    time = eng->now + self->service;
    pair = PyTuple_Pack(2, args[0], args[1]);
    if (pair == NULL) {
        return NULL;
    }
    if (self->batch != NULL && self->batch_time == time &&
        eng->seq == self->watermark) {
        int rc = PyList_Append(self->batch, pair);
        Py_DECREF(pair);
        if (rc < 0) {
            return NULL;
        }
        Py_RETURN_NONE;
    }
    batch = PyList_New(0);
    if (batch == NULL) {
        Py_DECREF(pair);
        return NULL;
    }
    if (PyList_Append(batch, pair) < 0) {
        Py_DECREF(pair);
        Py_DECREF(batch);
        return NULL;
    }
    Py_DECREF(pair);
    evargs = PyTuple_Pack(1, batch);
    if (evargs == NULL) {
        Py_DECREF(batch);
        return NULL;
    }
    if (heap_ensure(eng, eng->n + 1) < 0) {
        Py_DECREF(batch);
        Py_DECREF(evargs);
        return NULL;
    }
    ev.time = time;
    ev.seq = eng->seq++;
    Py_INCREF(self->flush_cb);
    ev.cb = self->flush_cb;
    ev.args = evargs;
    heap_push(eng, ev);
    Py_XSETREF(self->batch, batch);
    self->batch_time = time;
    self->watermark = eng->seq;
    Py_RETURN_NONE;
}

static PyObject *
Port_flush(PortObject *self, PyObject *batch)
{
    if (!PyList_Check(batch)) {
        PyErr_SetString(PyExc_TypeError, "flush() requires a batch list");
        return NULL;
    }
    if (self->batch == batch) {
        Py_CLEAR(self->batch);
    }
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(batch); i++) {
        PyObject *pair = PyList_GET_ITEM(batch, i);
        PyObject *category = PyTuple_GET_ITEM(pair, 0);
        PyObject *payload = PyTuple_GET_ITEM(pair, 1);
        PyObject *handler, *res;

        handler = PyDict_GetItemWithError(self->dispatch, category);
        if (handler == NULL) {
            if (!PyErr_Occurred()) {
                PyErr_Format(PyExc_RuntimeError,
                             "unhandled message category %R", category);
            }
            return NULL;
        }
        Py_INCREF(handler);
        res = PyObject_CallOneArg(handler, payload);
        Py_DECREF(handler);
        if (res == NULL) {
            return NULL;
        }
        Py_DECREF(res);
    }
    Py_RETURN_NONE;
}

static int
Port_traverse(PortObject *self, visitproc visit, void *arg)
{
    Py_VISIT((PyObject *)self->engine);
    Py_VISIT(self->dispatch);
    Py_VISIT(self->batch);
    Py_VISIT(self->flush_cb);
    Py_VISIT(self->arrive_cb);
    return 0;
}

static int
Port_clear_gc(PortObject *self)
{
    Py_CLEAR(self->engine);
    Py_CLEAR(self->dispatch);
    Py_CLEAR(self->batch);
    Py_CLEAR(self->flush_cb);
    Py_CLEAR(self->arrive_cb);
    return 0;
}

static void
Port_dealloc(PortObject *self)
{
    PyObject_GC_UnTrack(self);
    Port_clear_gc(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef Port_methods[] = {
    {"arrive", (PyCFunction)(void (*)(void))Port_arrive, METH_FASTCALL,
     "arrive(category, payload)\n--\n\n"
     "Enqueue one delivery; coalesces same-instant back-to-back arrivals "
     "into the open batch."},
    {"flush", (PyCFunction)Port_flush, METH_O,
     "flush(batch)\n--\n\nDispatch every (category, payload) in order."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject PortType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernel._kernelc.DeliveryPort",
    .tp_doc = "Batched delivery endpoint for one node: same-instant "
              "arrivals dispatch in a single flush event.",
    .tp_basicsize = sizeof(PortObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Port_init,
    .tp_dealloc = (destructor)Port_dealloc,
    .tp_traverse = (traverseproc)Port_traverse,
    .tp_clear = (inquiry)Port_clear_gc,
    .tp_methods = Port_methods,
};

static int
Port_init(PortObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *engine, *dispatch;
    double service;

    if (kwds != NULL && PyDict_GET_SIZE(kwds) > 0) {
        PyErr_SetString(PyExc_TypeError,
                        "DeliveryPort() takes no keyword arguments");
        return -1;
    }
    if (!PyArg_ParseTuple(args, "O!O!d:DeliveryPort", &EngineType, &engine,
                          &PyDict_Type, &dispatch, &service)) {
        return -1;
    }
    if (service < 0.0) {
        PyErr_SetString(PyExc_ValueError, "service_us must be >= 0");
        return -1;
    }
    Py_INCREF(engine);
    Py_XSETREF(self->engine, (EngineObject *)engine);
    Py_INCREF(dispatch);
    Py_XSETREF(self->dispatch, dispatch);
    self->service = service;
    Py_CLEAR(self->batch);
    self->batch_time = 0.0;
    self->watermark = -1;
    Py_XSETREF(self->flush_cb,
               PyObject_GetAttrString((PyObject *)self, "flush"));
    Py_XSETREF(self->arrive_cb,
               PyObject_GetAttrString((PyObject *)self, "arrive"));
    if (self->flush_cb == NULL || self->arrive_cb == NULL) {
        return -1;
    }
    return 0;
}

/* ---------------------------------------------------------------------- */
/* NetFabric + FabricSender: the compiled network send path                */
/* ---------------------------------------------------------------------- */

typedef struct {
    PyObject_HEAD
    EngineObject *engine;  /* owned */
    PyObject *msg_count;   /* ClusterStats Counter (dict subclass) */
    PyObject *msg_bytes;
    PyObject *ports;       /* list of DeliveryPort, one per node */
    double *nic_free;
    Py_ssize_t nnodes;
    double startup_us;
    double bandwidth;
    PyObject *header_obj;  /* HEADER_BYTES as PyLong */
    long long header_ll;
    /* Optional topology tables (PROTOCOL.md §15): per-(src,dst) extra
     * hop latency, oversubscription transfer penalty and shared-uplink
     * id, read straight out of the Python-built float64/int64 arrays
     * (buffer views pin them).  has_topo == 0 is the flat switch. */
    int has_topo;
    int topo_contention;
    Py_buffer topo_hop_view;
    Py_buffer topo_pen_view;
    Py_buffer topo_link_view;
    const double *topo_hop;
    const double *topo_pen;
    const long long *topo_link;
    double *link_free;
    Py_ssize_t nlinks;
} FabricObject;

static int
Fabric_init(FabricObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *engine, *msg_count, *msg_bytes, *nic, *fast;
    double startup, bandwidth;
    long long header;
    Py_ssize_t nnodes;
    double *nic_free;

    if (kwds != NULL && PyDict_GET_SIZE(kwds) > 0) {
        PyErr_SetString(PyExc_TypeError,
                        "NetFabric() takes no keyword arguments");
        return -1;
    }
    if (!PyArg_ParseTuple(args, "O!O!O!ddLO:NetFabric", &EngineType, &engine,
                          &PyDict_Type, &msg_count, &PyDict_Type, &msg_bytes,
                          &startup, &bandwidth, &header, &nic)) {
        return -1;
    }
    if (bandwidth <= 0.0) {
        PyErr_SetString(PyExc_ValueError, "bandwidth_mb_s must be positive");
        return -1;
    }
    fast = PySequence_Fast(nic, "nic_free must be a sequence");
    if (fast == NULL) {
        return -1;
    }
    nnodes = PySequence_Fast_GET_SIZE(fast);
    nic_free = PyMem_Malloc((size_t)(nnodes > 0 ? nnodes : 1) *
                            sizeof(double));
    if (nic_free == NULL) {
        Py_DECREF(fast);
        PyErr_NoMemory();
        return -1;
    }
    for (Py_ssize_t i = 0; i < nnodes; i++) {
        nic_free[i] = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(fast, i));
        if (nic_free[i] == -1.0 && PyErr_Occurred()) {
            Py_DECREF(fast);
            PyMem_Free(nic_free);
            return -1;
        }
    }
    Py_DECREF(fast);

    Py_INCREF(engine);
    Py_XSETREF(self->engine, (EngineObject *)engine);
    Py_INCREF(msg_count);
    Py_XSETREF(self->msg_count, msg_count);
    Py_INCREF(msg_bytes);
    Py_XSETREF(self->msg_bytes, msg_bytes);
    Py_XSETREF(self->ports, PyList_New(0));
    if (self->ports == NULL) {
        PyMem_Free(nic_free);
        return -1;
    }
    PyMem_Free(self->nic_free);
    self->nic_free = nic_free;
    self->nnodes = nnodes;
    self->startup_us = startup;
    self->bandwidth = bandwidth;
    self->header_ll = header;
    Py_XSETREF(self->header_obj, PyLong_FromLongLong(header));
    if (self->header_obj == NULL) {
        return -1;
    }
    return 0;
}

static PyObject *
Fabric_add_port(FabricObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *port;

    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "add_port() requires (dispatch, service_us)");
        return NULL;
    }
    if (PyList_GET_SIZE(self->ports) >= self->nnodes) {
        PyErr_SetString(PyExc_RuntimeError,
                        "add_port() called more times than nnodes");
        return NULL;
    }
    port = PyObject_CallFunction((PyObject *)&PortType, "OOd",
                                 (PyObject *)self->engine, args[0],
                                 PyFloat_AsDouble(args[1]));
    if (port == NULL) {
        return NULL;
    }
    if (PyList_Append(self->ports, port) < 0) {
        Py_DECREF(port);
        return NULL;
    }
    return port;
}

/* set_topology(hop, pen, link, nlinks, contention): attach the per-pair
 * cost tables.  hop/pen are nnodes*nnodes C-contiguous float64, link is
 * int64 (-1 = no shared uplink); the views pin the arrays for the
 * fabric's lifetime so the send path can index raw memory. */
static PyObject *
Fabric_set_topology(FabricObject *self, PyObject *const *args,
                    Py_ssize_t nargs)
{
    Py_buffer hop, pen, link;
    long long nlinks, contention;
    Py_ssize_t need, i;
    double *link_free;

    if (nargs != 5) {
        PyErr_SetString(PyExc_TypeError,
                        "set_topology() requires (hop, pen, link, nlinks, "
                        "contention)");
        return NULL;
    }
    if (self->has_topo) {
        PyErr_SetString(PyExc_RuntimeError, "topology already set");
        return NULL;
    }
    nlinks = PyLong_AsLongLong(args[3]);
    if (nlinks == -1 && PyErr_Occurred()) {
        return NULL;
    }
    contention = PyLong_AsLongLong(args[4]);
    if (contention == -1 && PyErr_Occurred()) {
        return NULL;
    }
    if (nlinks < 0) {
        PyErr_Format(PyExc_ValueError, "nlinks must be >= 0, got %lld",
                     nlinks);
        return NULL;
    }
    if (PyObject_GetBuffer(args[0], &hop, PyBUF_C_CONTIGUOUS) < 0) {
        return NULL;
    }
    if (PyObject_GetBuffer(args[1], &pen, PyBUF_C_CONTIGUOUS) < 0) {
        PyBuffer_Release(&hop);
        return NULL;
    }
    if (PyObject_GetBuffer(args[2], &link, PyBUF_C_CONTIGUOUS) < 0) {
        PyBuffer_Release(&hop);
        PyBuffer_Release(&pen);
        return NULL;
    }
    need = self->nnodes * self->nnodes;
    if (hop.len != need * (Py_ssize_t)sizeof(double) ||
        pen.len != need * (Py_ssize_t)sizeof(double) ||
        link.len != need * (Py_ssize_t)sizeof(long long)) {
        PyBuffer_Release(&hop);
        PyBuffer_Release(&pen);
        PyBuffer_Release(&link);
        PyErr_SetString(PyExc_ValueError,
                        "topology tables must be nnodes*nnodes "
                        "C-contiguous float64/int64 arrays");
        return NULL;
    }
    for (i = 0; i < need; i++) {
        long long l = ((const long long *)link.buf)[i];
        if (l >= nlinks) {
            PyBuffer_Release(&hop);
            PyBuffer_Release(&pen);
            PyBuffer_Release(&link);
            PyErr_Format(PyExc_ValueError,
                         "link id %lld outside nlinks=%lld", l, nlinks);
            return NULL;
        }
    }
    link_free = PyMem_Malloc((size_t)(nlinks > 0 ? nlinks : 1) *
                             sizeof(double));
    if (link_free == NULL) {
        PyBuffer_Release(&hop);
        PyBuffer_Release(&pen);
        PyBuffer_Release(&link);
        PyErr_NoMemory();
        return NULL;
    }
    for (i = 0; i < nlinks; i++) {
        link_free[i] = 0.0;
    }
    self->topo_hop_view = hop;
    self->topo_pen_view = pen;
    self->topo_link_view = link;
    self->topo_hop = (const double *)hop.buf;
    self->topo_pen = (const double *)pen.buf;
    self->topo_link = (const long long *)link.buf;
    self->link_free = link_free;
    self->nlinks = nlinks;
    self->topo_contention = contention != 0;
    self->has_topo = 1;
    Py_RETURN_NONE;
}

/* The legacy Network.send body, op for op: the same validation order and
 * error strings, the same Counter updates, and the same IEEE-754
 * sequence for the Hockney NIC occupancy math, so walls and stats hash
 * identically under both backends.  The topology branch mirrors
 * Network._topo_arrival with the same operation order. */
static PyObject *
fabric_send_core(FabricObject *f, PyObject *src_obj, PyObject *dst_obj,
                 PyObject *category, PyObject *size_obj, PyObject *payload)
{
    long long src, dst;
    PyObject *total, *evargs;
    double total_d, now, nic_free, injection_start, injection_end, arrival;
    EngineObject *eng;
    PortObject *port;
    Ev ev;

    src = PyLong_AsLongLong(src_obj);
    if (src == -1 && PyErr_Occurred()) {
        return NULL;
    }
    dst = PyLong_AsLongLong(dst_obj);
    if (dst == -1 && PyErr_Occurred()) {
        return NULL;
    }
    if (src == dst) {
        PyObject *value = PyObject_GetAttr(category, str_value);

        if (value == NULL) {
            return NULL;
        }
        PyErr_Format(PyExc_ValueError,
                     "local message %S on node %lld; node-local operations "
                     "must bypass the network", value, src);
        Py_DECREF(value);
        return NULL;
    }
    if (src < 0 || src >= f->nnodes || dst < 0 || dst >= f->nnodes) {
        PyErr_Format(PyExc_ValueError,
                     "endpoints %lld->%lld outside cluster", src, dst);
        return NULL;
    }
    if (PyList_GET_SIZE(f->ports) != f->nnodes) {
        PyErr_SetString(PyExc_RuntimeError,
                        "NetFabric has unregistered delivery ports");
        return NULL;
    }
    total = PyNumber_Add(size_obj, f->header_obj);
    if (total == NULL) {
        return NULL;
    }
    total_d = PyFloat_AsDouble(total);
    if (total_d == -1.0 && PyErr_Occurred()) {
        Py_DECREF(total);
        return NULL;
    }
    if (total_d < (double)f->header_ll) {
        PyErr_Format(PyExc_ValueError,
                     "message size %S smaller than header (%lld bytes)",
                     total, f->header_ll);
        Py_DECREF(total);
        return NULL;
    }
    if (counter_add(f->msg_count, category, one_long) < 0 ||
        counter_add(f->msg_bytes, category, total) < 0) {
        Py_DECREF(total);
        return NULL;
    }
    Py_DECREF(total);

    eng = f->engine;
    now = eng->now;
    nic_free = f->nic_free[src];
    injection_start = now >= nic_free ? now : nic_free;
    injection_end = injection_start + total_d / f->bandwidth;
    f->nic_free[src] = injection_end;
    if (f->has_topo) {
        Py_ssize_t cell = (Py_ssize_t)src * f->nnodes + (Py_ssize_t)dst;
        double hop = f->topo_hop[cell];
        double pen = f->topo_pen[cell];
        long long uplink = f->topo_link[cell];

        if (f->topo_contention && uplink >= 0) {
            double occupancy = total_d * (1.0 + pen) / f->bandwidth;
            double link_free = f->link_free[uplink];
            double start =
                injection_end >= link_free ? injection_end : link_free;
            double link_end = start + occupancy;

            f->link_free[uplink] = link_end;
            arrival = link_end + f->startup_us + hop;
        } else {
            arrival = injection_end + f->startup_us + hop +
                      total_d * pen / f->bandwidth;
        }
    } else {
        arrival = injection_end + f->startup_us;
    }

    port = (PortObject *)PyList_GET_ITEM(f->ports, dst);
    evargs = PyTuple_Pack(2, category, payload);
    if (evargs == NULL) {
        return NULL;
    }
    if (heap_ensure(eng, eng->n + 1) < 0) {
        Py_DECREF(evargs);
        return NULL;
    }
    ev.time = arrival; /* >= now: injection waits, startup is >= 0 */
    ev.seq = eng->seq++;
    Py_INCREF(port->arrive_cb);
    ev.cb = port->arrive_cb;
    ev.args = evargs;
    heap_push(eng, ev);
    Py_RETURN_NONE;
}

static PyObject *
Fabric_send(FabricObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 5) {
        PyErr_SetString(PyExc_TypeError,
                        "send() requires (src, dst, category, size_bytes, "
                        "payload)");
        return NULL;
    }
    return fabric_send_core(self, args[0], args[1], args[2], args[3],
                            args[4]);
}

static PyObject *
Fabric_get_nic_free(FabricObject *self, void *closure)
{
    PyObject *out = PyList_New(self->nnodes);

    if (out == NULL) {
        return NULL;
    }
    for (Py_ssize_t i = 0; i < self->nnodes; i++) {
        PyObject *v = PyFloat_FromDouble(self->nic_free[i]);
        if (v == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, i, v);
    }
    return out;
}

static int
Fabric_traverse(FabricObject *self, visitproc visit, void *arg)
{
    Py_VISIT((PyObject *)self->engine);
    Py_VISIT(self->msg_count);
    Py_VISIT(self->msg_bytes);
    Py_VISIT(self->ports);
    Py_VISIT(self->header_obj);
    return 0;
}

static int
Fabric_clear_gc(FabricObject *self)
{
    Py_CLEAR(self->engine);
    Py_CLEAR(self->msg_count);
    Py_CLEAR(self->msg_bytes);
    Py_CLEAR(self->ports);
    Py_CLEAR(self->header_obj);
    return 0;
}

static void
Fabric_dealloc(FabricObject *self)
{
    PyObject_GC_UnTrack(self);
    Fabric_clear_gc(self);
    PyMem_Free(self->nic_free);
    self->nic_free = NULL;
    if (self->has_topo) {
        self->has_topo = 0;
        PyBuffer_Release(&self->topo_hop_view);
        PyBuffer_Release(&self->topo_pen_view);
        PyBuffer_Release(&self->topo_link_view);
        PyMem_Free(self->link_free);
        self->link_free = NULL;
    }
    Py_TYPE(self)->tp_free((PyObject *)self);
}

typedef struct {
    PyObject_HEAD
    vectorcallfunc vectorcall;
    FabricObject *fabric; /* owned */
    PyObject *src_obj;    /* owned PyLong */
} SenderObject;

static PyObject *
Sender_vectorcall(PyObject *op, PyObject *const *args, size_t nargsf,
                  PyObject *kwnames)
{
    SenderObject *self = (SenderObject *)op;
    Py_ssize_t nargs = PyVectorcall_NARGS(nargsf);

    if (kwnames != NULL && PyTuple_GET_SIZE(kwnames) > 0) {
        PyErr_SetString(PyExc_TypeError,
                        "sender takes no keyword arguments");
        return NULL;
    }
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "sender requires (dst, category, size_bytes, "
                        "payload)");
        return NULL;
    }
    return fabric_send_core(self->fabric, self->src_obj, args[0], args[1],
                            args[2], args[3]);
}

static int
Sender_traverse(SenderObject *self, visitproc visit, void *arg)
{
    Py_VISIT((PyObject *)self->fabric);
    Py_VISIT(self->src_obj);
    return 0;
}

static int
Sender_clear_gc(SenderObject *self)
{
    Py_CLEAR(self->fabric);
    Py_CLEAR(self->src_obj);
    return 0;
}

static void
Sender_dealloc(SenderObject *self)
{
    PyObject_GC_UnTrack(self);
    Sender_clear_gc(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject SenderType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernel._kernelc.FabricSender",
    .tp_doc = "Per-node bound send entry point: sender(dst, category, "
              "size_bytes, payload).",
    .tp_basicsize = sizeof(SenderObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_HAVE_VECTORCALL,
    .tp_vectorcall_offset = offsetof(SenderObject, vectorcall),
    .tp_call = PyVectorcall_Call,
    .tp_dealloc = (destructor)Sender_dealloc,
    .tp_traverse = (traverseproc)Sender_traverse,
    .tp_clear = (inquiry)Sender_clear_gc,
};

static PyObject *
Fabric_sender(FabricObject *self, PyObject *src)
{
    SenderObject *sender;
    long long value;

    value = PyLong_AsLongLong(src);
    if (value == -1 && PyErr_Occurred()) {
        return NULL;
    }
    if (value < 0 || value >= self->nnodes) {
        PyErr_Format(PyExc_ValueError, "sender node %lld outside cluster",
                     value);
        return NULL;
    }
    sender = PyObject_GC_New(SenderObject, &SenderType);
    if (sender == NULL) {
        return NULL;
    }
    sender->vectorcall = Sender_vectorcall;
    Py_INCREF(self);
    sender->fabric = self;
    Py_INCREF(src);
    sender->src_obj = src;
    PyObject_GC_Track((PyObject *)sender);
    return (PyObject *)sender;
}

static PyMethodDef Fabric_methods[] = {
    {"add_port", (PyCFunction)(void (*)(void))Fabric_add_port,
     METH_FASTCALL,
     "add_port(dispatch, service_us)\n--\n\n"
     "Register the next node's delivery port (call once per node, in "
     "node order); returns the DeliveryPort."},
    {"send", (PyCFunction)(void (*)(void))Fabric_send, METH_FASTCALL,
     "send(src, dst, category, size_bytes, payload)\n--\n\n"
     "The legacy Network.send body: validate, account, occupy the "
     "source NIC, and schedule the batched arrival."},
    {"sender", (PyCFunction)Fabric_sender, METH_O,
     "sender(src)\n--\n\nA bound per-node send callable."},
    {"set_topology", (PyCFunction)(void (*)(void))Fabric_set_topology,
     METH_FASTCALL,
     "set_topology(hop, pen, link, nlinks, contention)\n--\n\n"
     "Attach per-pair topology cost tables (nnodes*nnodes float64 hop "
     "latency, float64 bandwidth penalty, int64 shared-uplink id)."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef Fabric_getset[] = {
    {"nic_free", (getter)Fabric_get_nic_free, NULL,
     "Per-node NIC busy-until times (copy, for inspection).", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject FabricType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernel._kernelc.NetFabric",
    .tp_doc = "Compiled network send + batched delivery boundary over the "
              "compiled Engine.",
    .tp_basicsize = sizeof(FabricObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Fabric_init,
    .tp_dealloc = (destructor)Fabric_dealloc,
    .tp_traverse = (traverseproc)Fabric_traverse,
    .tp_clear = (inquiry)Fabric_clear_gc,
    .tp_methods = Fabric_methods,
    .tp_getset = Fabric_getset,
};

/* ====================================================================== */
/* module                                                                  */
/* ====================================================================== */

/* record_request(state, requester, hops, events): the _serve_request
 * monitor prelude — record_remote_read + record_redirections +
 * stats.incr("remote_read") in one call. */
static PyObject *
kernel_record_request(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *state, *requester, *hops, *events, *sharers, *cur, *sum;
    int neg;

    if (nargs != 4) {
        PyErr_Format(PyExc_TypeError,
                     "record_request expects 4 arguments, got %zd", nargs);
        return NULL;
    }
    state = args[0];
    requester = args[1];
    hops = args[2];
    events = args[3];
    if (!PyDict_Check(events)) {
        PyErr_SetString(PyExc_TypeError,
                        "record_request events must be a Counter/dict");
        return NULL;
    }
    /* record_remote_read */
    if (attr_incr(state, str_remote_reads) < 0) {
        return NULL;
    }
    sharers = PyObject_GetAttr(state, str_sharers);
    if (sharers == NULL) {
        return NULL;
    }
    if (PySet_Add(sharers, requester) < 0) {
        Py_DECREF(sharers);
        return NULL;
    }
    Py_DECREF(sharers);
    /* record_redirections (same validation as the Python body) */
    neg = PyObject_RichCompareBool(hops, zero_long, Py_LT);
    if (neg < 0) {
        return NULL;
    }
    if (neg) {
        PyErr_Format(PyExc_ValueError,
                     "hops must be non-negative, got %S", hops);
        return NULL;
    }
    cur = PyObject_GetAttr(state, str_redirections);
    if (cur == NULL) {
        return NULL;
    }
    sum = PyNumber_Add(cur, hops);
    Py_DECREF(cur);
    if (sum == NULL) {
        return NULL;
    }
    if (PyObject_SetAttr(state, str_redirections, sum) < 0) {
        Py_DECREF(sum);
        return NULL;
    }
    Py_DECREF(sum);
    if (counter_add(events, ev_remote_read, one_long) < 0) {
        return NULL;
    }
    Py_RETURN_NONE;
}

/* cache_sweep_invalid(cache, invalid_mode, free): barrier-GC sweep of the
 * flat CacheIndex — pool every INVALID twinless entry's payload and
 * tombstone its slot, returning the drop count.  Mirrors the Python
 * dead-scan + pop + free loop of collect_garbage. */
static PyObject *
kernel_cache_sweep(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *cache, *invalid, *freefn, *slots, *live, *adjusted;
    Py_ssize_t i, ndead = 0;

    if (nargs != 3) {
        PyErr_Format(PyExc_TypeError,
                     "cache_sweep_invalid expects 3 arguments, got %zd",
                     nargs);
        return NULL;
    }
    cache = args[0];
    invalid = args[1];
    freefn = args[2];
    slots = PyObject_GetAttr(cache, str_slots);
    if (slots == NULL) {
        return NULL;
    }
    if (!PyList_Check(slots)) {
        Py_DECREF(slots);
        PyErr_SetString(PyExc_TypeError,
                        "cache_sweep_invalid needs a CacheIndex");
        return NULL;
    }
    for (i = 0; i < PyList_GET_SIZE(slots); i++) {
        PyObject *entry = PyList_GET_ITEM(slots, i);
        PyObject *mode, *twin, *payload, *r;
        int dead;

        if (entry == Py_None) {
            continue;
        }
        mode = PyObject_GetAttr(entry, str_mode);
        if (mode == NULL) {
            goto fail;
        }
        dead = (mode == invalid);
        Py_DECREF(mode);
        if (!dead) {
            continue;
        }
        twin = PyObject_GetAttr(entry, str_twin);
        if (twin == NULL) {
            goto fail;
        }
        dead = (twin == Py_None);
        Py_DECREF(twin);
        if (!dead) {
            continue;
        }
        payload = PyObject_GetAttr(entry, str_payload);
        if (payload == NULL) {
            goto fail;
        }
        /* pop: tombstone the slot (the index entry stays sticky) */
        Py_INCREF(Py_None);
        if (PyList_SetItem(slots, i, Py_None) < 0) {
            Py_DECREF(payload);
            goto fail;
        }
        r = PyObject_CallOneArg(freefn, payload);
        Py_DECREF(payload);
        if (r == NULL) {
            goto fail;
        }
        Py_DECREF(r);
        ndead++;
    }
    Py_DECREF(slots);
    /* cache._live -= ndead (pop's bookkeeping, batched) */
    live = PyObject_GetAttr(cache, str_live);
    if (live == NULL) {
        return NULL;
    }
    {
        PyObject *delta = PyLong_FromSsize_t(ndead);
        if (delta == NULL) {
            Py_DECREF(live);
            return NULL;
        }
        adjusted = PyNumber_Subtract(live, delta);
        Py_DECREF(delta);
    }
    Py_DECREF(live);
    if (adjusted == NULL) {
        return NULL;
    }
    if (PyObject_SetAttr(cache, str_live, adjusted) < 0) {
        Py_DECREF(adjusted);
        return NULL;
    }
    Py_DECREF(adjusted);
    return PyLong_FromSsize_t(ndead);

fail:
    Py_DECREF(slots);
    return NULL;
}

/* cache_invalidate_read(cache, read_mode, invalid_mode): the Java-
 * consistency cache flush of invalidate_all_cached — flip every READ
 * entry of the flat CacheIndex to INVALID (identity compare on the
 * enum members, like the Python `is` check), returning the flip
 * count.  Dirty WRITE copies and tombstones are untouched. */
static PyObject *
kernel_cache_invalidate_read(PyObject *mod, PyObject *const *args,
                             Py_ssize_t nargs)
{
    PyObject *cache, *readm, *invalid, *slots;
    Py_ssize_t i, nswept = 0;

    if (nargs != 3) {
        PyErr_Format(PyExc_TypeError,
                     "cache_invalidate_read expects 3 arguments, got %zd",
                     nargs);
        return NULL;
    }
    cache = args[0];
    readm = args[1];
    invalid = args[2];
    slots = PyObject_GetAttr(cache, str_slots);
    if (slots == NULL) {
        return NULL;
    }
    if (!PyList_Check(slots)) {
        Py_DECREF(slots);
        PyErr_SetString(PyExc_TypeError,
                        "cache_invalidate_read needs a CacheIndex");
        return NULL;
    }
    for (i = 0; i < PyList_GET_SIZE(slots); i++) {
        PyObject *entry = PyList_GET_ITEM(slots, i);
        PyObject *mode;
        int is_read;

        if (entry == Py_None) {
            continue;
        }
        mode = PyObject_GetAttr(entry, str_mode);
        if (mode == NULL) {
            Py_DECREF(slots);
            return NULL;
        }
        is_read = (mode == readm);
        Py_DECREF(mode);
        if (!is_read) {
            continue;
        }
        if (PyObject_SetAttr(entry, str_mode, invalid) < 0) {
            Py_DECREF(slots);
            return NULL;
        }
        nswept++;
    }
    Py_DECREF(slots);
    return PyLong_FromSsize_t(nswept);
}

/* prune_floors(required, released, homes): delete every write-notice
 * floor at or below the release horizon (or whose object is homed
 * locally); returns the prune count.  Mirrors collect_garbage's
 * prunable-scan + delete loop. */
static PyObject *
kernel_prune_floors(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *required, *released, *homes, *doomed, *oid, *floor;
    Py_ssize_t pos = 0, i, n;

    if (nargs != 3) {
        PyErr_Format(PyExc_TypeError,
                     "prune_floors expects 3 arguments, got %zd", nargs);
        return NULL;
    }
    required = args[0];
    released = args[1];
    homes = args[2];
    if (!PyDict_Check(required) || !PyDict_Check(released) ||
        !PyDict_Check(homes)) {
        PyErr_SetString(PyExc_TypeError,
                        "prune_floors expects three dicts");
        return NULL;
    }
    doomed = PyList_New(0);
    if (doomed == NULL) {
        return NULL;
    }
    while (PyDict_Next(required, &pos, &oid, &floor)) {
        PyObject *rel = PyDict_GetItemWithError(released, oid);
        int prune;

        if (rel == NULL) {
            if (PyErr_Occurred()) {
                goto fail;
            }
            rel = zero_long;
        }
        prune = PyObject_RichCompareBool(floor, rel, Py_LE);
        if (prune < 0) {
            goto fail;
        }
        if (!prune) {
            prune = PyDict_Contains(homes, oid);
            if (prune < 0) {
                goto fail;
            }
        }
        if (prune && PyList_Append(doomed, oid) < 0) {
            goto fail;
        }
    }
    n = PyList_GET_SIZE(doomed);
    for (i = 0; i < n; i++) {
        if (PyDict_DelItem(required, PyList_GET_ITEM(doomed, i)) < 0) {
            goto fail;
        }
    }
    Py_DECREF(doomed);
    return PyLong_FromSsize_t(n);

fail:
    Py_DECREF(doomed);
    return NULL;
}

/* ---------------------------------------------------------------------- */
/* Future: one-shot resolvable value (C twin of repro.sim.future.Future)   */
/* ---------------------------------------------------------------------- */

typedef struct {
    PyObject_HEAD
    PyObject *value;     /* owned; NULL = unset */
    PyObject *exception; /* owned; NULL = none */
    PyObject *callbacks; /* owned list, lazily allocated; NULL = empty */
    PyObject *label;     /* owned */
} FutureObject;

static int
Future_init(FutureObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"label", NULL};
    PyObject *label = NULL;

    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O:Future", kwlist,
                                     &label)) {
        return -1;
    }
    if (label == NULL) {
        label = PyUnicode_FromString("");
        if (label == NULL) {
            return -1;
        }
    }
    else {
        Py_INCREF(label);
    }
    Py_XSETREF(self->label, label);
    Py_CLEAR(self->value);
    Py_CLEAR(self->exception);
    Py_CLEAR(self->callbacks);
    return 0;
}

static inline int
future_is_resolved(FutureObject *self)
{
    return self->value != NULL || self->exception != NULL;
}

/* Fire callbacks in registration order; the list is detached first so a
 * callback adding callbacks sees the post-resolution immediate path,
 * exactly like the Python twin. */
static int
future_fire(FutureObject *self)
{
    PyObject *callbacks = self->callbacks;
    Py_ssize_t i, n;

    if (callbacks == NULL) {
        return 0;
    }
    self->callbacks = NULL;
    n = PyList_GET_SIZE(callbacks);
    for (i = 0; i < n; i++) {
        PyObject *res = PyObject_CallOneArg(PyList_GET_ITEM(callbacks, i),
                                            (PyObject *)self);
        if (res == NULL) {
            Py_DECREF(callbacks);
            return -1;
        }
        Py_DECREF(res);
    }
    Py_DECREF(callbacks);
    return 0;
}

static PyObject *
Future_resolve(FutureObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *value;

    if (nargs > 1) {
        PyErr_Format(PyExc_TypeError,
                     "resolve expects at most one argument, got %zd", nargs);
        return NULL;
    }
    if (future_is_resolved(self)) {
        PyErr_Format(sim_error_class(), "future %R resolved twice",
                     self->label);
        return NULL;
    }
    value = nargs == 1 ? args[0] : Py_None;
    Py_INCREF(value);
    self->value = value;
    if (future_fire(self) < 0) {
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
Future_fail(FutureObject *self, PyObject *exc)
{
    if (future_is_resolved(self)) {
        PyErr_Format(sim_error_class(), "future %R resolved twice",
                     self->label);
        return NULL;
    }
    Py_INCREF(exc);
    self->exception = exc;
    if (future_fire(self) < 0) {
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
Future_peek(FutureObject *self, PyObject *noarg)
{
    (void)noarg;
    if (self->exception != NULL) {
        return PyTuple_Pack(2, Py_None, self->exception);
    }
    if (self->value == NULL) {
        PyErr_Format(sim_error_class(), "future %R peeked unresolved",
                     self->label);
        return NULL;
    }
    return PyTuple_Pack(2, self->value, Py_None);
}

static PyObject *
Future_add_done_callback(FutureObject *self, PyObject *callback)
{
    if (future_is_resolved(self)) {
        PyObject *res = PyObject_CallOneArg(callback, (PyObject *)self);
        if (res == NULL) {
            return NULL;
        }
        Py_DECREF(res);
        Py_RETURN_NONE;
    }
    if (self->callbacks == NULL) {
        self->callbacks = PyList_New(0);
        if (self->callbacks == NULL) {
            return NULL;
        }
    }
    if (PyList_Append(self->callbacks, callback) < 0) {
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
Future_get_resolved(FutureObject *self, void *closure)
{
    (void)closure;
    return PyBool_FromLong(future_is_resolved(self));
}

static PyObject *
Future_get_value(FutureObject *self, void *closure)
{
    (void)closure;
    if (self->exception != NULL) {
        PyErr_SetObject((PyObject *)Py_TYPE(self->exception),
                        self->exception);
        return NULL;
    }
    if (self->value == NULL) {
        PyErr_Format(sim_error_class(),
                     "future %R read before resolution", self->label);
        return NULL;
    }
    Py_INCREF(self->value);
    return self->value;
}

static PyObject *
Future_get_exception(FutureObject *self, void *closure)
{
    (void)closure;
    if (self->exception == NULL) {
        Py_RETURN_NONE;
    }
    Py_INCREF(self->exception);
    return self->exception;
}

static PyObject *
Future_repr(FutureObject *self)
{
    return PyUnicode_FromFormat(
        "<Future %R %s>", self->label,
        future_is_resolved(self) ? "resolved" : "pending");
}

static int
Future_traverse(FutureObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->value);
    Py_VISIT(self->exception);
    Py_VISIT(self->callbacks);
    Py_VISIT(self->label);
    return 0;
}

static int
Future_clear_gc(FutureObject *self)
{
    Py_CLEAR(self->value);
    Py_CLEAR(self->exception);
    Py_CLEAR(self->callbacks);
    Py_CLEAR(self->label);
    return 0;
}

static void
Future_dealloc(FutureObject *self)
{
    PyObject_GC_UnTrack(self);
    Future_clear_gc(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef Future_methods[] = {
    {"resolve", (PyCFunction)(void (*)(void))Future_resolve, METH_FASTCALL,
     "resolve(value=None)\n--\n\n"
     "Provide the value and fire callbacks (in registration order)."},
    {"fail", (PyCFunction)Future_fail, METH_O,
     "fail(exc)\n--\n\n"
     "Resolve the future with an exception instead of a value."},
    {"peek", (PyCFunction)Future_peek, METH_NOARGS,
     "peek()\n--\n\n"
     "(value, exception) without raising - exactly one is set."},
    {"add_done_callback", (PyCFunction)Future_add_done_callback, METH_O,
     "add_done_callback(callback)\n--\n\n"
     "Run callback(self) when resolved (immediately if already)."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef Future_getset[] = {
    {"resolved", (getter)Future_get_resolved, NULL,
     "Whether the future holds a value or an exception.", NULL},
    {"value", (getter)Future_get_value, NULL,
     "The resolved value; raises if unresolved or resolved to an error.",
     NULL},
    {"exception", (getter)Future_get_exception, NULL,
     "The exception this future was failed with, if any.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef Future_members[] = {
    {"label", T_OBJECT_EX, offsetof(FutureObject, label), 0,
     "Debug label carried into error messages."},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject FutureType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernel._kernelc.Future",
    .tp_doc = "One-shot future (C twin of repro.sim.future.Future): "
              "single-assignment, callbacks fired in registration order.",
    .tp_basicsize = sizeof(FutureObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Future_init,
    .tp_dealloc = (destructor)Future_dealloc,
    .tp_traverse = (traverseproc)Future_traverse,
    .tp_clear = (inquiry)Future_clear_gc,
    .tp_repr = (reprfunc)Future_repr,
    .tp_methods = Future_methods,
    .tp_getset = Future_getset,
    .tp_members = Future_members,
};

/* ---------------------------------------------------------------------- */
/* Arena: slab allocator with exact-size free lists (C twin of            */
/* repro.memory.arena.Arena; byte-identical accounting)                    */
/* ---------------------------------------------------------------------- */

#define ARENA_ALIGN_BYTES 16
#define ARENA_DEFAULT_SLAB_BYTES (1 << 20)

typedef struct {
    PyObject_HEAD
    PyObject *label;   /* owned */
    PyObject *slab;    /* owned uint8 ndarray or NULL */
    PyObject *free;    /* owned dict: (length, dtype) -> list of views */
    PyObject *scratch; /* owned bool ndarray */
    long long slab_bytes;
    long long offset;
    long long slabs_allocated;
    long long slab_bytes_total;
    long long carve_count;
    long long reuse_count;
    long long free_count;
    long long live_bytes;
    long long pooled_bytes;
} ArenaObject;

static int
Arena_init(ArenaObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"slab_bytes", "label", NULL};
    long long slab_bytes = ARENA_DEFAULT_SLAB_BYTES;
    PyObject *label = NULL, *free_dict, *scratch;
    npy_intp zero = 0;

    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|LO:Arena", kwlist,
                                     &slab_bytes, &label)) {
        return -1;
    }
    if (slab_bytes < ARENA_ALIGN_BYTES) {
        PyErr_Format(PyExc_ValueError,
                     "slab_bytes must be >= %d, got %lld",
                     ARENA_ALIGN_BYTES, slab_bytes);
        return -1;
    }
    if (label == NULL) {
        label = PyUnicode_FromString("");
        if (label == NULL) {
            return -1;
        }
    }
    else {
        Py_INCREF(label);
    }
    free_dict = PyDict_New();
    if (free_dict == NULL) {
        Py_DECREF(label);
        return -1;
    }
    scratch = PyArray_SimpleNew(1, &zero, NPY_BOOL);
    if (scratch == NULL) {
        Py_DECREF(label);
        Py_DECREF(free_dict);
        return -1;
    }
    Py_XSETREF(self->label, label);
    Py_XSETREF(self->free, free_dict);
    Py_XSETREF(self->scratch, scratch);
    Py_CLEAR(self->slab);
    self->slab_bytes = slab_bytes;
    self->offset = 0;
    self->slabs_allocated = 0;
    self->slab_bytes_total = 0;
    self->carve_count = 0;
    self->reuse_count = 0;
    self->free_count = 0;
    self->live_bytes = 0;
    self->pooled_bytes = 0;
    return 0;
}

/* Carve a fresh view from the current slab (Arena._carve).  Steals no
 * references; returns a new writeable 1-D view of `length` elements of
 * `descr` backed by the slab. */
static PyObject *
arena_carve(ArenaObject *self, npy_intp length, PyArray_Descr *descr)
{
    long long nbytes = (long long)length * PyDataType_ELSIZE(descr);
    long long aligned =
        (nbytes + ARENA_ALIGN_BYTES - 1) / ARENA_ALIGN_BYTES *
        ARENA_ALIGN_BYTES;
    PyArrayObject *slab = (PyArrayObject *)self->slab;
    PyObject *view;
    npy_intp dims[1];
    long long start;

    if (slab == NULL ||
        self->offset + aligned > (long long)PyArray_DIM(slab, 0)) {
        long long size =
            self->slab_bytes > aligned ? self->slab_bytes : aligned;
        npy_intp slab_dims[1];

        slab_dims[0] = (npy_intp)size;
        slab = (PyArrayObject *)PyArray_SimpleNew(1, slab_dims, NPY_UINT8);
        if (slab == NULL) {
            return NULL;
        }
        Py_XSETREF(self->slab, (PyObject *)slab);
        self->offset = 0;
        self->slabs_allocated += 1;
        self->slab_bytes_total += size;
    }
    start = self->offset;
    self->offset = start + aligned;
    dims[0] = length;
    Py_INCREF(descr);
    view = PyArray_NewFromDescr(&PyArray_Type, descr, 1, dims, NULL,
                                PyArray_BYTES(slab) + start,
                                NPY_ARRAY_CARRAY, NULL);
    if (view == NULL) {
        return NULL;
    }
    Py_INCREF(slab);
    if (PyArray_SetBaseObject((PyArrayObject *)view, (PyObject *)slab) < 0) {
        Py_DECREF(view);
        return NULL;
    }
    return view;
}

/* Shared alloc body: returns a new reference, `descr` is borrowed. */
static PyObject *
arena_alloc_impl(ArenaObject *self, npy_intp length, PyArray_Descr *descr)
{
    PyObject *key, *stack, *view;
    long long nbytes;

    if (length <= 0) {
        PyErr_Format(PyExc_ValueError,
                     "allocation length must be positive, got %zd",
                     (Py_ssize_t)length);
        return NULL;
    }
    key = Py_BuildValue("(nO)", (Py_ssize_t)length, (PyObject *)descr);
    if (key == NULL) {
        return NULL;
    }
    stack = PyDict_GetItemWithError(self->free, key);
    Py_DECREF(key);
    if (stack == NULL && PyErr_Occurred()) {
        return NULL;
    }
    nbytes = (long long)length * PyDataType_ELSIZE(descr);
    if (stack != NULL && PyList_GET_SIZE(stack) > 0) {
        Py_ssize_t last = PyList_GET_SIZE(stack) - 1;

        view = PyList_GET_ITEM(stack, last);
        Py_INCREF(view);
        if (PyList_SetSlice(stack, last, last + 1, NULL) < 0) {
            Py_DECREF(view);
            return NULL;
        }
        self->reuse_count += 1;
        self->pooled_bytes -= nbytes;
        self->live_bytes += nbytes;
        return view;
    }
    view = arena_carve(self, length, descr);
    if (view == NULL) {
        return NULL;
    }
    self->carve_count += 1;
    self->live_bytes += nbytes;
    return view;
}

/* Parse the (length, dtype=...) argument pair shared by alloc/zeros. */
static int
arena_parse_alloc_args(PyObject *const *args, Py_ssize_t nargs,
                       const char *name, npy_intp *length,
                       PyArray_Descr **descr)
{
    Py_ssize_t n;

    if (nargs < 1 || nargs > 2) {
        PyErr_Format(PyExc_TypeError, "%s expects (length[, dtype]), got "
                     "%zd arguments", name, nargs);
        return -1;
    }
    n = PyNumber_AsSsize_t(args[0], PyExc_OverflowError);
    if (n == -1 && PyErr_Occurred()) {
        return -1;
    }
    *length = (npy_intp)n;
    if (nargs == 2) {
        if (!PyArray_DescrConverter(args[1], descr)) {
            return -1;
        }
    }
    else {
        *descr = PyArray_DescrFromType(NPY_FLOAT64);
        if (*descr == NULL) {
            return -1;
        }
    }
    return 0;
}

static PyObject *
Arena_alloc(ArenaObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    npy_intp length;
    PyArray_Descr *descr;
    PyObject *view;

    if (arena_parse_alloc_args(args, nargs, "alloc", &length, &descr) < 0) {
        return NULL;
    }
    view = arena_alloc_impl(self, length, descr);
    Py_DECREF(descr);
    return view;
}

static PyObject *
Arena_zeros(ArenaObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    npy_intp length;
    PyArray_Descr *descr;
    PyObject *view;

    if (arena_parse_alloc_args(args, nargs, "zeros", &length, &descr) < 0) {
        return NULL;
    }
    view = arena_alloc_impl(self, length, descr);
    Py_DECREF(descr);
    if (view == NULL) {
        return NULL;
    }
    memset(PyArray_DATA((PyArrayObject *)view), 0,
           (size_t)PyArray_NBYTES((PyArrayObject *)view));
    return view;
}

static PyObject *
Arena_take_copy(ArenaObject *self, PyObject *src_obj)
{
    PyArrayObject *src, *dst;
    PyObject *view;

    if (!PyArray_Check(src_obj)) {
        PyErr_Format(PyExc_TypeError, "take_copy expects an ndarray, got %s",
                     Py_TYPE(src_obj)->tp_name);
        return NULL;
    }
    src = (PyArrayObject *)src_obj;
    if (PyArray_NDIM(src) != 1) {
        PyErr_Format(PyExc_ValueError,
                     "arenas hold 1-D buffers, got ndim=%d",
                     PyArray_NDIM(src));
        return NULL;
    }
    view = arena_alloc_impl(self, PyArray_DIM(src, 0), PyArray_DESCR(src));
    if (view == NULL) {
        return NULL;
    }
    dst = (PyArrayObject *)view;
    if (PyArray_ISCARRAY_RO(src)) {
        memcpy(PyArray_DATA(dst), PyArray_DATA(src),
               (size_t)PyArray_NBYTES(src));
    }
    else if (PyArray_CopyInto(dst, src) < 0) {
        Py_DECREF(view);
        return NULL;
    }
    return view;
}

static PyObject *
Arena_free(ArenaObject *self, PyObject *buf_obj)
{
    PyArrayObject *buf;
    PyObject *key, *stack;
    long long nbytes;

    if (!PyArray_Check(buf_obj)) {
        PyErr_Format(PyExc_TypeError, "free expects an ndarray, got %s",
                     Py_TYPE(buf_obj)->tp_name);
        return NULL;
    }
    buf = (PyArrayObject *)buf_obj;
    if (PyArray_NDIM(buf) != 1) {
        PyErr_Format(PyExc_ValueError,
                     "arenas hold 1-D buffers, got ndim=%d",
                     PyArray_NDIM(buf));
        return NULL;
    }
    key = Py_BuildValue("(nO)", (Py_ssize_t)PyArray_DIM(buf, 0),
                        (PyObject *)PyArray_DESCR(buf));
    if (key == NULL) {
        return NULL;
    }
    stack = PyDict_GetItemWithError(self->free, key);
    if (stack == NULL) {
        if (PyErr_Occurred()) {
            Py_DECREF(key);
            return NULL;
        }
        stack = PyList_New(0);
        if (stack == NULL || PyDict_SetItem(self->free, key, stack) < 0) {
            Py_XDECREF(stack);
            Py_DECREF(key);
            return NULL;
        }
        Py_DECREF(stack); /* dict holds it */
    }
    Py_DECREF(key);
    if (PyList_Append(stack, buf_obj) < 0) {
        return NULL;
    }
    nbytes = (long long)PyArray_NBYTES(buf);
    self->free_count += 1;
    self->pooled_bytes += nbytes;
    self->live_bytes -= nbytes;
    if (self->live_bytes < 0) {
        self->live_bytes = 0;
    }
    Py_RETURN_NONE;
}

static PyObject *
Arena_bool_scratch(ArenaObject *self, PyObject *length_obj)
{
    Py_ssize_t length = PyNumber_AsSsize_t(length_obj, PyExc_OverflowError);
    PyArrayObject *scratch;
    PyObject *view;
    npy_intp dims[1];

    if (length == -1 && PyErr_Occurred()) {
        return NULL;
    }
    scratch = (PyArrayObject *)self->scratch;
    if (PyArray_DIM(scratch, 0) < (npy_intp)length) {
        npy_intp grown = 2 * PyArray_DIM(scratch, 0);

        dims[0] = (npy_intp)length > grown ? (npy_intp)length : grown;
        scratch = (PyArrayObject *)PyArray_SimpleNew(1, dims, NPY_BOOL);
        if (scratch == NULL) {
            return NULL;
        }
        Py_XSETREF(self->scratch, (PyObject *)scratch);
    }
    dims[0] = (npy_intp)length;
    view = PyArray_NewFromDescr(&PyArray_Type,
                                PyArray_DescrFromType(NPY_BOOL), 1, dims,
                                NULL, PyArray_DATA(scratch),
                                NPY_ARRAY_CARRAY, NULL);
    if (view == NULL) {
        return NULL;
    }
    Py_INCREF(scratch);
    if (PyArray_SetBaseObject((PyArrayObject *)view,
                              (PyObject *)scratch) < 0) {
        Py_DECREF(view);
        return NULL;
    }
    return view;
}

static PyObject *
Arena_stats(ArenaObject *self, PyObject *noarg)
{
    PyObject *out, *val, *stack;
    Py_ssize_t pos = 0, pooled_buffers = 0;
    PyObject *key;

    (void)noarg;
    while (PyDict_Next(self->free, &pos, &key, &stack)) {
        pooled_buffers += PyList_GET_SIZE(stack);
    }
    out = PyDict_New();
    if (out == NULL) {
        return NULL;
    }
#define STATS_SET(name, expr)                                              \
    do {                                                                   \
        val = (expr);                                                      \
        if (val == NULL || PyDict_SetItemString(out, name, val) < 0) {     \
            Py_XDECREF(val);                                               \
            Py_DECREF(out);                                                \
            return NULL;                                                   \
        }                                                                  \
        Py_DECREF(val);                                                    \
    } while (0)
    STATS_SET("label", (Py_INCREF(self->label), self->label));
    STATS_SET("slabs", PyLong_FromLongLong(self->slabs_allocated));
    STATS_SET("slab_bytes", PyLong_FromLongLong(self->slab_bytes_total));
    STATS_SET("carves", PyLong_FromLongLong(self->carve_count));
    STATS_SET("reuses", PyLong_FromLongLong(self->reuse_count));
    STATS_SET("frees", PyLong_FromLongLong(self->free_count));
    STATS_SET("live_bytes", PyLong_FromLongLong(self->live_bytes));
    STATS_SET("pooled_bytes", PyLong_FromLongLong(self->pooled_bytes));
    STATS_SET("pooled_buffers", PyLong_FromSsize_t(pooled_buffers));
    STATS_SET("scratch_bytes",
              PyLong_FromLongLong(
                  (long long)PyArray_NBYTES(
                      (PyArrayObject *)self->scratch)));
#undef STATS_SET
    return out;
}

static int
Arena_traverse(ArenaObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->label);
    Py_VISIT(self->slab);
    Py_VISIT(self->free);
    Py_VISIT(self->scratch);
    return 0;
}

static int
Arena_clear_gc(ArenaObject *self)
{
    Py_CLEAR(self->label);
    Py_CLEAR(self->slab);
    Py_CLEAR(self->free);
    Py_CLEAR(self->scratch);
    return 0;
}

static void
Arena_dealloc(ArenaObject *self)
{
    PyObject_GC_UnTrack(self);
    Arena_clear_gc(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef Arena_methods[] = {
    {"alloc", (PyCFunction)(void (*)(void))Arena_alloc, METH_FASTCALL,
     "alloc(length, dtype='float64')\n--\n\n"
     "An uninitialised 1-D buffer; reuses a pooled same-shape buffer "
     "when one exists, else carves fresh slab space."},
    {"zeros", (PyCFunction)(void (*)(void))Arena_zeros, METH_FASTCALL,
     "zeros(length, dtype='float64')\n--\n\n"
     "A zeroed buffer (pool-reuse equivalent of np.zeros)."},
    {"take_copy", (PyCFunction)Arena_take_copy, METH_O,
     "take_copy(src)\n--\n\n"
     "A pooled copy of 1-D src (pool-reuse equivalent of .copy())."},
    {"free", (PyCFunction)Arena_free, METH_O,
     "free(buf)\n--\n\n"
     "Return buf to the pool for same-shape reuse."},
    {"bool_scratch", (PyCFunction)Arena_bool_scratch, METH_O,
     "bool_scratch(length)\n--\n\n"
     "The shared grow-only boolean scratch buffer, sliced to length."},
    {"stats", (PyCFunction)Arena_stats, METH_NOARGS,
     "stats()\n--\n\n"
     "Plain-dict accounting snapshot (telemetry and tests)."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef Arena_members[] = {
    {"label", T_OBJECT_EX, offsetof(ArenaObject, label), 0, NULL},
    {"slab_bytes", T_LONGLONG, offsetof(ArenaObject, slab_bytes), 0, NULL},
    {"slabs_allocated", T_LONGLONG,
     offsetof(ArenaObject, slabs_allocated), 0, NULL},
    {"slab_bytes_total", T_LONGLONG,
     offsetof(ArenaObject, slab_bytes_total), 0, NULL},
    {"carve_count", T_LONGLONG, offsetof(ArenaObject, carve_count), 0, NULL},
    {"reuse_count", T_LONGLONG, offsetof(ArenaObject, reuse_count), 0, NULL},
    {"free_count", T_LONGLONG, offsetof(ArenaObject, free_count), 0, NULL},
    {"live_bytes", T_LONGLONG, offsetof(ArenaObject, live_bytes), 0, NULL},
    {"pooled_bytes", T_LONGLONG,
     offsetof(ArenaObject, pooled_bytes), 0, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject ArenaType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernel._kernelc.Arena",
    .tp_doc = "Slab allocator with exact-size free lists (C twin of "
              "repro.memory.arena.Arena; byte-identical accounting).",
    .tp_basicsize = sizeof(ArenaObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Arena_init,
    .tp_dealloc = (destructor)Arena_dealloc,
    .tp_traverse = (traverseproc)Arena_traverse,
    .tp_clear = (inquiry)Arena_clear_gc,
    .tp_methods = Arena_methods,
    .tp_members = Arena_members,
};

static PyObject *
kernel_install(PyObject *mod, PyObject *exc)
{
    Py_INCREF(exc);
    Py_XSETREF(SimError, exc);
    Py_RETURN_NONE;
}

static PyMethodDef kernel_methods[] = {
    {"_install", kernel_install, METH_O,
     "_install(exc_type)\n--\n\n"
     "Register the SimulationError class the Engine raises."},
    {"diff_arrays", (PyCFunction)(void (*)(void))diff_arrays, METH_FASTCALL,
     "diff_arrays(current, twin)\n--\n\n"
     "Single-scan diff of two matching 1-D arrays.  Returns None when "
     "equal, (indices, values, nruns) when changed, or NotImplemented "
     "for layouts/dtypes the kernel does not handle."},
    {"adaptive_threshold",
     (PyCFunction)(void (*)(void))kernel_adaptive_threshold, METH_FASTCALL,
     "adaptive_threshold(base, redirections, exclusive_home_writes, alpha, "
     "lam, t_init)\n--\n\n"
     "Equation 2: max(base + lam * (R - alpha * E), t_init), with the "
     "pure-Python function's validation."},
    {"merge_notices", (PyCFunction)(void (*)(void))kernel_merge_notices,
     METH_FASTCALL,
     "merge_notices(accumulated, incoming)\n--\n\n"
     "Fold an oid -> version dict into an oid -> max version dict, in "
     "place (missing oids read as 0)."},
    {"record_request", (PyCFunction)(void (*)(void))kernel_record_request,
     METH_FASTCALL,
     "record_request(state, requester, hops, events)\n--\n\n"
     "The home-side request prelude: record_remote_read + "
     "record_redirections + the remote_read stats bump, in one call."},
    {"cache_sweep_invalid",
     (PyCFunction)(void (*)(void))kernel_cache_sweep, METH_FASTCALL,
     "cache_sweep_invalid(cache, invalid_mode, free)\n--\n\n"
     "Barrier-GC sweep of a CacheIndex: pool every INVALID twinless "
     "entry's payload via free(), tombstone its slot, return the count."},
    {"prune_floors", (PyCFunction)(void (*)(void))kernel_prune_floors,
     METH_FASTCALL,
     "prune_floors(required, released, homes)\n--\n\n"
     "Drop write-notice floors at or below the release horizon (or "
     "locally homed); returns the prune count."},
    {"cache_invalidate_read",
     (PyCFunction)(void (*)(void))kernel_cache_invalidate_read,
     METH_FASTCALL,
     "cache_invalidate_read(cache, read_mode, invalid_mode)\n--\n\n"
     "Java-consistency flush of a CacheIndex: flip every READ entry to "
     "INVALID, return the flip count."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._kernel._kernelc",
    .m_doc = "Compiled hot kernels: event-heap engine, message dispatcher, "
             "diff scan, threshold update.",
    .m_size = -1,
    .m_methods = kernel_methods,
};

PyMODINIT_FUNC
PyInit__kernelc(void)
{
    PyObject *mod;

    import_array();

    str_category = PyUnicode_InternFromString("category");
    if (str_category == NULL) {
        return NULL;
    }
    str_payload = PyUnicode_InternFromString("payload");
    if (str_payload == NULL) {
        return NULL;
    }
#define INTERN(var, text)                                                  \
    do {                                                                   \
        var = PyUnicode_InternFromString(text);                            \
        if (var == NULL) {                                                 \
            return NULL;                                                   \
        }                                                                  \
    } while (0)
    INTERN(str_value, "value");
    INTERN(str_mode, "mode");
    INTERN(str_interval, "interval");
    INTERN(str_read_interval, "read_interval");
    INTERN(str_write_interval, "write_interval");
    INTERN(str_homes, "homes");
    INTERN(str_cache, "cache");
    INTERN(str_index, "_index");
    INTERN(str_slots, "_slots");
    INTERN(str_dirty, "dirty");
    INTERN(str_home_dirty, "home_dirty");
    INTERN(str_try_read_local, "try_read_local");
    INTERN(str_try_write_local, "try_write_local");
    INTERN(str_state, "state");
    INTERN(str_home_reads, "home_reads");
    INTERN(str_home_writes, "home_writes");
    INTERN(str_exclusive_home_writes, "exclusive_home_writes");
    INTERN(str_last_writer, "last_writer");
    INTERN(str_consecutive_writes, "consecutive_writes");
    INTERN(str_consecutive_writer, "consecutive_writer");
    INTERN(str_remote_reads, "remote_reads");
    INTERN(str_sharers, "sharers");
    INTERN(str_redirections, "redirections");
    INTERN(str_upgrade_to_write, "upgrade_to_write");
    INTERN(str_twin, "twin");
    INTERN(str_request_id, "request_id");
    INTERN(str_resolve, "resolve");
    INTERN(str_arena, "arena");
    INTERN(str_stats, "stats");
    INTERN(str_events, "events");
    INTERN(str_live, "_live");
    INTERN(str_oid, "oid");
    INTERN(ev_home_write, "home_write");
    INTERN(ev_exclusive_home_write, "exclusive_home_write");
    INTERN(ev_remote_read, "remote_read");
#undef INTERN
    zero_long = PyLong_FromLong(0);
    one_long = PyLong_FromLong(1);
    minus_one_long = PyLong_FromLong(-1);
    if (zero_long == NULL || one_long == NULL || minus_one_long == NULL) {
        return NULL;
    }

    if (PyType_Ready(&EngineType) < 0 || PyType_Ready(&DispatcherType) < 0 ||
        PyType_Ready(&VqType) < 0 || PyType_Ready(&KfType) < 0 ||
        PyType_Ready(&LocalAccessType) < 0 || PyType_Ready(&PortType) < 0 ||
        PyType_Ready(&FabricType) < 0 || PyType_Ready(&SenderType) < 0 ||
        PyType_Ready(&ReadyType) < 0 || PyType_Ready(&RouterType) < 0 ||
        PyType_Ready(&FutureType) < 0 || PyType_Ready(&ArenaType) < 0 ||
        PyType_Ready(&AccessorType) < 0) {
        return NULL;
    }

    mod = PyModule_Create(&kernel_module);
    if (mod == NULL) {
        return NULL;
    }
    if (PyModule_AddObjectRef(mod, "Engine", (PyObject *)&EngineType) < 0 ||
        PyModule_AddObjectRef(mod, "Dispatcher",
                              (PyObject *)&DispatcherType) < 0 ||
        PyModule_AddObjectRef(mod, "VersionIndexedQueue",
                              (PyObject *)&VqType) < 0 ||
        PyModule_AddObjectRef(mod, "KeyedFifo", (PyObject *)&KfType) < 0 ||
        PyModule_AddObjectRef(mod, "LocalAccess",
                              (PyObject *)&LocalAccessType) < 0 ||
        PyModule_AddObjectRef(mod, "DeliveryPort",
                              (PyObject *)&PortType) < 0 ||
        PyModule_AddObjectRef(mod, "NetFabric",
                              (PyObject *)&FabricType) < 0 ||
        PyModule_AddObjectRef(mod, "FabricSender",
                              (PyObject *)&SenderType) < 0 ||
        PyModule_AddObjectRef(mod, "Ready", (PyObject *)&ReadyType) < 0 ||
        PyModule_AddObjectRef(mod, "ReplyRouter",
                              (PyObject *)&RouterType) < 0 ||
        PyModule_AddObjectRef(mod, "Future", (PyObject *)&FutureType) < 0 ||
        PyModule_AddObjectRef(mod, "Arena", (PyObject *)&ArenaType) < 0 ||
        PyModule_AddObjectRef(mod, "Accessor",
                              (PyObject *)&AccessorType) < 0 ||
        PyModule_AddIntConstant(mod, "KERNEL_API", 5) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
