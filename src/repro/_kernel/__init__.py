"""Compiled-kernel backend selection for the repro package.

The hot kernels of the reproduction (event-heap drain, protocol message
dispatch, ``compute_diff``, the threshold update rule) have a compiled C
implementation in ``_kernelc.c``.  This module owns building, loading and
selecting it:

* ``kernel()`` returns the loaded extension module, or ``None`` when the
  pure-Python backend is active.  Resolution is lazy: the first call
  triggers a build (a few seconds, cached afterwards) unless the
  environment opts out.
* ``REPRO_BACKEND`` (``auto`` | ``python`` | ``compiled``) overrides
  autodetection.  ``auto`` (the default) tries the compiled backend and
  falls back to pure Python with a one-line warning; ``python`` skips the
  build entirely; ``compiled`` raises when the extension is unavailable.
* ``select_backend()`` re-resolves at runtime (used by the CLI
  ``--backend`` flag) and rebinds ``repro.sim.engine.Simulator``.

The extension is compiled at first use with the toolchain recorded in
Python's sysconfig (override with ``REPRO_KERNEL_CC``), into
``_kernel/_build/`` keyed by a hash of the C source and the Python/numpy
versions, so stale caches can never be loaded.  A ``setup.py`` build
(``python setup.py build_ext --inplace``) that produced an importable
``repro._kernel._kernelc`` takes precedence.

Both backends are bit-identical by contract: the determinism digest, the
conformance oracle and the backend-parity test suite all pass unchanged
whichever backend is active.
"""

from __future__ import annotations

import hashlib
import importlib
import importlib.util
import os
import shlex
import subprocess
import sys
import sysconfig
import warnings
from pathlib import Path
from typing import Any

__all__ = [
    "backend_info",
    "backend_name",
    "build_hash",
    "build_log_path",
    "kernel",
    "select_backend",
]

_SOURCE = Path(__file__).with_name("_kernelc.c")

#: Resolution state: ``module`` is the loaded extension (or None), ``name``
#: the active backend, ``reason`` why that backend was chosen.
_state: dict[str, Any] = {"resolved": False, "module": None,
                          "name": "python", "reason": "unresolved"}

#: Latch for the auto-mode fallback warning (once per process, even
#: across ``select_backend()`` re-resolutions).
_fallback_warned = False


def _build_dir() -> Path:
    """Directory for first-use builds; falls back to the user cache when
    the package directory is not writable (e.g. system installs)."""
    local = _SOURCE.parent / "_build"
    try:
        local.mkdir(exist_ok=True)
        probe = local / f".probe-{os.getpid()}"
        probe.touch()
        probe.unlink()
        return local
    except OSError:
        cache_root = Path(
            os.environ.get("XDG_CACHE_HOME", Path.home() / ".cache")
        )
        fallback = cache_root / "repro-kernel"
        fallback.mkdir(parents=True, exist_ok=True)
        return fallback


def _build_tag() -> str:
    """Cache key: C source bytes + interpreter + numpy versions."""
    import numpy

    digest = hashlib.sha256()
    digest.update(_SOURCE.read_bytes())
    digest.update(sys.version.encode())
    digest.update(numpy.__version__.encode())
    return digest.hexdigest()[:16]


def build_log_path() -> Path:
    """Where the most recent compiler invocation's log is written."""
    return _build_dir() / "build.log"


def _compiler_command(target: Path) -> list[str]:
    import numpy

    cc = (
        os.environ.get("REPRO_KERNEL_CC")
        or sysconfig.get_config_var("CC")
        or "cc"
    )
    cmd = shlex.split(cc)
    cmd += ["-O2", "-fPIC", "-fno-strict-aliasing", "-shared"]
    if sys.platform == "darwin":  # pragma: no cover - linux containers
        cmd[cmd.index("-shared")] = "-bundle"
        cmd += ["-undefined", "dynamic_lookup"]
    cmd += [
        "-I" + sysconfig.get_paths()["include"],
        "-I" + numpy.get_include(),
        str(_SOURCE),
        "-o",
        str(target),
    ]
    return cmd


def _compile_extension(target: Path) -> None:
    """Compile the C source to ``target`` atomically (temp file + rename,
    so concurrent first-use builds in worker processes cannot collide)."""
    tmp = target.with_name(f"{target.name}.tmp-{os.getpid()}")
    cmd = _compiler_command(tmp)
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=600
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise RuntimeError(f"kernel compiler failed to run: {exc}") from exc
    log = build_log_path()
    try:
        log.write_text(
            f"$ {' '.join(cmd)}\n"
            f"exit {proc.returncode}\n"
            f"--- stdout ---\n{proc.stdout}\n"
            f"--- stderr ---\n{proc.stderr}\n"
        )
    except OSError:  # pragma: no cover - log is best-effort
        pass
    if proc.returncode != 0:
        tmp.unlink(missing_ok=True)
        tail = proc.stderr.strip().splitlines()[-1:] or ["no output"]
        raise RuntimeError(
            f"kernel build failed (exit {proc.returncode}: {tail[0]}; "
            f"full log at {log})"
        )
    os.replace(tmp, target)


def _load_from_path(path: Path) -> Any:
    spec = importlib.util.spec_from_file_location(
        "repro._kernel._kernelc", path
    )
    if spec is None or spec.loader is None:
        raise RuntimeError(f"cannot load kernel extension at {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    sys.modules["repro._kernel._kernelc"] = module
    return module


# Oldest extension ABI this selection layer can drive.  Bumped when the
# Python side starts depending on new C symbols (PR 8 added the protocol
# fast-path layer: LocalAccess, NetFabric, the C pending queues, the
# Future/Arena hot-path twins, and the fused ThreadContext Accessor;
# PR 9 added NetFabric.set_topology and cache_invalidate_read for the
# scale tier); an installed in-place build predating them must lose to
# a fresh first-use build rather than load and fail at attribute lookup.
_MIN_KERNEL_API = 5


def _load_or_build() -> Any:
    """Return the extension module, building it on first use."""
    existing = sys.modules.get("repro._kernel._kernelc")
    if existing is not None:
        return existing
    # An installed in-place build (setup.py build_ext) wins over the
    # first-use cache — but only at a compatible ABI level.
    try:
        module = importlib.import_module("repro._kernel._kernelc")
    except ImportError:
        pass
    else:
        if getattr(module, "KERNEL_API", 0) >= _MIN_KERNEL_API:
            return module
        del sys.modules["repro._kernel._kernelc"]
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    target = _build_dir() / f"_kernelc-{_build_tag()}{suffix}"
    if not target.exists():
        _compile_extension(target)
    return _load_from_path(target)


def _install_error_types(module: Any) -> None:
    from repro.sim.errors import SimulationError

    module._install(SimulationError)


def _resolve(requested: str) -> None:
    name = (requested or "auto").strip().lower()
    if name not in ("auto", "python", "compiled"):
        warnings.warn(
            f"repro: unknown REPRO_BACKEND={requested!r}; using auto",
            RuntimeWarning,
            stacklevel=3,
        )
        name = "auto"
    if name == "python":
        _state.update(
            resolved=True, module=None, name="python",
            reason="selected explicitly",
        )
        return
    try:
        module = _load_or_build()
        _install_error_types(module)
    except Exception as exc:
        if name == "compiled":
            _state.update(
                resolved=False, module=None, name="python",
                reason=f"unavailable: {exc}",
            )
            raise RuntimeError(
                f"compiled backend requested but unavailable: {exc}"
            ) from exc
        global _fallback_warned
        if not _fallback_warned:
            # Once per *process*, not per resolution: select_backend()
            # clears _state["resolved"], so without this latch every
            # auto re-resolution on a compiler-less host re-fires the
            # same warning.
            _fallback_warned = True
            warnings.warn(
                f"repro: compiled kernel unavailable ({exc}); "
                f"falling back to the pure-Python backend",
                RuntimeWarning,
                stacklevel=3,
            )
        _state.update(
            resolved=True, module=None, name="python",
            reason=f"fallback: {exc}",
        )
        return
    _state.update(
        resolved=True, module=module, name="compiled",
        reason="extension loaded",
    )


def kernel() -> Any:
    """The loaded extension module, or ``None`` for the pure-Python backend.

    Resolves lazily on first call (honouring ``REPRO_BACKEND``); hot-path
    consumers call this per operation, so after resolution it is a dict
    lookup and a branch.
    """
    if not _state["resolved"]:
        _resolve(os.environ.get("REPRO_BACKEND", "auto"))
    return _state["module"]


def backend_name() -> str:
    """``"compiled"`` or ``"python"`` — the active backend (resolving
    lazily, like :func:`kernel`)."""
    kernel()
    return _state["name"]


def build_hash() -> str | None:
    """Build provenance of the active backend.

    The 16-hex-digit cache key the compiled extension was built under
    (C source bytes + interpreter + numpy versions), or ``None`` when
    the pure-Python backend is active.  Recorded in trace metadata and
    printed in the ``repro-bench report`` header so a trace can always
    be tied back to the exact kernel build that produced it.
    """
    kernel()
    if _state["name"] != "compiled":
        return None
    return _build_tag()


def backend_info() -> dict:
    """Diagnostic summary: active backend, why, and build artefact paths."""
    kernel()
    info = {
        "backend": _state["name"],
        "reason": _state["reason"],
        "source": str(_SOURCE),
    }
    if _state["module"] is not None:
        info["extension"] = getattr(_state["module"], "__file__", None)
    log = build_log_path()
    if log.exists():
        info["build_log"] = str(log)
    return info


def select_backend(name: str) -> str:
    """Force the backend at runtime; returns the active backend name.

    Sets ``REPRO_BACKEND`` (so worker subprocesses inherit the choice),
    re-resolves, and rebinds ``repro.sim.engine.Simulator`` /
    ``repro.sim.Simulator`` when those modules are already imported.
    Raises :class:`RuntimeError` for ``name="compiled"`` when the
    extension cannot be built.  Call it before constructing simulators;
    already-built simulators keep their original backend.
    """
    if name not in ("auto", "python", "compiled"):
        raise ValueError(f"unknown backend {name!r}")
    os.environ["REPRO_BACKEND"] = name
    _state["resolved"] = False
    _resolve(name)
    engine = sys.modules.get("repro.sim.engine")
    if engine is not None:
        engine._rebind_simulator()
    return _state["name"]
