"""Labeled run metrics: counters, gauges and histograms in a registry.

The registry is the numeric backbone of the observability layer: the
protocol, network and bench executor record into it when (and only when)
a registry is attached, so the disabled path costs one ``is not None``
check per site.  Everything the paper plots is expressible as a metric —
threshold values, redirection chain lengths, diff sizes, fault-in
latencies in simulated microseconds, migration counts — labeled by node,
object or policy as appropriate.

Design constraints:

* **hot-path cheap** — instruments are plain ``__slots__`` objects whose
  ``inc``/``set``/``observe`` are attribute arithmetic; callers that sit
  on hot paths cache the instrument handle once instead of re-resolving
  the ``(name, labels)`` key per event;
* **cross-process aggregation** — :meth:`MetricsRegistry.snapshot` is a
  stable, JSON-friendly plain structure; :meth:`MetricsRegistry.merge`
  folds another registry *or* a snapshot dict in (counters and
  histograms add, gauges last-write-wins), so a parallel sweep's
  per-process registries reduce to one cluster-wide view;
* **deterministic output** — snapshots sort by ``(name, labels)``, so
  two runs of the same spec produce byte-identical snapshots.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

#: Default histogram bucket upper bounds — log-spaced to cover everything
#: from sub-microsecond spans to multi-second simulated latencies (µs)
#: and from single bytes to megabyte diffs.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0
)

_LabelsKey = tuple[tuple[str, Any], ...]


class Counter:
    """A monotonically increasing count (events, messages, migrations)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError(f"cannot decrement a counter by {n}")
        self.value += n


class Gauge:
    """A point-in-time value (live threshold, queue depth, home count)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with the latest observation."""
        self.value = value


class Histogram:
    """A bucketed distribution (latencies, sizes, chain lengths).

    Tracks per-bucket counts (``bucket_counts[i]`` counts observations
    ``<= buckets[i]``; the final slot is the overflow), plus running
    count/sum/min/max so means and extremes survive aggregation.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.buckets: tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.bucket_counts: list[int] = [0] * (len(self.buckets) + 1)
        self.count: int = 0
        self.sum: float = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        self.bucket_counts[idx] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0


def _labels_key(labels: Mapping[str, Any]) -> _LabelsKey:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Registry of labeled instruments with mergeable snapshots.

    Instruments are created on first use and memoized by
    ``(name, sorted labels)``::

        reg = MetricsRegistry()
        reg.counter("dsm_migrations_total", node=3).inc()
        reg.histogram("dsm_fault_in_us", node=3).observe(412.5)
        reg.gauge("dsm_threshold", oid=7).set(2.0)

    ``snapshot()`` emits a plain sorted dict; ``merge()`` folds in another
    registry or snapshot (counters/histograms add, gauges last-write-wins);
    ``from_snapshot()`` rebuilds a registry, so snapshots shipped across
    process boundaries by the parallel executor aggregate losslessly.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, _LabelsKey], Counter] = {}
        self._gauges: dict[tuple[str, _LabelsKey], Gauge] = {}
        self._histograms: dict[tuple[str, _LabelsKey], Histogram] = {}

    # -- instrument accessors ---------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter registered under ``name`` + ``labels`` (create once)."""
        key = (name, _labels_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge registered under ``name`` + ``labels`` (create once)."""
        key = (name, _labels_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """The histogram under ``name`` + ``labels`` (create once;
        ``buckets`` only applies at creation)."""
        key = (name, _labels_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(buckets)
        return instrument

    # -- introspection ------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of a counter (0 if never touched)."""
        entry = self._counters.get((name, _labels_key(labels)))
        return entry.value if entry is not None else 0

    def counter_total(self, name: str) -> float:
        """Sum of a counter over all label sets (0 if never touched)."""
        return sum(
            c.value for (n, _), c in self._counters.items() if n == name
        )

    def gauge_value(self, name: str, **labels: Any) -> float:
        """Current value of a gauge (0.0 if never touched)."""
        entry = self._gauges.get((name, _labels_key(labels)))
        return entry.value if entry is not None else 0.0

    def gauge_total(self, name: str) -> float:
        """Sum of a gauge over all label sets (0.0 if never touched).

        Meaningful for per-node resource gauges (arena bytes, cache
        entries) whose cluster-wide footprint is the sum over nodes.
        """
        return sum(
            g.value for (n, _), g in self._gauges.items() if n == name
        )

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )

    # -- snapshot / merge ---------------------------------------------------

    def snapshot(self) -> dict:
        """Stable, JSON-friendly copy of every instrument.

        Entries are sorted by ``(name, labels)``; two identical runs
        produce identical snapshots.
        """
        def sort_key(item):
            (name, labels), _ = item
            return (name, labels)

        return {
            "counters": [
                {"name": name, "labels": dict(labels), "value": c.value}
                for (name, labels), c in sorted(
                    self._counters.items(), key=sort_key
                )
            ],
            "gauges": [
                {"name": name, "labels": dict(labels), "value": g.value}
                for (name, labels), g in sorted(
                    self._gauges.items(), key=sort_key
                )
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": dict(labels),
                    "buckets": list(h.buckets),
                    "bucket_counts": list(h.bucket_counts),
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                }
                for (name, labels), h in sorted(
                    self._histograms.items(), key=sort_key
                )
            ],
        }

    def merge(self, other: "MetricsRegistry | dict") -> "MetricsRegistry":
        """Fold ``other`` (a registry or a snapshot dict) into this one.

        Counters and histograms accumulate; gauges take ``other``'s value
        (last write wins).  Histograms merge bucket-wise, which requires
        identical bucket bounds for the same ``(name, labels)``.
        Returns ``self`` for chaining.
        """
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for entry in snap.get("counters", ()):
            self.counter(entry["name"], **entry["labels"]).inc(entry["value"])
        for entry in snap.get("gauges", ()):
            self.gauge(entry["name"], **entry["labels"]).set(entry["value"])
        for entry in snap.get("histograms", ()):
            hist = self.histogram(
                entry["name"], buckets=entry["buckets"], **entry["labels"]
            )
            if list(hist.buckets) != list(entry["buckets"]):
                raise ValueError(
                    f"cannot merge histogram {entry['name']!r}: bucket "
                    f"bounds differ ({list(hist.buckets)} vs "
                    f"{entry['buckets']})"
                )
            for i, n in enumerate(entry["bucket_counts"]):
                hist.bucket_counts[i] += n
            hist.count += entry["count"]
            hist.sum += entry["sum"]
            for bound_name, pick in (("min", min), ("max", max)):
                theirs = entry[bound_name]
                if theirs is None:
                    continue
                ours = getattr(hist, bound_name)
                setattr(
                    hist,
                    bound_name,
                    theirs if ours is None else pick(ours, theirs),
                )
        return self

    @classmethod
    def from_snapshot(cls, snap: dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict."""
        return cls().merge(snap)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )
