"""Run-wide observability: metrics, streaming traces, timers, logging.

The paper's argument is telemetry-shaped — threshold series, migration
counts, message breakdowns — and this subpackage makes the reproduction
observable *while it runs* instead of only post-hoc:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labeled
  counters/gauges/histograms with mergeable snapshots (cross-process
  aggregation for parallel sweeps);
* :mod:`repro.obs.export` — a streaming :class:`JsonlTraceWriter`
  (bounded-memory alternative to the in-memory
  :class:`~repro.trace.recorder.TraceRecorder`) plus
  :func:`load_trace` / :func:`iter_trace` / :func:`dump_trace`;
* :mod:`repro.obs.timers` — :class:`PhaseTimer` / :class:`EpochTimer` /
  :class:`SpanTracker` over simulated and wall clock;
* :mod:`repro.obs.logging` — a structured, level-gated
  :class:`RunLogger`;
* :mod:`repro.obs.spans` — :class:`SpanTracer`: causal operation spans
  with run-unique op ids threaded through protocol messages
  (``span_open``/``span_close`` trace events, virtual-time extents);
* :mod:`repro.obs.hist` — :class:`LatencyHistogram`: deterministic
  mergeable HDR-style log-bucket histograms with exact-rank
  p50/p95/p99/p999, plus :class:`EpochSeries` throughput counters.

Everything is opt-in: the simulator, network and protocol engines carry
``None`` handles by default and every instrumentation site sits behind a
cheap ``is not None`` (or pre-hoisted boolean) guard, so a run with
telemetry disabled pays nothing measurable.
"""

from repro.obs.export import (
    JsonlTraceWriter,
    TRACE_SCHEMA,
    dump_trace,
    iter_trace,
    load_trace,
)
from repro.obs.hist import EpochSeries, LatencyHistogram
from repro.obs.logging import LEVELS, NULL_LOGGER, RunLogger
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import SPAN_KINDS, SpanTracer
from repro.obs.timers import EpochTimer, PhaseTimer, SpanTracker

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EpochSeries",
    "EpochTimer",
    "Gauge",
    "Histogram",
    "JsonlTraceWriter",
    "LEVELS",
    "LatencyHistogram",
    "MetricsRegistry",
    "NULL_LOGGER",
    "PhaseTimer",
    "RunLogger",
    "SPAN_KINDS",
    "SpanTracer",
    "SpanTracker",
    "TRACE_SCHEMA",
    "dump_trace",
    "iter_trace",
    "load_trace",
]
