"""Streaming JSONL trace export and import.

A :class:`JsonlTraceWriter` is a drop-in for
:class:`~repro.trace.recorder.TraceRecorder` at every protocol record
site (it implements the same ``wants(kind)`` / ``record(...)`` tracer
protocol) but streams events to disk instead of accumulating them in
memory — the bounded-memory path for long runs with full ``kinds``.

File format (``repro-trace-v1``): one JSON object per line.  The first
line is a meta header ::

    {"schema": "repro-trace-v1", "kinds": ["decision", "migration", ...]}

and every following line is one event ::

    {"t": 10432.5, "kind": "migration", "oid": 3, "node": 0,
     "detail": {"old_home": 0, "new_home": 2, "frozen_threshold": 2.0}}

:func:`load_trace` round-trips a file back into an in-memory
:class:`~repro.trace.recorder.TraceRecorder`, so every query helper
(``migrations``, ``home_path``, ``threshold_series``, ``of_kind``)
works identically on a loaded trace; :func:`iter_trace` streams events
without materialising the list; :func:`dump_trace` exports an in-memory
recorder to the same format.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Iterator

from repro.trace.events import KINDS, TraceEvent
from repro.trace.recorder import TraceRecorder

#: Schema tag written to (and required of) every trace file's meta line.
TRACE_SCHEMA = "repro-trace-v1"

#: Events buffered before an implicit flush to the underlying file.
DEFAULT_FLUSH_EVERY = 512


def _jsonable(value):
    """JSON encoder fallback: unwrap numpy scalars, stringify the rest."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


class JsonlTraceWriter:
    """Streams trace events to a JSONL file with bounded memory.

    Implements the tracer protocol (``wants``/``record``) so it can be
    passed wherever a :class:`~repro.trace.recorder.TraceRecorder` is
    accepted (``DistributedJVM(tracer=...)``).  Events are buffered and
    flushed every ``flush_every`` records and on :meth:`close`; use it as
    a context manager to guarantee the file is finalized::

        with JsonlTraceWriter("run.jsonl", kinds=["migration"]) as sink:
            DistributedJVM(..., tracer=sink).run(app)
    """

    def __init__(
        self,
        path: str,
        kinds: Iterable[str] | None = None,
        flush_every: int = DEFAULT_FLUSH_EVERY,
    ) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        if kinds is None:
            self.kinds = frozenset(KINDS)
        else:
            self.kinds = frozenset(kinds)
            unknown = self.kinds - KINDS
            if unknown:
                raise ValueError(f"unknown trace kinds {sorted(unknown)}")
        self.path = path
        self.events_written = 0
        self._flush_every = flush_every
        self._pending = 0
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        from repro import _kernel

        self._handle = open(path, "w", encoding="utf-8")
        self._handle.write(
            json.dumps(
                {
                    "schema": TRACE_SCHEMA,
                    "kinds": sorted(self.kinds),
                    "backend": _kernel.backend_name(),
                    "kernel_build_hash": _kernel.build_hash(),
                }
            )
            + "\n"
        )

    # -- tracer protocol ----------------------------------------------------

    def wants(self, kind: str) -> bool:
        """True when events of ``kind`` are captured (cheap hot-path guard)."""
        return kind in self.kinds

    def record(
        self, kind: str, time_us: float, oid: int, node: int, **detail
    ) -> None:
        """Append one event line (no-op for filtered kinds)."""
        if kind not in self.kinds:
            return
        if self._handle.closed:
            raise ValueError(f"trace writer for {self.path!r} is closed")
        self._handle.write(
            json.dumps(
                {
                    "t": time_us,
                    "kind": kind,
                    "oid": oid,
                    "node": node,
                    "detail": detail,
                },
                default=_jsonable,
            )
            + "\n"
        )
        self.events_written += 1
        self._pending += 1
        if self._pending >= self._flush_every:
            self._handle.flush()
            self._pending = 0

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<JsonlTraceWriter {self.path!r} "
            f"events={self.events_written}>"
        )


def _parse_meta(line: str, path: str) -> frozenset[str]:
    meta = json.loads(line)
    if not isinstance(meta, dict) or meta.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"{path!r} is not a {TRACE_SCHEMA} trace (bad meta line)"
        )
    return frozenset(meta.get("kinds", KINDS))


def read_trace_meta(path: str) -> dict:
    """The parsed meta line of a trace file (schema, kinds, backend, ...).

    The ``backend`` key records which simulation backend produced the
    trace (``"python"`` or ``"compiled"``); ``kernel_build_hash`` is the
    compiled extension's build provenance (``None`` under the pure-Python
    backend).  Traces written before a key existed simply lack it.
    """
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
    if not first:
        raise ValueError(f"{path!r} is empty (no meta line)")
    _parse_meta(first, path)  # schema validation
    return json.loads(first)


def iter_trace(path: str) -> Iterator[TraceEvent]:
    """Stream the events of a JSONL trace file one at a time."""
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first:
            raise ValueError(f"{path!r} is empty (no meta line)")
        _parse_meta(first, path)
        for line in handle:
            if not line.strip():
                continue
            raw = json.loads(line)
            yield TraceEvent(
                time_us=raw["t"],
                kind=raw["kind"],
                oid=raw["oid"],
                node=raw["node"],
                detail=raw.get("detail", {}),
            )


def load_trace(path: str) -> TraceRecorder:
    """Load a JSONL trace into an in-memory recorder.

    The returned :class:`~repro.trace.recorder.TraceRecorder` carries the
    writer's ``kinds`` and the full event list, so the query helpers
    (``migrations``, ``home_path``, ``threshold_series``, ``of_kind``)
    behave exactly as they would on the recorder that captured the run.
    """
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first:
            raise ValueError(f"{path!r} is empty (no meta line)")
        kinds = _parse_meta(first, path)
    recorder = TraceRecorder(kinds=kinds)
    for event in iter_trace(path):
        recorder.events.append(event)
    return recorder


def dump_trace(recorder: TraceRecorder, path: str) -> int:
    """Write an in-memory recorder's events out as a JSONL trace.

    Returns the number of events written.
    """
    with JsonlTraceWriter(path, kinds=recorder.kinds) as sink:
        for event in recorder.events:
            sink.record(
                event.kind,
                event.time_us,
                event.oid,
                event.node,
                **dict(event.detail),
            )
        return sink.events_written
