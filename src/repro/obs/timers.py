"""Span and phase timers over simulated and wall clock.

Three small primitives cover the timing questions a run raises:

* :class:`PhaseTimer` — named accumulating phases ("build", "simulate",
  "verify") measured in wall seconds and, when a simulated clock is
  supplied, simulated microseconds; reports merge across processes;
* :class:`EpochTimer` — successive laps on one monotonic clock
  (per-barrier-interval durations: ``lap(now)`` returns the elapsed time
  since the previous lap);
* :class:`SpanTracker` — keyed begin/end spans (per-lock-epoch durations:
  ``begin(lock_id, now)`` ... ``end(lock_id, now)``).

All three are clock-agnostic: callers pass timestamps (or a zero-arg
clock callable), so the same machinery times the simulator's virtual
microseconds and the host's ``perf_counter`` seconds.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Hashable, Iterator


class PhaseTimer:
    """Accumulates named phases in wall seconds (and optional sim µs).

    ::

        timer = PhaseTimer()
        with timer.phase("build"):
            ...
        with timer.phase("simulate", sim_clock=lambda: gos.sim.now):
            ...
        timer.report()
        # {"build": {"wall_s": ..., "sim_us": 0.0, "count": 1}, ...}

    Re-entering a phase name accumulates into the same entry and bumps
    its ``count``; :meth:`merge` folds another report in, so per-process
    phase timings from a parallel sweep aggregate like metrics do.
    """

    def __init__(
        self, wall_clock: Callable[[], float] = time.perf_counter
    ) -> None:
        self._wall_clock = wall_clock
        self._phases: dict[str, dict[str, float]] = {}

    def _entry(self, name: str) -> dict[str, float]:
        entry = self._phases.get(name)
        if entry is None:
            entry = self._phases[name] = {
                "wall_s": 0.0, "sim_us": 0.0, "count": 0
            }
        return entry

    @contextmanager
    def phase(
        self, name: str, sim_clock: Callable[[], float] | None = None
    ) -> Iterator[None]:
        """Time one entry into phase ``name`` (context manager)."""
        wall0 = self._wall_clock()
        sim0 = sim_clock() if sim_clock is not None else 0.0
        try:
            yield
        finally:
            entry = self._entry(name)
            entry["wall_s"] += self._wall_clock() - wall0
            if sim_clock is not None:
                entry["sim_us"] += sim_clock() - sim0
            entry["count"] += 1

    def report(self) -> dict[str, dict[str, float]]:
        """Plain-dict copy of all phases, sorted by name (JSON-friendly)."""
        return {
            name: dict(entry)
            for name, entry in sorted(self._phases.items())
        }

    def merge(self, report: "PhaseTimer | dict") -> "PhaseTimer":
        """Accumulate another timer's (or report dict's) phases into this
        one; returns ``self`` for chaining."""
        other = report.report() if isinstance(report, PhaseTimer) else report
        for name, entry in other.items():
            mine = self._entry(name)
            for key in ("wall_s", "sim_us", "count"):
                mine[key] += entry.get(key, 0)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PhaseTimer {sorted(self._phases)}>"


class EpochTimer:
    """Measures successive epochs on one monotonic clock.

    The first :meth:`lap` arms the timer and returns ``None``; every
    subsequent lap returns the time elapsed since the previous one.  The
    protocol layer uses one per barrier to turn release timestamps into
    per-barrier-interval durations.
    """

    __slots__ = ("last",)

    def __init__(self) -> None:
        self.last: float | None = None

    def lap(self, now: float) -> float | None:
        """Record a lap at ``now``; return the elapsed epoch (or None)."""
        previous = self.last
        self.last = now
        return None if previous is None else now - previous


class SpanTracker:
    """Keyed begin/end spans on one monotonic clock.

    ``begin(key, now)`` opens a span; ``end(key, now)`` closes it and
    returns its duration (``None`` for an unmatched end — e.g. a lock
    acquired before telemetry was enabled).  The protocol layer uses one
    per engine to time lock epochs (acquire-grant to release).
    """

    __slots__ = ("_open",)

    def __init__(self) -> None:
        self._open: dict[Hashable, float] = {}

    def begin(self, key: Hashable, now: float) -> None:
        """Open (or restart) the span identified by ``key``."""
        self._open[key] = now

    def end(self, key: Hashable, now: float) -> float | None:
        """Close the span for ``key``; return its duration or ``None``."""
        start = self._open.pop(key, None)
        return None if start is None else now - start

    def __len__(self) -> int:
        return len(self._open)
