"""Structured, level-gated run logging (logfmt-style key=value lines).

The repo deliberately avoids the stdlib ``logging`` module: a simulated
run emits events at simulated timestamps from within a hot event loop,
so the logger must be (a) cheap to *skip* — one integer compare per
gated site, exposed as :meth:`RunLogger.enabled_for` so callers can hoist
the check — and (b) structured, so a line like ::

    [info] repro migration sim_us=10432.5 oid=3 old_home=0 new_home=2

is grep-able and machine-parseable without a format string per site.

Loggers are explicit objects passed down the stack (no global mutable
configuration): the CLI builds one from ``--log-level`` and hands it to
the bench executor, which hands it to the JVM, GOS and protocol engines.
:meth:`RunLogger.child` binds contextual fields (e.g. ``node=3``) once so
per-site calls stay terse.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, TextIO

#: Recognised level names, most to least verbose.  ``"off"`` disables
#: every site, including errors — useful as an explicit null logger.
LEVELS: dict[str, int] = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "error": 40,
    "off": 100,
}


def _levelno(level: str) -> int:
    try:
        return LEVELS[level]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(LEVELS)}"
        ) from None


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if " " in text or "=" in text:
        return repr(text)
    return text


class RunLogger:
    """A structured logger gated by a fixed level.

    ``clock`` (optional, zero-arg) stamps each line with simulated time
    as ``sim_us=``; bound fields (from the constructor or :meth:`child`)
    are emitted on every line before the per-call fields.
    """

    __slots__ = ("name", "level", "_levelno", "_stream", "_clock", "_bound")

    def __init__(
        self,
        level: str = "info",
        name: str = "repro",
        stream: TextIO | None = None,
        clock: Callable[[], float] | None = None,
        **bound: Any,
    ) -> None:
        self.name = name
        self.level = level
        self._levelno = _levelno(level)
        self._stream = stream
        self._clock = clock
        self._bound = bound

    # -- gating -------------------------------------------------------------

    def enabled_for(self, level: str) -> bool:
        """True when a ``level`` call would emit; hoist this on hot paths."""
        return LEVELS.get(level, 0) >= self._levelno

    # -- emission -----------------------------------------------------------

    def log(self, level: str, event: str, **fields: Any) -> None:
        """Emit one structured line when ``level`` clears the gate."""
        levelno = _levelno(level)
        if levelno < self._levelno:
            return
        parts = [f"[{level}]", self.name, event]
        if self._clock is not None:
            parts.append(f"sim_us={self._clock():.6g}")
        for key, value in self._bound.items():
            parts.append(f"{key}={_format_value(value)}")
        for key, value in fields.items():
            parts.append(f"{key}={_format_value(value)}")
        stream = self._stream if self._stream is not None else sys.stderr
        print(" ".join(parts), file=stream)

    def debug(self, event: str, **fields: Any) -> None:
        """Log at debug level (per-message / per-decision detail)."""
        if self._levelno <= 10:
            self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        """Log at info level (migrations, phases, run lifecycle)."""
        if self._levelno <= 20:
            self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        """Log at warning level (dropped events, fallbacks)."""
        if self._levelno <= 30:
            self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        """Log at error level (failed runs)."""
        if self._levelno <= 40:
            self.log("error", event, **fields)

    # -- derivation ---------------------------------------------------------

    def child(
        self, clock: Callable[[], float] | None = None, **bound: Any
    ) -> "RunLogger":
        """A logger sharing level/stream with extra bound fields (and an
        optionally overridden clock)."""
        merged = dict(self._bound)
        merged.update(bound)
        return RunLogger(
            level=self.level,
            name=self.name,
            stream=self._stream,
            clock=clock if clock is not None else self._clock,
            **merged,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RunLogger {self.name} level={self.level}>"


#: A logger that emits nothing — a safe default where ``None`` is clumsy.
NULL_LOGGER = RunLogger(level="off", name="null")
