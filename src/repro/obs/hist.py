"""Deterministic log-scale latency histograms and epoch throughput series.

``LatencyHistogram`` is an HDR-style fixed-bucket histogram over
non-negative latencies (virtual microseconds in this repo).  Buckets are
derived from the IEEE-754 exponent/mantissa of the recorded value via
:func:`math.frexp`, so bucket assignment is exact, platform-independent
and needs no configuration: every power-of-two binade is split into
``SUBBUCKETS`` equal sub-buckets, giving a worst-case relative error of
``1/SUBBUCKETS`` (~1.6%) on quantile read-out while ``min``/``max`` stay
exact.

Two properties matter for the analytics engine built on top:

* **Mergeable.** Per-node/per-shard histograms merge by integer bucket
  addition; the running sum is kept as an integer tick count
  (``round(value * TICKS_PER_UNIT)``), so merging is associative,
  commutative and bit-identical to single-shot recording regardless of
  merge order (no float accumulation order effects).
* **Deterministic.** No wall clock, no randomness; ``to_dict`` /
  ``from_dict`` round-trip through plain JSON types with sorted keys.

Quantiles are *exact rank selection* over the fixed buckets: ``p(q)``
returns the upper bound of the bucket holding the ``ceil(q * count)``-th
smallest sample, clamped to the exact observed ``[min, max]`` range.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

__all__ = ["SUBBUCKETS", "TICKS_PER_UNIT", "LatencyHistogram", "EpochSeries"]

#: Sub-buckets per power-of-two binade (relative quantile error ~1/64).
SUBBUCKETS = 64

#: Integer ticks per recorded unit for the exact running sum.
TICKS_PER_UNIT = 1024

# frexp exponents for float64 span roughly [-1073, 1024]; shifting by
# _EXP_BIAS keeps bucket indices non-negative (they are dict keys, so
# only the ones actually hit are stored).
_EXP_BIAS = 1100

# Standard quantiles reported by summary().
_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999))


def bucket_index(value: float) -> int:
    """Map a non-negative value to its bucket index (0 = the zero bucket)."""
    if value <= 0.0:
        return 0
    m, e = math.frexp(value)  # value == m * 2**e, m in [0.5, 1)
    sub = int((m - 0.5) * (2 * SUBBUCKETS))  # 0 .. SUBBUCKETS-1, exact
    return 1 + (e + _EXP_BIAS) * SUBBUCKETS + sub


def bucket_upper(index: int) -> float:
    """Inclusive upper bound of a bucket (0.0 for the zero bucket)."""
    if index <= 0:
        return 0.0
    k = index - 1
    e = k // SUBBUCKETS - _EXP_BIAS
    sub = k % SUBBUCKETS
    return math.ldexp(0.5 + (sub + 1) / (2 * SUBBUCKETS), e)


class LatencyHistogram:
    """Fixed-bucket log-scale histogram with exact-rank quantiles."""

    __slots__ = ("buckets", "count", "sum_ticks", "min", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum_ticks = 0  # integer ticks => order-independent merges
        self.min: float | None = None
        self.max: float | None = None

    def record(self, value: float, n: int = 1) -> None:
        if value < 0:
            raise ValueError(f"latency must be non-negative, got {value!r}")
        if n <= 0:
            return
        value = float(value)
        idx = bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += n
        self.sum_ticks += n * int(round(value * TICKS_PER_UNIT))
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into ``self`` (integer addition; returns self)."""
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += other.count
        self.sum_ticks += other.sum_ticks
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    @classmethod
    def merged(cls, parts: Iterable["LatencyHistogram"]) -> "LatencyHistogram":
        out = cls()
        for part in parts:
            out.merge(part)
        return out

    @property
    def mean(self) -> float | None:
        if self.count == 0:
            return None
        return self.sum_ticks / TICKS_PER_UNIT / self.count

    def quantile(self, q: float) -> float | None:
        """Upper bound of the bucket holding the ceil(q*count)-th sample.

        Clamped to the observed [min, max] so p0/p100 are exact and no
        quantile can exceed the true maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0 or self.min is None or self.max is None:
            return None
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= rank:
                return min(max(bucket_upper(idx), self.min), self.max)
        return self.max  # unreachable unless counts drift; stay safe

    def quantile_at(self, q: float) -> tuple[float | None, bool]:
        """:meth:`quantile` plus a saturation flag.

        Exact-rank selection cannot resolve ``q`` below the maximum
        until ``ceil(q * count) < count`` — with 9 samples p999 (and p99,
        and p95) all land on rank 9, i.e. the max, without any warning.
        The returned flag is ``True`` when the value is such a saturated
        *estimate* (``q < 1`` but the rank hit the last sample), so
        report layers can say "p999 ~ 41.2" instead of presenting the
        max as a resolved tail quantile.
        """
        value = self.quantile(q)
        if value is None:
            return None, False
        estimated = q < 1.0 and math.ceil(q * self.count) >= self.count
        return value, estimated

    def summary(self) -> dict[str, Any]:
        """JSON-friendly summary with count/min/mean/max and standard quantiles.

        ``estimated`` lists the quantile names whose value saturated at
        the maximum for lack of samples (see :meth:`quantile_at`).
        """
        out: dict[str, Any] = {
            "count": self.count,
            "min": self.min,
            "mean": self.mean,
            "max": self.max,
        }
        estimated: list[str] = []
        for name, q in _QUANTILES:
            value, saturated = self.quantile_at(q)
            out[name] = value
            if saturated:
                estimated.append(name)
        out["estimated"] = estimated
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "buckets": {str(idx): self.buckets[idx] for idx in sorted(self.buckets)},
            "count": self.count,
            "sum_ticks": self.sum_ticks,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LatencyHistogram":
        out = cls()
        out.buckets = {int(k): int(v) for k, v in data.get("buckets", {}).items()}
        out.count = int(data.get("count", 0))
        out.sum_ticks = int(data.get("sum_ticks", 0))
        out.min = data.get("min")
        out.max = data.get("max")
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (
            self.buckets == other.buckets
            and self.count == other.count
            and self.sum_ticks == other.sum_ticks
            and self.min == other.min
            and self.max == other.max
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LatencyHistogram(count={self.count}, min={self.min}, "
            f"max={self.max}, buckets={len(self.buckets)})"
        )


class EpochSeries:
    """Mergeable per-epoch counter (e.g. operations per barrier epoch)."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}

    def note(self, epoch: int, n: int = 1) -> None:
        self.counts[epoch] = self.counts.get(epoch, 0) + n

    def merge(self, other: "EpochSeries") -> "EpochSeries":
        for epoch, n in other.counts.items():
            self.counts[epoch] = self.counts.get(epoch, 0) + n
        return self

    def series(self) -> list[tuple[int, int]]:
        return [(epoch, self.counts[epoch]) for epoch in sorted(self.counts)]

    def to_dict(self) -> dict[str, int]:
        return {str(epoch): self.counts[epoch] for epoch in sorted(self.counts)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EpochSeries":
        out = cls()
        out.counts = {int(k): int(v) for k, v in data.items()}
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EpochSeries):
            return NotImplemented
        return self.counts == other.counts
