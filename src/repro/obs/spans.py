"""Causal operation spans over the trace stream.

A *span* brackets one logical DSM operation — a read/write miss, a diff
flush, a home migration, a redirection hop, a lock acquire/release, a
barrier wait, a shipped computation — in **virtual time**.  Each span
gets a run-unique integer ``op`` id from a single monotonically
increasing counter shared by every engine in the run; the id is threaded
through protocol messages and pending queues so events caused by the
operation on *other* nodes link back via ``parent`` → a reconstructable
causal tree per operation.

Spans are recorded as two ordinary trace events so they flow through the
existing :class:`~repro.trace.recorder.TraceRecorder` /
:class:`~repro.obs.export.JsonlTraceWriter` machinery unchanged:

``span_open``
    ``detail = {"op": id, "op_kind": kind, "parent": id-or-None, ...}``
``span_close``
    ``detail = {"op": id, "op_kind": kind, ...}``

Determinism: ids come from deterministic allocation order (the simulator
dispatches events in a bit-identical order under both backends), and
this module never consults the wall clock — virtual timestamps are
passed in by the caller.  An optional ``wall_clock`` callable may be
injected by an embedder that wants wall-time annotations; it is ``None``
by default and never required (``tests/test_seed_discipline.py`` audits
this file for wall-clock imports).
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["SPAN_KINDS", "SPAN_OPEN", "SPAN_CLOSE", "SpanTracer"]

#: Logical operation kinds a span may carry (``op_kind`` detail field).
#: ``request`` is the application-level kind: one serving-tier request
#: (open before the guarding lock is acquired, closed after release), so
#: its duration is the end-to-end request latency including lock wait
#: and every coherence fault the request triggered.
SPAN_KINDS = frozenset(
    {
        "read_miss",
        "write_miss",
        "diff_flush",
        "migration",
        "redirect_hop",
        "lock_acquire",
        "lock_release",
        "barrier_wait",
        "ship",
        "request",
    }
)

#: Trace-event kinds emitted by this module (registered in repro.trace.events).
SPAN_OPEN = "span_open"
SPAN_CLOSE = "span_close"


class SpanTracer:
    """Allocates run-unique op ids and records span open/close events.

    One ``SpanTracer`` is shared by all engines of a run (constructed in
    :class:`~repro.gos.space.GlobalObjectSpace`), which is what makes the
    ids run-unique.  ``enabled`` is resolved once at construction so hot
    paths can guard on a cached ``None``-or-tracer reference.
    """

    __slots__ = ("tracer", "wall_clock", "enabled", "_next_id")

    def __init__(
        self,
        tracer: Any,
        wall_clock: Callable[[], float] | None = None,
    ) -> None:
        self.tracer = tracer
        self.wall_clock = wall_clock
        self.enabled = (
            tracer is not None
            and tracer.wants(SPAN_OPEN)
            and tracer.wants(SPAN_CLOSE)
        )
        self._next_id = 0

    @property
    def issued(self) -> int:
        """Number of span ids handed out so far."""
        return self._next_id

    def open(
        self,
        op_kind: str,
        time_us: int,
        oid: int,
        node: int,
        parent: int | None = None,
        **detail: Any,
    ) -> int:
        """Open a span and return its run-unique op id."""
        if op_kind not in SPAN_KINDS:
            raise ValueError(f"unknown span kind {op_kind!r}")
        op = self._next_id
        self._next_id = op + 1
        if self.wall_clock is not None:
            detail["wall_s"] = self.wall_clock()
        self.tracer.record(
            SPAN_OPEN,
            time_us,
            oid,
            node,
            op=op,
            op_kind=op_kind,
            parent=parent,
            **detail,
        )
        return op

    def close(
        self,
        op: int,
        op_kind: str,
        time_us: int,
        oid: int,
        node: int,
        **detail: Any,
    ) -> None:
        """Close a previously opened span."""
        if op_kind not in SPAN_KINDS:
            raise ValueError(f"unknown span kind {op_kind!r}")
        if self.wall_clock is not None:
            detail["wall_s"] = self.wall_clock()
        self.tracer.record(
            SPAN_CLOSE,
            time_us,
            oid,
            node,
            op=op,
            op_kind=op_kind,
            **detail,
        )

    def completed(
        self,
        op_kind: str,
        open_us: int,
        close_us: int,
        oid: int,
        node: int,
        parent: int | None = None,
        **detail: Any,
    ) -> int:
        """Record a span whose extent is only known after the fact.

        Used for redirection hops: the hop's duration is measured when
        the redirect reply arrives, so both events are recorded then —
        the ``span_open`` carries the earlier send timestamp.  Trace
        consumers must therefore sort by time rather than assume the
        stream is monotonic across kinds.
        """
        op = self.open(op_kind, open_us, oid, node, parent=parent, **detail)
        self.close(op, op_kind, close_us, oid, node)
        return op
