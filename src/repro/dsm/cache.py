"""Per-node cached (non-home) object copies and their access states.

The access-state machine mirrors the virtual-memory protection states a
page-based DSM gets from ``mprotect`` and the paper's GOS gets from access
checks in the JIT:

* ``INVALID`` — no usable copy; any access faults and triggers fault-in;
* ``READ`` — valid read-only copy; a write faults, creates the twin, and
  upgrades to ``WRITE``;
* ``WRITE`` — writable copy with a twin snapshot; the diff is computed and
  shipped to the home at the next release/barrier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.memory.twin import make_twin

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.arena import Arena


class AccessMode(enum.Enum):
    INVALID = "invalid"
    READ = "read"
    WRITE = "write"


@dataclass(slots=True)
class CacheEntry:
    """One node's cached copy of a remote-homed object."""

    payload: np.ndarray
    version: int
    mode: AccessMode = AccessMode.READ
    twin: np.ndarray | None = None

    def readable(self) -> bool:
        return self.mode is not AccessMode.INVALID

    def writable(self) -> bool:
        return self.mode is AccessMode.WRITE

    def upgrade_to_write(self, pool: "Arena | None" = None) -> None:
        """Write fault on a READ copy: snapshot the twin, allow writes.

        With ``pool`` set, the twin buffer is carved from (and later
        returned to) that arena, so repeated write intervals on the same
        object recycle one buffer instead of churning the allocator.
        """
        if self.mode is AccessMode.WRITE:
            return
        if self.mode is AccessMode.INVALID:
            raise RuntimeError("cannot upgrade an INVALID cache entry to WRITE")
        self.twin = make_twin(self.payload, pool)
        self.mode = AccessMode.WRITE

    def invalidate(self) -> None:
        """Drop validity (a newer write notice arrived)."""
        if self.mode is AccessMode.WRITE:
            raise RuntimeError(
                "invalidating a dirty WRITE copy would lose updates; "
                "diffs must be flushed before notices are applied"
            )
        self.mode = AccessMode.INVALID

    def downgrade_after_flush(
        self, acked_version: int, pool: "Arena | None" = None
    ) -> None:
        """After the diff was acked by the home, drop the twin.

        If the ack shows our update applied directly on top of the version
        we fetched (``acked == version + 1``) the copy equals the home copy
        and stays READ-valid at the new version; otherwise another writer's
        diff interleaved (multiple-writer interval) and our copy misses its
        updates, so it must be invalidated.
        """
        self._drop_twin(pool)
        if acked_version == self.version + 1:
            self.version = acked_version
            self.mode = AccessMode.READ
        else:
            self.mode = AccessMode.INVALID
            self.version = acked_version

    def downgrade_clean(self, pool: "Arena | None" = None) -> None:
        """Release with no actual changes: drop twin, back to READ."""
        self._drop_twin(pool)
        if self.mode is AccessMode.WRITE:
            self.mode = AccessMode.READ

    def _drop_twin(self, pool: "Arena | None") -> None:
        if self.twin is not None and pool is not None:
            pool.free(self.twin)
        self.twin = None
