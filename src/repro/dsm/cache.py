"""Per-node cached (non-home) object copies and their access states.

The access-state machine mirrors the virtual-memory protection states a
page-based DSM gets from ``mprotect`` and the paper's GOS gets from access
checks in the JIT:

* ``INVALID`` — no usable copy; any access faults and triggers fault-in;
* ``READ`` — valid read-only copy; a write faults, creates the twin, and
  upgrades to ``WRITE``;
* ``WRITE`` — writable copy with a twin snapshot; the diff is computed and
  shipped to the home at the next release/barrier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.memory.twin import make_twin

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.arena import Arena


class AccessMode(enum.Enum):
    INVALID = "invalid"
    READ = "read"
    WRITE = "write"


@dataclass(slots=True)
class CacheEntry:
    """One node's cached copy of a remote-homed object."""

    payload: np.ndarray
    version: int
    mode: AccessMode = AccessMode.READ
    twin: np.ndarray | None = None

    def readable(self) -> bool:
        return self.mode is not AccessMode.INVALID

    def writable(self) -> bool:
        return self.mode is AccessMode.WRITE

    def upgrade_to_write(self, pool: "Arena | None" = None) -> None:
        """Write fault on a READ copy: snapshot the twin, allow writes.

        With ``pool`` set, the twin buffer is carved from (and later
        returned to) that arena, so repeated write intervals on the same
        object recycle one buffer instead of churning the allocator.
        """
        if self.mode is AccessMode.WRITE:
            return
        if self.mode is AccessMode.INVALID:
            raise RuntimeError("cannot upgrade an INVALID cache entry to WRITE")
        self.twin = make_twin(self.payload, pool)
        self.mode = AccessMode.WRITE

    def invalidate(self) -> None:
        """Drop validity (a newer write notice arrived)."""
        if self.mode is AccessMode.WRITE:
            raise RuntimeError(
                "invalidating a dirty WRITE copy would lose updates; "
                "diffs must be flushed before notices are applied"
            )
        self.mode = AccessMode.INVALID

    def downgrade_after_flush(
        self, acked_version: int, pool: "Arena | None" = None
    ) -> None:
        """After the diff was acked by the home, drop the twin.

        If the ack shows our update applied directly on top of the version
        we fetched (``acked == version + 1``) the copy equals the home copy
        and stays READ-valid at the new version; otherwise another writer's
        diff interleaved (multiple-writer interval) and our copy misses its
        updates, so it must be invalidated.
        """
        self._drop_twin(pool)
        if acked_version == self.version + 1:
            self.version = acked_version
            self.mode = AccessMode.READ
        else:
            self.mode = AccessMode.INVALID
            self.version = acked_version

    def downgrade_clean(self, pool: "Arena | None" = None) -> None:
        """Release with no actual changes: drop twin, back to READ."""
        self._drop_twin(pool)
        if self.mode is AccessMode.WRITE:
            self.mode = AccessMode.READ

    def _drop_twin(self, pool: "Arena | None") -> None:
        if self.twin is not None and pool is not None:
            pool.free(self.twin)
        self.twin = None


class CacheIndex:
    """Flat per-node cache map: a sticky ``oid -> slot`` index plus a
    slot array, shared between both backends.

    The compiled kernel's ``LocalAccess`` fast path serves read/write
    hits straight from ``_index``/``_slots`` without touching Python
    method dispatch, so those two containers are **never rebound** after
    construction — the C side caches direct references to them.  An oid
    keeps its slot for the lifetime of the engine: ``pop`` only writes
    ``None`` into the slot, and a re-inserted oid reuses it.  That keeps
    the index dict insert-free (hence resize-free) on the steady-state
    hit path.

    Mapping semantics match the plain dict this replaced, with one
    deliberate difference: iteration yields entries in first-touch slot
    order rather than dict insertion order.  Every iterating consumer
    (`invalidate_all_cached`, barrier GC, footprint accounting) is
    order-insensitive, and the determinism digest does not hash cache
    iteration order.
    """

    __slots__ = ("_index", "_slots", "_oids", "_live")

    def __init__(self) -> None:
        self._index: dict[int, int] = {}
        self._slots: list[CacheEntry | None] = []
        self._oids: list[int] = []
        self._live = 0

    def get(self, oid: int, default: "CacheEntry | None" = None):
        slot = self._index.get(oid)
        if slot is None:
            return default
        entry = self._slots[slot]
        return default if entry is None else entry

    def __getitem__(self, oid: int) -> CacheEntry:
        entry = self.get(oid)
        if entry is None:
            raise KeyError(oid)
        return entry

    def __setitem__(self, oid: int, entry: CacheEntry) -> None:
        if entry is None:
            raise ValueError("cache entries cannot be None")
        slot = self._index.get(oid)
        if slot is None:
            self._index[oid] = len(self._slots)
            self._slots.append(entry)
            self._oids.append(oid)
            self._live += 1
        else:
            slots = self._slots
            if slots[slot] is None:
                self._live += 1
            slots[slot] = entry

    def pop(self, oid: int, *default):
        slot = self._index.get(oid)
        entry = None if slot is None else self._slots[slot]
        if entry is None:
            if default:
                return default[0]
            raise KeyError(oid)
        self._slots[slot] = None
        self._live -= 1
        return entry

    def __contains__(self, oid: int) -> bool:
        slot = self._index.get(oid)
        return slot is not None and self._slots[slot] is not None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def values(self):
        """Live entries in first-touch slot order."""
        return (entry for entry in self._slots if entry is not None)

    def items(self):
        """Live ``(oid, entry)`` pairs in first-touch slot order."""
        oids = self._oids
        return (
            (oids[slot], entry)
            for slot, entry in enumerate(self._slots)
            if entry is not None
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CacheIndex live={self._live} slots={len(self._slots)}>"
