"""Centralized barrier with notice exchange and JiaJia-style migration hook.

The barrier manager lives on one node (node 0, where the paper's
application starts).  One round: every thread flushes its diffs, then
sends BARRIER_ARRIVE carrying its write notices; when all parties arrived
the manager merges the notices, optionally runs barrier-time home
migration (for :class:`~repro.core.policies.BarrierMigration`), and
broadcasts BARRIER_RELEASE with the merged notices (and any new home
locations piggybacked, as JiaJia does).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.version import merge_notices


@dataclass(frozen=True, slots=True)
class BarrierHandle:
    """Application-facing barrier identity."""

    barrier_id: int
    home: int
    parties: int

    def __post_init__(self) -> None:
        if self.parties < 1:
            raise ValueError(f"barrier needs >= 1 parties, got {self.parties}")


@dataclass(slots=True)
class BarrierRound:
    """Manager-side state of the in-progress round."""

    round_no: int = 0
    arrived: int = 0
    #: Merged oid -> version notices of this round.
    notices: dict[int, int] = field(default_factory=dict)
    #: oid -> set of writer nodes this round (for barrier migration).
    writers: dict[int, set[int]] = field(default_factory=dict)


class BarrierState:
    """All rounds of one barrier at its manager node."""

    def __init__(self, handle: BarrierHandle):
        self.handle = handle
        self.round = BarrierRound()

    def arrive(
        self, node: int, notices: dict[int, int], round_no: int
    ) -> bool:
        """Record an arrival; True when the round became complete."""
        if round_no != self.round.round_no:
            raise RuntimeError(
                f"barrier {self.handle.barrier_id}: arrival for round "
                f"{round_no} during round {self.round.round_no}"
            )
        self.round.arrived += 1
        if self.round.arrived > self.handle.parties:
            raise RuntimeError(
                f"barrier {self.handle.barrier_id}: more arrivals than "
                f"parties ({self.handle.parties})"
            )
        merge_notices(self.round.notices, notices)
        for oid in notices:
            self.round.writers.setdefault(oid, set()).add(node)
        return self.round.arrived == self.handle.parties

    def complete_round(self) -> tuple[int, dict[int, int], dict[int, set[int]]]:
        """Close the round; returns (round_no, merged notices, writer sets)."""
        finished = self.round
        self.round = BarrierRound(round_no=finished.round_no + 1)
        return finished.round_no, finished.notices, finished.writers
