"""New-home notification mechanisms (paper §3.2).

After a home migration the other nodes must be able to find the new home.
The paper discusses three mechanisms and adopts the forwarding pointer;
all three are implemented here so the trade-off can be measured
(``benchmarks/test_ablation_notification.py``):

* **forwarding pointer** — the old home keeps a pointer and answers
  requests with the current hint; chains accumulate (and the hop count is
  the protocol's negative feedback ``R``);
* **broadcast** — the old home announces the new location to every node at
  migration time (N-2 extra messages; the requester that triggered the
  migration learns it from the reply itself);
* **home manager** — a designated manager node records every migration; a
  node that misses asks the manager, paying old-home → manager → new-home.

Every old home always retains the local pointer (it costs nothing and the
real implementation needs it to forward in-flight traffic); mechanisms
differ in the *extra messages* they send at migration time and in how an
obsolete home tells a requester to proceed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, TYPE_CHECKING

from repro.cluster.message import MsgCategory

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsm.protocol import DsmEngine

#: Wire payload bytes of a notification control message (oid + node id).
NOTIFY_BYTES = 8


class NotificationMechanism(ABC):
    """Strategy for publishing a new home location."""

    name: str = "mechanism"

    @abstractmethod
    def on_migration(self, old_home: "DsmEngine", oid: int, new_home: int) -> None:
        """Called at the old home right after it shipped the object away."""

    @abstractmethod
    def miss_directive(self, obsolete_home: "DsmEngine", oid: int) -> dict[str, Any]:
        """What an obsolete home tells a requester that missed.

        Returns ``{"kind": "redirect", "target": node}`` or
        ``{"kind": "manager", "manager": node}``.
        """


class ForwardingPointerMechanism(NotificationMechanism):
    """The paper's choice: no action on migration; obsolete homes redirect
    via their local pointer, and redirections may accumulate along
    migration chains."""

    name = "forwarding-pointer"

    def on_migration(self, old_home, oid, new_home) -> None:
        pass  # the pointer itself is installed by the engine

    def miss_directive(self, obsolete_home, oid) -> dict[str, Any]:
        return {"kind": "redirect", "target": obsolete_home.forwards[oid]}


class BroadcastMechanism(NotificationMechanism):
    """Broadcast the new location to all other nodes at migration time.

    Heavyweight when migrations are frequent, but later requesters go
    straight to the new home.  A request racing the broadcast still hits
    the retained pointer and is redirected.
    """

    name = "broadcast"

    def on_migration(self, old_home, oid, new_home) -> None:
        for dst in range(old_home.network.nnodes):
            if dst in (old_home.node_id, new_home):
                continue
            old_home.network.send(
                old_home.node_id,
                dst,
                MsgCategory.HOME_BCAST,
                NOTIFY_BYTES,
                payload={"oid": oid, "new_home": new_home},
            )

    def miss_directive(self, obsolete_home, oid) -> dict[str, Any]:
        return {"kind": "redirect", "target": obsolete_home.forwards[oid]}


class HomeManagerMechanism(NotificationMechanism):
    """A designated manager node tracks the authoritative home map.

    On migration the old home posts the new location to the manager.  A
    requester that misses is told to query the manager, then retries at
    the manager's answer — the old-home/manager/new-home sequence of §3.2.
    """

    name = "home-manager"

    def __init__(self, manager_node: int = 0):
        if manager_node < 0:
            raise ValueError(f"manager node must be >= 0, got {manager_node}")
        self.manager_node = manager_node

    def on_migration(self, old_home, oid, new_home) -> None:
        if old_home.node_id == self.manager_node:
            old_home.manager_home_map[oid] = new_home
        else:
            old_home.network.send(
                old_home.node_id,
                self.manager_node,
                MsgCategory.HOME_UPDATE,
                NOTIFY_BYTES,
                payload={"oid": oid, "new_home": new_home},
            )

    def miss_directive(self, obsolete_home, oid) -> dict[str, Any]:
        return {"kind": "manager", "manager": self.manager_node}
