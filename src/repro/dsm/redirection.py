"""New-home notification mechanisms (paper §3.2).

After a home migration the other nodes must be able to find the new home.
The paper discusses three mechanisms and adopts the forwarding pointer;
all three are implemented here so the trade-off can be measured
(``benchmarks/test_ablation_notification.py`` and the ``repro-bench
sweep`` crossover lab):

* **forwarding pointer** — the old home keeps a pointer and answers
  requests with the current hint; chains accumulate (and the hop count is
  the protocol's negative feedback ``R``);
* **broadcast** — the old home announces the new location to every node at
  migration time (N-2 extra messages; the requester that triggered the
  migration learns it from the reply itself).  At scale the serialized
  N-message burst at one NIC dominates, so ``BroadcastMechanism(fanout=k)``
  relays the announcement through a k-ary multicast tree instead —
  O(log_k N) latency depth for one extra message (N-1 total);
* **home manager** — a designated manager node records every migration; a
  node that misses asks the manager, paying old-home → manager → new-home.
  ``HomeManagerMechanism(shards=K)`` spreads the directory over K manager
  nodes by object id (oid-hash → shard), removing the single-manager
  hotspot at large N; ``shards=1`` is bit-identical to the classic single
  manager.

Every old home always retains the local pointer (it costs nothing and the
real implementation needs it to forward in-flight traffic); mechanisms
differ in the *extra messages* they send at migration time and in how an
obsolete home tells a requester to proceed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, TYPE_CHECKING

from repro.cluster.message import MsgCategory

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsm.protocol import DsmEngine

#: Wire payload bytes of a notification control message (oid + node id).
NOTIFY_BYTES = 8


def fanout_children(node: int, root: int, fanout: int, nnodes: int):
    """The nodes ``node`` forwards to in a k-ary multicast tree.

    The tree spans all ``nnodes`` nodes rooted at ``root``: node ids are
    mapped to virtual indices ``v = (node - root) % nnodes`` (the root is
    ``v == 0``) and the children of ``v`` are ``k*v + 1 .. k*v + k`` —
    heap numbering, so every non-root index has exactly one parent and
    the relay depth is ``ceil(log_k N)``.  Yields real node ids.
    """
    v = (node - root) % nnodes
    first = fanout * v + 1
    for child in range(first, min(first + fanout, nnodes)):
        yield (root + child) % nnodes


class NotificationMechanism(ABC):
    """Strategy for publishing a new home location."""

    name: str = "mechanism"

    def validate(self, nnodes: int) -> None:
        """Check the configuration against the actual cluster size.

        Called by every :class:`~repro.dsm.protocol.DsmEngine` at
        construction — a mechanism naming nodes outside the cluster must
        fail here instead of silently targeting a nonexistent node at
        send time.
        """

    @abstractmethod
    def on_migration(self, old_home: "DsmEngine", oid: int, new_home: int) -> None:
        """Called at the old home right after it shipped the object away."""

    @abstractmethod
    def miss_directive(self, obsolete_home: "DsmEngine", oid: int) -> dict[str, Any]:
        """What an obsolete home tells a requester that missed.

        Returns ``{"kind": "redirect", "target": node}`` or
        ``{"kind": "manager", "manager": node}``.
        """


class ForwardingPointerMechanism(NotificationMechanism):
    """The paper's choice: no action on migration; obsolete homes redirect
    via their local pointer, and redirections may accumulate along
    migration chains."""

    name = "forwarding-pointer"

    def on_migration(self, old_home, oid, new_home) -> None:
        pass  # the pointer itself is installed by the engine

    def miss_directive(self, obsolete_home, oid) -> dict[str, Any]:
        return {"kind": "redirect", "target": obsolete_home.forwards[oid]}


class BroadcastMechanism(NotificationMechanism):
    """Broadcast the new location to all other nodes at migration time.

    Heavyweight when migrations are frequent, but later requesters go
    straight to the new home.  A request racing the broadcast still hits
    the retained pointer and is redirected.

    ``fanout=None`` (default) is the flat burst: N-2 messages injected
    back to back at the old home's NIC, whose serialization makes the
    burst O(N) deep.  ``fanout=k`` relays the announcement through the
    k-ary multicast tree of :func:`fanout_children` rooted at the old
    home: every node (including the new home, which forwards but learns
    nothing new) receives exactly one copy, N-1 messages total, and no
    NIC injects more than k — O(log_k N) latency depth.
    """

    name = "broadcast"

    def __init__(self, fanout: int | None = None):
        if fanout is not None and fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self.fanout = fanout

    def on_migration(self, old_home, oid, new_home) -> None:
        if self.fanout is None:
            for dst in range(old_home.network.nnodes):
                if dst in (old_home.node_id, new_home):
                    continue
                old_home.network.send(
                    old_home.node_id,
                    dst,
                    MsgCategory.HOME_BCAST,
                    NOTIFY_BYTES,
                    payload={"oid": oid, "new_home": new_home},
                )
            return
        # One shared payload fans down the relay tree; receivers forward
        # via DsmEngine._on_home_bcast before applying the hint.
        payload = {
            "oid": oid,
            "new_home": new_home,
            "root": old_home.node_id,
            "fanout": self.fanout,
        }
        for dst in fanout_children(
            old_home.node_id,
            old_home.node_id,
            self.fanout,
            old_home.network.nnodes,
        ):
            old_home.network.send(
                old_home.node_id,
                dst,
                MsgCategory.HOME_BCAST,
                NOTIFY_BYTES,
                payload=payload,
            )

    def miss_directive(self, obsolete_home, oid) -> dict[str, Any]:
        return {"kind": "redirect", "target": obsolete_home.forwards[oid]}


class HomeManagerMechanism(NotificationMechanism):
    """Designated manager node(s) track the authoritative home map.

    On migration the old home posts the new location to the manager.  A
    requester that misses is told to query the manager, then retries at
    the manager's answer — the old-home/manager/new-home sequence of §3.2.

    With ``shards=K`` the directory is sharded over the K consecutive
    nodes starting at ``manager_node`` by ``oid % K``, so the manager
    role (its HOME_UPDATE ingress and HOME_QUERY service load) spreads
    instead of concentrating at one NIC.  ``shards=1`` is exactly the
    classic single manager, message for message.
    """

    name = "home-manager"

    def __init__(self, manager_node: int = 0, shards: int = 1):
        if manager_node < 0:
            raise ValueError(f"manager node must be >= 0, got {manager_node}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.manager_node = manager_node
        self.shards = shards
        if shards > 1:
            self.name = f"home-manager-x{shards}"

    def validate(self, nnodes: int) -> None:
        if self.manager_node >= nnodes:
            raise ValueError(
                f"manager node {self.manager_node} outside the "
                f"{nnodes}-node cluster"
            )
        if self.shards > nnodes:
            raise ValueError(
                f"{self.shards} manager shards on a {nnodes}-node cluster"
            )

    def shard_for(self, oid: int, nnodes: int) -> int:
        """The manager node responsible for ``oid``'s directory entry."""
        if self.shards == 1:
            return self.manager_node
        return (self.manager_node + oid % self.shards) % nnodes

    def on_migration(self, old_home, oid, new_home) -> None:
        manager = self.shard_for(oid, old_home.network.nnodes)
        if old_home.node_id == manager:
            old_home.manager_home_map[oid] = new_home
        else:
            old_home.network.send(
                old_home.node_id,
                manager,
                MsgCategory.HOME_UPDATE,
                NOTIFY_BYTES,
                payload={"oid": oid, "new_home": new_home},
            )

    def miss_directive(self, obsolete_home, oid) -> dict[str, Any]:
        return {
            "kind": "manager",
            "manager": self.shard_for(oid, obsolete_home.network.nnodes),
        }
